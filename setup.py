"""Legacy setup shim.

The execution environment is offline and lacks the ``wheel`` package, so
PEP 660 editable installs (``pip install -e .`` with a ``[build-system]``
table) cannot build. This shim lets pip fall back to the classic
``setup.py develop`` code path. All metadata lives in ``pyproject.toml``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10"],
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)
