"""Tests for population protocols and the pairwise scheduler."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.baselines.population import (
    FourStateExactMajority,
    PairwiseScheduler,
    ThreeStateMajority,
)
from repro.errors import ConfigurationError


class TestThreeStateMajority:
    def test_transition_rules(self):
        protocol = ThreeStateMajority()
        X, Y, B = protocol.X, protocol.Y, protocol.BLANK
        assert protocol.delta(X, Y) == (X, B)
        assert protocol.delta(Y, X) == (Y, B)
        assert protocol.delta(X, B) == (X, X)
        assert protocol.delta(Y, B) == (Y, Y)
        assert protocol.delta(X, X) == (X, X)
        assert protocol.delta(B, X) == (B, X)  # blank initiator does nothing

    def test_requires_two_opinions(self):
        with pytest.raises(ConfigurationError):
            ThreeStateMajority().initial_state(np.array([1, 2, 3]))

    def test_majority_wins_with_bias(self, rngs):
        protocol = ThreeStateMajority()
        scheduler = PairwiseScheduler(protocol)
        wins = 0
        for rep in range(5):
            result = scheduler.run(np.array([650, 350]), rngs.stream(f"aae/{rep}"))
            assert result.converged
            wins += result.winner == 0
        assert wins >= 4  # approximate majority: whp, not always

    def test_parallel_time_normalization(self, rngs):
        result = PairwiseScheduler(ThreeStateMajority()).run(
            np.array([120, 60]), rngs.stream("pt")
        )
        assert result.parallel_time == pytest.approx(result.interactions / 180)


class TestFourStateExactMajority:
    def test_strong_difference_invariant_under_all_interactions(self):
        """#strong-X − #strong-Y is preserved by every transition."""
        protocol = FourStateExactMajority()

        def strong_diff(*states: int) -> int:
            return sum(
                (1 if s == protocol.SX else -1 if s == protocol.SY else 0)
                for s in states
            )

        for a, b in itertools.product(range(4), repeat=2):
            new_a, new_b = protocol.delta(a, b)
            assert strong_diff(a, b) == strong_diff(new_a, new_b), (a, b)

    def test_exactness_with_tiny_bias(self, rngs):
        """The exact protocol returns the true majority even at bias 51:49."""
        protocol = FourStateExactMajority()
        scheduler = PairwiseScheduler(protocol)
        for rep in range(3):
            result = scheduler.run(
                np.array([102, 98]), rngs.stream(f"exact/{rep}"),
                max_interactions=3_000_000,
            )
            assert result.converged
            assert result.winner == 0

    def test_minority_never_wins(self, rngs):
        protocol = FourStateExactMajority()
        result = PairwiseScheduler(protocol).run(
            np.array([90, 110]), rngs.stream("minority"), max_interactions=3_000_000
        )
        assert result.converged
        assert result.winner == 1

    def test_output_colors(self):
        protocol = FourStateExactMajority()
        assert protocol.output_color(protocol.SX) == 0
        assert protocol.output_color(protocol.WX) == 0
        assert protocol.output_color(protocol.SY) == 1
        assert protocol.output_color(protocol.WY) == 1


class TestPairwiseScheduler:
    def test_population_too_small_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            PairwiseScheduler(ThreeStateMajority()).run(np.array([1, 0]), rng)

    def test_population_preserved(self, rngs):
        protocol = ThreeStateMajority()
        scheduler = PairwiseScheduler(protocol)
        result = scheduler.run(np.array([80, 40]), rngs.stream("cons"))
        assert result.final_state_counts.sum() == 120

    def test_interaction_budget_respected(self, rng):
        result = PairwiseScheduler(ThreeStateMajority()).run(
            np.array([100, 100]), rng, max_interactions=50
        )
        assert result.interactions <= 50

    def test_deterministic_replay(self):
        from repro.engine.rng import RngRegistry

        runs = [
            PairwiseScheduler(ThreeStateMajority()).run(
                np.array([70, 50]), RngRegistry(11).stream("s")
            )
            for _ in range(2)
        ]
        assert runs[0].interactions == runs[1].interactions
        assert (runs[0].final_state_counts == runs[1].final_state_counts).all()
