"""Tests for the synchronous baseline dynamics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    PullVoting,
    ThreeMajority,
    TwoChoices,
    UndecidedStateDynamics,
    run_dynamics,
)
from repro.workloads.opinions import biased_counts

fractions_strategy = st.lists(
    st.floats(min_value=0.001, max_value=1.0), min_size=2, max_size=10
).map(lambda raw: np.array(raw) / np.sum(raw))

ALL_DYNAMICS = [PullVoting(), TwoChoices(), ThreeMajority(), UndecidedStateDynamics()]


class TestTransitionMatrices:
    @pytest.mark.parametrize("dynamics", ALL_DYNAMICS, ids=lambda d: d.name)
    def test_rows_are_distributions(self, dynamics):
        counts = biased_counts(1000, 5, 1.5)
        state = dynamics.initial_state(counts)
        matrix = dynamics.transition_probabilities(state)
        assert matrix.shape == (state.size, state.size)
        assert (matrix >= -1e-12).all()
        assert np.allclose(matrix.sum(axis=1), 1.0, atol=1e-9)

    @given(fractions_strategy)
    @settings(max_examples=100)
    def test_three_majority_law_is_distribution(self, fractions):
        law = ThreeMajority.adoption_law(fractions)
        assert law.shape == fractions.shape
        assert (law >= 0).all()
        assert law.sum() == pytest.approx(1.0)

    @pytest.mark.slow
    def test_three_majority_law_monte_carlo(self, rng):
        """The closed-form sampled-majority law matches simulation."""
        fractions = np.array([0.5, 0.3, 0.2])
        law = ThreeMajority.adoption_law(fractions)
        samples = rng.choice(3, size=(200_000, 3), p=fractions)
        outcomes = np.empty(samples.shape[0], dtype=np.int64)
        for index, trio in enumerate(samples):
            values, counts = np.unique(trio, return_counts=True)
            if counts.max() >= 2:
                outcomes[index] = values[np.argmax(counts)]
            else:
                outcomes[index] = trio[rng.integers(3)]
        empirical = np.bincount(outcomes, minlength=3) / samples.shape[0]
        assert np.allclose(empirical, law, atol=0.005)

    def test_two_choices_keeps_own_unless_pair_agrees(self):
        dynamics = TwoChoices()
        state = np.array([800, 200])
        matrix = dynamics.transition_probabilities(state)
        # A color-1 node adopts color 0 with probability 0.8^2.
        assert matrix[1, 0] == pytest.approx(0.64)
        assert matrix[1, 1] == pytest.approx(0.36)

    def test_undecided_state_vector_has_extra_slot(self):
        dynamics = UndecidedStateDynamics()
        state = dynamics.initial_state(np.array([3, 2]))
        assert state.tolist() == [3, 2, 0]
        assert dynamics.project_colors(state).tolist() == [3, 2]


class TestStepConservation:
    @pytest.mark.parametrize("dynamics", ALL_DYNAMICS, ids=lambda d: d.name)
    def test_population_preserved(self, dynamics, rng):
        counts = biased_counts(5000, 4, 1.5)
        state = dynamics.initial_state(counts)
        for _ in range(10):
            state = dynamics.step(state, rng)
            assert state.sum() == 5000
            assert (state >= 0).all()


class TestConvergence:
    @pytest.mark.parametrize(
        "dynamics", [TwoChoices(), ThreeMajority(), UndecidedStateDynamics()],
        ids=lambda d: d.name,
    )
    def test_plurality_wins_with_clear_bias(self, dynamics, rngs):
        counts = biased_counts(20_000, 4, 2.0)
        result = run_dynamics(dynamics, counts, rngs.stream(dynamics.name), max_rounds=2000)
        assert result.converged
        assert result.plurality_won

    def test_pull_voting_converges_eventually(self, rngs):
        counts = biased_counts(200, 2, 3.0)
        result = run_dynamics(PullVoting(), counts, rngs.stream("pv"), max_rounds=100_000)
        assert result.converged

    def test_budget_exhaustion_flagged(self, rng):
        counts = biased_counts(10_000, 4, 1.2)
        result = run_dynamics(TwoChoices(), counts, rng, max_rounds=1)
        assert not result.converged
        assert result.elapsed == 1.0

    def test_epsilon_and_trajectory(self, rngs):
        counts = biased_counts(20_000, 4, 2.0)
        result = run_dynamics(
            ThreeMajority(), counts, rngs.stream("traj"), max_rounds=2000,
            epsilon=0.05, record_trajectory=True,
        )
        assert result.epsilon_convergence_time is not None
        assert len(result.trajectory) == int(result.elapsed)
