"""Tests for the content-addressed run cache.

The satellite requirements pinned here: digest stability across dict
ordering, recovery from corrupt/partial cache files, atomic writes, and
gc semantics (dry-run, age-based, delete-all).
"""

from __future__ import annotations

import json
import os

import pytest

from repro.sweep.cache import CACHE_VERSION, RunCache
from repro.sweep.spec import config_digest

CONFIG = {"target": "demo", "params": {"n": 10, "k": 2}, "seed": 0, "rep": 0}
RECORD = {"elapsed": 12.5, "plurality_won": True}


@pytest.fixture()
def cache(tmp_path) -> RunCache:
    return RunCache(tmp_path / "runs")


class TestRoundTrip:
    def test_miss_then_hit(self, cache):
        assert cache.get(CONFIG) is None
        cache.put(CONFIG, RECORD)
        assert cache.get(CONFIG) == RECORD

    def test_creates_directory(self, tmp_path):
        root = tmp_path / "deep" / "nested" / "runs"
        RunCache(root)
        assert root.is_dir()

    def test_filename_is_config_digest(self, cache):
        path = cache.put(CONFIG, RECORD)
        assert path.stem == config_digest(CONFIG)
        assert path.parent == cache.root

    def test_hit_across_dict_ordering(self, cache):
        cache.put(CONFIG, RECORD)
        reordered = {
            "rep": 0,
            "seed": 0,
            "params": {"k": 2, "n": 10},
            "target": "demo",
        }
        assert cache.path_for(reordered) == cache.path_for(CONFIG)
        assert cache.get(reordered) == RECORD

    def test_distinct_configs_distinct_entries(self, cache):
        cache.put(CONFIG, RECORD)
        other = {**CONFIG, "rep": 1}
        cache.put(other, {"elapsed": 1.0})
        assert cache.get(CONFIG) == RECORD
        assert cache.get(other) == {"elapsed": 1.0}

    def test_put_overwrites(self, cache):
        cache.put(CONFIG, RECORD)
        cache.put(CONFIG, {"elapsed": 99.0})
        assert cache.get(CONFIG) == {"elapsed": 99.0}

    def test_no_temp_files_left_behind(self, cache):
        cache.put(CONFIG, RECORD)
        assert list(cache.root.glob("*.tmp")) == []


class TestCorruptionRecovery:
    def test_garbage_bytes_read_as_miss(self, cache):
        path = cache.path_for(CONFIG)
        path.write_text("{not json at all")
        assert cache.get(CONFIG) is None

    def test_truncated_entry_read_as_miss(self, cache):
        cache.put(CONFIG, RECORD)
        path = cache.path_for(CONFIG)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert cache.get(CONFIG) is None

    def test_wrong_version_read_as_miss(self, cache):
        cache.put(CONFIG, RECORD)
        path = cache.path_for(CONFIG)
        envelope = json.loads(path.read_text())
        envelope["version"] = CACHE_VERSION + 1
        path.write_text(json.dumps(envelope))
        assert cache.get(CONFIG) is None

    def test_digest_mismatch_read_as_miss(self, cache):
        # An entry whose embedded config does not hash to its filename
        # (e.g. a file renamed or copied by hand) must not be trusted.
        cache.put(CONFIG, RECORD)
        source = cache.path_for(CONFIG)
        other = {**CONFIG, "rep": 5}
        source.rename(cache.path_for(other))
        assert cache.get(other) is None

    def test_non_dict_payload_read_as_miss(self, cache):
        cache.path_for(CONFIG).write_text('["not", "an", "envelope"]')
        assert cache.get(CONFIG) is None

    def test_put_repairs_corrupt_entry(self, cache):
        cache.path_for(CONFIG).write_text("garbage")
        cache.put(CONFIG, RECORD)
        assert cache.get(CONFIG) == RECORD


class TestStatsAndGc:
    def test_stats_counts(self, cache):
        cache.put(CONFIG, RECORD)
        cache.put({**CONFIG, "rep": 1}, RECORD)
        (cache.root / f"{'0' * 64}.json").write_text("garbage")
        stats = cache.stats()
        assert stats.entries == 2
        assert stats.corrupt == 1
        assert stats.bytes > 0
        assert "2 entries" in stats.render()

    def test_gc_removes_only_corrupt_by_default(self, cache):
        cache.put(CONFIG, RECORD)
        bad = cache.root / f"{'0' * 64}.json"
        bad.write_text("garbage")
        doomed = cache.gc()
        assert doomed == [bad]
        assert not bad.exists()
        assert cache.get(CONFIG) == RECORD

    def test_gc_dry_run_deletes_nothing(self, cache):
        bad = cache.root / f"{'0' * 64}.json"
        bad.write_text("garbage")
        doomed = cache.gc(dry_run=True)
        assert doomed == [bad]
        assert bad.exists()

    def test_gc_max_age(self, cache):
        cache.put(CONFIG, RECORD)
        fresh = {**CONFIG, "rep": 1}
        cache.put(fresh, RECORD)
        old_path = cache.path_for(CONFIG)
        os.utime(old_path, (0, 0))  # epoch: far past any cutoff
        doomed = cache.gc(max_age_days=1)
        assert doomed == [old_path]
        assert cache.get(CONFIG) is None
        assert cache.get(fresh) == RECORD

    def test_gc_delete_all(self, cache):
        cache.put(CONFIG, RECORD)
        cache.put({**CONFIG, "rep": 1}, RECORD)
        assert len(cache.gc(delete_all=True)) == 2
        assert cache.stats().entries == 0

    def test_gc_sweeps_stale_temp_files(self, cache):
        stray = cache.root / "tmpabc123.tmp"
        stray.write_text("crash leftover")
        os.utime(stray, (0, 0))  # far older than STALE_TMP_SECONDS
        assert stray in cache.gc()
        assert not stray.exists()

    def test_gc_spares_fresh_temp_files(self, cache):
        # A just-created .tmp may be a concurrent put() mid-write.
        stray = cache.root / "tmpabc123.tmp"
        stray.write_text("possibly mid-write")
        assert cache.gc() == []
        assert stray.exists()
        assert stray in cache.gc(delete_all=True)

    def test_foreign_json_files_never_touched(self, cache):
        # A user's own JSON in the cache dir is not digest-named: it
        # must be invisible to stats and survive even `gc --all`.
        foreign = cache.root / "my-results.json"
        foreign.write_text('{"precious": true}')
        cache.put(CONFIG, RECORD)
        assert cache.stats().entries == 1
        assert cache.stats().corrupt == 0
        cache.gc(delete_all=True)
        assert foreign.exists()


class TestNanInfRecords:
    def test_nan_and_inf_round_trip(self, cache):
        # Experiment tables legitimately contain NaN ("-" cells) and
        # Inf; the cache must round-trip them instead of crashing.
        record = {"mean": float("nan"), "worst": float("inf"), "ok": 1.5}
        cache.put(CONFIG, record)
        loaded = cache.get(CONFIG)
        assert loaded["mean"] != loaded["mean"]  # NaN
        assert loaded["worst"] == float("inf")
        assert loaded["ok"] == 1.5


class TestTmpReaping:
    """An interrupted put() must not strand its .tmp file."""

    def test_put_failure_reaps_its_tmp(self, cache, monkeypatch):
        import repro.sweep.cache as cache_module

        def explode(src, dst):
            raise KeyboardInterrupt

        monkeypatch.setattr(cache_module.os, "replace", explode)
        with pytest.raises(KeyboardInterrupt):
            cache.put(CONFIG, RECORD)
        assert list(cache.root.glob("*.tmp")) == []
        assert not cache_module._PENDING_TMP

    def test_atexit_hook_reaps_pending_tmp(self, cache):
        from repro.sweep.cache import _PENDING_TMP, _reap_pending_tmp

        stranded = cache.root / "stranded-0.tmp"
        stranded.write_text("half-written")
        _PENDING_TMP.add(str(stranded))
        _reap_pending_tmp()
        assert not stranded.exists()
        assert not _PENDING_TMP

    def test_atexit_hook_ignores_already_deleted(self):
        from repro.sweep.cache import _PENDING_TMP, _reap_pending_tmp

        _PENDING_TMP.add("/nonexistent/path/to.tmp")
        _reap_pending_tmp()  # must not raise
        assert not _PENDING_TMP


class TestGcMaxBytes:
    """LRU-by-mtime eviction down to a byte budget."""

    def _fill(self, cache, count):
        paths = []
        for i in range(count):
            config = {**CONFIG, "rep": i}
            path = cache.put(config, RECORD)
            # Stagger mtimes so LRU order is deterministic: rep 0 is
            # the oldest entry, rep count-1 the newest.
            os.utime(path, (1_000_000 + i, 1_000_000 + i))
            paths.append(path)
        return paths

    def test_evicts_oldest_first(self, cache):
        paths = self._fill(cache, 4)
        size = paths[0].stat().st_size
        doomed = cache.gc(max_bytes=2 * size)
        assert sorted(doomed) == sorted(paths[:2])
        assert not paths[0].exists() and not paths[1].exists()
        assert paths[2].exists() and paths[3].exists()
        assert cache.gc_freed_bytes == 2 * size

    def test_budget_larger_than_cache_evicts_nothing(self, cache):
        self._fill(cache, 3)
        assert cache.gc(max_bytes=10**9) == []
        assert cache.gc_freed_bytes == 0

    def test_zero_budget_evicts_everything(self, cache):
        paths = self._fill(cache, 3)
        doomed = cache.gc(max_bytes=0)
        assert sorted(doomed) == sorted(paths)

    def test_dry_run_reports_without_deleting(self, cache):
        paths = self._fill(cache, 2)
        doomed = cache.gc(max_bytes=0, dry_run=True)
        assert len(doomed) == 2
        assert all(path.exists() for path in paths)
        assert cache.gc_freed_bytes > 0

    def test_corrupt_entries_do_not_count_against_budget(self, cache):
        paths = self._fill(cache, 2)
        bad = cache.root / ("e" * 64 + ".json")
        bad.write_text("{corrupt")
        doomed = cache.gc(max_bytes=2 * paths[0].stat().st_size)
        # The corrupt entry is doomed by the corruption pass; both
        # valid entries fit the budget and survive.
        assert doomed == [bad]
        assert all(path.exists() for path in paths)
