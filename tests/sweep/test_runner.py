"""Tests for sweep execution: determinism, caching, parallel fan-out.

The acceptance-critical properties pinned here:

* serial and 4-worker sweeps produce **byte-identical** aggregated
  tables for the same seed;
* a second invocation of a cached sweep executes **zero** runs (and
  therefore zero simulator events);
* repetition results depend only on (seed, substream), never on
  execution order.
"""

from __future__ import annotations

import pytest

import repro.sweep.runner as runner_module
from repro.engine.rng import RngRegistry
from repro.errors import ConfigurationError
from repro.experiments.common import repeat
from repro.sweep.aggregate import aggregate_table
from repro.sweep.cache import RunCache
from repro.sweep.runner import (
    execute_run,
    experiment_config,
    map_substreams,
    run_experiments,
    run_sweep,
)
from repro.sweep.spec import SweepSpec


def small_spec(**overrides) -> SweepSpec:
    settings = dict(
        target="synchronous",
        base={"k": 2, "alpha": 2.0},
        grid={"n": [100, 200]},
        repetitions=2,
        seed=3,
    )
    settings.update(overrides)
    return SweepSpec(**settings)


class TestExecuteRun:
    def test_same_config_same_record(self):
        config = small_spec().expand()[0].as_dict()
        first = execute_run(config)
        second = execute_run(config)
        first.pop("wall_time"), second.pop("wall_time")
        assert first == second

    def test_accepts_dict_and_runconfig(self):
        config = small_spec().expand()[0]
        from_obj = execute_run(config)
        from_dict = execute_run(config.as_dict())
        from_obj.pop("wall_time"), from_dict.pop("wall_time")
        assert from_obj == from_dict

    def test_unknown_target_raises(self):
        with pytest.raises(ConfigurationError, match="unknown sweep target"):
            execute_run(
                {"target": "nope", "params": {}, "seed": 0, "rep": 0}
            )


class TestRunSweep:
    def test_records_aligned_with_configs(self):
        report = run_sweep(small_spec())
        assert len(report.records) == report.spec.size
        assert report.executed == 4
        assert report.cached == 0
        assert all("elapsed" in record for record in report.records)

    def test_serial_and_parallel_tables_byte_identical(self):
        spec = small_spec()
        serial = run_sweep(spec, workers=1)
        parallel = run_sweep(spec, workers=4)
        assert parallel.workers == 4
        serial_table = aggregate_table(spec, serial.records).render()
        parallel_table = aggregate_table(spec, parallel.records).render()
        assert serial_table == parallel_table

    def test_cached_rerun_executes_nothing(self, tmp_path, monkeypatch):
        spec = small_spec()
        cache = RunCache(tmp_path / "runs")
        first = run_sweep(spec, cache=cache, workers=1)
        assert first.executed == spec.size

        # Second invocation must be satisfied entirely from the cache:
        # if any run (hence any simulator event) were executed, the
        # poisoned execute_run below would blow up.
        def poisoned(config):  # pragma: no cover - must never run
            raise AssertionError("cache miss: a run was re-executed")

        monkeypatch.setattr(runner_module, "execute_run", poisoned)
        second = run_sweep(spec, cache=cache, workers=1)
        assert second.executed == 0
        assert second.cached == spec.size

        table = aggregate_table(spec, first.records).render()
        assert aggregate_table(spec, second.records).render() == table

    def test_partial_cache_runs_only_misses(self, tmp_path):
        spec = small_spec()
        cache = RunCache(tmp_path / "runs")
        configs = spec.expand()
        cache.put(configs[0].as_dict(), execute_run(configs[0]))
        report = run_sweep(spec, cache=cache)
        assert report.cached == 1
        assert report.executed == spec.size - 1

    def test_corrupt_cache_entry_reexecuted_and_repaired(self, tmp_path):
        spec = small_spec()
        cache = RunCache(tmp_path / "runs")
        run_sweep(spec, cache=cache)
        victim = cache.path_for(spec.expand()[0].as_dict())
        victim.write_text("{corrupt")
        report = run_sweep(spec, cache=cache)
        assert report.executed == 1
        assert cache.get(spec.expand()[0].as_dict()) is not None

    def test_cache_hits_across_overlapping_sweeps(self, tmp_path):
        cache = RunCache(tmp_path / "runs")
        run_sweep(small_spec(grid={"n": [100, 200]}), cache=cache)
        report = run_sweep(small_spec(grid={"n": [200, 300]}), cache=cache)
        assert report.cached == 2  # the n=200 runs carried over
        assert report.executed == 2

    def test_negative_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            run_sweep(small_spec(), workers=-2)

    def test_echo_reports_cache_state(self, tmp_path):
        lines: list[str] = []
        run_sweep(small_spec(), cache=RunCache(tmp_path / "r"), echo=lines.append)
        assert any("4 to run" in line for line in lines)

    def test_summary_mentions_counts(self):
        report = run_sweep(small_spec())
        assert "4 runs" in report.summary()
        assert "4 executed" in report.summary()


class TestMapSubstreams:
    def test_matches_manual_loop(self):
        rngs = RngRegistry(11)
        values = map_substreams(lambda rng: float(rng.random()), rngs, "p", 3)
        manual = [float(RngRegistry(11).stream(f"p/{i}").random()) for i in range(3)]
        assert values == manual

    def test_order_independent_of_prior_draws(self):
        # Drawing from unrelated streams first must not perturb results.
        rngs = RngRegistry(11)
        rngs.stream("noise").random(100)
        values = map_substreams(lambda rng: float(rng.random()), rngs, "p", 3)
        fresh = map_substreams(
            lambda rng: float(rng.random()), RngRegistry(11), "p", 3
        )
        assert values == fresh

    def test_bad_repetitions_rejected(self):
        with pytest.raises(ConfigurationError):
            map_substreams(lambda rng: None, RngRegistry(0), "p", 0)

    def test_experiments_repeat_delegates_here(self):
        values = repeat(lambda rng: float(rng.random()), RngRegistry(5), "x", 2)
        assert values == map_substreams(
            lambda rng: float(rng.random()), RngRegistry(5), "x", 2
        )


class TestRunExperiments:
    def test_cache_round_trip_renders_identically(self, tmp_path):
        cache = RunCache(tmp_path / "runs")
        fresh = run_experiments(["fig1"], quick=True, seed=0, cache=cache)
        cached = run_experiments(["fig1"], quick=True, seed=0, cache=cache)
        assert not fresh[0].cached and cached[0].cached
        assert (
            cached[0].result.render(plot=False) == fresh[0].result.render(plot=False)
        )
        assert cached[0].result.render_markdown() == fresh[0].result.render_markdown()

    def test_experiment_config_includes_version(self):
        import repro

        config = experiment_config("fig1", quick=True, seed=0)
        assert config["version"] == repro.__version__
        assert config["kind"] == "experiment"
