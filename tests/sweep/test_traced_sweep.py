"""Tests for the traced-sweep path (``--trace`` through the runner)."""

from __future__ import annotations

import json

import pytest

import repro.sweep.targets as targets_module
from repro.errors import ConfigurationError
from repro.sweep.cache import RunCache
from repro.sweep.runner import execute_run, run_sweep
from repro.sweep.spec import SweepSpec
from repro.sweep.targets import target_traceable, validate_target_params


def small_spec(**overrides) -> SweepSpec:
    settings = dict(
        target="single_leader",
        base={"n": 60, "k": 2, "max_time": 400.0},
        grid={"alpha": [1.5, 2.0]},
        repetitions=1,
        seed=3,
    )
    settings.update(overrides)
    return SweepSpec(**settings)


@pytest.fixture
def untraceable_target():
    """Temporarily register a target without a ``tracer`` keyword."""
    name = "untraceable-test-target"

    @targets_module.register_target(name, {"n": 4})
    def _target(params, rng):
        return {"n": params.get("n", 4)}

    yield name
    targets_module._TARGETS.pop(name)
    targets_module._TARGET_TRACEABLE.pop(name)


class TestExecuteRunTraced:
    def test_writes_trace_and_counts_records(self, tmp_path):
        config = small_spec().expand()[0]
        trace_path = tmp_path / "run.jsonl"
        record = execute_run(config, str(trace_path))
        lines = trace_path.read_text().splitlines()
        assert json.loads(lines[0])["kind"] == "run"
        assert json.loads(lines[-1])["kind"] == "end"
        assert record["trace_records"] == len(lines)

    def test_traced_record_matches_untraced(self, tmp_path):
        """Tracing must not perturb the simulation itself."""
        config = small_spec().expand()[0]
        untraced = execute_run(config)
        traced = execute_run(config, str(tmp_path / "run.jsonl"))
        for volatile in ("wall_time", "trace_records"):
            untraced.pop(volatile, None)
            traced.pop(volatile, None)
        assert untraced == traced

    def test_untraceable_target_rejected(self, tmp_path, untraceable_target):
        assert not target_traceable(untraceable_target)
        config = {"target": untraceable_target, "params": {}, "seed": 0, "rep": 0}
        with pytest.raises(ConfigurationError, match="does not accept a tracer"):
            execute_run(config, str(tmp_path / "run.jsonl"))


class TestRunSweepTraced:
    def test_one_trace_file_per_config(self, tmp_path):
        spec = small_spec()
        report = run_sweep(spec, trace_dir=str(tmp_path / "traces"))
        paths = sorted((tmp_path / "traces").glob("*.jsonl"))
        assert len(paths) == len(report.configs)
        for index, (path, config) in enumerate(zip(paths, report.configs)):
            assert path.name == f"{index:04d}-{config.target}-{config.digest[:12]}.jsonl"
            assert path.stat().st_size > 0

    def test_traced_sweep_bypasses_cache(self, tmp_path):
        spec = small_spec()
        cache = RunCache(tmp_path / "cache")
        warm = run_sweep(spec, cache=cache)
        assert warm.executed == len(warm.configs)
        # warm cache, but tracing forces execution and stores nothing new
        entries_before = cache.stats().entries
        report = run_sweep(spec, cache=cache, trace_dir=str(tmp_path / "traces"))
        assert report.executed == len(report.configs)
        assert report.cached == 0
        assert cache.stats().entries == entries_before
        # and the untraced rerun still hits the warm cache
        replay = run_sweep(spec, cache=cache)
        assert replay.executed == 0

    def test_untraceable_spec_rejected_before_running(self, tmp_path, untraceable_target):
        spec = SweepSpec(target=untraceable_target, base={}, grid={"n": [2, 3]}, seed=0)
        with pytest.raises(ConfigurationError, match="does not accept a tracer"):
            run_sweep(spec, trace_dir=str(tmp_path / "traces"))

    def test_parallel_traced_sweep_writes_all_files(self, tmp_path):
        spec = small_spec(repetitions=2)
        report = run_sweep(spec, workers=2, trace_dir=str(tmp_path / "traces"))
        assert len(list((tmp_path / "traces").glob("*.jsonl"))) == len(report.configs)


class TestUpfrontValidation:
    def test_multileader_clustered_fails_at_spec_time(self):
        """The won't-fix combination dies before any run launches."""
        spec = SweepSpec(
            target="multileader",
            base={"n": 40, "k": 2, "alpha": 2.0, "init": "clustered"},
            grid={"clusters": [2, 4]},
            seed=0,
        )
        with pytest.raises(ConfigurationError, match="rebuilds its population"):
            run_sweep(spec)

    def test_validate_target_params_direct(self):
        with pytest.raises(ConfigurationError, match="rebuilds its population"):
            validate_target_params("multileader", {"init": "clustered"})
        merged = validate_target_params("multileader", {"init": "biased"})
        assert merged["init"] == "biased"

    def test_unknown_axis_fails_upfront(self):
        spec = small_spec(grid={"not_an_axis": [1, 2]})
        with pytest.raises(ConfigurationError):
            run_sweep(spec)
