"""Tests for record aggregation into tables."""

from __future__ import annotations

import pytest

from repro.analysis.records import field_values, numeric_fields, rate, summarize_field
from repro.errors import ConfigurationError
from repro.sweep.aggregate import NON_AGGREGATED_FIELDS, aggregate_table, group_records
from repro.sweep.spec import SweepSpec


def records_for(spec: SweepSpec, base: float = 0.0) -> list[dict]:
    return [
        {
            "elapsed": base + index,
            "wall_time": 0.123 + index,  # must never reach a table
            "winner": index % 2,
            "converged": True,
            "plurality_won": index % 2 == 0,
        }
        for index in range(spec.size)
    ]


class TestGroupRecords:
    def test_groups_by_point_in_order(self):
        spec = SweepSpec(target="t", grid={"n": [1, 2]}, repetitions=2)
        groups = group_records(spec, records_for(spec))
        assert [point for point, _ in groups] == [{"n": 1}, {"n": 2}]
        assert [r["elapsed"] for r in groups[0][1]] == [0.0, 1.0]
        assert [r["elapsed"] for r in groups[1][1]] == [2.0, 3.0]

    def test_size_mismatch_rejected(self):
        spec = SweepSpec(target="t", grid={"n": [1, 2]}, repetitions=2)
        with pytest.raises(ConfigurationError, match="expected 4 records"):
            group_records(spec, records_for(spec)[:-1])


class TestAggregateTable:
    def test_rows_and_headers(self):
        spec = SweepSpec(target="t", grid={"n": [1, 2]}, repetitions=2, seed=5)
        table = aggregate_table(spec, records_for(spec))
        assert table.headers[0] == "n"
        assert "runs" in table.headers
        assert "elapsed" in table.headers
        assert "plurality_won rate" in table.headers
        assert table.rows[0][:2] == [1, 2]  # point n=1, two runs
        assert "seed=5" in table.title

    def test_excluded_fields_never_surface(self):
        spec = SweepSpec(target="t", grid={"n": [1, 2]}, repetitions=2)
        table = aggregate_table(spec, records_for(spec))
        for name in NON_AGGREGATED_FIELDS:
            assert all(name not in header for header in table.headers)

    def test_boolean_fields_become_rates(self):
        spec = SweepSpec(target="t", grid={"n": [1]}, repetitions=4)
        table = aggregate_table(spec, records_for(spec))
        row = dict(zip(table.headers, table.rows[0]))
        assert row["converged rate"] == 1.0
        assert row["plurality_won rate"] == 0.5

    def test_none_values_skipped_in_means(self):
        spec = SweepSpec(target="t", grid={"n": [1]}, repetitions=2)
        records = [{"epsilon_time": 4.0}, {"epsilon_time": None}]
        table = aggregate_table(spec, records)
        row = dict(zip(table.headers, table.rows[0]))
        assert row["epsilon_time"] == 4.0

    def test_renders_through_table_machinery(self):
        spec = SweepSpec(target="t", grid={"n": [1]}, repetitions=1)
        rendered = aggregate_table(spec, [{"elapsed": 2.0}]).render()
        assert "sweep: t" in rendered
        assert "elapsed" in rendered


class TestRecordHelpers:
    RECORDS = [
        {"elapsed": 10.0, "plurality_won": True},
        {"elapsed": 14.0, "plurality_won": False},
        {"elapsed": None, "plurality_won": True},
    ]

    def test_field_values_skips_none(self):
        assert field_values(self.RECORDS, "elapsed") == [10.0, 14.0]

    def test_field_values_rejects_non_numeric(self):
        with pytest.raises(ConfigurationError):
            field_values([{"x": "text"}], "x")

    def test_summarize_field(self):
        assert summarize_field(self.RECORDS, "elapsed").mean == 12.0
        assert summarize_field(self.RECORDS, "missing") is None

    def test_rate_counts_missing_in_denominator(self):
        assert rate(self.RECORDS, "plurality_won") == pytest.approx(2 / 3)
        with pytest.raises(ConfigurationError):
            rate([], "plurality_won")

    def test_numeric_fields_order_and_exclude(self):
        records = [{"a": 1, "s": "text", "b": 2.0}, {"c": True, "a": 3}]
        assert numeric_fields(records) == ["a", "b", "c"]
        assert numeric_fields(records, exclude=("b",)) == ["a", "c"]
