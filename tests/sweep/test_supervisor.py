"""Unit tests for the sweep supervision layer (no process pools here).

Policy validation, deterministic backoff, failure serialization, and
the manifest's atomic state machine — the pool-driven fault paths live
in ``tests/chaos/``.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.sweep.spec import SweepSpec
from repro.sweep.supervisor import (
    MANIFEST_NAME,
    RunFailure,
    SupervisorPolicy,
    SweepManifest,
    backoff_delay,
    failure_table,
)

SPEC = SweepSpec(
    target="synchronous",
    base={"k": 2, "alpha": 2.0},
    grid={"n": [200, 400]},
    repetitions=2,
    seed=3,
)


class TestSupervisorPolicy:
    def test_defaults_are_valid(self):
        policy = SupervisorPolicy()
        assert policy.attempts == policy.max_retries + 1
        assert policy.run_timeout is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"run_timeout": 0.0},
            {"run_timeout": -5.0},
            {"jitter": 1.5},
            {"jitter": -0.1},
        ],
    )
    def test_rejects_bad_fields(self, kwargs):
        with pytest.raises(ConfigurationError):
            SupervisorPolicy(**kwargs)


class TestBackoffDelay:
    POLICY = SupervisorPolicy(backoff_base=1.0, backoff_factor=2.0, backoff_max=8.0)

    def test_first_attempt_waits_nothing(self):
        assert backoff_delay(self.POLICY, "digest", 1) == 0.0

    def test_deterministic(self):
        a = backoff_delay(self.POLICY, "digest", 3)
        b = backoff_delay(self.POLICY, "digest", 3)
        assert a == b

    def test_jitter_stays_within_band(self):
        for attempt in (2, 3, 4):
            base = min(8.0, 1.0 * 2.0 ** (attempt - 2))
            delay = backoff_delay(self.POLICY, "some-digest", attempt)
            assert base * 0.5 <= delay <= base * 1.5

    def test_different_digests_desynchronize(self):
        delays = {backoff_delay(self.POLICY, f"digest-{i}", 3) for i in range(8)}
        assert len(delays) > 1

    def test_cap_applies(self):
        policy = SupervisorPolicy(
            backoff_base=1.0, backoff_factor=10.0, backoff_max=2.0, jitter=0.0
        )
        assert backoff_delay(policy, "d", 6) == 2.0


class TestRunFailure:
    FAILURE = RunFailure(
        index=4,
        digest="abc123",
        target="synchronous",
        params={"n": 100},
        kind="timeout",
        error="run exceeded budget\nsecond line",
        attempts=3,
    )

    def test_round_trip(self):
        assert RunFailure.from_dict(self.FAILURE.to_dict()) == self.FAILURE

    def test_summary_row_uses_last_error_line(self):
        row = self.FAILURE.summary_row()
        assert row[0] == 4 and row[2] == "timeout" and row[4] == "second line"

    def test_failure_table_renders(self):
        table = failure_table([self.FAILURE])
        rendered = table.render()
        assert "failed runs (1)" in rendered
        assert "timeout" in rendered


class TestSweepManifest:
    def test_create_marks_everything_pending(self, tmp_path):
        manifest = SweepManifest.create(tmp_path / "state", SPEC)
        assert (tmp_path / "state" / MANIFEST_NAME).exists()
        assert all(entry["state"] == "pending" for entry in manifest.entries)
        assert len(manifest.entries) == len(SPEC.expand())

    def test_load_round_trips(self, tmp_path):
        SweepManifest.create(tmp_path, SPEC)
        loaded = SweepManifest.load(tmp_path)
        assert loaded.spec.to_dict() == SPEC.to_dict()
        assert [e["digest"] for e in loaded.entries] == [
            c.digest for c in SPEC.expand()
        ]

    def test_transitions_persist(self, tmp_path):
        manifest = SweepManifest.create(tmp_path, SPEC)
        manifest.mark_running([0, 1])
        manifest.mark_done(0, {"value": 1.0})
        manifest.mark_failed(1, kind="crash", error="boom", permanent=False)
        manifest.mark_failed(2, kind="error", error="bad", permanent=True)
        loaded = SweepManifest.load(tmp_path)
        assert loaded.state(0) == "done" and loaded.record(0) == {"value": 1.0}
        assert loaded.state(1) == "failed" and loaded.attempts(1) == 1
        assert loaded.state(2) == "permanently-failed"
        assert loaded.done_indices() == [0]

    def test_missing_manifest_fails_loudly(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no readable sweep manifest"):
            SweepManifest.load(tmp_path / "nowhere")

    def test_corrupt_manifest_names_the_path(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(ConfigurationError, match="corrupt") as excinfo:
            SweepManifest.load(tmp_path)
        assert MANIFEST_NAME in str(excinfo.value)

    def test_wrong_version_rejected(self, tmp_path):
        manifest = SweepManifest.create(tmp_path, SPEC)
        payload = manifest.to_dict()
        payload["version"] = 999
        (tmp_path / MANIFEST_NAME).write_text(json.dumps(payload))
        with pytest.raises(ConfigurationError, match="unsupported"):
            SweepManifest.load(tmp_path)

    def test_digest_mismatch_rejected(self, tmp_path):
        manifest = SweepManifest.create(tmp_path, SPEC)
        manifest.entries[0]["digest"] = "0" * 64
        manifest.write()
        with pytest.raises(ConfigurationError, match="does not match"):
            SweepManifest.load(tmp_path)

    def test_open_resume_rejects_a_different_sweep(self, tmp_path):
        SweepManifest.create(tmp_path, SPEC)
        other = SweepSpec(
            target="synchronous", base={"k": 2, "alpha": 2.0},
            grid={"n": [999]}, repetitions=1, seed=3,
        )
        with pytest.raises(ConfigurationError, match="different sweep"):
            SweepManifest.open(tmp_path, other, resume=True)

    def test_open_fresh_requires_a_spec(self, tmp_path):
        with pytest.raises(ConfigurationError, match="spec is required"):
            SweepManifest.open(tmp_path, None, resume=False)

    def test_write_is_atomic_no_tmp_left(self, tmp_path):
        manifest = SweepManifest.create(tmp_path, SPEC)
        manifest.mark_done(0, {"value": 2.0})
        assert list(tmp_path.glob("*.tmp")) == []
