"""Tests for sweep specs: grid expansion, hashing, CLI parsing."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.sweep.spec import (
    RunConfig,
    SweepSpec,
    canonical_json,
    coerce_scalar,
    config_digest,
    parse_grid,
    parse_overrides,
)


class TestCanonicalJson:
    def test_sorts_keys(self):
        assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'

    def test_digest_stable_across_dict_ordering(self):
        first = {"target": "t", "params": {"n": 5, "k": 2}, "seed": 0, "rep": 1}
        second = {"rep": 1, "seed": 0, "params": {"k": 2, "n": 5}, "target": "t"}
        assert config_digest(first) == config_digest(second)

    def test_digest_sensitive_to_values(self):
        base = {"target": "t", "params": {"n": 5}, "seed": 0, "rep": 0}
        changed = {**base, "seed": 1}
        assert config_digest(base) != config_digest(changed)

    def test_nested_dicts_sorted_too(self):
        assert canonical_json({"p": {"z": 1, "a": 2}}) == '{"p":{"a":2,"z":1}}'

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            canonical_json({"x": float("nan")})


class TestCoercion:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("4", 4),
            ("-3", -3),
            ("0.5", 0.5),
            ("1e3", 1000.0),
            ("true", True),
            ("False", False),
            ("none", None),
            ("adaptive", "adaptive"),
        ],
    )
    def test_scalars(self, text, expected):
        assert coerce_scalar(text) == expected

    def test_int_stays_int(self):
        assert isinstance(coerce_scalar("4"), int)

    def test_parse_grid(self):
        assert parse_grid(["n=500,1000", "gamma=0.4,0.5"]) == {
            "n": [500, 1000],
            "gamma": [0.4, 0.5],
        }

    def test_parse_grid_duplicate_key_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_grid(["n=1", "n=2"])

    @pytest.mark.parametrize("bad", ["n", "=5", "n=", ""])
    def test_parse_grid_malformed_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            parse_grid([bad])

    @pytest.mark.parametrize("bad", ["n=100,200,", "n=100,,200", "n=,100"])
    def test_parse_grid_empty_tokens_rejected(self, bad):
        with pytest.raises(ConfigurationError, match="empty value"):
            parse_grid([bad])

    def test_parse_overrides(self):
        assert parse_overrides(["alpha=2.0", "schedule=fixed"]) == {
            "alpha": 2.0,
            "schedule": "fixed",
        }


class TestSweepSpec:
    def test_expand_order_point_major_rep_minor(self):
        spec = SweepSpec(
            target="t", base={"k": 2}, grid={"n": [10, 20]}, repetitions=2, seed=7
        )
        expanded = [(c.params_dict["n"], c.rep) for c in spec.expand()]
        assert expanded == [(10, 0), (10, 1), (20, 0), (20, 1)]
        assert spec.size == 4

    def test_grid_cross_product(self):
        spec = SweepSpec(target="t", grid={"a": [1, 2], "b": [3, 4, 5]})
        assert spec.size == 6
        assert len(spec.points()) == 6

    def test_no_grid_is_single_point(self):
        spec = SweepSpec(target="t", base={"n": 5}, repetitions=3)
        assert spec.size == 3
        assert spec.points() == [{}]

    def test_base_grid_collision_rejected(self):
        with pytest.raises(ConfigurationError, match="both base and grid"):
            SweepSpec(target="t", base={"n": 5}, grid={"n": [1, 2]})

    def test_bad_repetitions_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepSpec(target="t", repetitions=0)

    def test_negative_seed_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepSpec(target="t", seed=-1)

    def test_empty_grid_values_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepSpec(target="t", grid={"n": []})

    def test_non_scalar_value_rejected(self):
        with pytest.raises(ConfigurationError, match="JSON scalar"):
            SweepSpec(target="t", base={"n": [1, 2]})

    def test_name_defaults_to_target(self):
        assert SweepSpec(target="t").name == "t"
        assert SweepSpec(target="t", name="label").name == "label"


class TestRunConfig:
    def test_dict_round_trip(self):
        config = SweepSpec(target="t", base={"n": 5}, repetitions=2, seed=9).expand()[1]
        assert RunConfig.from_dict(config.as_dict()) == config

    def test_stream_is_content_keyed(self):
        spec = SweepSpec(target="t", base={"n": 5}, repetitions=2)
        first, second = spec.expand()
        assert first.stream != second.stream  # rep participates
        again = SweepSpec(target="t", base={"n": 5}, repetitions=2).expand()[0]
        assert again.stream == first.stream

    def test_as_dict_keyed_by_library_version(self):
        # A code upgrade must invalidate cached run records.
        import repro

        config = SweepSpec(target="t", base={"n": 5}).expand()[0]
        assert config.as_dict()["version"] == repro.__version__
        # ...but randomness is a contract of (seed, config) only.
        assert repro.__version__ not in config.stream

    def test_digest_distinguishes_target_seed_rep(self):
        base = SweepSpec(target="t", base={"n": 5}).expand()[0]
        other_target = SweepSpec(target="u", base={"n": 5}).expand()[0]
        other_seed = SweepSpec(target="t", base={"n": 5}, seed=1).expand()[0]
        digests = {base.digest, other_target.digest, other_seed.digest}
        assert len(digests) == 3
