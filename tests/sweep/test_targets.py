"""Tests for the sweep target registry and built-in targets."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.sweep.targets import get_target, register_target, target_names

REQUIRED_KEYS = {"converged", "plurality_won", "winner", "elapsed", "generations"}


class TestRegistry:
    def test_builtin_targets_present(self):
        names = target_names()
        for expected in ("synchronous", "single_leader", "multileader", "voter"):
            assert expected in names

    def test_unknown_target_raises_with_list(self):
        with pytest.raises(ConfigurationError, match="single_leader"):
            get_target("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_target("synchronous")(lambda params, rng: {})


class TestBuiltinTargets:
    def test_synchronous_record_shape(self, rng):
        record = get_target("synchronous")({"n": 300, "k": 2, "alpha": 2.0}, rng)
        assert REQUIRED_KEYS <= set(record)
        assert record["plurality_won"] in (True, False)

    def test_synchronous_adaptive_schedule(self, rng):
        record = get_target("synchronous")(
            {"n": 300, "k": 2, "alpha": 2.0, "schedule": "adaptive", "gamma": 0.4}, rng
        )
        assert record["converged"]

    def test_synchronous_unknown_schedule_rejected(self, rng):
        with pytest.raises(ConfigurationError, match="unknown schedule"):
            get_target("synchronous")({"n": 100, "k": 2, "schedule": "nope"}, rng)

    def test_unknown_parameter_rejected(self, rng):
        with pytest.raises(ConfigurationError, match="unknown sweep parameter"):
            get_target("synchronous")({"n": 100, "latencyrate": 2.0}, rng)

    def test_single_leader_record_has_units_and_events(self, rng):
        record = get_target("single_leader")({"n": 200, "k": 2, "alpha": 2.0}, rng)
        assert REQUIRED_KEYS <= set(record)
        assert record["events"] > 0
        # C1 (steps per unit) > 1, so time in units is below time in steps.
        assert 0 < record["elapsed_units"] < record["elapsed"]

    @pytest.mark.parametrize("law", ["constant", "gamma"])
    def test_single_leader_latency_laws(self, law, rng):
        record = get_target("single_leader")(
            {"n": 200, "k": 2, "alpha": 2.0, "latency": law}, rng
        )
        assert record["elapsed"] > 0

    def test_single_leader_unknown_latency_rejected(self, rng):
        with pytest.raises(ConfigurationError, match="unknown latency law"):
            get_target("single_leader")({"n": 200, "k": 2, "latency": "pareto"}, rng)

    def test_multileader_record_has_clusters(self, rng):
        record = get_target("multileader")({"n": 300, "k": 2, "alpha": 2.0}, rng)
        assert REQUIRED_KEYS <= set(record)
        assert record["clusters"] >= 1

    @pytest.mark.parametrize(
        "name", ["voter", "two_choices", "three_majority", "undecided"]
    )
    def test_baseline_targets_run(self, name, rng):
        record = get_target(name)({"n": 200, "k": 2, "alpha": 3.0}, rng)
        assert REQUIRED_KEYS <= set(record)

    def test_epsilon_threads_through(self, rng):
        record = get_target("synchronous")(
            {"n": 300, "k": 2, "alpha": 2.0, "epsilon": 0.05}, rng
        )
        assert record["epsilon_time"] is not None
