"""Shared fixtures: deterministic RNG streams for every test."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.rng import RngRegistry


@pytest.fixture()
def rngs() -> RngRegistry:
    """A fresh registry with a fixed root seed per test."""
    return RngRegistry(123456789)


@pytest.fixture()
def rng(rngs: RngRegistry) -> np.random.Generator:
    """A single generic stream for tests that need just one."""
    return rngs.stream("test")
