"""Shared fixtures: deterministic RNG streams for every test.

Also the tier-1 duration report: every run prints a final
``TIER1-DURATION: <seconds>`` line so the wall-time budget of the
default suite is visible in local runs and greppable in CI logs (the
tier-1 job pins it under its budget shell-side).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.engine.rng import RngRegistry

_SESSION_START = time.monotonic()


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    elapsed = time.monotonic() - _SESSION_START
    terminalreporter.write_line(f"TIER1-DURATION: {elapsed:.2f}s")


@pytest.fixture()
def rngs() -> RngRegistry:
    """A fresh registry with a fixed root seed per test."""
    return RngRegistry(123456789)


@pytest.fixture()
def rng(rngs: RngRegistry) -> np.random.Generator:
    """A single generic stream for tests that need just one."""
    return rngs.stream("test")
