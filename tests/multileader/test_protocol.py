"""End-to-end test for the full decentralized protocol (Theorem 26)."""

from __future__ import annotations

import pytest

from repro.engine.rng import RngRegistry
from repro.multileader.params import MultiLeaderParams
from repro.multileader.protocol import run_multileader
from repro.workloads.opinions import biased_counts


class TestFullProtocol:
    @pytest.fixture()
    def params(self) -> MultiLeaderParams:
        return MultiLeaderParams(n=700, k=3, alpha0=2.5)

    def test_end_to_end_consensus(self, params, rngs):
        counts = biased_counts(params.n, params.k, 2.5)
        result = run_multileader(
            params, counts, rngs.stream("full"), max_time=4000.0, epsilon=0.05
        )
        assert result.converged
        assert result.plurality_won
        # Clustering accounting flows into the combined result.
        assert result.info["clustering_time"] > 0
        assert 0.5 < result.info["clustered_fraction"] <= 1.0
        assert result.info["clusters"] >= 1
        assert result.elapsed > result.info["clustering_time"]

    def test_epsilon_time_includes_clustering_offset(self, params, rngs):
        counts = biased_counts(params.n, params.k, 2.5)
        result = run_multileader(
            params, counts, rngs.stream("full2"), max_time=4000.0, epsilon=0.05
        )
        assert result.epsilon_convergence_time is not None
        assert result.epsilon_convergence_time >= result.info["clustering_time"]

    def test_deterministic_replay(self, params):
        counts = biased_counts(params.n, params.k, 2.5)
        first = run_multileader(params, counts, RngRegistry(4).stream("r"), max_time=4000.0)
        second = run_multileader(params, counts, RngRegistry(4).stream("r"), max_time=4000.0)
        assert first.elapsed == second.elapsed
        assert first.winner == second.winner
