"""Integration tests for Algorithms 4+5 (multi-leader consensus)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.rng import RngRegistry
from repro.errors import ConfigurationError
from repro.multileader.clustering import ideal_clustering
from repro.multileader.consensus import MultiLeaderConsensusSim, run_multileader_consensus
from repro.multileader.params import MultiLeaderParams
from repro.workloads.opinions import biased_counts


@pytest.fixture()
def params() -> MultiLeaderParams:
    return MultiLeaderParams(n=600, k=3, alpha0=2.5)


@pytest.fixture()
def clustering(params):
    return ideal_clustering(params.n, params.target_cluster_size)


class TestValidation:
    def test_counts_size_checked(self, params, clustering, rng):
        with pytest.raises(ConfigurationError):
            MultiLeaderConsensusSim(params, clustering, biased_counts(500, 3, 2.5), rng)

    def test_clustering_size_checked(self, params, rng):
        wrong = ideal_clustering(300, 30)
        with pytest.raises(ConfigurationError):
            MultiLeaderConsensusSim(params, wrong, biased_counts(600, 3, 2.5), rng)


class TestConvergence:
    def test_full_consensus_plurality_wins(self, params, clustering, rngs):
        counts = biased_counts(params.n, params.k, 2.5)
        result = run_multileader_consensus(
            params, clustering, counts, rngs.stream("mlc"), max_time=3000.0
        )
        assert result.converged
        assert result.plurality_won

    def test_epsilon_time_recorded(self, params, clustering, rngs):
        counts = biased_counts(params.n, params.k, 2.5)
        result = run_multileader_consensus(
            params, clustering, counts, rngs.stream("mlc2"), max_time=3000.0, epsilon=0.05
        )
        assert result.epsilon_convergence_time is not None
        assert result.epsilon_convergence_time <= result.elapsed

    def test_deterministic_replay(self, params, clustering):
        counts = biased_counts(params.n, params.k, 2.5)
        first = run_multileader_consensus(
            params, clustering, counts, RngRegistry(9).stream("d"), max_time=2000.0
        )
        second = run_multileader_consensus(
            params, clustering, counts, RngRegistry(9).stream("d"), max_time=2000.0
        )
        assert first.elapsed == second.elapsed
        assert (first.final_color_counts == second.final_color_counts).all()

    def test_inactive_members_still_converge_via_finished_push(self, params, rngs):
        """Nodes outside active clusters receive the final color by pushes."""
        # Build a clustering with one inactive block: mark 20% unclustered.
        clustering = ideal_clustering(params.n, params.target_cluster_size)
        cut = int(0.8 * params.n)
        clustering.leader_of[cut:] = -1
        clustering.active_leaders = [l for l in clustering.active_leaders if l < cut]
        counts = biased_counts(params.n, params.k, 2.5)
        result = run_multileader_consensus(
            params, clustering, counts, rngs.stream("push"), max_time=4000.0
        )
        assert result.converged
        assert result.plurality_won


class TestInvariants:
    def test_matrix_conservation_and_leader_cap(self, params, clustering, rngs):
        counts = biased_counts(params.n, params.k, 2.5)
        sim = MultiLeaderConsensusSim(params, clustering, counts, rngs.stream("inv"))
        for _ in range(30):
            sim.sim.run(max_events=4000)
            assert sim.matrix.sum() == params.n
            assert (sim.matrix >= 0).all()
            max_leader_gen = max(state.gen for state in sim.leaders.values())
            assert int(sim.gens.max()) <= max_leader_gen
            if not sim.sim.queue:
                break

    def test_phase_table_structure(self, params, clustering, rngs):
        counts = biased_counts(params.n, params.k, 2.5)
        sim = MultiLeaderConsensusSim(params, clustering, counts, rngs.stream("pt"))
        sim.run(max_time=2000.0)
        table = sim.leader_phase_table()
        assert table, "no leader transitions recorded"
        for generation, states in table.items():
            assert generation >= 1
            for state, leaders in states.items():
                assert state in (1, 2, 3)
                for leader, time in leaders.items():
                    assert leader in sim.leaders
                    assert time >= 0.0

    def test_finished_flag_spreads(self, params, clustering, rngs):
        counts = biased_counts(params.n, params.k, 2.5)
        sim = MultiLeaderConsensusSim(params, clustering, counts, rngs.stream("fin"))
        result = sim.run(max_time=3000.0)
        assert result.converged
        assert bool(sim.finished.any())
