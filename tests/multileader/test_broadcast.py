"""Tests for leader-overlay broadcast (Section 4.2 / Theorem 28)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.multileader.broadcast import BroadcastSim, run_broadcast
from repro.multileader.clustering import ideal_clustering
from repro.multileader.params import MultiLeaderParams


@pytest.fixture()
def params() -> MultiLeaderParams:
    return MultiLeaderParams(n=1200, k=2, alpha0=2.0)


@pytest.fixture()
def clustering(params):
    return ideal_clustering(params.n, params.target_cluster_size)


class TestBroadcast:
    def test_completes_and_informs_all(self, params, clustering, rngs):
        result = run_broadcast(params, clustering, rngs.stream("b"))
        assert result.completed
        assert result.informed_leaders == result.total_leaders

    def test_trajectory_monotone(self, params, clustering, rngs):
        result = run_broadcast(params, clustering, rngs.stream("b2"))
        counts = [count for _, count in result.informed_trajectory]
        assert counts[0] == 1
        assert all(b > a for a, b in zip(counts, counts[1:]))
        assert counts[-1] == result.total_leaders

    def test_completion_is_fast(self, params, clustering, rngs):
        result = run_broadcast(params, clustering, rngs.stream("b3"))
        # Theorem 28: O(1) time units; allow a generous constant.
        assert result.all_informed_time < 3.0 * params.time_unit

    def test_custom_source(self, params, clustering, rngs):
        source = clustering.active_leaders[-1]
        result = run_broadcast(params, clustering, rngs.stream("b4"), source=source)
        assert result.completed

    def test_invalid_source_rejected(self, params, clustering, rngs):
        with pytest.raises(ConfigurationError):
            BroadcastSim(params, clustering, rngs.stream("b5"), source=7777)

    def test_time_budget_respected(self, params, clustering, rngs):
        result = BroadcastSim(params, clustering, rngs.stream("b6")).run(max_time=0.001)
        assert not result.completed or result.all_informed_time <= 0.001

    def test_size_mismatch_rejected(self, params, rngs):
        wrong = ideal_clustering(500, 25)
        with pytest.raises(ConfigurationError):
            BroadcastSim(params, wrong, rngs.stream("b7"))
