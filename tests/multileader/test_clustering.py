"""Tests for the clustering phase (Section 4.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.multileader.clustering import Clustering, ClusteringSim, ideal_clustering
from repro.multileader.params import MultiLeaderParams


class TestIdealClustering:
    def test_partition_covers_everyone(self):
        clustering = ideal_clustering(100, 10)
        assert clustering.clustered_fraction == 1.0
        assert clustering.active_fraction == 1.0
        assert len(clustering.active_leaders) == 10

    def test_runt_cluster_folded(self):
        clustering = ideal_clustering(105, 10)
        sizes = clustering.cluster_sizes()
        assert sum(sizes.values()) == 105
        assert min(sizes.values()) >= 10

    def test_leaders_point_to_themselves(self):
        clustering = ideal_clustering(60, 15)
        for leader in clustering.leaders:
            assert clustering.leader_of[leader] == leader

    def test_cluster_size_exceeding_n_rejected(self):
        with pytest.raises(ConfigurationError):
            ideal_clustering(5, 10)

    def test_switch_spread_zero_for_ideal(self):
        assert ideal_clustering(100, 10).switch_spread == 0.0


class TestClusteringSim:
    @pytest.fixture()
    def params(self) -> MultiLeaderParams:
        return MultiLeaderParams(n=800, k=2, alpha0=2.0)

    def test_produces_valid_clustering(self, params, rngs):
        clustering = ClusteringSim(params, rngs.stream("c")).run(max_time=300.0)
        assert isinstance(clustering, Clustering)
        assert clustering.n == 800
        # Every assignment points at a real leader.
        leaders = set(clustering.leaders)
        for node in range(800):
            target = int(clustering.leader_of[node])
            assert target == -1 or target in leaders

    def test_cluster_sizes_capped(self, params, rngs):
        clustering = ClusteringSim(params, rngs.stream("c2")).run(max_time=300.0)
        sizes = clustering.cluster_sizes()
        assert max(sizes.values()) <= params.max_cluster_size

    def test_active_clusters_meet_minimum(self, params, rngs):
        clustering = ClusteringSim(params, rngs.stream("c3")).run(max_time=300.0)
        sizes = clustering.cluster_sizes()
        for leader in clustering.active_leaders:
            assert sizes[leader] >= params.min_active_size

    def test_most_nodes_clustered(self, params, rngs):
        clustering = ClusteringSim(params, rngs.stream("c4")).run(max_time=300.0)
        assert clustering.clustered_fraction > 0.75
        assert clustering.active_fraction > 0.6

    def test_switch_times_only_for_active(self, params, rngs):
        clustering = ClusteringSim(params, rngs.stream("c5")).run(max_time=300.0)
        assert set(clustering.switch_times) == set(clustering.active_leaders)
        assert clustering.switch_spread >= 0.0

    def test_trajectory_monotone(self, params, rngs):
        sim = ClusteringSim(params, rngs.stream("c6"))
        sim.run(max_time=300.0)
        fractions = [f for _, f in sim.clustered_trajectory]
        assert all(b >= a for a, b in zip(fractions, fractions[1:]))

    def test_deterministic_replay(self, params):
        from repro.engine.rng import RngRegistry

        first = ClusteringSim(params, RngRegistry(3).stream("x")).run(max_time=300.0)
        second = ClusteringSim(params, RngRegistry(3).stream("x")).run(max_time=300.0)
        assert (first.leader_of == second.leader_of).all()
        assert first.switch_times == second.switch_times

    def test_members_never_switch_clusters(self, params, rngs):
        sim = ClusteringSim(params, rngs.stream("c7"))
        snapshots = []
        for _ in range(6):
            sim.sim.run(max_events=3000)
            snapshots.append(sim.leader_of.copy())
        for earlier, later in zip(snapshots, snapshots[1:]):
            assigned = earlier >= 0
            assert (later[assigned] == earlier[assigned]).all()


class TestFaithfulPause:
    """The paper's pause/reopen admission pacing (Section 4.1)."""

    @pytest.fixture()
    def params(self) -> MultiLeaderParams:
        return MultiLeaderParams(n=800, k=2, alpha0=2.0)

    def test_produces_valid_clustering(self, params, rngs):
        sim = ClusteringSim(params, rngs.stream("fp"), faithful_pause=True)
        clustering = sim.run(max_time=400.0)
        assert clustering.clustered_fraction > 0.7
        sizes = clustering.cluster_sizes()
        assert max(sizes.values()) <= params.max_cluster_size

    def test_pause_delays_readiness(self, params):
        from repro.engine.rng import RngRegistry

        plain = ClusteringSim(params, RngRegistry(5).stream("p")).run(max_time=400.0)
        paused = ClusteringSim(
            params, RngRegistry(5).stream("p"), faithful_pause=True, pause_units=2.0
        ).run(max_time=400.0)
        # Same randomness; the pause window postpones the first switch.
        assert min(paused.switch_times.values()) > min(plain.switch_times.values())

    def test_clusters_can_exceed_target_after_reopen(self, params, rngs):
        sim = ClusteringSim(
            params, rngs.stream("fp2"), faithful_pause=True, pause_units=0.2
        )
        clustering = sim.run(max_time=400.0)
        sizes = clustering.cluster_sizes()
        # With a short pause, at least one cluster reopened and grew
        # beyond the target size.
        assert any(size > params.target_cluster_size for size in sizes.values())
