"""Unit tests for the Algorithm 5 cluster-leader state machine."""

from __future__ import annotations

import math

import pytest

from repro.multileader.cluster_leader import (
    STATE_PROPAGATION,
    STATE_SLEEPING,
    STATE_TWO_CHOICES,
    ClusterLeaderState,
)
from repro.multileader.params import MultiLeaderParams


@pytest.fixture()
def params() -> MultiLeaderParams:
    return MultiLeaderParams(n=1000, k=3, alpha0=2.0)


@pytest.fixture()
def leader(params) -> ClusterLeaderState:
    return ClusterLeaderState(node=0, card=30, params=params)


def send_zero_signals(leader: ClusterLeaderState, count: int, time: float = 0.0) -> None:
    for _ in range(count):
        leader.on_signal(0, 3, False, time)


class TestPhaseProgression:
    def test_initial_state(self, leader):
        assert leader.public_state == (1, STATE_TWO_CHOICES)

    def test_tick_thresholds_progress_phases(self, leader, params):
        sleep_threshold = math.ceil(params.time_unit * 30 * params.sleep_units)
        prop_threshold = math.ceil(params.time_unit * 30 * params.propagation_units)
        send_zero_signals(leader, sleep_threshold)
        assert leader.state == STATE_SLEEPING
        send_zero_signals(leader, prop_threshold - sleep_threshold)
        assert leader.state == STATE_PROPAGATION

    def test_phase_change_times_recorded(self, leader, params):
        sleep_threshold = math.ceil(params.time_unit * 30 * params.sleep_units)
        send_zero_signals(leader, sleep_threshold, time=7.0)
        times = leader.phase_times(1)
        assert times[STATE_SLEEPING] == 7.0


class TestGenerationCounting:
    def test_gen_size_threshold_births_generation(self, leader, params):
        threshold = math.ceil(params.gen_size_fraction * 30)
        for _ in range(threshold):
            leader.on_signal(1, STATE_TWO_CHOICES, True, 1.0)
        assert leader.gen == 2
        assert leader.state == STATE_TWO_CHOICES
        assert leader.tick_count == 0
        assert leader.gen_size == 0

    def test_has_changed_false_does_not_count(self, leader):
        for _ in range(100):
            leader.on_signal(1, STATE_TWO_CHOICES, False, 1.0)
        assert leader.gen == 1

    def test_wrong_generation_does_not_count(self, leader):
        for _ in range(100):
            leader.on_signal(7, STATE_TWO_CHOICES, True, 1.0)
        # Relay adoption may bump gen, but gen_size counting needs i == gen.
        assert leader.gen_size == 0 or leader.gen == 7

    def test_generation_budget_cap(self, params):
        leader = ClusterLeaderState(node=0, card=10, params=params)
        threshold = math.ceil(params.gen_size_fraction * 10)
        for _ in range(params.max_generation + 3):
            current = leader.gen
            for _ in range(threshold):
                leader.on_signal(current, leader.state, True, 0.0)
        assert leader.gen == params.max_generation


class TestLexicographicRelay:
    def test_adopts_ahead_state(self, leader):
        leader.on_signal(3, STATE_SLEEPING, False, 2.0)
        assert leader.public_state == (3, STATE_SLEEPING)
        assert leader.transitions[-1].cause == "relay"

    def test_ignores_behind_state(self, leader):
        leader.on_signal(3, STATE_PROPAGATION, False, 2.0)
        leader.on_signal(2, STATE_PROPAGATION, False, 3.0)
        assert leader.public_state == (3, STATE_PROPAGATION)

    def test_same_gen_higher_state_adopted(self, leader):
        leader.on_signal(1, STATE_PROPAGATION, False, 2.0)
        assert leader.public_state == (1, STATE_PROPAGATION)

    def test_relay_to_sleeping_sets_counter_to_threshold(self, leader, params):
        leader.on_signal(2, STATE_SLEEPING, False, 2.0)
        # One more tick batch reaches propagation after the remaining window.
        sleep_threshold = math.ceil(params.time_unit * 30 * params.sleep_units)
        prop_threshold = math.ceil(params.time_unit * 30 * params.propagation_units)
        assert leader.tick_count == sleep_threshold
        send_zero_signals(leader, prop_threshold - sleep_threshold)
        assert leader.state == STATE_PROPAGATION

    def test_relay_same_gen_keeps_gen_size(self, leader):
        leader.on_signal(1, STATE_TWO_CHOICES, True, 0.0)
        assert leader.gen_size == 1
        leader.on_signal(1, STATE_SLEEPING, False, 1.0)
        assert leader.gen_size == 1  # state-only relay must not reset counts

    def test_relay_new_gen_resets_gen_size(self, leader):
        leader.on_signal(1, STATE_TWO_CHOICES, True, 0.0)
        leader.on_signal(4, STATE_TWO_CHOICES, False, 1.0)
        assert leader.gen == 4
        assert leader.gen_size == 0

    def test_zero_signal_never_relays(self, leader):
        # (0, 3, ·) tick signals carry state 3 but must not be adopted.
        leader.on_signal(0, 3, False, 0.0)
        assert leader.public_state == (1, STATE_TWO_CHOICES)
