"""Tests for multi-leader parameter derivation."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.multileader.params import MultiLeaderParams, default_cluster_size


class TestDefaultClusterSize:
    def test_polylog_growth(self):
        assert default_cluster_size(1000) < default_cluster_size(10**6)
        # Polylog: doubling the exponent of n far less than doubles size.
        assert default_cluster_size(10**6) < 4 * default_cluster_size(1000)

    def test_floor(self):
        assert default_cluster_size(4) >= 8


class TestMultiLeaderParams:
    def test_derived_fields(self):
        params = MultiLeaderParams(n=2000, k=3, alpha0=2.0)
        assert params.time_unit > 0
        assert params.max_cluster_size >= params.target_cluster_size
        assert params.min_active_size <= params.target_cluster_size
        assert 0 < params.leader_probability < 1
        assert params.max_generation >= 1

    def test_five_channel_unit_longer_than_three(self):
        from repro.core.params import SingleLeaderParams

        multi = MultiLeaderParams(n=2000, k=3, alpha0=2.0)
        single = SingleLeaderParams(n=2000, k=3, alpha0=2.0)
        assert multi.time_unit > single.time_unit

    def test_gen_size_fraction_above_half(self):
        params = MultiLeaderParams(n=2000, k=3, alpha0=2.0)
        assert 0.5 < params.gen_size_fraction < 1.0

    def test_sleep_before_propagation_enforced(self):
        with pytest.raises(ConfigurationError):
            MultiLeaderParams(n=2000, k=3, alpha0=2.0, sleep_units=5.0, propagation_units=4.0)

    def test_explicit_overrides_respected(self):
        params = MultiLeaderParams(
            n=2000, k=3, alpha0=2.0, target_cluster_size=25, leader_probability=0.01
        )
        assert params.target_cluster_size == 25
        assert params.leader_probability == 0.01

    def test_invalid_alpha(self):
        with pytest.raises(ConfigurationError):
            MultiLeaderParams(n=2000, k=3, alpha0=0.9)
