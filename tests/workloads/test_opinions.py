"""Unit and property tests for workload generators."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.workloads.bias import multiplicative_bias, plurality_color
from repro.workloads.opinions import (
    additive_gap_counts,
    assignment_to_counts,
    biased_counts,
    counts_to_assignment,
    uniform_counts,
    zipf_counts,
)


class TestBiasedCounts:
    def test_sum_and_plurality(self):
        counts = biased_counts(10_000, 5, 2.0)
        assert counts.sum() == 10_000
        assert plurality_color(counts) == 0
        assert counts.min() >= 1

    def test_realized_bias_close(self):
        counts = biased_counts(100_000, 8, 1.5)
        assert multiplicative_bias(counts) == pytest.approx(1.5, rel=0.01)

    def test_strict_plurality_even_for_tiny_bias(self):
        counts = biased_counts(1000, 4, 1.0001)
        assert counts[0] > sorted(counts)[-2] or counts[0] == counts.max()
        assert multiplicative_bias(counts) > 1.0

    @pytest.mark.parametrize("bad_alpha", [1.0, 0.5, -2.0])
    def test_alpha_must_exceed_one(self, bad_alpha):
        with pytest.raises(ConfigurationError):
            biased_counts(100, 3, bad_alpha)

    def test_k_larger_than_n_rejected(self):
        with pytest.raises(ConfigurationError):
            biased_counts(4, 10, 2.0)

    @given(
        n=st.integers(min_value=100, max_value=100_000),
        k=st.integers(min_value=2, max_value=20),
        alpha=st.floats(min_value=1.01, max_value=20.0),
    )
    @settings(max_examples=100)
    def test_properties(self, n, k, alpha):
        try:
            counts = biased_counts(n, k, alpha)
        except ConfigurationError:
            return  # infeasible combination (huge alpha, tiny n) is fine
        assert counts.sum() == n
        assert counts.size == k
        assert counts.min() >= 1
        assert multiplicative_bias(counts) > 1.0
        # With a healthy runner-up the realized bias is near the request.
        # (The n - sum(rounded) remainder, up to ~(alpha+k)/2 nodes, lands
        # on the non-dominant colors, so precision needs a sizeable tail.)
        runner_up = sorted(counts)[-2]
        if runner_up >= 100:
            assert multiplicative_bias(counts) == pytest.approx(alpha, rel=0.15)


class TestAdditiveGapCounts:
    def test_gap_realized(self):
        counts = additive_gap_counts(10_000, 4, 500)
        ordered = sorted(counts, reverse=True)
        assert ordered[0] - ordered[1] >= 500
        assert counts.sum() == 10_000

    def test_infeasible_gap_rejected(self):
        with pytest.raises(ConfigurationError):
            additive_gap_counts(10, 5, 9)


class TestUniformCounts:
    def test_exact_division(self):
        counts = uniform_counts(100, 4)
        assert (counts == 25).all()

    def test_remainder_spread(self):
        counts = uniform_counts(103, 4)
        assert counts.sum() == 103
        assert counts.max() - counts.min() == 1

    def test_k_bigger_than_n_rejected(self):
        with pytest.raises(ConfigurationError):
            uniform_counts(3, 4)


class TestZipfCounts:
    def test_decreasing_and_total(self):
        counts = zipf_counts(10_000, 6, exponent=1.0)
        assert counts.sum() == 10_000
        assert counts[0] == counts.max()
        assert counts.min() >= 1

    def test_higher_exponent_more_skew(self):
        flat = zipf_counts(10_000, 6, exponent=0.5)
        steep = zipf_counts(10_000, 6, exponent=2.0)
        assert multiplicative_bias(steep) > multiplicative_bias(flat)


class TestAssignments:
    def test_roundtrip(self, rng):
        counts = biased_counts(5000, 6, 1.7)
        assignment = counts_to_assignment(counts, rng)
        assert assignment.shape == (5000,)
        recovered = assignment_to_counts(assignment, 6)
        assert (recovered == counts).all()

    def test_deterministic_without_rng(self):
        counts = np.array([2, 3])
        assignment = counts_to_assignment(counts)
        assert assignment.tolist() == [0, 0, 1, 1, 1]

    def test_shuffle_changes_layout(self, rng):
        counts = np.array([500, 500])
        shuffled = counts_to_assignment(counts, rng)
        assert shuffled.tolist() != counts_to_assignment(counts).tolist()

    def test_assignment_must_be_1d(self):
        with pytest.raises(ConfigurationError):
            assignment_to_counts(np.zeros((2, 2), dtype=int), 2)
