"""Unit and property tests for bias/concentration math."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.workloads.bias import (
    additive_gap,
    collision_probability,
    multiplicative_bias,
    plurality_color,
    remark2_lower_bound,
    top_two,
    validate_counts,
)

counts_strategy = st.lists(
    st.integers(min_value=1, max_value=10_000), min_size=2, max_size=16
)


class TestValidation:
    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            validate_counts([])

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            validate_counts([3, -1])

    def test_rejects_all_zero(self):
        with pytest.raises(ConfigurationError):
            validate_counts([0, 0])

    def test_accepts_numpy(self):
        out = validate_counts(np.array([1, 2]))
        assert out.dtype == np.int64


class TestTopTwo:
    def test_basic(self):
        assert top_two([5, 9, 3]) == (9, 5)

    def test_single_color(self):
        assert top_two([7]) == (7, 0)

    def test_tie(self):
        assert top_two([4, 4]) == (4, 4)


class TestBias:
    def test_multiplicative(self):
        assert multiplicative_bias([10, 5, 5]) == pytest.approx(2.0)

    def test_infinite_when_runner_up_dead(self):
        assert multiplicative_bias([10, 0, 0]) == math.inf

    def test_additive(self):
        assert additive_gap([10, 7, 7]) == 3

    def test_plurality_color(self):
        assert plurality_color([1, 5, 3]) == 1

    def test_plurality_tie_lowest_index(self):
        assert plurality_color([5, 5, 1]) == 0


class TestCollisionProbability:
    def test_uniform_two_colors(self):
        assert collision_probability([5, 5]) == pytest.approx(0.5)

    def test_monochromatic(self):
        assert collision_probability([7, 0]) == pytest.approx(1.0)

    @given(counts_strategy)
    @settings(max_examples=100)
    def test_bounds(self, counts):
        p = collision_probability(counts)
        k = len(counts)
        assert 1.0 / k - 1e-12 <= p <= 1.0 + 1e-12


class TestRemark2:
    """Remark 2: p >= (alpha^2 + k - 1) / (alpha + k - 1)^2."""

    def test_invalid_args(self):
        with pytest.raises(ConfigurationError):
            remark2_lower_bound(0.5, 3)
        with pytest.raises(ConfigurationError):
            remark2_lower_bound(2.0, 0)

    def test_equality_at_flat_tail(self):
        # The bound is attained when all non-dominant colors are equal.
        counts = [200, 100, 100, 100]
        alpha = multiplicative_bias(counts)
        p = collision_probability(counts)
        assert p == pytest.approx(remark2_lower_bound(alpha, 4), rel=1e-9)

    @given(counts_strategy)
    @settings(max_examples=200)
    def test_lower_bound_holds_for_any_configuration(self, counts):
        # The paper's inequality must hold for every count vector whose
        # bias is finite.
        alpha = multiplicative_bias(counts)
        if not math.isfinite(alpha):
            return
        p = collision_probability(counts)
        bound = remark2_lower_bound(alpha, len(counts))
        assert p >= bound - 1e-9
