"""Failure-injection and edge-regime tests.

The protocols have documented failure modes — this module checks that
they fail the way the theory says they should (and that the library
reports failure honestly instead of crashing or lying).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.params import SingleLeaderParams
from repro.core.schedule import AdaptiveSchedule, FixedSchedule
from repro.core.single_leader import SingleLeaderSim
from repro.core.synchronous import AggregateSynchronousSim, run_synchronous
from repro.engine.rng import RngRegistry
from repro.errors import SimulationError
from repro.multileader.clustering import ClusteringSim
from repro.multileader.params import MultiLeaderParams
from repro.workloads.opinions import biased_counts, uniform_counts


class TestGenerationBudgetExhaustion:
    def test_exhausted_budget_reports_no_consensus(self, rngs):
        """One generation cannot purify k=8 colors at tiny bias."""
        n, k = 50_000, 8
        schedule = AdaptiveSchedule(n=n, alpha0=1.01, extra_generations=0)
        # alpha0=1.01 gives a big G*; force a tiny budget instead.
        schedule.max_generation = 1
        counts = biased_counts(n, k, 1.05)
        sim = AggregateSynchronousSim(counts, schedule, rngs.stream("x"))
        result = sim.run(max_steps=200)
        assert not result.converged
        # The result still reports the *current* leader faithfully.
        assert result.final_color_counts.sum() == n


class TestTiedWorkloads:
    def test_perfect_tie_still_converges_to_some_color(self, rngs):
        """With zero bias plurality is undefined; consensus still happens."""
        n, k = 20_000, 4
        counts = uniform_counts(n, k)  # exact tie
        schedule = AdaptiveSchedule(n=n, alpha0=1.5)  # budget from nominal bias
        result = run_synchronous(counts, schedule, rngs.stream("tie"), max_steps=1000)
        # Symmetry breaking: some color wins (which one is random).
        if result.converged:
            assert int(np.count_nonzero(result.final_color_counts)) == 1

    def test_async_tie_terminates_cleanly(self, rngs):
        n, k = 400, 2
        counts = uniform_counts(n, k)
        params = SingleLeaderParams(n=n, k=k, alpha0=1.5)
        result = SingleLeaderSim(params, counts, rngs.stream("tie-a")).run(max_time=300.0)
        assert result.elapsed <= 300.0 + 1e-9


class TestClusteringFailure:
    def test_no_viable_cluster_raises(self, rngs):
        """If every node is a leader, no cluster can reach the minimum."""
        params = MultiLeaderParams(
            n=64, k=2, alpha0=2.0,
            target_cluster_size=32, leader_probability=0.999,
        )
        with pytest.raises(SimulationError):
            ClusteringSim(params, rngs.stream("fail")).run(max_time=50.0)


class TestExtremeLatency:
    def test_huge_latency_slows_but_preserves_correctness(self):
        params = SingleLeaderParams(n=300, k=2, alpha0=3.0, latency_rate=0.05)
        counts = biased_counts(300, 2, 3.0)
        result = SingleLeaderSim(
            params, counts, RngRegistry(3).stream("slow")
        ).run(max_time=30_000.0)
        assert result.converged
        assert result.plurality_won
        # Unit length ~ 1/lambda: a run takes long absolute time (more
        # than a full time unit, ~158 steps here) but few units.
        assert result.elapsed > params.time_unit
        assert result.elapsed / params.time_unit < 40.0


class TestNearThresholdBias:
    def test_win_rate_degrades_gracefully_below_floor(self, rngs):
        """Below Theorem 1's floor the protocol loses sometimes — but the
        library reports it rather than failing."""
        n, k, alpha = 20_000, 16, 1.02
        counts = biased_counts(n, k, alpha)
        wins = 0
        for rep in range(4):
            result = run_synchronous(
                counts,
                FixedSchedule(n=n, k=k, alpha0=alpha),
                rngs.stream(f"floor/{rep}"),
                max_steps=800,
            )
            wins += result.plurality_won
        assert 0 <= wins <= 4  # no crash; outcome is genuinely stochastic
