"""Tests for table rendering."""

from __future__ import annotations

import pytest

from repro.analysis.tables import format_cell, render_markdown_table, render_table


class TestFormatCell:
    def test_bool(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"

    def test_float_precision(self):
        assert format_cell(3.14159) == "3.142"
        assert format_cell(0.000123) == "1.230e-04"
        assert format_cell(123456.0) == "1.235e+05"
        assert format_cell(0.0) == "0"

    def test_nan_and_inf(self):
        assert format_cell(float("nan")) == "-"
        assert format_cell(float("inf")) == "inf"

    def test_passthrough(self):
        assert format_cell("text") == "text"
        assert format_cell(42) == "42"


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["a", "bb"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        # All rows share the same width.
        assert len(set(len(line.rstrip()) for line in lines[:2])) <= 2

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])


class TestRenderMarkdown:
    def test_structure(self):
        text = render_markdown_table(["x", "y"], [[1, 2.5]])
        lines = text.splitlines()
        assert lines[0] == "| x | y |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2.5 |"
