"""Truncated traces must be loud at every consumer (ISSUE 8 satellite).

``TraceRecorder.truncated`` existed but nothing downstream ever looked
at it — a capped trace analyzed silently as if it were complete. The
fix spans three layers, each pinned here: the streaming tracer stamps a
``truncated`` marker record into the file itself, the offline analyzer
surfaces the loss as a warning note (and on stderr), and the replay
visualizer embeds the drop count so the page can render its banner.
"""

from __future__ import annotations

import json

from repro.analysis.trace_metrics import (
    load_trace,
    trace_metrics,
    truncation_dropped,
)
from repro.engine.tracing import JsonlTracer
from repro.visualizer.replay import build_replay_data, render_replay_html


def _capped_trace(path, *, cap=4, records=10):
    with JsonlTracer(path, max_records=cap) as tracer:
        tracer.record("run", 0.0, protocol="single_leader", n=3, counts=[2, 1], k=2)
        for i in range(records):
            tracer.record("state", float(i + 1), node=i, col=0, old_col=1,
                          gen=1, old_gen=0)
    return tracer


class TestJsonlTracerCap:
    def test_marker_written_and_counted(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = _capped_trace(path, cap=4, records=10)
        assert tracer.truncated
        assert tracer.dropped == 7  # 1 run + 10 state, 4 kept
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(lines) == 5  # cap + the marker
        assert lines[-1] == {"kind": "truncated", "t": 10.0, "dropped": 7}

    def test_uncapped_tracer_writes_no_marker(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = _capped_trace(path, cap=None, records=5)
        assert not tracer.truncated
        kinds = {json.loads(line)["kind"] for line in path.read_text().splitlines()}
        assert "truncated" not in kinds

    def test_truncation_dropped_sums_markers(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _capped_trace(path, cap=2, records=6)
        records = load_trace(path)
        assert truncation_dropped(records) == 5
        assert truncation_dropped([]) == 0


class TestTraceMetricsWarning:
    def test_truncated_trace_warns_in_notes_and_stderr(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        _capped_trace(path, cap=4, records=10)
        result = trace_metrics(path)
        assert any("TRUNCATED" in note for note in result.notes)
        assert "TRUNCATED" in capsys.readouterr().err

    def test_complete_trace_has_no_warning(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        _capped_trace(path, cap=None, records=5)
        result = trace_metrics(path)
        assert not any("TRUNCATED" in note for note in result.notes)
        assert "TRUNCATED" not in capsys.readouterr().err


class TestReplayBanner:
    def test_dropped_count_in_payload_and_page(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _capped_trace(path, cap=4, records=10)
        data = build_replay_data(path)
        assert data["dropped"] == 7
        html = render_replay_html(data)
        assert "TRUNCATED TRACE" in html

    def test_complete_trace_payload_reports_zero(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _capped_trace(path, cap=None, records=5)
        assert build_replay_data(path)["dropped"] == 0
