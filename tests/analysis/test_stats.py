"""Tests for summary statistics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import bootstrap_ci, geometric_mean, summarize
from repro.errors import ConfigurationError

sample_strategy = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=100
)


class TestSummarize:
    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            summarize([])

    def test_single_value(self):
        summary = summarize([3.0])
        assert summary.mean == 3.0
        assert summary.std == 0.0
        assert summary.sem == 0.0

    def test_known_values(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.mean == pytest.approx(2.5)
        assert summary.median == pytest.approx(2.5)
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.count == 4

    def test_ci95_contains_mean(self):
        summary = summarize([1.0, 2.0, 3.0])
        low, high = summary.ci95()
        assert low <= summary.mean <= high

    @given(sample_strategy)
    @settings(max_examples=100)
    def test_ordering_invariants(self, values):
        summary = summarize(values)
        assert summary.minimum <= summary.median <= summary.maximum
        assert summary.minimum <= summary.mean <= summary.maximum

    def test_mean_of_equal_values_stays_in_range(self):
        # Regression: numpy's pairwise summation rounded the mean of
        # three equal values just above the maximum, so summarize now
        # uses math.fsum and clamps into [minimum, maximum].
        value = 349525.7865401887
        summary = summarize([value, value, value])
        assert summary.minimum <= summary.mean <= summary.maximum
        assert summary.mean == pytest.approx(value)

    def test_str_is_informative(self):
        text = str(summarize([1.0, 2.0]))
        assert "median" in text and "n=2" in text


class TestBootstrap:
    def test_interval_brackets_mean(self, rng):
        values = list(np.linspace(0, 10, 50))
        low, high = bootstrap_ci(values, rng)
        assert low < np.mean(values) < high

    def test_empty_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            bootstrap_ci([], rng)

    def test_invalid_level_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            bootstrap_ci([1.0], rng, level=1.5)

    def test_degenerate_sample(self, rng):
        low, high = bootstrap_ci([5.0, 5.0, 5.0], rng)
        assert low == high == 5.0


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_rejects_non_positive(self):
        with pytest.raises(ConfigurationError):
            geometric_mean([1.0, 0.0])

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            geometric_mean([])
