"""Tests for run-batch aggregation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.metrics import summarize_batch
from repro.core.results import GenerationBirth, RunResult
from repro.errors import ConfigurationError


def make_run(won=True, converged=True, elapsed=10.0, eps=None, births=0) -> RunResult:
    return RunResult(
        converged=converged,
        winner=0 if won else 1,
        plurality_color=0,
        elapsed=elapsed,
        final_color_counts=np.array([10, 0]),
        epsilon_convergence_time=eps,
        births=[
            GenerationBirth(generation=i + 1, time=float(i), fraction=0.1, bias=2.0,
                            collision_probability=0.5)
            for i in range(births)
        ],
    )


class TestSummarizeBatch:
    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            summarize_batch([])

    def test_rates(self):
        batch = summarize_batch([make_run(won=True), make_run(won=False, converged=False)])
        assert batch.plurality_win_rate == 0.5
        assert batch.consensus_rate == 0.5
        assert batch.runs == 2

    def test_elapsed_summary(self):
        batch = summarize_batch([make_run(elapsed=10.0), make_run(elapsed=20.0)])
        assert batch.elapsed.mean == pytest.approx(15.0)

    def test_epsilon_only_when_present(self):
        no_eps = summarize_batch([make_run()])
        assert no_eps.epsilon_time is None
        with_eps = summarize_batch([make_run(eps=5.0), make_run()])
        assert with_eps.epsilon_time is not None
        assert with_eps.epsilon_time.count == 1

    def test_generation_summary(self):
        batch = summarize_batch([make_run(births=3), make_run(births=5)])
        assert batch.generations.mean == pytest.approx(4.0)

    def test_row_shape(self):
        row = summarize_batch([make_run(eps=4.0)]).row()
        assert len(row) == 4
