"""Tests for figure series and the ASCII plot."""

from __future__ import annotations

import pytest

from repro.analysis.series import Series, ascii_plot
from repro.errors import ConfigurationError


class TestSeries:
    def test_append_and_len(self):
        series = Series("curve")
        series.append(1, 2)
        series.append(10, 20)
        assert len(series) == 2
        assert series.xs == [1.0, 10.0]

    def test_to_csv(self, tmp_path):
        series = Series("curve")
        series.append(1, 2)
        path = series.to_csv(tmp_path / "sub" / "curve.csv", x_name="lam", y_name="c1")
        content = path.read_text().splitlines()
        assert content[0] == "lam,c1"
        assert content[1] == "1.0,2.0"


class TestAsciiPlot:
    def make_series(self):
        series = Series("f")
        for x in (1, 10, 100, 1000):
            series.append(x, 9.0 * x)
        return series

    def test_contains_markers_and_legend(self):
        text = ascii_plot([self.make_series()], logx=True, logy=True)
        assert "*" in text
        assert "f" in text

    def test_loglog_diagonal(self):
        # y ∝ x on log-log axes: markers move right and up together.
        text = ascii_plot([self.make_series()], logx=True, logy=True, height=10)
        grid = [line for line in text.splitlines() if "|" in line]
        positions = []
        for row, line in enumerate(grid):
            col = line.find("*")
            if col >= 0:
                positions.append((row, col))
        rows = [r for r, _ in positions]
        cols = [c for _, c in positions]
        assert rows == sorted(rows)  # top row = largest y
        assert cols == sorted(cols, reverse=True) or cols == sorted(cols)

    def test_log_scale_requires_positive(self):
        bad = Series("bad")
        bad.append(-1, 1)
        with pytest.raises(ConfigurationError):
            ascii_plot([bad], logx=True)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            ascii_plot([Series("empty")])

    def test_multiple_series_distinct_markers(self):
        one, two = self.make_series(), Series("g")
        two.append(1, 1)
        two.append(1000, 1)
        text = ascii_plot([one, two], logx=True, logy=True)
        assert "o" in text
