"""Tests for ``repro metrics-report`` (snapshot → tables, regressions)."""

from __future__ import annotations

import pytest

from repro.analysis.metrics_report import histogram_mean, metrics_report
from repro.cli import main
from repro.engine.metrics import MetricsRegistry
from repro.errors import ConfigurationError


def _snapshot_file(tmp_path, name, *, counters=(), gauges=(), observations=()):
    metrics = MetricsRegistry()
    for counter, value in counters:
        metrics.counter(counter).inc(value)
    for gauge, value in gauges:
        metrics.gauge(gauge).set(value)
    for value in observations:
        metrics.histogram("h.seconds", (0.01, 1.0)).observe(value)
    path = tmp_path / name
    metrics.write(path)
    return path


def _table(result, title):
    for table in result.tables:
        if table.title == title:
            return table
    raise AssertionError(f"no table {title!r} in {[t.title for t in result.tables]}")


class TestHistogramMean:
    def test_mean_and_empty(self):
        assert histogram_mean({"count": 4, "sum": 2.0}) == 0.5
        assert histogram_mean({"count": 0, "sum": 0.0}) is None


class TestPlainReport:
    def test_tables_and_notes(self, tmp_path):
        path = _snapshot_file(
            tmp_path,
            "m.json",
            counters=[("sync.runs", 2), ("sync.rounds", 40)],
            gauges=[("sweep.workers", 4)],
            observations=[0.005, 0.5],
        )
        result = metrics_report([path])
        assert _table(result, "counters").rows == [["sync.rounds", 40], ["sync.runs", 2]]
        assert _table(result, "gauges").rows == [["sweep.workers", 4]]
        buckets = _table(result, "histogram h.seconds").rows
        assert buckets == [[0.01, 1], [1.0, 2], ["+inf", 2]]
        assert any("h.seconds: count=2" in note for note in result.notes)

    def test_multiple_snapshots_merge(self, tmp_path):
        a = _snapshot_file(tmp_path, "a.json", counters=[("c", 3)])
        b = _snapshot_file(tmp_path, "b.json", counters=[("c", 4)])
        result = metrics_report([a, b])
        assert _table(result, "counters").rows == [["c", 7]]

    def test_empty_snapshot_notes_it(self, tmp_path):
        path = _snapshot_file(tmp_path, "empty.json")
        result = metrics_report([path])
        assert result.tables == []
        assert any("empty" in note for note in result.notes)

    def test_no_paths_raises(self):
        with pytest.raises(ConfigurationError):
            metrics_report([])


class TestCompareReport:
    def test_regression_columns(self, tmp_path):
        baseline = _snapshot_file(
            tmp_path, "base.json",
            counters=[("sweep.cache.misses", 4)], observations=[0.5],
        )
        current = _snapshot_file(
            tmp_path, "cur.json",
            counters=[("sweep.cache.misses", 1), ("sweep.cache.hits", 3)],
            observations=[0.5, 0.5],
        )
        result = metrics_report([current], compare=baseline)
        counters = _table(result, "counters: current vs baseline")
        assert counters.headers == ["name", "baseline", "current", "delta", "ratio"]
        rows = {row[0]: row[1:] for row in counters.rows}
        # Present only in current → ratio sentinel "new".
        assert rows["sweep.cache.hits"] == [0.0, 3.0, 3.0, "new"]
        assert rows["sweep.cache.misses"] == [4.0, 1.0, -3.0, 0.25]
        histograms = _table(
            result, "histogram observation counts: current vs baseline"
        )
        assert histograms.rows == [["h.seconds", 1.0, 2.0, 1.0, 2.0]]

    def test_zero_vs_zero_is_not_applicable(self, tmp_path):
        baseline = _snapshot_file(tmp_path, "base.json", counters=[("c", 0)])
        current = _snapshot_file(tmp_path, "cur.json", counters=[("c", 0)])
        result = metrics_report([current], compare=baseline)
        assert _table(result, "counters: current vs baseline").rows == [
            ["c", 0.0, 0.0, 0.0, "n/a"]
        ]


class TestCli:
    def test_report_and_markdown_out(self, tmp_path, capsys):
        path = _snapshot_file(tmp_path, "m.json", counters=[("sync.runs", 1)])
        out = tmp_path / "report.md"
        assert main(["metrics-report", str(path), "--out", str(out)]) == 0
        assert "sync.runs" in capsys.readouterr().out
        assert "sync.runs" in out.read_text()

    def test_compare_flag(self, tmp_path, capsys):
        baseline = _snapshot_file(tmp_path, "base.json", counters=[("c", 2)])
        current = _snapshot_file(tmp_path, "cur.json", counters=[("c", 6)])
        code = main(["metrics-report", str(current), "--compare", str(baseline)])
        assert code == 0
        assert "current vs baseline" in capsys.readouterr().out

    def test_prom_rendering(self, tmp_path, capsys):
        path = _snapshot_file(tmp_path, "m.json", counters=[("sync.runs", 5)])
        assert main(["metrics-report", str(path), "--prom"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE sync_runs counter" in out
        assert "sync_runs 5" in out
