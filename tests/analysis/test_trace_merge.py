"""Round-trip and ordering tests for the trace-merge tool.

The load-bearing claim: a real :class:`~repro.engine.tracing.JsonlTracer`
stream split across two files (the per-shard layout) merges back
**byte-identical** to the original, so every offline consumer —
``trace-metrics``, the replay visualizer — reads a merged multi-stream
trace exactly as it reads a single-process one.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.analysis.trace_merge import merge_trace_files, merge_traces
from repro.core.schedule import FixedSchedule
from repro.core.synchronous import run_synchronous
from repro.engine.rng import RngRegistry
from repro.engine.tracing import JsonlTracer
from repro.errors import ConfigurationError
from repro.workloads import biased_counts


@pytest.fixture(scope="module")
def traced_run(tmp_path_factory):
    """One real synchronous run's JSONL trace."""
    path = tmp_path_factory.mktemp("trace") / "run.jsonl"
    with JsonlTracer(path) as tracer:
        run_synchronous(
            biased_counts(500, 3, 2.0),
            FixedSchedule(n=500, k=3, alpha0=2.0),
            RngRegistry(5).stream("t"),
            tracer=tracer,
        )
    return path


class TestRoundTrip:
    def test_even_odd_split_merges_byte_identical(self, traced_run, tmp_path):
        """Split a sorted stream line-by-line into two; merge restores it."""
        lines = traced_run.read_text().splitlines(keepends=True)
        assert len(lines) > 10
        parts = [tmp_path / "shard0.jsonl", tmp_path / "shard1.jsonl"]
        parts[0].write_text("".join(lines[0::2]))
        parts[1].write_text("".join(lines[1::2]))
        merged = tmp_path / "merged.jsonl"
        count = merge_trace_files(parts, merged)
        assert count == len(lines)
        assert merged.read_bytes() == traced_run.read_bytes()

    def test_merged_trace_feeds_trace_metrics_unchanged(self, traced_run, tmp_path):
        from repro.analysis.trace_metrics import trace_metrics

        lines = traced_run.read_text().splitlines(keepends=True)
        parts = [tmp_path / "a.jsonl", tmp_path / "b.jsonl"]
        parts[0].write_text("".join(lines[0::2]))
        parts[1].write_text("".join(lines[1::2]))
        # Same basename: the report header embeds the trace filename.
        merged = tmp_path / traced_run.name
        merge_trace_files(parts, merged)
        original = trace_metrics(traced_run).render(plot=False)
        recombined = trace_metrics(merged).render(plot=False)
        assert recombined == original

    def test_single_stream_passthrough(self, traced_run, tmp_path):
        merged = tmp_path / "copy.jsonl"
        count = merge_trace_files([traced_run], merged)
        assert count == len(traced_run.read_text().splitlines())
        assert merged.read_bytes() == traced_run.read_bytes()


class TestOrdering:
    def _lines(self, records):
        return [json.dumps(r, sort_keys=True) for r in records]

    def test_interleaves_by_time(self):
        a = self._lines([{"t": 1.0, "x": "a0"}, {"t": 4.0, "x": "a1"}])
        b = self._lines([{"t": 2.0, "x": "b0"}, {"t": 3.0, "x": "b1"}])
        merged = [json.loads(line)["x"] for line in merge_traces([a, b])]
        assert merged == ["a0", "b0", "b1", "a1"]

    def test_ties_keep_stream_order(self):
        a = self._lines([{"t": 1.0, "x": "a0"}])
        b = self._lines([{"t": 1.0, "x": "b0"}])
        merged = [json.loads(line)["x"] for line in merge_traces([a, b])]
        assert merged == ["a0", "b0"]
        flipped = [json.loads(line)["x"] for line in merge_traces([b, a])]
        assert flipped == ["b0", "a0"]

    def test_explicit_seq_beats_line_order(self):
        a = self._lines([{"t": 1.0, "seq": 5, "x": "late"}])
        b = self._lines([{"t": 1.0, "seq": 2, "x": "early"}])
        merged = [json.loads(line)["x"] for line in merge_traces([a, b])]
        assert merged == ["early", "late"]

    def test_blank_lines_are_skipped(self):
        a = ['{"t": 1.0}', "", '{"t": 2.0}', "   "]
        assert len(list(merge_traces([a]))) == 2

    def test_writes_to_open_handle(self, tmp_path):
        path = tmp_path / "in.jsonl"
        path.write_text('{"t": 1.0}\n{"t": 2.0}\n')
        sink = io.StringIO()
        assert merge_trace_files([path], sink) == 2
        assert sink.getvalue() == '{"t": 1.0}\n{"t": 2.0}\n'


class TestErrors:
    def test_rejects_backwards_time(self):
        a = ['{"t": 2.0}', '{"t": 1.0}']
        with pytest.raises(ConfigurationError, match="time runs backwards"):
            list(merge_traces([a]))

    def test_rejects_missing_t(self):
        with pytest.raises(ConfigurationError, match="'t' field"):
            list(merge_traces([['{"kind": "x"}']]))

    def test_rejects_bad_json_with_label(self):
        with pytest.raises(ConfigurationError, match="left, line 1"):
            list(merge_traces([["{nope"]], labels=["left"]))

    def test_rejects_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError, match="not found"):
            merge_trace_files([tmp_path / "absent.jsonl"], tmp_path / "out.jsonl")

    def test_rejects_empty_input_list(self, tmp_path):
        with pytest.raises(ConfigurationError, match="at least one"):
            merge_trace_files([], tmp_path / "out.jsonl")


class TestCli:
    def test_trace_merge_subcommand(self, traced_run, tmp_path, capsys):
        from repro.cli import main

        lines = traced_run.read_text().splitlines(keepends=True)
        parts = [tmp_path / "a.jsonl", tmp_path / "b.jsonl"]
        parts[0].write_text("".join(lines[0::2]))
        parts[1].write_text("".join(lines[1::2]))
        merged = tmp_path / "merged.jsonl"
        code = main(
            ["trace-merge", str(parts[0]), str(parts[1]), "--out", str(merged)]
        )
        assert code == 0
        assert merged.read_bytes() == traced_run.read_bytes()
        assert "records" in capsys.readouterr().err

    def test_trace_merge_stdout(self, traced_run, capsys):
        from repro.cli import main

        assert main(["trace-merge", str(traced_run)]) == 0
        assert capsys.readouterr().out == traced_run.read_text()
