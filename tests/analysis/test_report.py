"""Tests for Markdown run reports."""

from __future__ import annotations

import numpy as np

from repro.analysis.report import run_report
from repro.core.results import GenerationBirth, RunResult, StepStats


def make_result(**overrides) -> RunResult:
    defaults = dict(
        converged=True,
        winner=0,
        plurality_color=0,
        elapsed=42.0,
        final_color_counts=np.array([100, 0]),
    )
    defaults.update(overrides)
    return RunResult(**defaults)


class TestRunReport:
    def test_minimal_report(self):
        text = run_report(make_result(), title="t")
        assert text.startswith("# t")
        assert "reached consensus" in text
        assert "42.00" in text

    def test_loss_reported_honestly(self):
        text = run_report(make_result(winner=1, converged=False))
        assert "did **not** reach consensus" in text
        assert "displaced the initial plurality" in text

    def test_unit_normalization_when_available(self):
        result = make_result(info={"time_unit": 10.0})
        text = run_report(result)
        assert "time units" in text
        assert "4.20" in text

    def test_births_table(self):
        births = [
            GenerationBirth(generation=1, time=1.0, fraction=0.1, bias=2.25,
                            collision_probability=0.4),
            GenerationBirth(generation=2, time=9.0, fraction=0.2, bias=float("inf"),
                            collision_probability=1.0),
        ]
        text = run_report(make_result(births=births))
        assert "## Generations" in text
        assert "2.25" in text
        assert "mono" in text

    def test_trajectory_milestones(self):
        trajectory = [
            StepStats(time=float(t), top_generation=1, top_generation_fraction=0.5,
                      plurality_fraction=0.5 + t / 100.0, bias=2.0)
            for t in range(30)
        ]
        text = run_report(make_result(trajectory=trajectory))
        assert "## Trajectory milestones" in text
        # Down-sampled: far fewer rows than trajectory entries.
        assert text.count("| 1 |") < 12

    def test_epsilon_line(self):
        text = run_report(make_result(epsilon_convergence_time=30.0))
        assert "ε-convergence" in text

    def test_telemetry_table(self):
        text = run_report(make_result(info={"events": 123.0}))
        assert "## Telemetry" in text
        assert "events" in text
