"""Tests for the structural trace differ (``repro trace-diff``).

The differ backs the differential harness's failure diagnostics, so the
properties pinned here are the ones a debugging session leans on: the
reported divergence index is the *first* structural difference, the
context records really are the shared prefix, strict-prefix streams
report the end-of-stream sentinel rather than a phantom record, and the
CLI exit code is 0/1 like ``diff``.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.trace_diff import CONTEXT_RECORDS, diff_traces, render_diff
from repro.cli import main
from repro.errors import ConfigurationError


def _write(path, records):
    path.write_text(
        "".join(json.dumps(record, sort_keys=True) + "\n" for record in records)
    )
    return path


def _records(count, kind="state"):
    return [{"kind": kind, "t": float(i), "node": i} for i in range(count)]


class TestDiffTraces:
    def test_identical_streams(self, tmp_path):
        a = _write(tmp_path / "a.jsonl", _records(5))
        b = _write(tmp_path / "b.jsonl", _records(5))
        diff = diff_traces(a, b)
        assert diff.equal
        assert diff.divergence_index is None
        assert diff.kind_deltas == {}
        assert "structurally identical" in render_diff(diff)

    def test_formatting_insensitive(self, tmp_path):
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        a.write_text('{"kind": "run", "t": 0.0, "n": 5}\n')
        b.write_text('{"n":5,"t":0.0,"kind":"run"}\n')
        assert diff_traces(a, b).equal

    def test_first_divergence_and_context(self, tmp_path):
        records_a = _records(10)
        records_b = _records(10)
        records_b[6]["node"] = 999
        a = _write(tmp_path / "a.jsonl", records_a)
        b = _write(tmp_path / "b.jsonl", records_b)
        diff = diff_traces(a, b)
        assert not diff.equal
        assert diff.divergence_index == 6
        assert diff.record_a == records_a[6]
        assert diff.record_b == records_b[6]
        assert diff.context == records_a[6 - CONTEXT_RECORDS : 6]

    def test_strict_prefix_reports_end_of_stream(self, tmp_path):
        a = _write(tmp_path / "a.jsonl", _records(4))
        b = _write(tmp_path / "b.jsonl", _records(7))
        diff = diff_traces(a, b)
        assert not diff.equal
        assert diff.divergence_index == 4
        assert diff.record_a is None
        assert diff.record_b == _records(7)[4]
        assert "<end of stream>" in render_diff(diff)

    def test_kind_deltas_signed_a_minus_b(self, tmp_path):
        a = _write(tmp_path / "a.jsonl", _records(3, "state") + _records(2, "phase"))
        b = _write(tmp_path / "b.jsonl", _records(5, "state"))
        diff = diff_traces(a, b)
        assert diff.kind_deltas == {"phase": +2, "state": -2}
        rendered = render_diff(diff)
        assert "phase: +2" in rendered
        assert "state: -2" in rendered

    def test_divergence_at_record_zero_has_no_context(self, tmp_path):
        records_b = _records(3)
        records_b[0]["node"] = 42
        a = _write(tmp_path / "a.jsonl", _records(3))
        b = _write(tmp_path / "b.jsonl", records_b)
        diff = diff_traces(a, b)
        assert diff.divergence_index == 0
        assert diff.context == []

    def test_rejects_non_trace_file(self, tmp_path):
        good = _write(tmp_path / "good.jsonl", _records(2))
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        with pytest.raises(ConfigurationError):
            diff_traces(good, bad)


class TestCli:
    def test_exit_zero_on_identical(self, tmp_path, capsys):
        a = _write(tmp_path / "a.jsonl", _records(4))
        b = _write(tmp_path / "b.jsonl", _records(4))
        assert main(["trace-diff", str(a), str(b)]) == 0
        assert "structurally identical" in capsys.readouterr().out

    def test_exit_one_on_divergence(self, tmp_path, capsys):
        records = _records(4)
        records[2]["node"] = -1
        a = _write(tmp_path / "a.jsonl", _records(4))
        b = _write(tmp_path / "b.jsonl", records)
        assert main(["trace-diff", str(a), str(b)]) == 1
        out = capsys.readouterr().out
        assert "first divergence at record 2" in out
        assert "[A]" in out and "[B]" in out
