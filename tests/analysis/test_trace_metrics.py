"""Tests for the offline trace analyzer (``repro trace-metrics``)."""

from __future__ import annotations

import json
import textwrap

import numpy as np
import pytest

from repro.analysis.trace_metrics import (
    TraceSegment,
    fault_summary,
    load_trace,
    message_counts,
    phase_timeline,
    population_curve,
    split_segments,
    trace_metrics,
)
from repro.errors import ConfigurationError

#: A tiny hand-written event-engine trace: n=4, k=2, two state flips,
#: one generation birth, one fault, one end record.
SYNTHETIC = [
    {"kind": "run", "t": 0.0, "protocol": "single_leader", "n": 4, "k": 2,
     "counts": [3, 1]},
    {"kind": "state", "t": 1.0, "node": 2, "gen": 1, "col": 0,
     "old_gen": 0, "old_col": 1},
    {"kind": "phase", "t": 2.0, "event": "generation", "gen": 2},
    {"kind": "fault", "t": 2.5, "event": "dropped-message", "node": 1},
    {"kind": "state", "t": 3.0, "node": 0, "gen": 2, "col": 0,
     "old_gen": 1, "old_col": 0},
    {"kind": "end", "t": 4.0, "converged": True, "counts": [4, 0],
     "eps_time": 1.0, "zero_signals": 7, "gen_signals": 2, "good_ticks": 9},
]


def write_trace(path, records) -> None:
    path.write_text("\n".join(json.dumps(r) for r in records) + "\n")


@pytest.fixture
def synthetic_path(tmp_path):
    path = tmp_path / "trace.jsonl"
    write_trace(path, SYNTHETIC)
    return path


class TestLoadAndSplit:
    def test_roundtrip(self, synthetic_path):
        records = load_trace(synthetic_path)
        assert len(records) == len(SYNTHETIC)
        assert records[0]["kind"] == "run"

    def test_bad_json_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "run"}\nnot json\n')
        with pytest.raises(ConfigurationError, match="bad.jsonl:2"):
            load_trace(path)

    def test_non_record_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("[1, 2]\n")
        with pytest.raises(ConfigurationError, match="'kind'"):
            load_trace(path)

    def test_split_on_run_headers(self):
        records = SYNTHETIC + SYNTHETIC
        segments = split_segments(records)
        assert len(segments) == 2
        assert all(s.protocol == "single_leader" for s in segments)
        assert len(segments[0].records) == len(SYNTHETIC) - 1

    def test_headerless_prefix_kept(self):
        segments = split_segments(SYNTHETIC[1:])
        assert len(segments) == 1
        assert segments[0].protocol == "unknown"
        assert len(segments[0].records) == len(SYNTHETIC) - 1


class TestPopulationCurve:
    def test_rebuilt_from_state_deltas(self, synthetic_path):
        (segment,) = split_segments(load_trace(synthetic_path))
        times, rows = population_curve(segment)
        # one col-changing flip (node 2: 1 -> 0); the gen-only promotion
        # of node 0 keeps counts unchanged.
        assert times == [0.0, 1.0]
        assert rows == [[3, 1], [4, 0]]

    def test_round_snapshots_authoritative(self):
        segment = TraceSegment(
            header={"protocol": "synchronous", "n": 4, "counts": [3, 1]},
            records=[
                {"kind": "round", "t": 1.0, "counts": [2, 2], "top_gen": 0},
                {"kind": "round", "t": 2.0, "counts": [4, 0], "top_gen": 1},
            ],
        )
        times, rows = population_curve(segment)
        assert times == [1.0, 2.0]
        assert rows == [[2, 2], [4, 0]]

    def test_downsampling_keeps_endpoints(self):
        records = [
            {"kind": "round", "t": float(i), "counts": [i, 100 - i]}
            for i in range(100)
        ]
        segment = TraceSegment(header={"counts": [0, 100]}, records=records)
        times, rows = population_curve(segment, points=5)
        assert len(times) == 5
        assert times[0] == 0.0 and times[-1] == 99.0

    def test_no_curve_data_raises(self):
        with pytest.raises(ConfigurationError, match="population curve"):
            population_curve(TraceSegment(header={}))


class TestTimelinesAndTallies:
    def test_phase_timeline(self, synthetic_path):
        (segment,) = split_segments(load_trace(synthetic_path))
        timeline = phase_timeline(segment)
        assert [entry["generation"] for entry in timeline] == [1, 2]
        gen1, gen2 = timeline
        assert gen1["first_entry"] == 1.0 and gen1["birth"] is None
        assert gen2["birth"] == 2.0 and gen2["first_entry"] == 3.0
        assert gen2["nodes"] == 1

    def test_message_counts(self, synthetic_path):
        (segment,) = split_segments(load_trace(synthetic_path))
        tallies = message_counts(segment)
        assert tallies["zero_signals"] == 7
        assert tallies["gen_signals"] == 2
        assert tallies["good_ticks"] == 9
        assert tallies["records_state"] == 2
        assert tallies["records_fault"] == 1

    def test_fault_summary(self, synthetic_path):
        (segment,) = split_segments(load_trace(synthetic_path))
        (entry,) = fault_summary(segment)
        assert entry["event"] == "dropped-message"
        assert entry["count"] == 1
        assert entry["first_t"] == entry["last_t"] == 2.5


class TestReport:
    def test_golden_render(self, synthetic_path):
        """The synthetic trace renders to exactly this report."""
        result = trace_metrics(synthetic_path)
        expected = textwrap.dedent(
            """\
            == trace-metrics ==

            Offline metrics for trace.jsonl: 6 records, 1 run segment(s). Population curves and aging-phase timelines are rebuilt purely from the protocol-level trace stream.

            single_leader: population curve
            t  opinion 0  opinion 1
            -  ---------  ---------
            0  3          1
            1  4          0

            single_leader: aging-phase timeline
            generation  birth  first entry  propagation  nodes entered
            ----------  -----  -----------  -----------  -------------
            1           None   1            None         1
            2           2      3            None         1

            single_leader: message and record counts
            counter        value
            -------------  -----
            gen_signals    2
            good_ticks     9
            records_end    1
            records_fault  1
            records_phase  1
            records_state  2
            zero_signals   7

            single_leader: fault overlay
            event            count  first t  last t
            ---------------  -----  -------  ------
            dropped-message  1      2.5      2.5

            note: single_leader: converged=True at t=4.0, eps_time=1.0"""
        )
        rendered = "\n".join(line.rstrip() for line in result.render(plot=False).splitlines())
        assert rendered == expected

    def test_empty_trace_raises(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ConfigurationError, match="empty"):
            trace_metrics(path)

    def test_end_to_end_from_real_run(self, tmp_path):
        """A real single-leader trace reconstructs curve + timeline."""
        from repro.core.params import SingleLeaderParams
        from repro.core.single_leader import run_single_leader
        from repro.engine.tracing import JsonlTracer

        path = tmp_path / "run.jsonl"
        counts = np.array([40, 25, 15])
        with JsonlTracer(path) as tracer:
            result = run_single_leader(
                SingleLeaderParams(n=80, k=3, alpha0=2.0),
                counts,
                np.random.Generator(np.random.PCG64(5)),
                tracer=tracer,
            )
        report = trace_metrics(path, points=10)
        (segment,) = split_segments(load_trace(path))
        times, rows = population_curve(segment, points=10)
        assert rows[0] == [40, 25, 15]
        # the trace's final populations must agree with the run result
        assert rows[-1] == [int(c) for c in result.final_color_counts]
        assert all(sum(row) == 80 for row in rows)
        assert phase_timeline(segment), "aging phases missing from trace"
        titles = [table.title for table in report.tables]
        assert any("population curve" in title for title in titles)
        assert any("aging-phase timeline" in title for title in titles)
