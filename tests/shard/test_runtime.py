"""Tick-barrier harness and shared-memory runtime tests.

These run real worker processes (fork start method) against tiny
payloads: the round cadence, control-word plumbing, error propagation,
and resource cleanup are all exercised end to end.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.shard import SharedArray, ShardError, ShardHarness
from repro.shard.runtime import ShardWorkerContext


def _echo_worker(ctx: ShardWorkerContext, payload: dict) -> None:
    """Write ``base + flag`` into this shard's slot each round."""
    slots = SharedArray.attach(payload["slots_spec"])
    try:
        while True:
            ctx.wait()
            if ctx.stopped:
                break
            slots.array[ctx.index] = payload["base"] + ctx.flag
            ctx.wait()
    finally:
        slots.close()


def _crash_worker(ctx: ShardWorkerContext, payload: dict) -> None:
    ctx.wait()
    if payload.get("hard"):
        os._exit(3)
    raise ValueError(f"boom in shard {ctx.index}")


class TestSharedArray:
    def test_create_attach_roundtrip(self):
        owner = SharedArray.create((2, 3), np.int64)
        assert (owner.array == 0).all()
        owner.array[1, 2] = 41
        view = SharedArray.attach(owner.spec)
        assert view.array[1, 2] == 41
        view.array[0, 0] = -7
        assert owner.array[0, 0] == -7
        view.close()
        owner.close()

    def test_spec_is_picklable_metadata(self):
        owner = SharedArray.create((4,), np.float64)
        name, shape, dtype = owner.spec
        assert isinstance(name, str) and shape == (4,) and dtype == "<f8"
        owner.close()


class TestShardHarness:
    def test_round_cadence_and_control_words(self):
        slots = SharedArray.create((3,), np.float64)
        payloads = [{"slots_spec": slots.spec, "base": 10.0 * i} for i in range(3)]
        try:
            with ShardHarness(_echo_worker, payloads, phases=1) as harness:
                harness.step(flag=7.0)
                assert slots.array.tolist() == [7.0, 17.0, 27.0]
                harness.step(flag=9.0)
                assert slots.array.tolist() == [9.0, 19.0, 29.0]
                harness.stop()
                harness.stop()  # idempotent
        finally:
            slots.close()

    def test_worker_exception_surfaces_with_traceback(self):
        harness = ShardHarness(_crash_worker, [{}, {}], phases=1, timeout=30.0)
        with pytest.raises(ShardError, match="boom in shard"):
            harness.step()
        harness.close()  # idempotent after the error path already cleaned up

    def test_worker_death_is_detected_fast(self):
        harness = ShardHarness(
            _crash_worker, [{"hard": True}, {"hard": True}], phases=1, timeout=30.0
        )
        with pytest.raises(ShardError, match="died|failed"):
            harness.step()
        harness.close()


def _sleepy_worker(ctx: ShardWorkerContext, payload: dict) -> None:
    """Shard ``payload['stuck']`` hangs before its first barrier wait."""
    import time

    if ctx.index == payload["stuck"]:
        time.sleep(600.0)
    while True:
        ctx.wait()
        if ctx.stopped:
            break
        ctx.wait()


class TestHungWorker:
    def test_barrier_timeout_names_the_stuck_shard(self):
        """A hung worker trips the barrier timeout within timeout + eps,
        and the error names exactly the shard that never arrived."""
        import time

        timeout = 2.0
        payloads = [{"stuck": 1} for _ in range(3)]
        harness = ShardHarness(_sleepy_worker, payloads, phases=1, timeout=timeout)
        started = time.monotonic()
        with pytest.raises(ShardError, match=r"stuck shard\(s\): \[1\]"):
            harness.step()
        elapsed = time.monotonic() - started
        # The controller must not wait out the sleep — detection is
        # bounded by the configured timeout plus teardown slack.
        assert elapsed < timeout + 3.0
        harness.close()  # idempotent; the error path already cleaned up
