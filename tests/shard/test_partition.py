"""Property tests for the shard partitioner (Hypothesis).

The partitioner is the determinism anchor of the sharded engines: every
worker recomputes its ``[start, stop)`` range independently from
``(n, shards)``, so the properties below — disjointness, coverage,
balance within ±1, purity, and zero RNG consumption — are exactly what
the cross-shard equivalence harness assumes.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.shard import partition_counts, partition_nodes, shard_seed_sequences

pairs = st.tuples(st.integers(1, 10_000), st.integers(1, 64)).filter(
    lambda pair: pair[0] >= pair[1]
)

count_arrays = st.lists(st.integers(0, 500), min_size=1, max_size=12).filter(
    lambda values: sum(values) >= 1
)


class TestPartitionNodes:
    @given(pair=pairs)
    @settings(max_examples=200, deadline=None)
    def test_disjoint_covering_ordered(self, pair):
        n, shards = pair
        ranges = partition_nodes(n, shards)
        assert len(ranges) == shards
        assert ranges[0][0] == 0
        assert ranges[-1][1] == n
        for (_, stop), (start, _) in zip(ranges, ranges[1:]):
            assert stop == start  # contiguous: no gap, no overlap

    @given(pair=pairs)
    @settings(max_examples=200, deadline=None)
    def test_balanced_within_one(self, pair):
        n, shards = pair
        sizes = [stop - start for start, stop in partition_nodes(n, shards)]
        assert min(sizes) >= 1
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == n

    @given(pair=pairs)
    @settings(max_examples=100, deadline=None)
    def test_pure_and_rng_free(self, pair):
        n, shards = pair
        before = np.random.get_state()[1].copy()
        first = partition_nodes(n, shards)
        second = partition_nodes(n, shards)
        assert first == second
        assert np.array_equal(np.random.get_state()[1], before)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ConfigurationError):
            partition_nodes(10, 0)
        with pytest.raises(ConfigurationError):
            partition_nodes(3, 4)


class TestPartitionCounts:
    @given(values=count_arrays, shards=st.integers(1, 8))
    @settings(max_examples=200, deadline=None)
    def test_columns_sum_exactly(self, values, shards):
        counts = np.array(values, dtype=np.int64)
        n = int(counts.sum())
        if n < shards:
            with pytest.raises(ConfigurationError):
                partition_counts(counts, shards)
            return
        split = partition_counts(counts, shards)
        assert split.shape == (shards,) + counts.shape
        assert split.dtype == np.int64
        assert (split >= 0).all()
        assert np.array_equal(split.sum(axis=0), counts)

    @given(values=count_arrays, shards=st.integers(1, 8))
    @settings(max_examples=200, deadline=None)
    def test_shard_totals_match_node_ranges(self, values, shards):
        counts = np.array(values, dtype=np.int64)
        n = int(counts.sum())
        if n < shards:
            return
        split = partition_counts(counts, shards)
        sizes = [stop - start for start, stop in partition_nodes(n, shards)]
        assert split.reshape(shards, -1).sum(axis=1).tolist() == sizes

    def test_matrix_shape_preserved(self):
        counts = np.arange(6, dtype=np.int64).reshape(2, 3)
        split = partition_counts(counts, 3)
        assert split.shape == (3, 2, 3)
        assert np.array_equal(split.sum(axis=0), counts)

    def test_rejects_negative_and_empty(self):
        with pytest.raises(ConfigurationError):
            partition_counts(np.array([3, -1]), 1)
        with pytest.raises(ConfigurationError):
            partition_counts(np.array([], dtype=np.int64), 1)


class TestShardSeedSequences:
    def test_deterministic_for_a_given_stream(self, rngs):
        from repro.engine.rng import RngRegistry

        first = shard_seed_sequences(rngs.stream("shard"), 4)
        second = shard_seed_sequences(RngRegistry(123456789).stream("shard"), 4)
        assert [seq.spawn_key for seq in first] == [seq.spawn_key for seq in second]
        states = [
            np.random.Generator(np.random.PCG64(seq)).integers(0, 2**63, 4).tolist()
            for seq in first
        ]
        assert len({tuple(s) for s in states}) == 4  # children differ

    def test_spawn_does_not_advance_the_bit_stream(self, rngs):
        from repro.engine.rng import RngRegistry

        rng = rngs.stream("shard")
        shard_seed_sequences(rng, 4)
        untouched = RngRegistry(123456789).stream("shard")
        assert rng.integers(0, 2**63, 8).tolist() == untouched.integers(
            0, 2**63, 8
        ).tolist()

    def test_requires_seed_sequence(self):
        class _BareBitGenerator:
            seed_seq = None

        class _BareGenerator:
            bit_generator = _BareBitGenerator()

        with pytest.raises(ConfigurationError):
            shard_seed_sequences(_BareGenerator(), 2)
        with pytest.raises(ConfigurationError):
            shard_seed_sequences(np.random.default_rng(0), 0)
