"""Cross-shard-count differential tests: sharding must not change the law.

The sharded count engines are distribution-exact (a sum of independent
multinomials with shared global probabilities is the global
multinomial), so convergence-time distributions at ``shards ∈ {2, 4}``
must be statistically indistinguishable from ``shards=1``: two-sample
Kolmogorov–Smirnov plus a CI-overlap check on the means, the same gate
:mod:`tests.engine.test_fast_equivalence` applies to the batched event
engine. The sharded *population* scheduler is the one approximate
engine (block-granular intra-shard pairs plus a small cross-shard
exchange), so it gets the CI-overlap gate only.

A fast subset runs in tier-1; the full matrix (voter / three-majority /
both synchronous engines at n=2000, shards {2, 4}, ≥30 seeds) is
marked ``slow`` and runs in the CI shard-smoke job. All seeds are
fixed: a pass is deterministic, not a coin flip.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.baselines.base import run_dynamics
from repro.baselines.population import PairwiseScheduler, ThreeStateMajority
from repro.baselines.three_majority import ThreeMajority
from repro.baselines.voter import PullVoting
from repro.core.schedule import FixedSchedule
from repro.core.synchronous import run_synchronous
from repro.engine.rng import RngRegistry
from repro.shard import run_sharded_population
from repro.workloads import biased_counts

KS_P_FLOOR = 0.01


def ci95(values: np.ndarray) -> tuple[float, float]:
    mean = float(values.mean())
    half = 1.96 * float(values.std(ddof=1)) / np.sqrt(values.size)
    return mean - half, mean + half


def intervals_overlap(a: tuple[float, float], b: tuple[float, float]) -> bool:
    return a[0] <= b[1] and b[0] <= a[1]


def _assert_equivalent(baseline: list[float], sharded: list[float], label: str) -> None:
    baseline = np.asarray(baseline, dtype=float)
    sharded = np.asarray(sharded, dtype=float)
    ks = scipy_stats.ks_2samp(baseline, sharded)
    assert ks.pvalue >= KS_P_FLOOR, (
        f"{label}: KS p={ks.pvalue:.4g} — sharded convergence times are "
        f"distinguishable from shards=1 (means {baseline.mean():.1f} "
        f"vs {sharded.mean():.1f})"
    )
    assert intervals_overlap(ci95(baseline), ci95(sharded)), (
        f"{label}: 95% CIs do not overlap "
        f"({ci95(baseline)} vs {ci95(sharded)})"
    )


def _dynamics_times(dynamics_cls, n, k, alpha, seeds, shards, *, max_rounds=100_000):
    times = []
    counts = biased_counts(n, k, alpha)
    for seed in seeds:
        result = run_dynamics(
            dynamics_cls(),
            counts,
            RngRegistry(seed).stream("diff"),
            shards=shards,
            max_rounds=max_rounds,
        )
        times.append(float(result.elapsed))
    return times


def _sync_times(engine, n, k, alpha, seeds, shards):
    times = []
    counts = biased_counts(n, k, alpha)
    for seed in seeds:
        result = run_synchronous(
            counts,
            FixedSchedule(n=n, k=k, alpha0=alpha),
            RngRegistry(seed).stream("diff"),
            engine=engine,
            shards=shards,
        )
        times.append(float(result.elapsed))
    return times


def _population_interactions(n, alpha, seeds, shards):
    interactions = []
    counts = biased_counts(n, 2, alpha)
    for seed in seeds:
        result = run_sharded_population(
            ThreeStateMajority(),
            counts,
            RngRegistry(seed).stream("diff"),
            shards=shards,
        )
        assert result.converged
        interactions.append(float(result.interactions))
    return interactions


class TestFastDifferential:
    """Tier-1 subset: shards=2 vs shards=1, 12 seeds, n=2000."""

    SEEDS = range(100, 112)

    def test_three_majority(self):
        baseline = _dynamics_times(ThreeMajority, 2000, 3, 1.5, self.SEEDS, 1)
        sharded = _dynamics_times(ThreeMajority, 2000, 3, 1.5, self.SEEDS, 2)
        _assert_equivalent(baseline, sharded, "three-majority shards=2")

    def test_synchronous_aggregate(self):
        baseline = _sync_times("aggregate", 2000, 4, 1.5, self.SEEDS, 1)
        sharded = _sync_times("aggregate", 2000, 4, 1.5, self.SEEDS, 2)
        _assert_equivalent(baseline, sharded, "synchronous-aggregate shards=2")

    def test_population_ci_overlap(self):
        seeds = range(200, 210)
        baseline = _population_interactions(2000, 2.0, seeds, 1)
        sharded = _population_interactions(2000, 2.0, seeds, 2)
        assert intervals_overlap(
            ci95(np.asarray(baseline)), ci95(np.asarray(sharded))
        ), (
            f"population shards=2: interaction-count CIs do not overlap "
            f"({ci95(np.asarray(baseline))} vs {ci95(np.asarray(sharded))})"
        )


@pytest.mark.slow
class TestFullMatrix:
    """Full differential matrix: shards {2, 4}, ≥30 seeds, n=2000.

    Voter runs are censored at ``max_rounds=2000`` (identical censoring
    in both arms keeps the comparison valid — the late absorption tail
    is diffusion-limited and would dominate wall time otherwise).
    """

    SEEDS = range(300, 330)

    @pytest.mark.parametrize("shards", [2, 4])
    def test_voter(self, shards):
        kwargs = dict(max_rounds=2000)
        baseline = _dynamics_times(PullVoting, 2000, 2, 2.0, self.SEEDS, 1, **kwargs)
        sharded = _dynamics_times(
            PullVoting, 2000, 2, 2.0, self.SEEDS, shards, **kwargs
        )
        _assert_equivalent(baseline, sharded, f"voter shards={shards}")

    @pytest.mark.parametrize("shards", [2, 4])
    def test_three_majority(self, shards):
        baseline = _dynamics_times(ThreeMajority, 2000, 3, 1.5, self.SEEDS, 1)
        sharded = _dynamics_times(ThreeMajority, 2000, 3, 1.5, self.SEEDS, shards)
        _assert_equivalent(baseline, sharded, f"three-majority shards={shards}")

    @pytest.mark.parametrize("engine", ["aggregate", "pernode"])
    @pytest.mark.parametrize("shards", [2, 4])
    def test_synchronous(self, engine, shards):
        baseline = _sync_times(engine, 2000, 4, 1.5, self.SEEDS, 1)
        sharded = _sync_times(engine, 2000, 4, 1.5, self.SEEDS, shards)
        _assert_equivalent(baseline, sharded, f"synchronous-{engine} shards={shards}")

    @pytest.mark.parametrize("shards", [2, 4])
    def test_population_ci_overlap(self, shards):
        seeds = range(400, 420)
        baseline = _population_interactions(2000, 2.0, seeds, 1)
        sharded = _population_interactions(2000, 2.0, seeds, shards)
        assert intervals_overlap(
            ci95(np.asarray(baseline)), ci95(np.asarray(sharded))
        ), (
            f"population shards={shards}: interaction-count CIs do not overlap "
            f"({ci95(np.asarray(baseline))} vs {ci95(np.asarray(sharded))})"
        )
