"""Metrics under sharding (ISSUE 8 satellite).

The snapshot determinism contract says the ``counters`` section is a
pure function of the run. For capped (non-converging) runs the sharded
front-ends execute exactly the same number of rounds/interactions as
their unsharded twins, so ``shards=1`` and ``shards=4`` snapshots must
agree on every protocol-level counter — while the ``shard.*``
instruments (barrier waits, controller round latency, exchange volume)
may appear *only* in the sharded run. Fork and spawn must produce
identical deterministic sections, because sharded runs are
bit-reproducible across start methods (``test_identity.py``).
"""

from __future__ import annotations

import pytest

from repro.baselines.population import ThreeStateMajority
from repro.baselines.three_majority import ThreeMajority
from repro.core.schedule import FixedSchedule
from repro.engine.metrics import MetricsRegistry
from repro.engine.rng import RngRegistry
from repro.shard import (
    run_sharded_dynamics,
    run_sharded_population,
    run_sharded_synchronous,
)
from repro.workloads import biased_counts


def _protocol_counters(snapshot):
    """Counters minus the shard-runtime namespace."""
    return {
        name: value
        for name, value in snapshot["counters"].items()
        if not name.startswith("shard.")
    }


def _sync_snapshot(shards, *, start_method=None):
    metrics = MetricsRegistry()
    run_sharded_synchronous(
        biased_counts(400, 3, 1.1),
        FixedSchedule(n=400, k=3, alpha0=1.1),
        RngRegistry(7).stream("s"),
        shards=shards,
        max_steps=5,
        metrics=metrics,
        **({} if start_method is None else {"start_method": start_method}),
    )
    return metrics.snapshot()


class TestShardCounterParity:
    def test_synchronous_protocol_counters_agree(self):
        one, four = _sync_snapshot(1), _sync_snapshot(4)
        assert _protocol_counters(one) == _protocol_counters(four)
        assert one["counters"]["sync.rounds"] == 5  # capped, not converged
        assert "sync.converged_runs" not in one["counters"]

    def test_dynamics_protocol_counters_agree(self):
        def snapshot(shards):
            metrics = MetricsRegistry()
            run_sharded_dynamics(
                ThreeMajority(),
                biased_counts(300, 3, 1.5),
                RngRegistry(5).stream("d"),
                shards=shards,
                max_rounds=5,
                metrics=metrics,
            )
            return metrics.snapshot()

        one, four = snapshot(1), snapshot(4)
        assert _protocol_counters(one) == _protocol_counters(four)
        assert one["counters"]["dynamics.rounds"] == 5

    def test_population_interaction_clock_agrees(self):
        def snapshot(shards):
            metrics = MetricsRegistry()
            run_sharded_population(
                ThreeStateMajority(),
                biased_counts(300, 2, 1.5),
                RngRegistry(3).stream("p"),
                shards=shards,
                max_interactions=2000,
                metrics=metrics,
            )
            return metrics.snapshot()

        one, four = snapshot(1), snapshot(4)
        # Both engines advance the same interaction clock to the cap.
        assert (
            one["counters"]["population.interactions"]
            == four["counters"]["population.interactions"]
            == 2000
        )
        assert (
            one["counters"]["population.runs.3-state-majority"]
            == four["counters"]["population.runs.3-state-majority"]
            == 1
        )


class TestShardRuntimeInstruments:
    def test_only_sharded_runs_carry_shard_metrics(self):
        one, four = _sync_snapshot(1), _sync_snapshot(4)
        assert not any(name.startswith("shard.") for name in one["counters"])
        assert one["gauges"] == {} and one["histograms"] == {}
        assert four["gauges"]["shard.workers"] == 4
        assert four["counters"]["shard.rounds"] == 5
        assert set(four["histograms"]) == {
            "shard.barrier_wait_seconds",
            "shard.round_seconds",
        }

    def test_barrier_waits_cover_all_worker_round_crossings(self):
        four = _sync_snapshot(4)
        waits = four["histograms"]["shard.barrier_wait_seconds"]
        rounds = four["histograms"]["shard.round_seconds"]
        assert rounds["count"] == 5
        # Every worker crosses at least the per-round barriers; sidecar
        # merge must not lose any worker's samples.
        assert waits["count"] >= 4 * 5
        assert waits["buckets"][-1][0] == "+inf"
        assert waits["buckets"][-1][1] == waits["count"]


class TestStartMethodDeterminism:
    @pytest.mark.parametrize("shards", [2])
    def test_fork_and_spawn_snapshots_agree_on_deterministic_sections(self, shards):
        fork = _sync_snapshot(shards, start_method="fork")
        spawn = _sync_snapshot(shards, start_method="spawn")
        assert fork["counters"] == spawn["counters"]
        assert fork["gauges"] == spawn["gauges"]
        # Histograms are wall-clock: structurally stable only.
        assert set(fork["histograms"]) == set(spawn["histograms"])
        for name in fork["histograms"]:
            assert (
                [b for b, _ in fork["histograms"][name]["buckets"]]
                == [b for b, _ in spawn["histograms"][name]["buckets"]]
            )
