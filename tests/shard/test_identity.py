"""Single-shard identity and cross-invocation reproducibility.

The hard contract of the sharded front-ends is that ``shards=1`` is
**byte-identical** to the unsharded engines: the delegation happens
before any randomness is consumed and before any process machinery is
touched. That identity is pinned here three ways — directly against
the unsharded front-ends, against the committed golden trajectories
from the round-seam change, and through the sweep-target layer.

Bit-reproducibility at ``shards > 1`` (same seed, same shard count →
identical results, for fork *and* spawn) is pinned alongside, because
it is the precondition for the statistical equivalence suite in
``test_differential.py`` meaning anything.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.baselines.base import run_dynamics
from repro.baselines.three_majority import ThreeMajority
from repro.baselines.population import PairwiseScheduler, ThreeStateMajority
from repro.core.schedule import FixedSchedule
from repro.core.synchronous import run_synchronous
from repro.engine.rng import RngRegistry
from repro.shard import (
    run_sharded_dynamics,
    run_sharded_population,
    run_sharded_synchronous,
)
from repro.workloads import biased_counts

GOLDEN_ROUND = json.loads(
    (
        Path(__file__).parent.parent / "scenarios" / "golden_round_defaults.json"
    ).read_text()
)


def _sync_fingerprint(result):
    return [
        bool(result.converged),
        int(result.winner),
        repr(result.elapsed),
        result.final_color_counts.tolist(),
        [(b.generation, b.time, b.fraction, b.bias) for b in result.births],
    ]


class TestSingleShardIdentity:
    @pytest.mark.parametrize("engine", ["aggregate", "pernode"])
    def test_synchronous_matches_unsharded(self, engine):
        counts = biased_counts(600, 4, 2.0)
        schedule = FixedSchedule(n=600, k=4, alpha0=2.0)
        baseline = run_synchronous(
            counts, schedule, RngRegistry(9).stream("sync"), engine=engine
        )
        sharded = run_sharded_synchronous(
            counts, schedule, RngRegistry(9).stream("sync"), shards=1, engine=engine
        )
        assert _sync_fingerprint(sharded) == _sync_fingerprint(baseline)

    def test_run_synchronous_shards_kwarg_is_inert_at_one(self):
        counts = biased_counts(500, 3, 2.0)
        schedule = FixedSchedule(n=500, k=3, alpha0=2.0)
        baseline = run_synchronous(counts, schedule, RngRegistry(5).stream("s"))
        via_kwarg = run_synchronous(
            counts, schedule, RngRegistry(5).stream("s"), shards=1
        )
        assert _sync_fingerprint(via_kwarg) == _sync_fingerprint(baseline)

    def test_dynamics_matches_unsharded(self):
        counts = biased_counts(800, 3, 1.5)
        baseline = run_dynamics(
            ThreeMajority(), counts, RngRegistry(4).stream("d")
        )
        sharded = run_sharded_dynamics(
            ThreeMajority(), counts, RngRegistry(4).stream("d"), shards=1
        )
        assert repr(baseline.elapsed) == repr(sharded.elapsed)
        assert baseline.final_color_counts.tolist() == sharded.final_color_counts.tolist()
        assert baseline.winner == sharded.winner

    def test_population_matches_unsharded(self):
        counts = biased_counts(400, 2, 2.0)
        baseline = PairwiseScheduler(ThreeStateMajority()).run(
            counts, RngRegistry(8).stream("p")
        )
        sharded = run_sharded_population(
            ThreeStateMajority(), counts, RngRegistry(8).stream("p"), shards=1
        )
        assert baseline.interactions == sharded.interactions
        assert baseline.final_state_counts.tolist() == sharded.final_state_counts.tolist()
        assert baseline.winner == sharded.winner


class TestGoldenIdentityAtOneShard:
    """``shards=1`` reproduces the committed golden trajectories."""

    def test_aggregate_synchronous_golden(self):
        result = run_synchronous(
            biased_counts(600, 4, 2.0),
            FixedSchedule(n=600, k=4, alpha0=2.0),
            RngRegistry(42).stream("agg"),
            max_steps=4000,
            shards=1,
        )
        assert [
            bool(result.converged),
            int(result.winner),
            repr(result.elapsed),
            result.final_color_counts.tolist(),
        ] == GOLDEN_ROUND["aggregate_sync"]

    def test_population_three_state_golden(self):
        result = PairwiseScheduler(ThreeStateMajority()).run(
            biased_counts(400, 2, 2.0), RngRegistry(42).stream("p3"), shards=1
        )
        assert [
            bool(result.converged),
            int(result.winner),
            int(result.interactions),
            result.final_state_counts.tolist(),
        ] == GOLDEN_ROUND["population_three_state"]


class TestShardedReproducibility:
    @pytest.mark.parametrize("engine", ["aggregate", "pernode"])
    def test_synchronous_same_seed_same_result(self, engine):
        counts = biased_counts(600, 3, 2.0)
        schedule = FixedSchedule(n=600, k=3, alpha0=2.0)
        runs = [
            run_sharded_synchronous(
                counts, schedule, RngRegistry(17).stream("rep"), shards=2, engine=engine
            )
            for _ in range(2)
        ]
        assert _sync_fingerprint(runs[0]) == _sync_fingerprint(runs[1])

    def test_population_same_seed_same_result(self):
        counts = biased_counts(600, 2, 2.0)
        runs = [
            run_sharded_population(
                ThreeStateMajority(), counts, RngRegistry(3).stream("rep"), shards=2
            )
            for _ in range(2)
        ]
        assert runs[0].interactions == runs[1].interactions
        assert (
            runs[0].final_state_counts.tolist() == runs[1].final_state_counts.tolist()
        )

    def test_fork_and_spawn_agree(self):
        counts = biased_counts(400, 3, 2.0)
        results = [
            run_sharded_dynamics(
                ThreeMajority(),
                counts,
                RngRegistry(11).stream("sm"),
                shards=2,
                start_method=method,
            )
            for method in ("fork", "spawn")
        ]
        assert repr(results[0].elapsed) == repr(results[1].elapsed)
        assert (
            results[0].final_color_counts.tolist()
            == results[1].final_color_counts.tolist()
        )
