"""The ``shards`` sweep axis: validation, records, and cache keys."""

from __future__ import annotations

import pytest

from repro.engine.rng import RngRegistry
from repro.errors import ConfigurationError
from repro.sweep.runner import execute_run
from repro.sweep.spec import SweepSpec
from repro.sweep.targets import get_target, target_params, validate_target_params


class TestValidation:
    @pytest.mark.parametrize(
        "target", ["synchronous", "population", "three_majority", "voter"]
    )
    def test_shards_axis_is_registered(self, target):
        assert target_params(target)["shards"] == 1

    @pytest.mark.parametrize(
        "overrides, fragment",
        [
            ({"topology": "regular"}, "topology"),
            ({"init": "clustered"}, "clustered"),
            ({"drop": 0.1}, "drop"),
            ({"churn": 1}, "churn"),
            ({"stragglers": 0.2}, "stragglers"),
            ({"n": 4}, "nodes per shard"),
        ],
    )
    def test_rejects_unshardable_combinations(self, overrides, fragment):
        params = {"n": 400, "k": 2, "alpha": 2.0, "shards": 4, **overrides}
        with pytest.raises(ConfigurationError, match=fragment):
            validate_target_params("synchronous", params)

    def test_rejects_nonpositive_shards(self):
        with pytest.raises(ConfigurationError, match="shards"):
            validate_target_params("population", {"n": 400, "shards": 0})

    def test_unshardable_axes_fine_at_one_shard(self):
        validated = validate_target_params(
            "synchronous", {"n": 400, "topology": "regular", "shards": 1}
        )
        assert validated["shards"] == 1


class TestExecution:
    def test_synchronous_target_runs_sharded(self):
        record = get_target("synchronous")(
            {"n": 500, "k": 3, "alpha": 2.0, "shards": 2},
            RngRegistry(1).stream("t"),
        )
        assert record["plurality_won"] in (True, False)
        assert record["elapsed"] > 0

    def test_three_majority_target_runs_sharded(self):
        record = get_target("three_majority")(
            {"n": 500, "k": 3, "alpha": 2.0, "shards": 2},
            RngRegistry(2).stream("t"),
        )
        assert record["elapsed"] > 0

    def test_population_target_runs_sharded(self):
        record = get_target("population")(
            {"n": 600, "alpha": 2.0, "shards": 2},
            RngRegistry(3).stream("t"),
        )
        assert record["interactions"] > 0

    def test_sharded_sweep_records_are_deterministic(self):
        """The same sharded config re-executes to the same record.

        (``shards`` rides the normal param-hash seed derivation, so a
        cache hit and a re-execution must agree — the property the run
        cache depends on.)
        """
        spec = SweepSpec(
            target="synchronous",
            base={"n": 400, "k": 2, "alpha": 2.0, "shards": 2},
            grid={},
            repetitions=1,
            seed=7,
        )
        [config] = spec.expand()
        records = []
        for _ in range(2):
            record = execute_run(config)
            record.pop("wall_time", None)
            records.append(record)
        assert records[0] == records[1]
