"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_known_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "unknown-experiment"])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.n == 100_000
        assert not args.asynchronous


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out
        assert "thm26" in out

    def test_demo_sync(self, capsys):
        code = main(["demo", "--n", "5000", "--k", "3", "--alpha", "2.0", "--seed", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "consensus" in out
        assert "generation 1" in out

    def test_demo_async(self, capsys):
        code = main(
            ["demo", "--n", "400", "--k", "3", "--alpha", "2.0", "--seed", "1",
             "--asynchronous"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "units" in out

    def test_run_fig1(self, capsys):
        assert main(["run", "fig1", "--no-plot"]) == 0
        out = capsys.readouterr().out
        assert "steps per time unit" in out

    def test_reproduce_subset_writes_markdown(self, tmp_path, capsys):
        out_file = tmp_path / "exp.md"
        assert main(["reproduce", "--only", "fig1", "--out", str(out_file)]) == 0
        content = out_file.read_text()
        assert content.startswith("### fig1")


class TestSweepCommand:
    ARGS = [
        "sweep", "synchronous",
        "--grid", "n=100,200", "--set", "k=2", "--set", "alpha=2.0",
        "--reps", "2", "--seed", "3",
    ]

    def test_sweep_without_cache(self, capsys):
        assert main(self.ARGS + ["--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "sweep: synchronous" in out
        assert "4 runs (4 executed, 0 cached)" in out

    def test_sweep_second_invocation_fully_cached(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "runs")
        assert main(self.ARGS + ["--cache-dir", cache_dir]) == 0
        first = capsys.readouterr().out
        assert main(self.ARGS + ["--cache-dir", cache_dir]) == 0
        second = capsys.readouterr().out
        assert "4 runs (0 executed, 4 cached)" in second
        # Identical aggregated table either way.
        assert first.split("\n\n")[0] == second.split("\n\n")[0]

    def test_sweep_rejects_unknown_target(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "unknown-target"])


class TestTraceCommands:
    def test_demo_trace_then_metrics_then_view(self, tmp_path, capsys):
        trace = tmp_path / "demo.jsonl"
        code = main(
            ["demo", "--n", "200", "--k", "3", "--alpha", "2.0",
             "--asynchronous", "--trace", str(trace)]
        )
        capsys.readouterr()
        assert code == 0
        assert trace.stat().st_size > 0

        report_md = tmp_path / "metrics.md"
        assert main(["trace-metrics", str(trace), "--out", str(report_md)]) == 0
        out = capsys.readouterr().out
        assert "population curve" in out
        assert "aging-phase timeline" in out
        assert "population curve" in report_md.read_text()

        html = tmp_path / "view.html"
        assert main(["trace-view", str(trace), "--out", str(html)]) == 0
        capsys.readouterr()
        assert html.read_text().startswith("<!DOCTYPE html>")

    def test_sweep_trace_writes_per_run_files(self, tmp_path, capsys):
        traces = tmp_path / "traces"
        code = main(
            ["sweep", "synchronous", "--grid", "n=100,200", "--set", "k=2",
             "--set", "alpha=2.0", "--no-cache", "--trace", str(traces)]
        )
        capsys.readouterr()
        assert code == 0
        assert len(list(traces.glob("*.jsonl"))) == 2

    def test_trace_metrics_missing_file_errors(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["trace-metrics", str(tmp_path / "missing.jsonl")])


class TestMetricsFlag:
    def test_demo_metrics_writes_snapshot(self, tmp_path, capsys):
        import json

        snap = tmp_path / "m.json"
        code = main(
            ["demo", "--n", "400", "--k", "3", "--alpha", "2.0", "--seed", "1",
             "--metrics", str(snap)]
        )
        capsys.readouterr()
        assert code == 0
        data = json.loads(snap.read_text())
        assert data["counters"]["sync.runs"] == 1
        assert data["counters"]["sync.rounds"] >= 1

    def test_demo_async_metrics_covers_engine_and_protocol(self, tmp_path, capsys):
        import json

        snap = tmp_path / "m.json"
        code = main(
            ["demo", "--n", "300", "--k", "3", "--alpha", "2.0", "--seed", "1",
             "--asynchronous", "--metrics", str(snap)]
        )
        capsys.readouterr()
        assert code == 0
        counters = json.loads(snap.read_text())["counters"]
        assert counters["protocol.runs.single_leader"] == 1
        assert counters["engine.events_executed"] > 0

    def test_sweep_metrics_cold_then_warm_cache(self, tmp_path, capsys):
        import json

        cache_dir = str(tmp_path / "runs")
        args = ["sweep", "synchronous", "--grid", "n=100,200", "--set", "k=2",
                "--set", "alpha=2.0", "--cache-dir", cache_dir]
        cold = tmp_path / "cold.json"
        warm = tmp_path / "warm.json"
        assert main(args + ["--metrics", str(cold)]) == 0
        assert main(args + ["--metrics", str(warm)]) == 0
        capsys.readouterr()
        cold_counters = json.loads(cold.read_text())["counters"]
        warm_counters = json.loads(warm.read_text())["counters"]
        assert cold_counters["sweep.cache.misses"] == 2
        assert cold_counters["sweep.runs_executed"] == 2
        assert warm_counters["sweep.cache.hits"] == 2
        assert warm_counters["sweep.runs_cached"] == 2
        assert warm_counters["sweep.cache.misses"] == 0
        # Cold run executed targets in-process → protocol counters rode in.
        assert cold_counters["sync.runs"] == 2

    def test_demo_sharded_metrics_carries_shard_instruments(self, tmp_path, capsys):
        import json

        snap = tmp_path / "m.json"
        code = main(
            ["demo", "--n", "400", "--k", "3", "--alpha", "2.0", "--seed", "1",
             "--shards", "2", "--metrics", str(snap)]
        )
        capsys.readouterr()
        assert code == 0
        data = json.loads(snap.read_text())
        assert data["gauges"]["shard.workers"] == 2
        assert data["histograms"]["shard.barrier_wait_seconds"]["count"] > 0


class TestCacheCommand:
    def test_stats_and_gc_dry_run(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "runs")
        main(
            ["sweep", "synchronous", "--grid", "n=100", "--set", "k=2",
             "--cache-dir", cache_dir]
        )
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        assert "1 entries" in capsys.readouterr().out
        (tmp_path / "runs" / ("0" * 64 + ".json")).write_text("garbage")
        assert main(["cache", "gc", "--dry-run", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "would delete 1" in out
        assert (tmp_path / "runs" / ("0" * 64 + ".json")).exists()
        assert main(["cache", "gc", "--cache-dir", cache_dir]) == 0
        assert "deleted 1" in capsys.readouterr().out
        assert not (tmp_path / "runs" / ("0" * 64 + ".json")).exists()


class TestReproduceCache:
    def test_reproduce_uses_cache(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "runs")
        args = ["reproduce", "--only", "fig1", "--cache-dir", cache_dir]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        second = capsys.readouterr().out
        assert first == second


class TestReportFlag:
    def test_demo_report_sync(self, capsys):
        code = main(["demo", "--n", "5000", "--k", "3", "--alpha", "2.0",
                     "--seed", "1", "--report"])
        out = capsys.readouterr().out
        assert code == 0
        assert out.startswith("# synchronous run")
        assert "## Generations" in out

    def test_demo_report_async(self, capsys):
        code = main(["demo", "--n", "400", "--k", "3", "--alpha", "2.0",
                     "--seed", "1", "--asynchronous", "--report"])
        out = capsys.readouterr().out
        assert code == 0
        assert "## Telemetry" in out


class TestSupervisedSweep:
    """CLI surface of the fault-tolerance layer (PR 9)."""

    def test_supervised_failure_exits_3_with_table(self, tmp_path, capsys):
        code = main(
            ["sweep", "chaos", "--grid", "mode=ok,raise",
             "--max-retries", "0", "--no-cache"]
        )
        out = capsys.readouterr().out
        assert code == 3
        assert "failed runs (1)" in out
        assert "RuntimeError" in out
        # The healthy grid point still aggregated, with the failure
        # annotated in its own column.
        assert "failed" in out

    def test_state_dir_then_resume_without_target(self, tmp_path, capsys):
        state = str(tmp_path / "state")
        metrics_a = tmp_path / "a.json"
        metrics_b = tmp_path / "b.json"
        base = ["--set", "k=2", "--set", "alpha=2.0", "--no-cache"]
        code = main(
            ["sweep", "synchronous", "--grid", "n=150,250", *base,
             "--state-dir", state, "--metrics", str(metrics_a)]
        )
        assert code == 0
        capsys.readouterr()
        # --resume DIR needs no target: the spec lives in the manifest.
        code = main(
            ["sweep", "--resume", state, "--no-cache", "--metrics", str(metrics_b)]
        )
        assert code == 0
        import json

        first = json.loads(metrics_a.read_text())["counters"]
        second = json.loads(metrics_b.read_text())["counters"]
        assert first["sweep.runs_executed"] == 2
        assert second["sweep.runs_executed"] == 0
        assert second["sweep.runs_resumed"] == 2

    def test_resume_with_corrupt_manifest_exits_2(self, tmp_path, capsys):
        state = tmp_path / "state"
        state.mkdir()
        (state / "manifest.json").write_text("{not json")
        code = main(["sweep", "--resume", str(state), "--no-cache"])
        err = capsys.readouterr().err
        assert code == 2
        assert "corrupt" in err

    def test_resume_missing_manifest_exits_2(self, tmp_path, capsys):
        code = main(
            ["sweep", "--resume", str(tmp_path / "nowhere"), "--no-cache"]
        )
        err = capsys.readouterr().err
        assert code == 2
        assert "no readable sweep manifest" in err

    @pytest.mark.slow
    def test_chaos_smoke_command(self, capsys):
        assert main(["chaos"]) == 0
        out = capsys.readouterr().out
        assert "6/6 checks passed" in out


class TestCacheGcMaxBytes:
    def test_gc_max_bytes_evicts_lru(self, tmp_path, capsys):
        import os as os_module

        cache_dir = str(tmp_path / "runs")
        main(
            ["sweep", "synchronous", "--grid", "n=100,200", "--set", "k=2",
             "--cache-dir", cache_dir]
        )
        capsys.readouterr()
        entries = sorted((tmp_path / "runs").glob("*.json"))
        assert len(entries) == 2
        # Make LRU order deterministic, then squeeze to one entry's size.
        os_module.utime(entries[0], (1_000_000, 1_000_000))
        budget = entries[1].stat().st_size
        assert main(
            ["cache", "gc", "--cache-dir", cache_dir, "--max-bytes", str(budget)]
        ) == 0
        out = capsys.readouterr().out
        assert "deleted 1" in out
        assert "KiB" in out
        assert len(list((tmp_path / "runs").glob("*.json"))) == 1
