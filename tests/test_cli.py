"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_known_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "unknown-experiment"])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.n == 100_000
        assert not args.asynchronous


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out
        assert "thm26" in out

    def test_demo_sync(self, capsys):
        code = main(["demo", "--n", "5000", "--k", "3", "--alpha", "2.0", "--seed", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "consensus" in out
        assert "generation 1" in out

    def test_demo_async(self, capsys):
        code = main(
            ["demo", "--n", "400", "--k", "3", "--alpha", "2.0", "--seed", "1",
             "--asynchronous"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "units" in out

    def test_run_fig1(self, capsys):
        assert main(["run", "fig1", "--no-plot"]) == 0
        out = capsys.readouterr().out
        assert "steps per time unit" in out

    def test_reproduce_subset_writes_markdown(self, tmp_path, capsys):
        out_file = tmp_path / "exp.md"
        assert main(["reproduce", "--only", "fig1", "--out", str(out_file)]) == 0
        content = out_file.read_text()
        assert content.startswith("### fig1")


class TestReportFlag:
    def test_demo_report_sync(self, capsys):
        code = main(["demo", "--n", "5000", "--k", "3", "--alpha", "2.0",
                     "--seed", "1", "--report"])
        out = capsys.readouterr().out
        assert code == 0
        assert out.startswith("# synchronous run")
        assert "## Generations" in out

    def test_demo_report_async(self, capsys):
        code = main(["demo", "--n", "400", "--k", "3", "--alpha", "2.0",
                     "--seed", "1", "--asynchronous", "--report"])
        out = capsys.readouterr().out
        assert code == 0
        assert "## Telemetry" in out
