"""Quantitative one-step laws of the synchronous dynamics.

These check the *expected-value* equations the proofs manipulate, on
single steps with large populations (so concentration makes the
measured value essentially deterministic).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.schedule import FixedSchedule
from repro.core.synchronous import AggregateSynchronousSim
from repro.workloads.bias import collision_probability
from repro.workloads.opinions import biased_counts


def advance_to_step_before_birth(sim, schedule):
    """Run just past the first two-choices step (generation 1 exists)."""
    sim.step()  # t=1 is the first two-choices step
    return sim


class TestPropagationGrowthLaw:
    """Prop. 9 / eq. (8): per-step growth of the top generation.

    The paper *lower-bounds* the growth by ``(2 − x)·x``, crudely
    treating the two samples as one (``x < 2x − x²``). The exact
    two-sample law is ``x' = x + (1 − x)(2x − x²)`` — each below-node
    adopts iff at least one of its two samples hit the top generation.
    We check both: the simulator matches the exact law and therefore
    dominates the paper's bound.
    """

    def test_one_propagation_step(self, rngs):
        n, k, alpha = 2_000_000, 4, 2.0
        schedule = FixedSchedule(n=n, k=k, alpha0=alpha)
        sim = AggregateSynchronousSim(
            biased_counts(n, k, alpha), schedule, rngs.stream("law")
        )
        advance_to_step_before_birth(sim, schedule)
        for _ in range(3):
            per_generation = sim.matrix.sum(axis=1) / n
            top = int(np.nonzero(per_generation)[0][-1])
            x = float(per_generation[top])
            if x >= 0.5:
                break
            sim.step()
            new_fraction = float(sim.matrix.sum(axis=1)[top]) / n
            exact = x + (1.0 - x) * (2.0 * x - x * x)
            assert new_fraction == pytest.approx(exact, rel=0.02)
            assert new_fraction > (2.0 - x) * x * 0.98  # paper's lower bound


class TestBirthSizeLaw:
    """Prop. 9: a birth from a full parent has size ≈ g² · p · n."""

    def test_first_birth_size(self, rngs):
        n, k, alpha = 2_000_000, 8, 1.5
        counts = biased_counts(n, k, alpha)
        p0 = collision_probability(counts)
        schedule = FixedSchedule(n=n, k=k, alpha0=alpha)
        sim = AggregateSynchronousSim(counts, schedule, rngs.stream("birth"))
        sim.step()  # generation 1 is born from a g=1 parent
        born = float(sim.matrix.sum(axis=1)[1]) / n
        assert born == pytest.approx(p0, rel=0.02)


class TestSquaringLawOneStep:
    """Example 3: the newborn generation's bias is ≈ α² (large n)."""

    def test_first_birth_bias(self, rngs):
        n, k, alpha = 4_000_000, 4, 1.5
        counts = biased_counts(n, k, alpha)
        schedule = FixedSchedule(n=n, k=k, alpha0=alpha)
        sim = AggregateSynchronousSim(counts, schedule, rngs.stream("sq1"))
        sim.step()
        row = sim.matrix[1]
        ordered = np.sort(row)
        measured = ordered[-1] / ordered[-2]
        assert measured == pytest.approx(alpha**2, rel=0.05)
