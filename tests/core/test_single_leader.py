"""Integration tests for the asynchronous single-leader protocol."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.params import SingleLeaderParams
from repro.core.single_leader import SingleLeaderSim, run_single_leader
from repro.engine.rng import RngRegistry
from repro.errors import ConfigurationError
from repro.workloads.opinions import biased_counts


def make_params(n=600, k=3, alpha=2.0, **kwargs) -> SingleLeaderParams:
    return SingleLeaderParams(n=n, k=k, alpha0=alpha, **kwargs)


class TestValidation:
    def test_counts_must_match_n(self, rng):
        with pytest.raises(ConfigurationError):
            SingleLeaderSim(make_params(n=600), biased_counts(500, 3, 2.0), rng)

    def test_counts_must_match_k(self, rng):
        with pytest.raises(ConfigurationError):
            SingleLeaderSim(make_params(n=600, k=3), biased_counts(600, 4, 2.0), rng)

    def test_params_validation(self):
        with pytest.raises(ConfigurationError):
            make_params(alpha=1.0)
        with pytest.raises(ConfigurationError):
            SingleLeaderParams(n=100, k=3, alpha0=2.0, latency_rate=0.0)

    def test_derived_quantities(self):
        params = make_params(n=1000)
        assert params.time_unit > 0
        assert params.gen_size_threshold == 500
        assert params.prop_signal_threshold == pytest.approx(
            2.0 * params.time_unit * 1000, abs=1.0
        )


class TestConvergence:
    def test_full_consensus_plurality_wins(self, rngs):
        params = make_params()
        counts = biased_counts(params.n, params.k, 2.0)
        result = run_single_leader(params, counts, rngs.stream("sl"), max_time=800.0)
        assert result.converged
        assert result.plurality_won
        assert int(result.final_color_counts.max()) == params.n

    def test_epsilon_convergence_recorded(self, rngs):
        params = make_params()
        counts = biased_counts(params.n, params.k, 2.0)
        result = run_single_leader(
            params, counts, rngs.stream("sl-eps"), max_time=800.0, epsilon=0.05
        )
        assert result.epsilon_convergence_time is not None
        assert result.epsilon_convergence_time <= result.elapsed

    def test_stop_at_epsilon_halts_early(self, rngs):
        params = make_params()
        counts = biased_counts(params.n, params.k, 2.0)
        full = run_single_leader(params, counts, rngs.stream("a"), max_time=800.0)
        early = run_single_leader(
            params, counts, rngs.stream("a"), max_time=800.0,
            epsilon=0.10, stop_at_epsilon=True,
        )
        assert early.elapsed <= full.elapsed

    def test_time_budget_respected(self, rngs):
        params = make_params()
        counts = biased_counts(params.n, params.k, 2.0)
        result = run_single_leader(params, counts, rngs.stream("b"), max_time=3.0)
        assert not result.converged
        assert result.elapsed <= 3.0 + 1e-9

    def test_deterministic_replay(self):
        params = make_params(n=400)
        counts = biased_counts(400, 3, 2.0)
        first = run_single_leader(params, counts, RngRegistry(5).stream("r"), max_time=500.0)
        second = run_single_leader(params, counts, RngRegistry(5).stream("r"), max_time=500.0)
        assert first.elapsed == second.elapsed
        assert (first.final_color_counts == second.final_color_counts).all()


class TestInvariants:
    def test_node_generation_never_exceeds_leader(self, rngs):
        params = make_params(n=400)
        counts = biased_counts(400, 3, 2.0)
        sim = SingleLeaderSim(params, counts, rngs.stream("inv"))
        for _ in range(40):
            sim.sim.run(max_events=2000)
            assert int(sim.gens.max()) <= sim.leader.gen
            assert sim.matrix.sum() == 400
            assert (sim.matrix >= 0).all()
            assert (sim.color_counts == sim.matrix.sum(axis=0)).all()
            if not sim.sim.queue:
                break

    def test_leader_generation_capped(self, rngs):
        params = make_params(n=400)
        counts = biased_counts(400, 3, 2.0)
        sim = SingleLeaderSim(params, counts, rngs.stream("cap"))
        sim.run(max_time=800.0)
        assert sim.leader.gen <= params.max_generation

    def test_good_ticks_bounded_by_total(self, rngs):
        params = make_params(n=300)
        counts = biased_counts(300, 3, 2.0)
        sim = SingleLeaderSim(params, counts, rngs.stream("ticks"))
        result = sim.run(max_time=100.0)
        assert result.info["good_ticks"] <= result.info["total_ticks"]
        # Ticks arrive at aggregate rate n: expect ~n*T total ticks.
        expected = 300 * result.elapsed
        assert result.info["total_ticks"] == pytest.approx(expected, rel=0.2)


class TestPhaseRecords:
    def test_births_match_leader_propagation_flips(self, rngs):
        params = make_params(n=500)
        counts = biased_counts(500, 3, 2.0)
        sim = SingleLeaderSim(params, counts, rngs.stream("phases"))
        sim.run(max_time=800.0)
        flips = sim.leader.propagation_times()
        recorded = {birth.generation for birth in sim.births}
        assert recorded == set(flips)

    def test_two_choices_window_near_two_units(self, rngs):
        params = make_params(n=800)
        counts = biased_counts(800, 3, 2.0)
        sim = SingleLeaderSim(params, counts, rngs.stream("window"))
        sim.run(max_time=800.0)
        births = sim.leader.generation_birth_times()
        for generation, flip_time in sim.leader.propagation_times().items():
            window = (flip_time - births[generation]) / params.time_unit
            # Proposition 16: ~2 units (loose factor for small n).
            assert 1.0 < window < 4.0

    def test_trajectory_sampler(self, rngs):
        params = make_params(n=300)
        counts = biased_counts(300, 3, 2.0)
        result = run_single_leader(
            params, counts, rngs.stream("sampler"), max_time=50.0, record_every=5.0
        )
        assert len(result.trajectory) >= 8
        times = [s.time for s in result.trajectory]
        assert times == sorted(times)
