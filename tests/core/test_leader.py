"""Unit tests for the Algorithm 3 leader state machine."""

from __future__ import annotations

import pytest

from repro.core.leader import Leader
from repro.core.params import SingleLeaderParams


@pytest.fixture()
def params() -> SingleLeaderParams:
    return SingleLeaderParams(n=100, k=3, alpha0=2.0)


class TestInitialState:
    def test_starts_at_generation_one_two_choices(self, params):
        leader = Leader(params)
        assert leader.state == (1, False)
        assert leader.phase_changes == []


class TestZeroSignals:
    def test_prop_flips_at_threshold(self, params):
        leader = Leader(params)
        for index in range(params.prop_signal_threshold):
            assert not leader.prop
            leader.on_signal(0, time=float(index))
        assert leader.prop
        assert leader.phase_changes[-1].kind == "propagation"
        assert leader.phase_changes[-1].generation == 1

    def test_zero_signals_counted(self, params):
        leader = Leader(params)
        for _ in range(10):
            leader.on_signal(0, time=0.0)
        assert leader.zero_signals == 10


class TestGenSignals:
    def test_generation_birth_at_half(self, params):
        leader = Leader(params)
        for index in range(params.gen_size_threshold):
            leader.on_signal(1, time=float(index))
        assert leader.gen == 2
        assert not leader.prop  # reset for the new two-choices phase
        assert leader.tick_count == 0
        assert leader.gen_size == 0
        assert leader.phase_changes[-1].kind == "generation"

    def test_stale_generation_signals_ignored(self, params):
        leader = Leader(params)
        for index in range(params.gen_size_threshold):
            leader.on_signal(1, time=float(index))
        assert leader.gen == 2
        # Old generation-1 signals no longer move the counter.
        leader.on_signal(1, time=99.0)
        assert leader.gen_size == 0

    def test_generation_capped_at_budget(self, params):
        leader = Leader(params)
        for _ in range(params.max_generation + 5):
            current = leader.gen
            for _ in range(params.gen_size_threshold):
                leader.on_signal(current, time=0.0)
        assert leader.gen == params.max_generation

    def test_prop_resets_per_generation(self, params):
        leader = Leader(params)
        for index in range(params.prop_signal_threshold):
            leader.on_signal(0, time=float(index))
        assert leader.prop
        for index in range(params.gen_size_threshold):
            leader.on_signal(1, time=0.0)
        assert leader.gen == 2
        assert not leader.prop


class TestTimelines:
    def test_birth_and_propagation_maps(self, params):
        leader = Leader(params)
        for index in range(params.prop_signal_threshold):
            leader.on_signal(0, time=float(index))
        for _ in range(params.gen_size_threshold):
            leader.on_signal(1, time=50.0)
        births = leader.generation_birth_times()
        props = leader.propagation_times()
        assert births[1] == 0.0
        assert births[2] == 50.0
        # The flip fires on the threshold-th 0-signal, stamped index-1.
        assert props[1] == float(params.prop_signal_threshold - 1)
