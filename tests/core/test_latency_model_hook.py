"""Tests for general latency laws in the single-leader protocol."""

from __future__ import annotations

import pytest

from repro.core.params import SingleLeaderParams
from repro.core.single_leader import SingleLeaderSim
from repro.engine.latency import (
    ChannelPlan,
    ConstantLatency,
    ExponentialLatency,
    GammaLatency,
    empirical_time_unit,
    time_unit_steps,
)
from repro.errors import ConfigurationError
from repro.workloads.opinions import biased_counts


class TestEmpiricalTimeUnit:
    def test_matches_closed_form_for_exponential(self, rng):
        empirical = empirical_time_unit(ExponentialLatency(1.0), rng, samples=200_000)
        assert empirical == pytest.approx(time_unit_steps(1.0), rel=0.03)

    def test_constant_latency_unit(self, rng):
        # Constant(1): T3 = 2*(1+1) + Exp(1); quantile(0.9) of Exp(1) ~ 2.303.
        empirical = empirical_time_unit(ConstantLatency(1.0), rng, samples=200_000)
        assert empirical == pytest.approx(4.0 + 2.302585, rel=0.03)

    def test_sequential_plan_larger(self, rng):
        concurrent = empirical_time_unit(ExponentialLatency(1.0), rng, samples=50_000)
        sequential = empirical_time_unit(
            ExponentialLatency(1.0), rng, plan=ChannelPlan.SEQUENTIAL, samples=50_000
        )
        assert sequential > concurrent

    def test_no_channels_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            empirical_time_unit(
                ExponentialLatency(1.0), rng, random_contacts=0, leader_contacts=0
            )


class TestLatencyModelHook:
    def test_protocol_correct_under_gamma_latency(self, rngs):
        params = SingleLeaderParams(n=500, k=3, alpha0=2.5)
        counts = biased_counts(500, 3, 2.5)
        sim = SingleLeaderSim(
            params, counts, rngs.stream("gamma"),
            latency_model=GammaLatency(shape=0.5, rate=0.5),
        )
        result = sim.run(max_time=4000.0)
        assert result.converged
        assert result.plurality_won

    def test_protocol_correct_under_constant_latency(self, rngs):
        params = SingleLeaderParams(n=500, k=3, alpha0=2.5)
        counts = biased_counts(500, 3, 2.5)
        sim = SingleLeaderSim(
            params, counts, rngs.stream("const"), latency_model=ConstantLatency(1.0)
        )
        result = sim.run(max_time=4000.0)
        assert result.converged
        assert result.plurality_won

    def test_default_model_unchanged(self, rngs):
        """Without the hook the simulator draws Exp(params.latency_rate)."""
        params = SingleLeaderParams(n=300, k=2, alpha0=3.0, latency_rate=2.0)
        counts = biased_counts(300, 2, 3.0)
        sim = SingleLeaderSim(params, counts, rngs.stream("default"))
        result = sim.run(max_time=2000.0)
        assert result.converged
