"""Tests for the mechanism-ablation variants."""

from __future__ import annotations

import pytest

from repro.core.schedule import AlwaysTwoChoices, FixedSchedule
from repro.core.synchronous import AggregateSynchronousSim
from repro.errors import ConfigurationError
from repro.workloads.opinions import biased_counts


class TestAlwaysTwoChoices:
    def test_fires_budget_then_stops(self):
        schedule = AlwaysTwoChoices(max_generation=3)
        fired = [schedule.is_two_choices_step(step, 0.0) for step in range(1, 10)]
        assert fired == [True, True, True] + [False] * 6

    def test_reset(self):
        schedule = AlwaysTwoChoices(max_generation=1)
        assert schedule.is_two_choices_step(1, 0.0)
        assert not schedule.is_two_choices_step(2, 0.0)
        schedule.reset()
        assert schedule.is_two_choices_step(1, 0.0)

    def test_no_growth_phase_stalls_consensus(self, rngs):
        # The stall needs a modest bias and several colors: at high alpha
        # the few nodes surviving consecutive paired promotions are pure
        # enough to win anyway.
        n, k, alpha = 100_000, 8, 1.5
        schedule = AlwaysTwoChoices(
            max_generation=FixedSchedule(n=n, k=k, alpha0=alpha).max_generation
        )
        sim = AggregateSynchronousSim(biased_counts(n, k, alpha), schedule, rngs.stream("a"))
        result = sim.run(max_steps=400)
        # Back-to-back births leave a mixed top generation: no consensus.
        assert not result.converged


class TestSingleSamplePromotion:
    def test_invalid_mode_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            AggregateSynchronousSim(
                biased_counts(100, 2, 2.0),
                FixedSchedule(n=100, k=2, alpha0=2.0),
                rng,
                promotion="triple",
            )

    def test_conserves_population(self, rngs):
        n, k, alpha = 10_000, 4, 2.0
        sim = AggregateSynchronousSim(
            biased_counts(n, k, alpha),
            FixedSchedule(n=n, k=k, alpha0=alpha),
            rngs.stream("s"),
            promotion="single",
        )
        for _ in range(20):
            sim.step()
            assert sim.matrix.sum() == n

    def test_no_amplification(self, rngs):
        """Single-sample promotion must not purify the top generation."""
        n, k, alpha = 100_000, 4, 1.5
        pair = AggregateSynchronousSim(
            biased_counts(n, k, alpha),
            FixedSchedule(n=n, k=k, alpha0=alpha),
            rngs.stream("pair"),
            promotion="pair",
        )
        single = AggregateSynchronousSim(
            biased_counts(n, k, alpha),
            FixedSchedule(n=n, k=k, alpha0=alpha),
            rngs.stream("single"),
            promotion="single",
        )
        pair_result = pair.run(max_steps=400)
        single_result = single.run(max_steps=400)
        assert pair_result.converged
        assert not single_result.converged
