"""Tests for Algorithm 1 — both synchronous simulators."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.schedule import AdaptiveSchedule, FixedSchedule
from repro.core.synchronous import (
    AggregateSynchronousSim,
    PerNodeSynchronousSim,
    run_synchronous,
)
from repro.engine.rng import RngRegistry
from repro.errors import ConfigurationError
from repro.workloads.opinions import biased_counts


def make_schedule(n, k, alpha, **kwargs):
    return FixedSchedule(n=n, k=k, alpha0=alpha, **kwargs)


class TestConservation:
    @pytest.mark.parametrize("engine_cls", [PerNodeSynchronousSim, AggregateSynchronousSim])
    def test_node_count_preserved(self, engine_cls, rng):
        counts = biased_counts(2000, 4, 1.5)
        sim = engine_cls(counts, make_schedule(2000, 4, 1.5), rng)
        for _ in range(15):
            sim.step()
            assert sim.generation_color_matrix().sum() == 2000

    @given(
        n=st.integers(min_value=50, max_value=2000),
        k=st.integers(min_value=2, max_value=6),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=20, deadline=None)
    def test_aggregate_conservation_property(self, n, k, seed):
        rng = RngRegistry(seed).stream("prop")
        counts = biased_counts(n, k, 1.8)
        sim = AggregateSynchronousSim(counts, make_schedule(n, k, 1.8), rng)
        for _ in range(10):
            sim.step()
        matrix = sim.generation_color_matrix()
        assert matrix.sum() == n
        assert (matrix >= 0).all()


class TestMonotonicity:
    def test_generations_never_decrease_pernode(self, rng):
        counts = biased_counts(1000, 3, 2.0)
        sim = PerNodeSynchronousSim(counts, make_schedule(1000, 3, 2.0), rng)
        previous = sim.generations.copy()
        for _ in range(20):
            sim.step()
            assert (sim.generations >= previous).all()
            previous = sim.generations.copy()

    def test_top_generation_bounded_by_schedule(self, rng):
        counts = biased_counts(1000, 3, 2.0)
        schedule = make_schedule(1000, 3, 2.0)
        sim = PerNodeSynchronousSim(counts, schedule, rng)
        for _ in range(200):
            sim.step()
        assert sim.generations.max() <= schedule.max_generation


class TestConvergence:
    @pytest.mark.parametrize("engine", ["aggregate", "pernode"])
    def test_plurality_wins_with_clear_bias(self, engine, rngs):
        counts = biased_counts(20_000, 4, 2.0)
        result = run_synchronous(
            counts, make_schedule(20_000, 4, 2.0), rngs.stream(engine), engine=engine,
            max_steps=500,
        )
        assert result.converged
        assert result.plurality_won
        assert result.final_color_counts[result.winner] == 20_000

    def test_two_opinions_two_nodes_edge_case(self, rng):
        counts = np.array([1, 1])
        schedule = make_schedule(2, 2, 1.5)
        result = run_synchronous(counts, schedule, rng, engine="pernode", max_steps=200)
        # With n=2 each node's only neighbor is the other; pull voting
        # may swap forever, but the run must terminate cleanly either way.
        assert result.elapsed <= 200

    def test_epsilon_before_full_consensus(self, rngs):
        counts = biased_counts(50_000, 4, 1.5)
        result = run_synchronous(
            counts, make_schedule(50_000, 4, 1.5), rngs.stream("eps"),
            max_steps=500, epsilon=0.05,
        )
        assert result.converged
        assert result.epsilon_convergence_time is not None
        assert result.epsilon_convergence_time <= result.elapsed

    def test_budget_exhaustion_reports_not_converged(self, rng):
        counts = biased_counts(5000, 4, 1.5)
        result = run_synchronous(counts, make_schedule(5000, 4, 1.5), rng, max_steps=2)
        assert not result.converged
        assert result.elapsed == 2.0

    def test_adaptive_schedule_converges(self, rngs):
        counts = biased_counts(20_000, 4, 2.0)
        schedule = AdaptiveSchedule(n=20_000, alpha0=2.0)
        result = run_synchronous(counts, schedule, rngs.stream("adaptive"), max_steps=500)
        assert result.converged
        assert result.plurality_won


class TestBirthsAndTrajectory:
    def test_births_recorded_in_order(self, rngs):
        counts = biased_counts(50_000, 4, 1.5)
        result = run_synchronous(
            counts, make_schedule(50_000, 4, 1.5), rngs.stream("births"), max_steps=500
        )
        generations = [b.generation for b in result.births]
        assert generations == sorted(generations)
        assert generations[0] == 1
        for birth in result.births:
            assert 0.0 < birth.fraction <= 1.0

    def test_bias_squares_along_births(self, rngs):
        counts = biased_counts(200_000, 4, 1.5)
        result = run_synchronous(
            counts, make_schedule(200_000, 4, 1.5), rngs.stream("sq"), max_steps=500
        )
        finite = [b.bias for b in result.births if np.isfinite(b.bias)]
        # Bias strictly grows generation over generation.
        assert all(b > a for a, b in zip(finite, finite[1:]))

    def test_trajectory_recording(self, rngs):
        counts = biased_counts(10_000, 3, 2.0)
        result = run_synchronous(
            counts, make_schedule(10_000, 3, 2.0), rngs.stream("traj"),
            max_steps=300, record_trajectory=True,
        )
        assert len(result.trajectory) == int(result.elapsed)
        fractions = [s.plurality_fraction for s in result.trajectory]
        assert fractions[-1] == pytest.approx(1.0)


class TestCrossEngineAgreement:
    def test_same_convergence_statistics(self, rngs):
        """Aggregate and per-node engines agree statistically."""
        counts = biased_counts(5000, 3, 2.0)
        agg_steps = []
        pn_steps = []
        for rep in range(5):
            agg = run_synchronous(
                counts, make_schedule(5000, 3, 2.0), rngs.stream(f"agg/{rep}"),
                engine="aggregate", max_steps=400,
            )
            pn = run_synchronous(
                counts, make_schedule(5000, 3, 2.0), rngs.stream(f"pn/{rep}"),
                engine="pernode", max_steps=400,
            )
            assert agg.plurality_won and pn.plurality_won
            agg_steps.append(agg.elapsed)
            pn_steps.append(pn.elapsed)
        assert abs(np.mean(agg_steps) - np.mean(pn_steps)) < 6.0


class TestValidation:
    def test_unknown_engine_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            run_synchronous(
                biased_counts(100, 2, 2.0), make_schedule(100, 2, 2.0), rng,
                engine="quantum",
            )

    def test_deterministic_replay(self):
        counts = biased_counts(5000, 4, 1.5)
        first = run_synchronous(
            counts, make_schedule(5000, 4, 1.5), RngRegistry(7).stream("x"),
            max_steps=300,
        )
        second = run_synchronous(
            counts, make_schedule(5000, 4, 1.5), RngRegistry(7).stream("x"),
            max_steps=300,
        )
        assert first.elapsed == second.elapsed
        assert (first.final_color_counts == second.final_color_counts).all()
