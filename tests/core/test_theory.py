"""Tests for the closed-form theory module."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.theory import (
    collision_probability_floor,
    final_pull_steps,
    generation_lifecycle_length,
    generations_to_bias_k,
    generations_to_monochromatic,
    lemma4_delta,
    log_alpha_after_generations,
    minimum_bias,
    predict_asynchronous,
    predict_synchronous,
    total_generations,
)
from repro.errors import ConfigurationError


class TestMinimumBias:
    def test_formula(self):
        n, k = 10_000, 4
        expected = 1.0 + k * math.log2(n) / math.sqrt(n) * math.log2(k)
        assert minimum_bias(n, k) == pytest.approx(expected)

    def test_decreases_in_n(self):
        assert minimum_bias(10_000, 8) > minimum_bias(1_000_000, 8)

    def test_increases_in_k(self):
        assert minimum_bias(10_000, 16) > minimum_bias(10_000, 4)


class TestLogAlphaRecursion:
    def test_squaring_in_log_space(self):
        assert log_alpha_after_generations(2.0, 0) == pytest.approx(math.log(2.0))
        assert log_alpha_after_generations(2.0, 3) == pytest.approx(8 * math.log(2.0))

    def test_no_overflow_for_many_generations(self):
        value = log_alpha_after_generations(1.5, 60)
        assert math.isfinite(value)

    def test_invalid_alpha(self):
        with pytest.raises(ConfigurationError):
            log_alpha_after_generations(1.0, 3)


class TestLifecycleLength:
    def test_positive_and_finite(self):
        for i in range(0, 12):
            x = generation_lifecycle_length(i, 1.3, 8)
            assert math.isfinite(x)
            assert x > 0

    def test_order_log_k(self):
        # X_0 ~ O(log k): roughly ln(k)/ln(2-gamma) + constants.
        small = generation_lifecycle_length(1, 1.01, 4)
        large = generation_lifecycle_length(1, 1.01, 4096)
        assert large > small
        assert large < 40  # still logarithmic, not polynomial

    def test_decreases_for_late_generations(self):
        # Once the bias dwarfs k, 2 ln(alpha^{2^{i-1}}+k-1) cancels
        # ln(alpha^{2^i}+k-1) and X_i approaches the constant floor
        # (-ln gamma)/ln(2-gamma) + 2.
        early = generation_lifecycle_length(1, 1.3, 8)
        late = generation_lifecycle_length(10, 1.3, 8)
        assert late < early
        floor = -math.log(0.5) / math.log(1.5) + 2
        assert late == pytest.approx(floor, rel=0.05)

    def test_invalid_gamma(self):
        with pytest.raises(ConfigurationError):
            generation_lifecycle_length(1, 1.3, 8, gamma=1.0)


class TestGenerationCounts:
    def test_corollary10(self):
        # alpha=sqrt(k): log log_alpha k = 1, so <= 2 generations.
        assert generations_to_bias_k(4.0, 16) == 2

    def test_bias_already_large(self):
        assert generations_to_bias_k(100.0, 10) == 1

    def test_lemma11(self):
        assert generations_to_monochromatic(10, 10_000_000_000) >= 2

    def test_total_generations_composition(self):
        n, k, alpha = 1_000_000, 16, 1.2
        assert (
            total_generations(n, alpha)
            <= generations_to_bias_k(alpha, k) + generations_to_monochromatic(k, n) + 1
        )

    @given(
        alpha=st.floats(min_value=1.001, max_value=100.0),
        n=st.integers(min_value=10, max_value=10**9),
    )
    @settings(max_examples=100)
    def test_total_generations_achieves_n(self, alpha, n):
        # After G* squarings the idealized bias exceeds n (the defining
        # property of G*).
        g_star = total_generations(n, alpha)
        assert log_alpha_after_generations(alpha, g_star) >= math.log(n) - 1e-6


class TestErrorTerms:
    def test_lemma4_delta_formula(self):
        n, k, alpha = 10_000, 8, 20.0
        expected = math.sqrt(6 * math.log2(n) / n) * 20.0
        assert lemma4_delta(n, k, alpha) == pytest.approx(expected)

    def test_uses_max_of_k_and_alpha(self):
        assert lemma4_delta(10_000, 8, 2.0) == lemma4_delta(10_000, 8, 7.9)

    def test_final_pull_grows_doubly_log(self):
        assert final_pull_steps(10**6) < final_pull_steps(10**12)
        assert final_pull_steps(10**12) < 10


class TestCollisionFloor:
    def test_matches_remark2(self):
        assert collision_probability_floor(2.0, 4) == pytest.approx((4 + 3) / 25)

    def test_capped_at_one(self):
        assert collision_probability_floor(1e9, 2) <= 1.0


class TestPredictions:
    def test_synchronous_prediction_structure(self):
        pred = predict_synchronous(100_000, 8, 1.5)
        assert pred.total_generation_count == len(pred.lifecycle_steps)
        assert pred.total_steps > pred.final_pull

    def test_synchronous_prediction_monotone_in_k(self):
        small = predict_synchronous(100_000, 4, 1.5).total_steps
        large = predict_synchronous(100_000, 64, 1.5).total_steps
        assert large > small

    def test_asynchronous_prediction_structure(self):
        pred = predict_asynchronous(10_000, 4, 2.0)
        assert pred.generation_count == len(pred.propagation_units_per_generation)
        assert pred.two_choices_units == pytest.approx(2.0)
        assert pred.total_units > 0

    def test_asynchronous_growth_factor_validation(self):
        with pytest.raises(ConfigurationError):
            predict_asynchronous(10_000, 4, 2.0, growth_factor=1.0)
