"""Tests for two-choices schedules."""

from __future__ import annotations

import pytest

from repro.core.schedule import AdaptiveSchedule, FixedSchedule
from repro.core.theory import total_generations
from repro.errors import ConfigurationError


class TestFixedSchedule:
    def test_first_step_is_two_choices(self):
        schedule = FixedSchedule(n=10_000, k=4, alpha0=1.5)
        assert schedule.is_two_choices_step(1, 1.0)

    def test_times_strictly_increasing(self):
        schedule = FixedSchedule(n=100_000, k=8, alpha0=1.3)
        times = schedule.two_choices_times
        assert times[0] == 1
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_one_time_per_generation(self):
        schedule = FixedSchedule(n=100_000, k=8, alpha0=1.3)
        assert len(schedule.two_choices_times) == schedule.max_generation

    def test_generation_born_at(self):
        schedule = FixedSchedule(n=100_000, k=8, alpha0=1.3)
        assert schedule.generation_born_at(1) == 1
        second = schedule.two_choices_times[1]
        assert schedule.generation_born_at(second) == 2
        assert schedule.generation_born_at(second - 1) is None

    def test_non_scheduled_steps_are_propagation(self):
        schedule = FixedSchedule(n=100_000, k=8, alpha0=1.3)
        scheduled = set(schedule.two_choices_times)
        probe = next(t for t in range(1, 1000) if t not in scheduled)
        assert not schedule.is_two_choices_step(probe, 1.0)

    def test_max_generation_includes_margin(self):
        schedule = FixedSchedule(n=100_000, k=8, alpha0=1.5, extra_generations=3)
        assert schedule.max_generation == total_generations(100_000, 1.5) + 3

    def test_invalid_alpha(self):
        with pytest.raises(ConfigurationError):
            FixedSchedule(n=100, k=4, alpha0=1.0)

    def test_invalid_gamma(self):
        with pytest.raises(ConfigurationError):
            FixedSchedule(n=100, k=4, alpha0=1.5, gamma=0.0)

    def test_negative_margin_rejected(self):
        with pytest.raises(ConfigurationError):
            FixedSchedule(n=100, k=4, alpha0=1.5, extra_generations=-1)

    def test_larger_gamma_longer_schedule(self):
        # X_i = (... - ln gamma)/ln(2-gamma) + 2 blows up as gamma -> 1.
        tight = FixedSchedule(n=100_000, k=8, alpha0=1.3, gamma=0.5)
        loose = FixedSchedule(n=100_000, k=8, alpha0=1.3, gamma=0.95)
        assert max(loose.two_choices_times) > max(tight.two_choices_times)


class TestAdaptiveSchedule:
    def test_first_step_fires(self):
        schedule = AdaptiveSchedule(n=10_000, alpha0=1.5)
        assert schedule.is_two_choices_step(1, 0.0)

    def test_fires_on_density(self):
        schedule = AdaptiveSchedule(n=10_000, alpha0=1.5, gamma=0.5)
        schedule.is_two_choices_step(1, 0.0)
        assert not schedule.is_two_choices_step(2, 0.3)
        assert schedule.is_two_choices_step(3, 0.6)

    def test_budget_exhausts(self):
        schedule = AdaptiveSchedule(n=100, alpha0=2.0, extra_generations=0)
        fired = sum(
            schedule.is_two_choices_step(step, 1.0) for step in range(1, 100)
        )
        assert fired == schedule.max_generation

    def test_reset_restores_budget(self):
        schedule = AdaptiveSchedule(n=100, alpha0=2.0, extra_generations=0)
        for step in range(1, 50):
            schedule.is_two_choices_step(step, 1.0)
        schedule.reset()
        assert schedule.is_two_choices_step(1, 0.0)

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            AdaptiveSchedule(n=100, alpha0=0.9)
        with pytest.raises(ConfigurationError):
            AdaptiveSchedule(n=100, alpha0=1.5, gamma=1.5)
