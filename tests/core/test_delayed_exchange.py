"""Tests for the Section 5 delayed-exchange extension."""

from __future__ import annotations

import pytest

from repro.core.delayed_exchange import DelayedExchangeSim
from repro.core.params import SingleLeaderParams
from repro.core.single_leader import SingleLeaderSim
from repro.engine.rng import RngRegistry
from repro.errors import ConfigurationError
from repro.workloads.opinions import biased_counts


@pytest.fixture()
def params() -> SingleLeaderParams:
    return SingleLeaderParams(n=500, k=3, alpha0=2.5)


@pytest.fixture()
def counts(params):
    return biased_counts(params.n, params.k, 2.5)


class TestValidation:
    def test_exchange_rate_must_be_positive(self, params, counts, rng):
        with pytest.raises(ConfigurationError):
            DelayedExchangeSim(params, counts, rng, exchange_rate=0.0)


class TestCorrectness:
    def test_consensus_with_delays(self, params, counts, rngs):
        sim = DelayedExchangeSim(params, counts, rngs.stream("dx"), exchange_rate=1.0)
        result = sim.run(max_time=4000.0)
        assert result.converged
        assert result.plurality_won

    def test_commit_accounting(self, params, counts, rngs):
        sim = DelayedExchangeSim(params, counts, rngs.stream("dx2"), exchange_rate=1.0)
        sim.run(max_time=4000.0)
        assert sim.committed_updates > 0
        total = sim.committed_updates + sim.aborted_updates
        # Aborts happen (leader states do change) but stay a minority.
        assert 0 <= sim.aborted_updates / total < 0.5

    def test_invariant_node_gen_below_leader(self, params, counts, rngs):
        sim = DelayedExchangeSim(params, counts, rngs.stream("dx3"), exchange_rate=0.5)
        for _ in range(20):
            sim.sim.run(max_events=3000)
            assert int(sim.gens.max()) <= sim.leader.gen
            assert sim.matrix.sum() == params.n
            if not sim.sim.queue:
                break

    def test_slower_exchange_slower_consensus(self, params, counts):
        fast = DelayedExchangeSim(
            params, counts, RngRegistry(1).stream("f"), exchange_rate=8.0
        ).run(max_time=8000.0)
        slow = DelayedExchangeSim(
            params, counts, RngRegistry(1).stream("f"), exchange_rate=0.25
        ).run(max_time=8000.0)
        assert fast.converged and slow.converged
        assert slow.elapsed > fast.elapsed

    def test_costs_more_than_instant_model(self, params, counts):
        instant = SingleLeaderSim(params, counts, RngRegistry(2).stream("i")).run(
            max_time=8000.0
        )
        delayed = DelayedExchangeSim(
            params, counts, RngRegistry(2).stream("i"), exchange_rate=1.0
        ).run(max_time=8000.0)
        assert delayed.elapsed > instant.elapsed

    def test_deterministic_replay(self, params, counts):
        runs = [
            DelayedExchangeSim(
                params, counts, RngRegistry(5).stream("r"), exchange_rate=1.0
            ).run(max_time=4000.0)
            for _ in range(2)
        ]
        assert runs[0].elapsed == runs[1].elapsed
