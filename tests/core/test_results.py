"""Tests for shared result types."""

from __future__ import annotations

import numpy as np

from repro.core.results import GenerationBirth, RunResult, StepStats


def make_result(**overrides) -> RunResult:
    defaults = dict(
        converged=True,
        winner=0,
        plurality_color=0,
        elapsed=12.0,
        final_color_counts=np.array([100, 0]),
    )
    defaults.update(overrides)
    return RunResult(**defaults)


class TestRunResult:
    def test_plurality_won(self):
        assert make_result().plurality_won
        assert not make_result(winner=1).plurality_won

    def test_summary_mentions_outcome(self):
        text = make_result().summary()
        assert "consensus" in text
        assert "ok=True" in text

    def test_summary_non_converged(self):
        text = make_result(converged=False).summary()
        assert "no-consensus" in text

    def test_optional_fields_default_empty(self):
        result = make_result()
        assert result.trajectory == []
        assert result.births == []
        assert result.info == {}
        assert result.epsilon_convergence_time is None


class TestStepStats:
    def test_as_dict_roundtrip(self):
        stats = StepStats(
            time=3.0,
            top_generation=2,
            top_generation_fraction=0.4,
            plurality_fraction=0.7,
            bias=2.5,
        )
        data = stats.as_dict()
        assert data["time"] == 3.0
        assert data["bias"] == 2.5
        assert set(data) == {
            "time",
            "top_generation",
            "top_generation_fraction",
            "plurality_fraction",
            "bias",
        }


class TestGenerationBirth:
    def test_frozen_fields(self):
        birth = GenerationBirth(
            generation=1, time=2.0, fraction=0.1, bias=2.0, collision_probability=0.3
        )
        assert birth.generation == 1
        assert birth.fraction == 0.1
