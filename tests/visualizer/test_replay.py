"""Tests for the static-HTML trace replay."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.visualizer import build_replay_data, render_replay_html, write_replay_html


@pytest.fixture
def trace_path(tmp_path):
    records = [
        {"kind": "run", "t": 0.0, "protocol": "single_leader", "n": 4, "k": 2,
         "counts": [3, 1]},
        {"kind": "state", "t": 1.0, "node": 2, "gen": 1, "col": 0,
         "old_gen": 0, "old_col": 1},
        {"kind": "phase", "t": 2.0, "event": "generation", "gen": 2},
        {"kind": "fault", "t": 2.5, "event": "dropped-message", "node": 1},
        {"kind": "end", "t": 4.0, "converged": True, "counts": [4, 0]},
    ]
    path = tmp_path / "trace.jsonl"
    path.write_text("\n".join(json.dumps(r) for r in records) + "\n")
    return path


def embedded_payload(html: str) -> dict:
    start = html.index('type="application/json">') + len('type="application/json">')
    end = html.index("</script>", start)
    return json.loads(html[start:end].replace("<\\/", "</"))


class TestBuildReplayData:
    def test_payload_shape(self, trace_path):
        data = build_replay_data(trace_path)
        assert data["trace"] == "trace.jsonl"
        (segment,) = data["segments"]
        assert segment["protocol"] == "single_leader"
        assert segment["n"] == 4
        assert segment["series"] == [[3, 4], [1, 0]]
        assert segment["times"] == [0.0, 1.0]
        assert segment["phases"] == [{"t": 1.0, "gen": 1}, {"t": 2.0, "gen": 2}]
        assert segment["faults"] == [{"t": 2.5, "event": "dropped-message"}]
        assert segment["converged"] is True

    def test_empty_trace_rejected(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(ConfigurationError, match="empty"):
            build_replay_data(empty)


class TestRenderHtml:
    def test_self_contained_and_round_trippable(self, trace_path):
        html = render_replay_html(build_replay_data(trace_path), title="my replay")
        assert "<title>my replay</title>" in html
        assert "polyline" in html and "replay-data" in html
        # no external fetches: self-contained is the whole point
        # (the SVG namespace URI is an identifier, not a request)
        assert "<script src" not in html
        assert "<link" not in html
        assert "fetch(" not in html and "XMLHttpRequest" not in html
        assert embedded_payload(html)["segments"][0]["protocol"] == "single_leader"

    def test_script_close_tag_escaped_in_payload(self, trace_path):
        data = build_replay_data(trace_path)
        data["segments"][0]["protocol"] = "</script><b>bad</b>"
        html = render_replay_html(data)
        body = html[html.index('type="application/json">'):]
        payload_segment = body[: body.index("</script>")]
        assert "</script" not in payload_segment
        assert embedded_payload(html)["segments"][0]["protocol"] == "</script><b>bad</b>"


class TestWriteReplayHtml:
    def test_default_output_path(self, trace_path):
        out = write_replay_html(trace_path)
        assert out == trace_path.with_suffix(".html")
        assert out.read_text().startswith("<!DOCTYPE html>")

    def test_real_run_end_to_end(self, tmp_path):
        from repro.core.params import SingleLeaderParams
        from repro.core.single_leader import run_single_leader
        from repro.engine.tracing import JsonlTracer

        path = tmp_path / "run.jsonl"
        with JsonlTracer(path) as tracer:
            run_single_leader(
                SingleLeaderParams(n=60, k=2, alpha0=2.0),
                np.array([40, 20]),
                np.random.Generator(np.random.PCG64(1)),
                tracer=tracer,
            )
        out = write_replay_html(path, tmp_path / "view.html", title="run")
        payload = embedded_payload(out.read_text())
        (segment,) = payload["segments"]
        assert segment["series"][0][0] == 40
        assert len(segment["times"]) == len(segment["series"][0])
