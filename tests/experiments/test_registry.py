"""Tests for the experiment registry and result rendering."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.common import ExperimentResult
from repro.experiments.registry import (
    EXPERIMENTS,
    experiment_ids,
    get_experiment,
    run_experiment,
)

EXPECTED_IDS = {
    "fig1",
    "fig2",
    "thm1",
    "gamma",
    "bias2",
    "growth",
    "thm13",
    "thm26",
    "thm27",
    "thm28",
    "ablation",
    "ext-delayed",
    "ext-distributions",
    "baselines",
    "robustness",
}


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        assert set(experiment_ids()) == EXPECTED_IDS

    def test_lookup(self):
        experiment = get_experiment("fig1")
        assert experiment.name == "fig1"
        assert "Figure 1" in experiment.artifact

    def test_unknown_name_raises_with_choices(self):
        with pytest.raises(ConfigurationError, match="fig1"):
            get_experiment("nope")

    def test_descriptions_nonempty(self):
        for experiment in EXPERIMENTS.values():
            assert experiment.description
            assert experiment.artifact


class TestFig1EndToEnd:
    """fig1 is pure math (no simulation), cheap enough to run in tests."""

    def test_run_and_render(self):
        result = run_experiment("fig1", quick=True, seed=0)
        assert isinstance(result, ExperimentResult)
        assert result.tables
        text = result.render(plot=True)
        assert "F^{-1}(0.9)" in text
        markdown = result.render_markdown()
        assert markdown.startswith("### fig1")
        assert "|" in markdown

    def test_deterministic(self):
        first = run_experiment("fig1", quick=True, seed=3)
        second = run_experiment("fig1", quick=True, seed=3)
        assert first.tables[0].rows == second.tables[0].rows

    def test_exact_matches_figure_reference_point(self):
        result = run_experiment("fig1", quick=True, seed=0)
        first_row = result.tables[0].rows[0]
        # 1/lambda = 1 -> ~9.13 steps per unit (Figure 1's left edge ~10^1).
        assert first_row[0] == 1.0
        assert first_row[1] == pytest.approx(9.13, abs=0.05)

    def test_erratum_documented(self):
        result = run_experiment("fig1", quick=True, seed=0)
        assert any("Erratum" in note for note in result.notes)
