"""Tests for the experiment infrastructure."""

from __future__ import annotations

import pytest

from repro.engine.rng import RngRegistry
from repro.errors import ConfigurationError
from repro.experiments.common import Experiment, ExperimentResult, ExperimentTable, repeat


class TestExperimentTable:
    def test_render_contains_title_and_cells(self):
        table = ExperimentTable("my title", ["a", "b"], [[1, 2.5]])
        text = table.render()
        assert "my title" in text
        assert "2.5" in text

    def test_render_markdown(self):
        table = ExperimentTable("t", ["a"], [[1]])
        markdown = table.render_markdown()
        assert markdown.startswith("**t**")
        assert "| a |" in markdown


class TestExperimentResult:
    def test_add_table_copies_rows(self):
        result = ExperimentResult(name="x", description="d")
        rows = [[1]]
        result.add_table("t", ["a"], rows)
        rows[0][0] = 99
        assert result.tables[0].rows == [[1]]

    def test_render_includes_notes(self):
        result = ExperimentResult(name="x", description="d", notes=["watch this"])
        assert "watch this" in result.render(plot=False)

    def test_render_markdown_structure(self):
        result = ExperimentResult(name="x", description="d")
        result.add_table("t", ["a"], [[1]])
        markdown = result.render_markdown()
        assert markdown.startswith("### x")


class TestRepeat:
    def test_distinct_streams_per_repetition(self):
        rngs = RngRegistry(0)
        draws = repeat(lambda rng: float(rng.random()), rngs, "r", 5)
        assert len(set(draws)) == 5

    def test_reproducible_across_registries(self):
        first = repeat(lambda rng: float(rng.random()), RngRegistry(7), "r", 3)
        second = repeat(lambda rng: float(rng.random()), RngRegistry(7), "r", 3)
        assert first == second

    def test_zero_repetitions_rejected(self):
        with pytest.raises(ConfigurationError):
            repeat(lambda rng: None, RngRegistry(0), "r", 0)


class TestExperimentEntry:
    def test_runner_invoked_with_flags(self):
        seen = {}

        def runner(*, quick: bool, seed: int) -> ExperimentResult:
            seen["quick"], seen["seed"] = quick, seed
            return ExperimentResult(name="stub", description="")

        experiment = Experiment(name="stub", artifact="a", description="d", runner=runner)
        result = experiment.run(quick=False, seed=9)
        assert result.name == "stub"
        assert seen == {"quick": False, "seed": 9}
