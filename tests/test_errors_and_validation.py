"""Tests for the exception hierarchy and validation helpers."""

from __future__ import annotations

import pytest

from repro.errors import (
    ConfigurationError,
    ConvergenceError,
    ReproError,
    SchedulingError,
    SimulationError,
)
from repro.util.validation import (
    check_fraction,
    check_positive,
    check_positive_int,
    check_probability,
)


class TestErrorHierarchy:
    def test_all_catchable_as_repro_error(self):
        for exc in (ConfigurationError, SimulationError, ConvergenceError, SchedulingError):
            assert issubclass(exc, ReproError)

    def test_configuration_error_is_value_error(self):
        assert issubclass(ConfigurationError, ValueError)

    def test_simulation_error_is_runtime_error(self):
        assert issubclass(SimulationError, RuntimeError)

    def test_convergence_error_elapsed(self):
        error = ConvergenceError("no luck", elapsed=12.5)
        assert error.elapsed == 12.5


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 2.5) == 2.5

    @pytest.mark.parametrize("bad", [0, -1.0, float("nan"), float("inf")])
    def test_rejects(self, bad):
        with pytest.raises(ConfigurationError, match="x"):
            check_positive("x", bad)


class TestCheckPositiveInt:
    def test_accepts(self):
        assert check_positive_int("n", 3) == 3

    def test_minimum_enforced(self):
        with pytest.raises(ConfigurationError):
            check_positive_int("n", 1, minimum=2)

    def test_non_integral_rejected(self):
        with pytest.raises(ConfigurationError):
            check_positive_int("n", 2.5)


class TestCheckProbability:
    @pytest.mark.parametrize("ok", [0.0, 0.5, 1.0])
    def test_accepts_boundaries(self, ok):
        assert check_probability("p", ok) == ok

    @pytest.mark.parametrize("bad", [-0.1, 1.1])
    def test_rejects_outside(self, bad):
        with pytest.raises(ConfigurationError):
            check_probability("p", bad)


class TestCheckFraction:
    def test_accepts_interior(self):
        assert check_fraction("g", 0.5) == 0.5

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.5, 2.0])
    def test_rejects_boundaries(self, bad):
        with pytest.raises(ConfigurationError):
            check_fraction("g", bad)
