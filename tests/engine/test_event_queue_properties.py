"""Hypothesis property tests for the event queues.

The queue is the substrate every protocol trajectory rests on, so its
contract is pinned down property-style: pops come out time-ordered,
ties break FIFO by insertion order, tombstoned events never dispatch,
and ``peek_time``/``pop`` agree under arbitrary interleavings of
pushes, cancels, peeks, and pops.  The batched engine's
:class:`BatchEventQueue` is additionally pinned against the tuple heap:
under arbitrary interleavings of scalar pushes, bulk ``push_many``
blocks, cancels, and pops the two implementations must be
observationally identical.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.events import BatchEventQueue, EventQueue

times = st.floats(min_value=0, max_value=1e6, allow_nan=False)


def noop() -> None:
    pass


class TestOrdering:
    @given(st.lists(times, min_size=1, max_size=200))
    def test_pop_order_is_sorted(self, schedule):
        queue = EventQueue()
        for time in schedule:
            queue.push(time, noop)
        popped = [queue.pop()[0] for _ in range(len(schedule))]
        assert popped == sorted(schedule)

    @given(st.lists(times, min_size=1, max_size=100), st.integers(2, 10))
    def test_equal_timestamps_pop_fifo(self, schedule, dupes):
        # Duplicate every timestamp several times; payloads record the
        # insertion order, which must be preserved within each tie.
        queue = EventQueue()
        order = 0
        for time in schedule:
            for _ in range(dupes):
                queue.push(time, noop, order)
                order += 1
        popped = [queue.pop() for _ in range(order)]
        assert [entry[0] for entry in popped] == sorted(
            entry[0] for entry in popped
        )
        for first, second in zip(popped, popped[1:]):
            if first[0] == second[0]:
                assert first[3] < second[3]  # FIFO within the tie


class TestCancellation:
    @given(
        st.lists(times, min_size=2, max_size=60),
        st.data(),
    )
    def test_tombstoned_events_never_pop(self, schedule, data):
        queue = EventQueue()
        handles = [queue.push(time, noop, index) for index, time in enumerate(schedule)]
        to_cancel = data.draw(
            st.sets(
                st.integers(min_value=0, max_value=len(handles) - 1),
                max_size=len(handles),
            )
        )
        for index in to_cancel:
            queue.cancel(handles[index])
        live = sorted(
            (time, index)
            for index, time in enumerate(schedule)
            if index not in to_cancel
        )
        popped = []
        while queue:
            entry = queue.pop()
            popped.append((entry[0], entry[3]))
            assert entry[3] not in to_cancel
        assert popped == live
        assert len(queue) == 0

    @given(st.lists(times, min_size=1, max_size=60))
    def test_cancel_all_empties_queue(self, schedule):
        queue = EventQueue()
        handles = [queue.push(time, noop) for time in schedule]
        for handle in handles:
            queue.cancel(handle)
        assert not queue
        assert queue.peek_time() is None


@st.composite
def operations(draw):
    """A random interleaving of push/cancel/peek/pop operations."""
    return draw(
        st.lists(
            st.one_of(
                st.tuples(st.just("push"), times),
                st.tuples(st.just("cancel"), st.integers(0, 200)),
                st.tuples(st.just("peek"), st.none()),
                st.tuples(st.just("pop"), st.none()),
            ),
            min_size=1,
            max_size=120,
        )
    )


class TestPeekPopConsistency:
    @settings(max_examples=200)
    @given(operations())
    def test_peek_matches_next_pop_under_interleaving(self, ops):
        queue = EventQueue()
        handles: list[int] = []
        cancelled: set[int] = set()
        for op, value in ops:
            if op == "push":
                handles.append(queue.push(value, noop))
            elif op == "cancel" and handles:
                handle = handles[value % len(handles)]
                queue.cancel(handle)
                cancelled.add(handle)
            elif op == "peek":
                expected = queue.peek_time()
                if expected is None:
                    assert not queue
                else:
                    assert queue  # a live event exists
            elif op == "pop" and queue:
                peeked = queue.peek_time()
                time, seq, _, _ = queue.pop()
                assert time == peeked
                assert seq not in cancelled
        # Drain: whatever survives must still be ordered and live.
        previous = float("-inf")
        while queue:
            time, seq, _, _ = queue.pop()
            assert time >= previous
            assert seq not in cancelled
            previous = time


@st.composite
def mixed_operations(draw):
    """Interleaved scalar pushes, bulk pushes, cancels, and pops."""
    ops = []
    pushed = 0
    for _ in range(draw(st.integers(1, 60))):
        kind = draw(st.sampled_from(["push", "push_many", "cancel", "pop"]))
        if kind == "push":
            ops.append(("push", draw(times)))
            pushed += 1
        elif kind == "push_many":
            block = draw(st.lists(times, min_size=0, max_size=12))
            ops.append(("push_many", block))
            pushed += len(block)
        elif kind == "cancel":
            ops.append(("cancel", draw(st.integers(0, max(0, pushed + 3)))))
        else:
            ops.append(("pop", None))
    return ops


class TestBatchQueueEquivalence:
    """The struct-of-arrays :class:`BatchEventQueue` must be observationally
    identical to the tuple heap under arbitrary interleavings — same pop
    order (time + FIFO tie-break + payload), same peeks, same sizes,
    same tombstone semantics — with bulk pushes exercised only on the
    batched side (the heap receives them as scalar pushes)."""

    @settings(max_examples=200, deadline=None)
    @given(mixed_operations())
    def test_pop_stream_matches_heap(self, ops):
        reference = EventQueue()
        batched = BatchEventQueue()
        for op, arg in ops:
            if op == "push":
                assert reference.push(arg, noop, arg) == batched.push(arg, noop, arg)
            elif op == "push_many":
                for time in arg:
                    reference.push(time, noop, time)
                handles = batched.push_many(arg, noop, list(arg))
                assert len(handles) == len(arg)
            elif op == "cancel":
                reference.cancel(arg)
                batched.cancel(arg)
            else:
                assert len(reference) == len(batched)
                assert reference.peek_time() == batched.peek_time()
                if reference:
                    left = reference.pop()
                    right = batched.pop()
                    assert left[:2] == right[:2]
                    assert left[3] == right[3]
        # Drain both completely: every remaining event agrees too.
        while reference or batched:
            left = reference.pop()
            right = batched.pop()
            assert left[:2] == right[:2]
            assert left[3] == right[3]

    @given(st.lists(times, min_size=1, max_size=50))
    def test_bulk_block_pops_sorted_with_fifo_ties(self, block):
        queue = BatchEventQueue()
        queue.push_many(block, noop, list(range(len(block))))
        popped = [queue.pop() for _ in range(len(block))]
        assert [entry[0] for entry in popped] == sorted(block)
        for first, second in zip(popped, popped[1:]):
            if first[0] == second[0]:
                assert first[3] < second[3]  # FIFO within the tie

    @given(st.lists(times, min_size=1, max_size=30), st.data())
    def test_cancelled_bulk_events_never_pop(self, block, data):
        queue = BatchEventQueue()
        handles = list(queue.push_many(block, noop))
        doomed = set(data.draw(st.lists(st.sampled_from(handles), max_size=10)))
        for handle in doomed:
            queue.cancel(handle)
        assert len(queue) == len(block) - len(doomed)
        survivors = {entry[1] for entry in queue.drain()}
        assert survivors == set(handles) - doomed
