"""Hypothesis property tests for the tuple-based :class:`EventQueue`.

The queue is the substrate every protocol trajectory rests on, so its
contract is pinned down property-style: pops come out time-ordered,
ties break FIFO by insertion order, tombstoned events never dispatch,
and ``peek_time``/``pop`` agree under arbitrary interleavings of
pushes, cancels, peeks, and pops.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.events import EventQueue

times = st.floats(min_value=0, max_value=1e6, allow_nan=False)


def noop() -> None:
    pass


class TestOrdering:
    @given(st.lists(times, min_size=1, max_size=200))
    def test_pop_order_is_sorted(self, schedule):
        queue = EventQueue()
        for time in schedule:
            queue.push(time, noop)
        popped = [queue.pop()[0] for _ in range(len(schedule))]
        assert popped == sorted(schedule)

    @given(st.lists(times, min_size=1, max_size=100), st.integers(2, 10))
    def test_equal_timestamps_pop_fifo(self, schedule, dupes):
        # Duplicate every timestamp several times; payloads record the
        # insertion order, which must be preserved within each tie.
        queue = EventQueue()
        order = 0
        for time in schedule:
            for _ in range(dupes):
                queue.push(time, noop, order)
                order += 1
        popped = [queue.pop() for _ in range(order)]
        assert [entry[0] for entry in popped] == sorted(
            entry[0] for entry in popped
        )
        for first, second in zip(popped, popped[1:]):
            if first[0] == second[0]:
                assert first[3] < second[3]  # FIFO within the tie


class TestCancellation:
    @given(
        st.lists(times, min_size=2, max_size=60),
        st.data(),
    )
    def test_tombstoned_events_never_pop(self, schedule, data):
        queue = EventQueue()
        handles = [queue.push(time, noop, index) for index, time in enumerate(schedule)]
        to_cancel = data.draw(
            st.sets(
                st.integers(min_value=0, max_value=len(handles) - 1),
                max_size=len(handles),
            )
        )
        for index in to_cancel:
            queue.cancel(handles[index])
        live = sorted(
            (time, index)
            for index, time in enumerate(schedule)
            if index not in to_cancel
        )
        popped = []
        while queue:
            entry = queue.pop()
            popped.append((entry[0], entry[3]))
            assert entry[3] not in to_cancel
        assert popped == live
        assert len(queue) == 0

    @given(st.lists(times, min_size=1, max_size=60))
    def test_cancel_all_empties_queue(self, schedule):
        queue = EventQueue()
        handles = [queue.push(time, noop) for time in schedule]
        for handle in handles:
            queue.cancel(handle)
        assert not queue
        assert queue.peek_time() is None


@st.composite
def operations(draw):
    """A random interleaving of push/cancel/peek/pop operations."""
    return draw(
        st.lists(
            st.one_of(
                st.tuples(st.just("push"), times),
                st.tuples(st.just("cancel"), st.integers(0, 200)),
                st.tuples(st.just("peek"), st.none()),
                st.tuples(st.just("pop"), st.none()),
            ),
            min_size=1,
            max_size=120,
        )
    )


class TestPeekPopConsistency:
    @settings(max_examples=200)
    @given(operations())
    def test_peek_matches_next_pop_under_interleaving(self, ops):
        queue = EventQueue()
        handles: list[int] = []
        cancelled: set[int] = set()
        for op, value in ops:
            if op == "push":
                handles.append(queue.push(value, noop))
            elif op == "cancel" and handles:
                handle = handles[value % len(handles)]
                queue.cancel(handle)
                cancelled.add(handle)
            elif op == "peek":
                expected = queue.peek_time()
                if expected is None:
                    assert not queue
                else:
                    assert queue  # a live event exists
            elif op == "pop" and queue:
                peeked = queue.peek_time()
                time, seq, _, _ = queue.pop()
                assert time == peeked
                assert seq not in cancelled
        # Drain: whatever survives must still be ordered and live.
        previous = float("-inf")
        while queue:
            time, seq, _, _ = queue.pop()
            assert time >= previous
            assert seq not in cancelled
            previous = time
