"""Tests for latency models, channel plans, and the time-unit constant."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.latency import (
    ChannelPlan,
    ConstantLatency,
    ExponentialLatency,
    GammaLatency,
    cycle_distribution,
    example15_mean,
    remark14_bound,
    remark14_valid_bound,
    time_unit_steps,
)
from repro.errors import ConfigurationError


class TestLatencyModels:
    def test_exponential_mean(self):
        assert ExponentialLatency(rate=4.0).mean == pytest.approx(0.25)

    def test_exponential_draws(self, rng):
        model = ExponentialLatency(rate=2.0)
        draws = model.draw(rng, size=100_000)
        assert float(np.mean(draws)) == pytest.approx(0.5, rel=0.02)

    def test_exponential_invalid_rate(self):
        with pytest.raises(ConfigurationError):
            ExponentialLatency(rate=0.0)

    def test_constant_latency(self, rng):
        model = ConstantLatency(value=1.5)
        assert model.draw(rng) == 1.5
        assert (model.draw(rng, size=3) == 1.5).all()
        assert model.mean == 1.5

    def test_constant_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            ConstantLatency(value=-1.0)

    def test_gamma_latency_mean(self, rng):
        model = GammaLatency(shape=3.0, rate=2.0)
        assert model.mean == pytest.approx(1.5)
        draws = model.draw(rng, size=100_000)
        assert float(np.mean(draws)) == pytest.approx(1.5, rel=0.02)


class TestCycleDistribution:
    def test_paper_rates_single_leader(self):
        # T3 = [max(E,E)+E] + Exp(1) + [max(E,E)+E] with rates
        # [2λ, λ, λ] + [1] + [2λ, λ, λ].
        dist = cycle_distribution(1.0)
        assert dist.rates == (2.0, 1.0, 1.0, 1.0, 2.0, 1.0, 1.0)

    def test_multileader_rates(self):
        dist = cycle_distribution(1.0, random_contacts=3, leader_contacts=2)
        assert dist.rates == (3.0, 2.0, 1.0, 2.0, 1.0, 1.0, 3.0, 2.0, 1.0, 2.0, 1.0)

    def test_sequential_plan_rates(self):
        dist = cycle_distribution(2.0, plan=ChannelPlan.SEQUENTIAL)
        assert dist.rates == (2.0, 2.0, 2.0, 1.0, 2.0, 2.0, 2.0)

    def test_no_channels_rejected(self):
        with pytest.raises(ConfigurationError):
            cycle_distribution(1.0, random_contacts=0, leader_contacts=0)

    def test_clock_rate_scales_waiting(self):
        fast = cycle_distribution(1.0, clock_rate=4.0)
        assert 4.0 in fast.rates


class TestTimeUnit:
    def test_reference_value_lambda_one(self):
        # The value behind Figure 1's left-most point: ~9.13 steps/unit.
        assert time_unit_steps(1.0) == pytest.approx(9.13, abs=0.05)

    def test_grows_linearly_in_inverse_rate(self):
        small = time_unit_steps(1.0)
        large = time_unit_steps(0.01)
        # 100x the expected latency -> roughly 100x the unit length.
        assert large / small == pytest.approx(100.0, rel=0.2)

    def test_monotone_in_quantile(self):
        assert time_unit_steps(1.0, quantile=0.95) > time_unit_steps(1.0, quantile=0.5)


class TestRemark14:
    def test_paper_bound_formula(self):
        assert remark14_bound(1.0) == pytest.approx(10.0 / 3.0)
        assert remark14_bound(0.5) == pytest.approx(10.0 / 1.5)
        # beta = min(1, lambda): large lambda is capped by the clock rate.
        assert remark14_bound(10.0) == pytest.approx(10.0 / 3.0)

    def test_erratum_paper_bound_violated(self):
        # Reproduction finding: the paper's constant does NOT bound the
        # exact quantile (inequality (12) drops the e^{-beta x} factor).
        assert time_unit_steps(1.0) > remark14_bound(1.0)

    def test_valid_markov_bound_holds(self):
        for rate in (0.1, 0.5, 1.0, 2.0):
            assert time_unit_steps(rate) < remark14_valid_bound(rate)


class TestExample15:
    def test_formula(self):
        assert example15_mean(1.0) == pytest.approx(4.0)
        assert example15_mean(0.1) == pytest.approx(31.0)

    def test_matches_sequential_single_cycle(self):
        # One tick plus three sequential channel establishments.
        lam = 0.5
        dist = cycle_distribution(lam, plan=ChannelPlan.SEQUENTIAL)
        one_cycle = 1.0 + sum(1.0 / r for r in dist.rates[:3])
        assert one_cycle == pytest.approx(example15_mean(lam))


class TestEmpiricalUnitConsistency:
    def test_multileader_contacts_shape(self, rng):
        from repro.engine.latency import empirical_time_unit

        three_two = empirical_time_unit(
            ExponentialLatency(1.0), rng, random_contacts=3, leader_contacts=2,
            samples=50_000,
        )
        exact = time_unit_steps(1.0, random_contacts=3, leader_contacts=2)
        assert three_two == pytest.approx(exact, rel=0.05)
