"""Tests for the discrete-event simulator loop."""

from __future__ import annotations

import pytest

from repro.engine.simulator import Simulator
from repro.engine.tracing import CountingTracer
from repro.errors import SchedulingError


class TestScheduling:
    def test_time_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_schedule_in_past_raises(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        assert sim.now == 5.0
        with pytest.raises(SchedulingError):
            sim.schedule(1.0, lambda: None)

    def test_negative_delay_raises(self):
        with pytest.raises(SchedulingError):
            Simulator().schedule_in(-0.1, lambda: None)

    def test_events_execute_in_order(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, lambda: order.append("b"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(3.0, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]
        assert sim.now == 3.0

    def test_actions_can_schedule_more(self):
        sim = Simulator()
        log = []

        def chain(depth: int):
            log.append(depth)
            if depth < 3:
                sim.schedule_in(1.0, lambda: chain(depth + 1))

        sim.schedule(0.0, lambda: chain(0))
        sim.run()
        assert log == [0, 1, 2, 3]
        assert sim.now == 3.0


class TestRunControls:
    def test_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(10))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0
        # The later event is still pending and can run afterwards.
        sim.run()
        assert fired == [1, 10]

    def test_until_advances_clock_when_queue_empties(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_max_events(self):
        sim = Simulator()
        fired = []
        for index in range(5):
            sim.schedule(float(index), lambda index=index: fired.append(index))
        sim.run(max_events=2)
        assert fired == [0, 1]

    def test_stop_when(self):
        sim = Simulator()
        fired = []
        for index in range(5):
            sim.schedule(float(index), lambda index=index: fired.append(index))
        sim.run(stop_when=lambda: len(fired) >= 3)
        assert fired == [0, 1, 2]

    def test_stop_method(self):
        sim = Simulator()
        fired = []

        def fire_and_stop():
            fired.append(1)
            sim.stop()

        sim.schedule(1.0, fire_and_stop)
        sim.schedule(2.0, lambda: fired.append(2))
        sim.run()
        assert fired == [1]
        sim.run()
        assert fired == [1, 2]

    def test_events_executed_counter(self):
        sim = Simulator()
        for index in range(4):
            sim.schedule(float(index), lambda: None)
        sim.run()
        assert sim.events_executed == 4

    def test_cancel_through_simulator(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, lambda: fired.append("dropped"))
        sim.schedule(2.0, lambda: fired.append("kept"))
        sim.cancel(event)
        sim.run()
        assert fired == ["kept"]


class TestTracerWiring:
    def test_default_tracer_is_null(self):
        assert not Simulator().tracer.enabled_for("anything")

    def test_custom_tracer_attached(self):
        tracer = CountingTracer()
        sim = Simulator(tracer=tracer)
        sim.tracer.record("custom", sim.now)
        assert tracer.counts["custom"] == 1
