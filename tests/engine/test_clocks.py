"""Tests for Poisson clocks."""

from __future__ import annotations

import pytest

from repro.engine.clocks import PoissonClock
from repro.engine.simulator import Simulator
from repro.errors import ConfigurationError


class TestPoissonClock:
    def test_invalid_rate_rejected(self, rng):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            PoissonClock(sim, rng, lambda: None, rate=0.0)

    def test_tick_rate_close_to_nominal(self, rng):
        sim = Simulator()
        ticks = []
        clock = PoissonClock(sim, rng, lambda: ticks.append(sim.now), rate=1.0)
        clock.start()
        sim.run(until=5000.0)
        # Poisson(5000): within 5 sigma of the mean.
        assert abs(len(ticks) - 5000) < 5 * (5000**0.5)

    def test_rate_scales_tick_count(self, rng):
        sim = Simulator()
        clock = PoissonClock(sim, rng, lambda: None, rate=4.0)
        clock.start()
        sim.run(until=1000.0)
        assert abs(clock.ticks - 4000) < 5 * (4000**0.5)

    def test_stop_cancels_pending(self, rng):
        sim = Simulator()
        count = []
        clock = PoissonClock(sim, rng, lambda: count.append(1))
        clock.start()
        sim.run(until=10.0)
        clock.stop()
        seen = len(count)
        sim.run(until=100.0)
        assert len(count) == seen
        assert not clock.running

    def test_callback_can_stop_clock(self, rng):
        sim = Simulator()
        count = []

        def tick():
            count.append(1)
            if len(count) == 3:
                clock.stop()

        clock = PoissonClock(sim, rng, tick)
        clock.start()
        sim.run(until=1000.0)
        assert len(count) == 3

    def test_double_start_is_idempotent(self, rng):
        sim = Simulator()
        clock = PoissonClock(sim, rng, lambda: None)
        clock.start()
        clock.start()
        sim.run(until=100.0)
        # With a double-scheduled stream the count would be ~200.
        assert abs(clock.ticks - 100) < 60

    def test_ticks_are_strictly_increasing_times(self, rng):
        sim = Simulator()
        times = []
        clock = PoissonClock(sim, rng, lambda: times.append(sim.now))
        clock.start()
        sim.run(until=200.0)
        assert times == sorted(times)
        assert all(t > 0 for t in times)
