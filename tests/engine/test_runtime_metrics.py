"""Unit tests for the runtime-metrics registry.

The registry's contracts — deterministic sorted-key snapshots, additive
counter/histogram merges with last-write-wins gauges, bucket-bound
mismatch detection, and a genuinely no-op :data:`NULL_METRICS` — are
what the sidecar-merge pattern (shard workers, sweep pool workers) and
the satellite shard-parity tests lean on, so they are pinned directly
here.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.engine.metrics import (
    NULL_METRICS,
    RATIO_BUCKETS,
    TIME_BUCKETS,
    Histogram,
    MetricsRegistry,
    load_snapshot,
    merge_snapshots,
    render_prometheus,
)
from repro.errors import ConfigurationError


class TestInstruments:
    def test_counter_accumulates(self):
        metrics = MetricsRegistry()
        metrics.counter("a").inc()
        metrics.counter("a").inc(4)
        assert metrics.snapshot()["counters"]["a"] == 5

    def test_counter_factory_returns_same_instrument(self):
        metrics = MetricsRegistry()
        assert metrics.counter("x") is metrics.counter("x")

    def test_gauge_last_write_wins(self):
        metrics = MetricsRegistry()
        metrics.gauge("g").set(3)
        metrics.gauge("g").set(7)
        assert metrics.snapshot()["gauges"]["g"] == 7

    def test_histogram_buckets_are_cumulative(self):
        metrics = MetricsRegistry()
        hist = metrics.histogram("h", (1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 5.0, 50.0, 500.0):
            hist.observe(value)
        data = metrics.snapshot()["histograms"]["h"]
        assert data["count"] == 5
        assert data["buckets"] == [[1.0, 1], [10.0, 3], [100.0, 4], ["+inf", 5]]
        assert data["min"] == 0.5 and data["max"] == 500.0
        assert data["sum"] == pytest.approx(560.5)

    def test_histogram_fold_block_boundary(self):
        # More samples than the lazy-fold block size: the snapshot must
        # still account for every observation.
        hist = Histogram("h", (0.5,))
        for _ in range(5000):
            hist.observe(1.0)
        assert hist.to_dict()["count"] == 5000
        assert hist.to_dict()["buckets"] == [[0.5, 0], ["+inf", 5000]]

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ConfigurationError):
            Histogram("h", ())
        with pytest.raises(ConfigurationError):
            Histogram("h", (1.0, 1.0))
        with pytest.raises(ConfigurationError):
            Histogram("h", (2.0, 1.0))

    def test_timer_observes_elapsed_seconds(self):
        metrics = MetricsRegistry()
        with metrics.timer("t.seconds"):
            pass
        data = metrics.snapshot()["histograms"]["t.seconds"]
        assert data["count"] == 1
        assert 0.0 <= data["sum"] < 1.0

    def test_add_counters_with_prefix(self):
        metrics = MetricsRegistry()
        metrics.add_counters({"drops": 3, "churn": 2}, prefix="faults.")
        counters = metrics.snapshot()["counters"]
        assert counters == {"faults.churn": 2, "faults.drops": 3}


class TestSnapshots:
    def test_to_json_is_sorted_and_stable(self):
        def build():
            metrics = MetricsRegistry()
            metrics.counter("z.last").inc(1)
            metrics.counter("a.first").inc(2)
            metrics.gauge("m.gauge").set(4)
            return metrics.to_json()

        first, second = build(), build()
        assert first == second
        data = json.loads(first)
        assert list(data["counters"]) == ["a.first", "z.last"]

    def test_write_and_load_roundtrip(self, tmp_path):
        metrics = MetricsRegistry()
        metrics.counter("c").inc(9)
        metrics.histogram("h", TIME_BUCKETS).observe(0.01)
        path = tmp_path / "deep" / "snap.json"
        metrics.write(path)
        loaded = load_snapshot(path)
        assert loaded == metrics.snapshot()
        assert not list(tmp_path.glob("**/*.tmp.*"))  # atomic rename cleaned up

    def test_load_snapshot_rejects_garbage(self, tmp_path):
        missing = tmp_path / "nope.json"
        with pytest.raises(ConfigurationError):
            load_snapshot(missing)
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ConfigurationError):
            load_snapshot(bad)
        shapeless = tmp_path / "shapeless.json"
        shapeless.write_text('{"no_counters": 1}')
        with pytest.raises(ConfigurationError):
            load_snapshot(shapeless)


class TestMerge:
    def _snapshot(self, counter, gauge, observations):
        metrics = MetricsRegistry()
        metrics.counter("c").inc(counter)
        metrics.gauge("g").set(gauge)
        hist = metrics.histogram("h", (1.0, 10.0))
        for value in observations:
            hist.observe(value)
        return metrics.snapshot()

    def test_counters_add_gauges_last_write_wins(self):
        merged = merge_snapshots(
            [self._snapshot(3, 1, [0.5]), self._snapshot(4, 2, [5.0, 50.0])]
        )
        assert merged["counters"]["c"] == 7
        assert merged["gauges"]["g"] == 2

    def test_histogram_contents_add(self):
        merged = merge_snapshots(
            [self._snapshot(0, 0, [0.5]), self._snapshot(0, 0, [5.0, 50.0])]
        )
        data = merged["histograms"]["h"]
        assert data["count"] == 3
        assert data["buckets"] == [[1.0, 1], [10.0, 2], ["+inf", 3]]
        assert data["min"] == 0.5 and data["max"] == 50.0

    def test_histogram_bound_mismatch_raises(self):
        a = MetricsRegistry()
        a.histogram("h", (1.0, 2.0)).observe(0.5)
        b = MetricsRegistry()
        b.histogram("h", (1.0, 3.0)).observe(0.5)
        registry = MetricsRegistry()
        registry.merge_snapshot(a.snapshot())
        with pytest.raises(ConfigurationError):
            registry.merge_snapshot(b.snapshot())

    def test_merge_into_live_registry_keeps_local_samples(self):
        registry = MetricsRegistry()
        registry.histogram("h", (1.0, 10.0)).observe(0.2)
        side = MetricsRegistry()
        side.histogram("h", (1.0, 10.0)).observe(4.0)
        registry.merge_snapshot(side.snapshot())
        assert registry.snapshot()["histograms"]["h"]["count"] == 2


class TestNullMetrics:
    def test_disabled_and_inert(self):
        assert NULL_METRICS.enabled is False
        NULL_METRICS.counter("c").inc(5)
        NULL_METRICS.gauge("g").set(1)
        NULL_METRICS.histogram("h", RATIO_BUCKETS).observe(0.5)
        with NULL_METRICS.timer("t"):
            pass
        NULL_METRICS.add_counters({"a": 1})
        NULL_METRICS.merge_snapshot({"counters": {"a": 1}})

    def test_shared_instrument_singleton(self):
        assert NULL_METRICS.counter("a") is NULL_METRICS.histogram("b")


class TestPrometheus:
    def test_render_all_instrument_kinds(self):
        metrics = MetricsRegistry()
        metrics.counter("sweep.cache.hits").inc(3)
        metrics.gauge("sweep.workers").set(4)
        metrics.histogram("shard.barrier_wait_seconds", (0.001, 0.1)).observe(0.01)
        text = render_prometheus(metrics.snapshot())
        assert "# TYPE sweep_cache_hits counter\nsweep_cache_hits 3" in text
        assert "# TYPE sweep_workers gauge\nsweep_workers 4" in text
        assert 'shard_barrier_wait_seconds_bucket{le="+Inf"} 1' in text
        assert "shard_barrier_wait_seconds_count 1" in text
        assert text.endswith("\n")

    def test_empty_histogram_min_max_are_null(self):
        metrics = MetricsRegistry()
        metrics.histogram("h")
        data = metrics.snapshot()["histograms"]["h"]
        assert data["min"] is None and data["max"] is None
        assert math.isfinite(data["sum"])
