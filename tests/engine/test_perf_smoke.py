"""Performance smoke test: the fast engine must stay fast.

Pins events/second floors for the event-dispatch hot path so a
regression back to per-event numpy calls or object allocation fails
loudly in the default suite.  Both queue engines are covered — the
batched default and the tuple-heap fallback — plus the bulk
``schedule_many`` path, so neither path can become the silently
untested one.

The default floor is ~5x below the rate measured on a development
machine (~1.3-2.0M events/s depending on path) to stay robust on slow
or loaded CI hardware while still catching order-of-magnitude
regressions.  The CI ``perf-floor`` job overrides it via
``REPRO_PERF_FLOOR`` to pin the historically measured 1.35M events/s
on a dedicated runner.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.engine.rng import ExponentialPool
from repro.engine.simulator import Simulator

EVENTS = 100_000
FLOOR_EVENTS_PER_SECOND = float(os.environ.get("REPRO_PERF_FLOOR", 250_000.0))
#: Ceiling on traced/untraced runtime ratio (ISSUE 6 acceptance bound).
TRACE_OVERHEAD_CEILING = float(os.environ.get("REPRO_TRACE_OVERHEAD", 2.0))
#: Ceiling on metrics-enabled/disabled runtime ratio (ISSUE 8 acceptance
#: bound).  Metrics are harvested at run epilogues from plain-int
#: telemetry the engines keep anyway, so the enabled run does no extra
#: per-event work — the ratio should sit at ~1.0 and 1.10 catches any
#: drift back toward per-event instrument calls.
METRICS_OVERHEAD_CEILING = float(os.environ.get("REPRO_METRICS_OVERHEAD", 1.10))


@pytest.mark.parametrize("engine", ["batch", "heap"])
def test_event_loop_throughput_floor(engine):
    """Scalar self-rescheduling chain: one push + one pop per event."""
    sim = Simulator(engine=engine)
    waits = ExponentialPool(np.random.Generator(np.random.PCG64(0)), 1.0)
    remaining = [EVENTS]

    def hop() -> None:
        remaining[0] -= 1
        if remaining[0] > 0:
            sim.schedule_in(waits(), hop)

    sim.schedule_in(0.0, hop)
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    assert sim.events_executed == EVENTS
    rate = EVENTS / elapsed
    assert rate > FLOOR_EVENTS_PER_SECOND, (
        f"[{engine}] event loop ran at {rate:,.0f} events/s, "
        f"below the {FLOOR_EVENTS_PER_SECOND:,.0f} floor"
    )


def test_bulk_dispatch_throughput_floor():
    """Window-batched chain on the batch engine: the schedule_many path.

    This is the shape of the protocol hot path after the batched-core
    refactor — whole pool blocks of delays per bulk insert — and the
    rate the CI perf-floor job pins at the historical 1.35M events/s.
    """
    window = 64
    sim = Simulator(engine="batch")
    waits = ExponentialPool(np.random.Generator(np.random.PCG64(0)), 1.0)
    count = [0]

    def hop(credit: int) -> None:
        count[0] += 1
        if credit == 0 and count[0] < EVENTS:
            draws = waits.take(window)
            total = 0.0
            delays = []
            for wait in draws:
                total += wait
                delays.append(total)
            sim.schedule_many(delays, hop, list(range(window - 1, -1, -1)))

    sim.schedule_in(0.0, hop, 0)
    start = time.perf_counter()
    sim.run(max_events=EVENTS)
    elapsed = time.perf_counter() - start
    assert sim.events_executed == EVENTS
    rate = EVENTS / elapsed
    assert rate > FLOOR_EVENTS_PER_SECOND, (
        f"bulk dispatch ran at {rate:,.0f} events/s, "
        f"below the {FLOOR_EVENTS_PER_SECOND:,.0f} floor"
    )


def test_traced_run_overhead_under_ceiling(tmp_path):
    """A fully traced protocol run must stay within 2x of untraced.

    This pins the JsonlTracer hot-path contract (one tuple append per
    record, batched serialization at flush): if record() grows a dict
    build, a per-record write, or eager json.dumps, this ratio blows
    past the ceiling.  Best-of-3 on both sides to shrug off CI noise.
    """
    from repro.core.params import SingleLeaderParams
    from repro.core.single_leader import SingleLeaderSim
    from repro.engine.tracing import JsonlTracer

    params = SingleLeaderParams(n=300, k=3, alpha0=2.0)
    counts = np.array([150, 100, 50])

    def timed(tracer_path) -> float:
        best = float("inf")
        for attempt in range(3):
            rng = np.random.Generator(np.random.PCG64(42))
            if tracer_path is None:
                sim = SingleLeaderSim(params, counts.copy(), rng)
                start = time.perf_counter()
                sim.run(max_time=1200.0)
                best = min(best, time.perf_counter() - start)
            else:
                with JsonlTracer(tracer_path / f"run{attempt}.jsonl") as tracer:
                    simulator = Simulator(tracer=tracer)
                    sim = SingleLeaderSim(
                        params, counts.copy(), rng, simulator=simulator
                    )
                    start = time.perf_counter()
                    sim.run(max_time=1200.0)
                    best = min(best, time.perf_counter() - start)
        return best

    untraced = timed(None)
    traced = timed(tmp_path)
    ratio = traced / untraced
    assert ratio < TRACE_OVERHEAD_CEILING, (
        f"traced run took {ratio:.2f}x the untraced run "
        f"(ceiling {TRACE_OVERHEAD_CEILING:.2f}x; "
        f"untraced {untraced * 1e3:.1f}ms, traced {traced * 1e3:.1f}ms)"
    )


def test_metrics_run_overhead_under_ceiling():
    """A metrics-enabled protocol run must stay within 1.10x of disabled.

    This pins the harvest-at-epilogue contract: enabling ``--metrics``
    must add no per-event work to the hot path (the engines count into
    plain ints either way and the registry only sees the totals once,
    after the run).  If someone wires a ``Counter.inc`` or
    ``Histogram.observe`` into the dispatch loop, this ratio blows past
    the ceiling.  Best-of-3 on both sides to shrug off CI noise.
    """
    from repro.core.params import SingleLeaderParams
    from repro.core.single_leader import run_single_leader
    from repro.engine.metrics import MetricsRegistry

    params = SingleLeaderParams(n=300, k=3, alpha0=2.0)
    counts = np.array([150, 100, 50])

    def timed(with_metrics: bool) -> float:
        best = float("inf")
        for _ in range(3):
            rng = np.random.Generator(np.random.PCG64(42))
            metrics = MetricsRegistry() if with_metrics else None
            start = time.perf_counter()
            run_single_leader(
                params, counts.copy(), rng, max_time=1200.0, metrics=metrics
            )
            best = min(best, time.perf_counter() - start)
        return best

    disabled = timed(False)
    enabled = timed(True)
    ratio = enabled / disabled
    assert ratio < METRICS_OVERHEAD_CEILING, (
        f"metrics-enabled run took {ratio:.2f}x the disabled run "
        f"(ceiling {METRICS_OVERHEAD_CEILING:.2f}x; "
        f"disabled {disabled * 1e3:.1f}ms, enabled {enabled * 1e3:.1f}ms)"
    )
