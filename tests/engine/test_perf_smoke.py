"""Performance smoke test: the fast engine must stay fast.

Pins an events/second floor for the tuple dispatcher + draw-pool hot
path so a regression back to per-event numpy calls or object allocation
fails loudly in the default suite.  The floor is ~5× below the measured
rate on a development machine (~1.3M events/s) to stay robust on slow
or loaded CI hardware while still catching order-of-magnitude
regressions.
"""

from __future__ import annotations

import time

import numpy as np

from repro.engine.rng import ExponentialPool
from repro.engine.simulator import Simulator

EVENTS = 100_000
FLOOR_EVENTS_PER_SECOND = 250_000.0


def test_event_loop_throughput_floor():
    sim = Simulator()
    waits = ExponentialPool(np.random.Generator(np.random.PCG64(0)), 1.0)
    remaining = [EVENTS]

    def hop() -> None:
        remaining[0] -= 1
        if remaining[0] > 0:
            sim.schedule_in(waits(), hop)

    sim.schedule_in(0.0, hop)
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    assert sim.events_executed == EVENTS
    rate = EVENTS / elapsed
    assert rate > FLOOR_EVENTS_PER_SECOND, (
        f"event loop ran at {rate:,.0f} events/s, "
        f"below the {FLOOR_EVENTS_PER_SECOND:,.0f} floor"
    )
