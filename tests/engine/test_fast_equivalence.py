"""Equivalence harness: batched-RNG fast engine vs. the seed engine.

Three layers of evidence that the vectorized hot path did not change
the simulated protocols:

1. **Deterministic schedules, exact**: the tuple dispatcher executes a
   handcrafted schedule (ties, cancellations, nested scheduling) in
   exactly the documented order, twice over.

2. **Scalar replay, exact**: with pool block size 1, every pool draw is
   one immediate generator call in the same order as the seed engine's
   scalar calls, so the fast simulators must reproduce the preserved
   seed implementations (:mod:`repro.core.reference`) *trajectory for
   trajectory* — same elapsed time, same event count, same final
   counts. This pins the protocol-logic conversion exactly, and runs
   against **both** queue engines (block-1 pools force the batched
   engine's tick window to 1, collapsing it to event-granular
   scheduling in scalar draw order).

3. **Batched runs, statistical**: with production block sizes the draw
   interleaving differs (identical law, different sequence), so
   convergence-time distributions are compared over ≥30 seeds with a
   two-sample Kolmogorov–Smirnov test and a CI-overlap check on the
   means — for single-leader, delayed-exchange, and the population
   baseline.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats as scipy_stats

import repro.engine.rng as engine_rng
import repro.engine.simulator as engine_sim
from repro.baselines.population import PairwiseScheduler, ThreeStateMajority
from repro.core.delayed_exchange import DelayedExchangeSim
from repro.core.params import SingleLeaderParams
from repro.core.reference import (
    ReferenceDelayedExchangeSim,
    ReferenceSingleLeaderSim,
    reference_population_run,
)
from repro.core.single_leader import SingleLeaderSim
from repro.engine.simulator import Simulator

KS_P_FLOOR = 0.01


def generator(seed: int) -> np.random.Generator:
    return np.random.Generator(np.random.PCG64(seed))


@pytest.fixture(params=["batch", "heap"])
def scalar_blocks(monkeypatch, request):
    """Force pool block size 1: one generator call per draw, seed order.

    Parametrized over both queue engines: block-1 pools force tick
    window 1, so the batched engine must replay the scalar-draw
    reference exactly too — same draws, same dispatch order, same
    event counts.
    """
    monkeypatch.setattr(engine_rng, "DEFAULT_BLOCK", 1)
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    monkeypatch.setattr(engine_sim, "DEFAULT_ENGINE", request.param)


def ci95(values: np.ndarray) -> tuple[float, float]:
    mean = float(values.mean())
    half = 1.96 * float(values.std(ddof=1)) / np.sqrt(values.size)
    return mean - half, mean + half


def intervals_overlap(a: tuple[float, float], b: tuple[float, float]) -> bool:
    return a[0] <= b[1] and b[0] <= a[1]


class TestDeterministicSchedules:
    def test_dispatch_order_with_ties_and_cancellation(self):
        sim = Simulator()
        log: list[tuple[float, str]] = []

        def note(label: str) -> None:
            log.append((sim.now, label))

        sim.schedule(2.0, note, "tie-first")
        sim.schedule(2.0, note, "tie-second")
        doomed = sim.schedule(1.5, note, "cancelled")
        sim.schedule(1.0, note, "early")

        def chain() -> None:
            note("chain")
            sim.schedule_in(1.0, note, "chained-child")

        sim.schedule(0.5, chain)
        sim.cancel(doomed)
        sim.run()
        assert log == [
            (0.5, "chain"),
            (1.0, "early"),
            (1.5, "chained-child"),
            (2.0, "tie-first"),
            (2.0, "tie-second"),
        ]
        assert sim.events_executed == 5

    def test_identical_schedules_replay_identically(self):
        def build_and_run() -> list[tuple[float, int]]:
            sim = Simulator()
            log: list[tuple[float, int]] = []
            for index in range(50):
                sim.schedule(float(index % 7), lambda i: log.append((sim.now, i)), index)
            sim.run()
            return log

        assert build_and_run() == build_and_run()


class TestExactScalarReplay:
    """Block-1 pools consume the shared generator in seed order, so the
    fast engine must replay the preserved seed implementation exactly."""

    @pytest.mark.parametrize("seed", [1, 3, 11])
    def test_single_leader_replays_reference(self, scalar_blocks, seed):
        params = SingleLeaderParams(n=48, k=2, alpha0=1.5)
        counts = np.array([30, 18])
        fast = SingleLeaderSim(params, counts, generator(seed)).run(max_time=400.0)
        ref = ReferenceSingleLeaderSim(params, counts, generator(seed)).run(max_time=400.0)
        assert fast.elapsed == ref.elapsed
        assert fast.converged == ref.converged
        assert fast.winner == ref.winner
        assert fast.info["events"] == ref.info["events"]
        assert fast.info["total_ticks"] == ref.info["total_ticks"]
        assert fast.info["good_ticks"] == ref.info["good_ticks"]
        assert (fast.final_color_counts == ref.final_color_counts).all()
        assert [b.time for b in fast.births] == [b.time for b in ref.births]

    @pytest.mark.parametrize("seed", [2, 7])
    def test_delayed_exchange_replays_reference(self, scalar_blocks, seed):
        params = SingleLeaderParams(n=40, k=2, alpha0=1.5)
        counts = np.array([26, 14])
        fast_sim = DelayedExchangeSim(
            params, counts, generator(seed), exchange_rate=2.0
        )
        fast = fast_sim.run(max_time=400.0)
        ref_sim = ReferenceDelayedExchangeSim(
            params, counts, generator(seed), exchange_rate=2.0
        )
        ref = ref_sim.run(max_time=400.0)
        assert fast.elapsed == ref.elapsed
        assert fast.info["events"] == ref.info["events"]
        assert (fast.final_color_counts == ref.final_color_counts).all()
        assert fast_sim.committed_updates == ref_sim.committed_updates
        assert fast_sim.aborted_updates == ref_sim.aborted_updates


class TestStatisticalEquivalence:
    """Production block sizes: same law, different draw interleaving —
    trajectory distributions must agree.

    The compared statistic is the ε-convergence time (first time the
    plurality covers 90%, Theorem 13's notion), which is far less
    heavy-tailed than the full-consensus time truncated at ``max_time``
    — full-consensus tails make CI-overlap checks flaky at this sample
    size without adding any discriminating power.
    """

    @staticmethod
    def _epsilon_time_sample(cls, seeds, **kwargs) -> np.ndarray:
        params = SingleLeaderParams(n=48, k=2, alpha0=1.5)
        counts = np.array([30, 18])
        out = []
        for seed in seeds:
            result = cls(params, counts, generator(seed), **kwargs).run(
                max_time=400.0, epsilon=0.1, stop_at_epsilon=True
            )
            time = result.epsilon_convergence_time
            out.append(result.elapsed if time is None else time)
        return np.array(out)

    def test_single_leader_convergence_distribution(self):
        fast = self._epsilon_time_sample(SingleLeaderSim, range(40))
        ref = self._epsilon_time_sample(ReferenceSingleLeaderSim, range(5000, 5040))
        assert scipy_stats.ks_2samp(fast, ref).pvalue > KS_P_FLOOR
        assert intervals_overlap(ci95(fast), ci95(ref))

    def test_delayed_exchange_convergence_distribution(self):
        fast = self._epsilon_time_sample(
            DelayedExchangeSim, range(30), exchange_rate=2.0
        )
        ref = self._epsilon_time_sample(
            ReferenceDelayedExchangeSim, range(6000, 6030), exchange_rate=2.0
        )
        assert scipy_stats.ks_2samp(fast, ref).pvalue > KS_P_FLOOR
        assert intervals_overlap(ci95(fast), ci95(ref))

    def test_population_baseline_interaction_distribution(self):
        counts = np.array([90, 60])
        protocol = ThreeStateMajority()

        def fast_sample(seeds):
            return np.array(
                [
                    PairwiseScheduler(protocol)
                    .run(counts, generator(seed))
                    .interactions
                    for seed in seeds
                ],
                dtype=float,
            )

        def ref_sample(seeds):
            return np.array(
                [
                    reference_population_run(protocol, counts, generator(seed)).interactions
                    for seed in seeds
                ],
                dtype=float,
            )

        fast = fast_sample(range(30))
        ref = ref_sample(range(7000, 7030))
        assert scipy_stats.ks_2samp(fast, ref).pvalue > KS_P_FLOOR
        assert intervals_overlap(ci95(fast), ci95(ref))
