"""Unit and property tests for the event queue."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.engine.events import Event, EventQueue
from repro.errors import SchedulingError


def noop() -> None:
    pass


class TestEventQueueBasics:
    def test_empty_queue_is_falsy(self):
        queue = EventQueue()
        assert not queue
        assert len(queue) == 0
        assert queue.peek_time() is None

    def test_pop_empty_raises(self):
        with pytest.raises(SchedulingError):
            EventQueue().pop()

    def test_push_pop_single(self):
        queue = EventQueue()
        queue.push(1.5, noop, tag="a")
        event = queue.pop()
        assert event.time == 1.5
        assert event.tag == "a"
        assert not queue

    def test_orders_by_time(self):
        queue = EventQueue()
        queue.push(3.0, noop, tag="late")
        queue.push(1.0, noop, tag="early")
        queue.push(2.0, noop, tag="mid")
        tags = [queue.pop().tag for _ in range(3)]
        assert tags == ["early", "mid", "late"]

    def test_ties_are_fifo(self):
        queue = EventQueue()
        for index in range(10):
            queue.push(1.0, noop, tag=str(index))
        assert [queue.pop().tag for _ in range(10)] == [str(i) for i in range(10)]

    def test_nan_time_rejected(self):
        with pytest.raises(SchedulingError):
            EventQueue().push(float("nan"), noop)

    def test_cancel_skips_event(self):
        queue = EventQueue()
        keep = queue.push(1.0, noop, tag="keep")
        drop = queue.push(0.5, noop, tag="drop")
        queue.cancel(drop)
        assert len(queue) == 1
        assert queue.pop() is keep

    def test_cancel_updates_peek(self):
        queue = EventQueue()
        drop = queue.push(0.5, noop)
        queue.push(2.0, noop)
        queue.cancel(drop)
        assert queue.peek_time() == 2.0

    def test_drain_interleaves_new_pushes(self):
        queue = EventQueue()
        seen = []

        def push_more():
            queue.push(1.5, noop, tag="inserted")

        queue.push(1.0, push_more, tag="first")
        queue.push(2.0, noop, tag="last")
        for event in queue.drain():
            seen.append(event.tag)
            event.action()
        assert seen == ["first", "inserted", "last"]

    def test_event_comparison(self):
        early = Event(time=1.0, seq=0, action=noop)
        late = Event(time=1.0, seq=1, action=noop)
        assert early < late


class TestEventQueueProperties:
    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=200))
    def test_pop_order_is_sorted(self, times):
        queue = EventQueue()
        for time in times:
            queue.push(time, noop)
        popped = [queue.pop().time for _ in range(len(times))]
        assert popped == sorted(times)

    @given(
        st.lists(st.floats(min_value=0, max_value=100), min_size=2, max_size=50),
        st.data(),
    )
    def test_cancellation_never_loses_live_events(self, times, data):
        queue = EventQueue()
        events = [queue.push(time, noop) for time in times]
        to_cancel = data.draw(
            st.sets(st.integers(min_value=0, max_value=len(events) - 1), max_size=len(events))
        )
        for index in to_cancel:
            queue.cancel(events[index])
        live = sorted(
            event.time for index, event in enumerate(events) if index not in to_cancel
        )
        popped = []
        while queue:
            popped.append(queue.pop().time)
        assert popped == live
