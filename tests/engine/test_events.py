"""Unit tests for the tuple-based event queue."""

from __future__ import annotations

import pytest

from repro.engine.events import EventQueue
from repro.errors import SchedulingError


def noop() -> None:
    pass


class TestEventQueueBasics:
    def test_empty_queue_is_falsy(self):
        queue = EventQueue()
        assert not queue
        assert len(queue) == 0
        assert queue.peek_time() is None

    def test_pop_empty_raises(self):
        with pytest.raises(SchedulingError):
            EventQueue().pop()

    def test_push_pop_single(self):
        queue = EventQueue()
        handle = queue.push(1.5, noop, "payload")
        time, seq, action, payload = queue.pop()
        assert time == 1.5
        assert seq == handle
        assert action is noop
        assert payload == "payload"
        assert not queue

    def test_orders_by_time(self):
        queue = EventQueue()
        queue.push(3.0, noop, "late")
        queue.push(1.0, noop, "early")
        queue.push(2.0, noop, "mid")
        payloads = [queue.pop()[3] for _ in range(3)]
        assert payloads == ["early", "mid", "late"]

    def test_ties_are_fifo(self):
        queue = EventQueue()
        for index in range(10):
            queue.push(1.0, noop, index)
        assert [queue.pop()[3] for _ in range(10)] == list(range(10))

    def test_handles_are_monotonic(self):
        queue = EventQueue()
        handles = [queue.push(0.0, noop) for _ in range(5)]
        assert handles == sorted(handles)
        assert len(set(handles)) == 5

    def test_nan_time_rejected(self):
        with pytest.raises(SchedulingError):
            EventQueue().push(float("nan"), noop)

    def test_cancel_skips_event(self):
        queue = EventQueue()
        keep = queue.push(1.0, noop, "keep")
        drop = queue.push(0.5, noop, "drop")
        queue.cancel(drop)
        assert len(queue) == 1
        assert queue.pop()[1] == keep

    def test_cancel_updates_peek(self):
        queue = EventQueue()
        drop = queue.push(0.5, noop)
        queue.push(2.0, noop)
        queue.cancel(drop)
        assert queue.peek_time() == 2.0

    def test_drain_interleaves_new_pushes(self):
        queue = EventQueue()
        seen = []

        def push_more():
            queue.push(1.5, noop, "inserted")

        queue.push(1.0, push_more, "first")
        queue.push(2.0, noop, "last")
        for _, _, action, payload in queue.drain():
            seen.append(payload)
            action()
        assert seen == ["first", "inserted", "last"]

    def test_default_payload_is_none(self):
        queue = EventQueue()
        queue.push(0.0, noop)
        assert queue.pop()[3] is None
