"""Cross-engine trace determinism: heap vs batch, byte for byte.

The trace vocabulary is protocol-level by design — no engine names, no
dispatch counters, no tick totals. With the draw pool forced to block
size 1, both event engines replay the identical scalar draw sequence
(the property `test_fast_equivalence.py` pins on trajectories), so the
state machines they drive must emit the *identical record stream* —
and the deterministic JSONL serialization turns that into a
byte-identity claim on the files themselves.

Any engine-dependent field sneaking into a record (an events-executed
counter, a tick count, the engine name) breaks this test immediately,
which is exactly the regression it exists to catch.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.engine.rng as engine_rng
from repro.core.delayed_exchange import DelayedExchangeSim
from repro.core.params import SingleLeaderParams
from repro.core.single_leader import SingleLeaderSim
from repro.engine.simulator import Simulator
from repro.engine.tracing import JsonlTracer


def generator(seed: int) -> np.random.Generator:
    return np.random.Generator(np.random.PCG64(seed))


@pytest.fixture(autouse=True)
def scalar_blocks(monkeypatch):
    """Block-1 pools: both engines draw scalars in identical order."""
    monkeypatch.setattr(engine_rng, "DEFAULT_BLOCK", 1)
    monkeypatch.delenv("REPRO_ENGINE", raising=False)


def traced_run(sim_cls, engine: str, path, *, seed: int = 11) -> None:
    params = SingleLeaderParams(n=60, k=3, alpha0=2.0)
    counts = np.array([30, 20, 10])
    with JsonlTracer(path) as tracer:
        simulator = Simulator(engine=engine, tracer=tracer)
        sim = sim_cls(params, counts, generator(seed), simulator=simulator)
        sim.run(max_time=500.0)


@pytest.mark.parametrize("sim_cls", [SingleLeaderSim, DelayedExchangeSim])
def test_same_seed_traces_byte_identical_across_engines(sim_cls, tmp_path):
    paths = {}
    for engine in ("heap", "batch"):
        paths[engine] = tmp_path / f"{engine}.jsonl"
        traced_run(sim_cls, engine, paths[engine])
    heap_bytes = paths["heap"].read_bytes()
    assert heap_bytes  # a trivially-empty trace would pass vacuously
    assert heap_bytes == paths["batch"].read_bytes()


def test_trace_records_carry_no_engine_fingerprint(tmp_path):
    """No record field may name or count engine internals."""
    import json

    path = tmp_path / "trace.jsonl"
    traced_run(SingleLeaderSim, "batch", path)
    forbidden = {"engine", "events_executed", "total_ticks", "queue"}
    for line in path.read_text().splitlines():
        record = json.loads(line)
        assert not forbidden & set(record), record
