"""Tests for the hypoexponential (phase-type) distribution."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.hypoexp import Hypoexponential
from repro.errors import ConfigurationError

rates_strategy = st.lists(
    st.floats(min_value=0.05, max_value=50.0), min_size=1, max_size=6
)


class TestConstruction:
    def test_empty_rates_rejected(self):
        with pytest.raises(ConfigurationError):
            Hypoexponential([])

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("inf"), float("nan")])
    def test_invalid_rate_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            Hypoexponential([1.0, bad])

    def test_mean_and_variance(self):
        dist = Hypoexponential([2.0, 4.0])
        assert dist.mean == pytest.approx(0.5 + 0.25)
        assert dist.variance == pytest.approx(0.25 + 0.0625)


class TestCdf:
    def test_single_stage_matches_exponential(self):
        dist = Hypoexponential([3.0])
        for t in (0.1, 0.5, 1.0, 2.0):
            assert dist.cdf(t) == pytest.approx(1.0 - math.exp(-3.0 * t), abs=1e-9)

    def test_erlang_two_closed_form(self):
        # Erlang(2, λ): F(t) = 1 - e^{-λt}(1 + λt).
        lam = 2.0
        dist = Hypoexponential([lam, lam])
        for t in (0.2, 1.0, 3.0):
            expected = 1.0 - math.exp(-lam * t) * (1.0 + lam * t)
            assert dist.cdf(t) == pytest.approx(expected, abs=1e-9)

    def test_distinct_rates_closed_form(self):
        # Sum of Exp(1) + Exp(2): F(t) = 1 - 2e^{-t} + e^{-2t}.
        dist = Hypoexponential([1.0, 2.0])
        for t in (0.3, 1.0, 2.5):
            expected = 1.0 - 2.0 * math.exp(-t) + math.exp(-2.0 * t)
            assert dist.cdf(t) == pytest.approx(expected, abs=1e-9)

    def test_cdf_zero_below_origin(self):
        dist = Hypoexponential([1.0])
        assert dist.cdf(0.0) == 0.0
        assert dist.cdf(-5.0) == 0.0

    def test_sf_complements_cdf(self):
        dist = Hypoexponential([1.0, 3.0])
        assert dist.sf(1.2) == pytest.approx(1.0 - dist.cdf(1.2))

    @given(rates_strategy)
    @settings(max_examples=25, deadline=None)
    def test_cdf_monotone_and_bounded(self, rates):
        dist = Hypoexponential(rates)
        times = [0.1 * dist.mean, dist.mean, 3.0 * dist.mean]
        values = [dist.cdf(t) for t in times]
        assert all(0.0 <= v <= 1.0 for v in values)
        assert values == sorted(values)


class TestQuantile:
    def test_quantile_inverts_cdf(self):
        dist = Hypoexponential([2.0, 1.0, 1.0, 1.0, 2.0, 1.0, 1.0])
        for q in (0.1, 0.5, 0.9, 0.99):
            t = dist.quantile(q)
            assert dist.cdf(t) == pytest.approx(q, abs=1e-6)

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.5, 2.0])
    def test_invalid_level_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            Hypoexponential([1.0]).quantile(bad)

    def test_exponential_median(self):
        dist = Hypoexponential([1.0])
        assert dist.quantile(0.5) == pytest.approx(math.log(2.0), abs=1e-6)


class TestSampling:
    def test_sample_mean_matches(self, rng):
        dist = Hypoexponential([2.0, 1.0, 1.0])
        samples = dist.sample(rng, size=200_000)
        assert float(np.mean(samples)) == pytest.approx(dist.mean, rel=0.02)

    def test_scalar_sample(self, rng):
        value = Hypoexponential([1.0]).sample(rng)
        assert isinstance(value, float)
        assert value > 0

    def test_sample_quantile_matches_cdf(self, rng):
        dist = Hypoexponential([2.0, 1.0, 1.0, 1.0, 2.0, 1.0, 1.0])
        samples = dist.sample(rng, size=100_000)
        empirical = float(np.quantile(samples, 0.9))
        assert empirical == pytest.approx(dist.quantile(0.9), rel=0.03)


class TestComposition:
    def test_maximum_of_iid_rates(self):
        dist = Hypoexponential.maximum_of_iid(1.0, 3)
        assert dist.rates == (3.0, 2.0, 1.0)

    def test_maximum_of_iid_invalid_count(self):
        with pytest.raises(ConfigurationError):
            Hypoexponential.maximum_of_iid(1.0, 0)

    def test_maximum_of_iid_matches_monte_carlo(self, rng):
        dist = Hypoexponential.maximum_of_iid(2.0, 2)
        direct = np.maximum(
            rng.exponential(0.5, size=100_000), rng.exponential(0.5, size=100_000)
        )
        assert float(np.mean(direct)) == pytest.approx(dist.mean, rel=0.02)

    def test_plus_concatenates_stages(self):
        combined = Hypoexponential([1.0]).plus(Hypoexponential([2.0, 3.0]))
        assert combined.rates == (1.0, 2.0, 3.0)
        assert combined.mean == pytest.approx(1.0 + 0.5 + 1.0 / 3.0)
