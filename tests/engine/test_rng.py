"""Tests for deterministic RNG substreams."""

from __future__ import annotations

import pytest

from repro.engine.rng import RngRegistry, stable_name_key
from repro.errors import ConfigurationError


class TestStableNameKey:
    def test_deterministic(self):
        assert stable_name_key("clock/0") == stable_name_key("clock/0")

    def test_distinct_names_distinct_keys(self):
        # CRC32 collisions exist but not among these short labels.
        names = [f"node/{i}" for i in range(100)]
        keys = {stable_name_key(name) for name in names}
        assert len(keys) == len(names)


class TestRngRegistry:
    def test_negative_seed_rejected(self):
        with pytest.raises(ConfigurationError):
            RngRegistry(-1)

    def test_streams_are_cached(self):
        registry = RngRegistry(7)
        assert registry.stream("a") is registry.stream("a")

    def test_same_seed_same_draws(self):
        first = RngRegistry(42).stream("x").random(5)
        second = RngRegistry(42).stream("x").random(5)
        assert (first == second).all()

    def test_different_seeds_differ(self):
        first = RngRegistry(1).stream("x").random(5)
        second = RngRegistry(2).stream("x").random(5)
        assert (first != second).any()

    def test_different_names_independent(self):
        registry = RngRegistry(42)
        first = registry.stream("a").random(5)
        second = registry.stream("b").random(5)
        assert (first != second).any()

    def test_order_of_creation_irrelevant(self):
        forward = RngRegistry(9)
        forward.stream("one")
        one_then_two = forward.stream("two").random(3)
        backward = RngRegistry(9)
        two_only = backward.stream("two").random(3)
        assert (one_then_two == two_only).all()

    def test_draw_count_does_not_leak_between_streams(self):
        registry = RngRegistry(5)
        registry.stream("hot").random(1000)  # burn many draws
        cold = registry.stream("cold").random(3)
        fresh = RngRegistry(5).stream("cold").random(3)
        assert (cold == fresh).all()

    def test_streams_helper(self):
        registry = RngRegistry(0)
        streams = registry.streams("node", 4)
        assert len(streams) == 4
        assert streams[0] is registry.stream("node/0")

    def test_len_and_iter(self):
        registry = RngRegistry(0)
        registry.stream("a")
        registry.stream("b")
        assert len(registry) == 2
        assert set(registry) == {"a", "b"}

    def test_root_entropy_exposed(self):
        assert RngRegistry(31337).root_entropy == 31337
