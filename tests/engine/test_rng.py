"""Tests for deterministic RNG substreams and the batched draw pools."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.latency import ConstantLatency, GammaLatency
from repro.engine.rng import (
    ChannelDelayPool,
    ExponentialPool,
    IntegerPool,
    LatencyPool,
    RngRegistry,
    UniformPool,
    stable_name_key,
)
from repro.errors import ConfigurationError


def generator(seed: int = 0) -> np.random.Generator:
    return np.random.Generator(np.random.PCG64(seed))


class TestStableNameKey:
    def test_deterministic(self):
        assert stable_name_key("clock/0") == stable_name_key("clock/0")

    def test_distinct_names_distinct_keys(self):
        # CRC32 collisions exist but not among these short labels.
        names = [f"node/{i}" for i in range(100)]
        keys = {stable_name_key(name) for name in names}
        assert len(keys) == len(names)


class TestRngRegistry:
    def test_negative_seed_rejected(self):
        with pytest.raises(ConfigurationError):
            RngRegistry(-1)

    def test_streams_are_cached(self):
        registry = RngRegistry(7)
        assert registry.stream("a") is registry.stream("a")

    def test_same_seed_same_draws(self):
        first = RngRegistry(42).stream("x").random(5)
        second = RngRegistry(42).stream("x").random(5)
        assert (first == second).all()

    def test_different_seeds_differ(self):
        first = RngRegistry(1).stream("x").random(5)
        second = RngRegistry(2).stream("x").random(5)
        assert (first != second).any()

    def test_different_names_independent(self):
        registry = RngRegistry(42)
        first = registry.stream("a").random(5)
        second = registry.stream("b").random(5)
        assert (first != second).any()

    def test_order_of_creation_irrelevant(self):
        forward = RngRegistry(9)
        forward.stream("one")
        one_then_two = forward.stream("two").random(3)
        backward = RngRegistry(9)
        two_only = backward.stream("two").random(3)
        assert (one_then_two == two_only).all()

    def test_draw_count_does_not_leak_between_streams(self):
        registry = RngRegistry(5)
        registry.stream("hot").random(1000)  # burn many draws
        cold = registry.stream("cold").random(3)
        fresh = RngRegistry(5).stream("cold").random(3)
        assert (cold == fresh).all()

    def test_streams_helper(self):
        registry = RngRegistry(0)
        streams = registry.streams("node", 4)
        assert len(streams) == 4
        assert streams[0] is registry.stream("node/0")

    def test_len_and_iter(self):
        registry = RngRegistry(0)
        registry.stream("a")
        registry.stream("b")
        assert len(registry) == 2
        assert set(registry) == {"a", "b"}

    def test_root_entropy_exposed(self):
        assert RngRegistry(31337).root_entropy == 31337


class TestDrawPools:
    def test_exponential_pool_matches_scalar_draws(self):
        # NumPy fills block draws with the same per-element sampler, so
        # one pool over one generator reproduces the scalar sequence.
        pool = ExponentialPool(generator(7), 2.0, block=16)
        pooled = [pool() for _ in range(40)]
        rng = generator(7)
        scalar = [float(rng.exponential(0.5)) for _ in range(40)]
        assert pooled == scalar

    def test_uniform_pool_matches_scalar_draws(self):
        pool = UniformPool(generator(5), block=8)
        pooled = [pool() for _ in range(20)]
        rng = generator(5)
        scalar = [float(rng.random()) for _ in range(20)]
        assert pooled == scalar

    def test_integer_pool_matches_scalar_draws_and_bounds(self):
        pool = IntegerPool(generator(3), 17, block=32)
        pooled = [pool() for _ in range(100)]
        rng = generator(3)
        scalar = [int(rng.integers(17)) for _ in range(100)]
        assert pooled == scalar
        assert all(0 <= value < 17 for value in pooled)

    def test_latency_pool_constant_model(self):
        pool = LatencyPool(ConstantLatency(2.5), generator(0), block=4)
        assert [pool() for _ in range(10)] == [2.5] * 10

    def test_latency_pool_gamma_mean(self):
        pool = LatencyPool(GammaLatency(shape=2.0, rate=1.0), generator(1), block=512)
        draws = [pool() for _ in range(5000)]
        assert np.mean(draws) == pytest.approx(2.0, rel=0.1)

    def test_channel_delay_matches_scalar_composition(self):
        # stages=(2, 1): max of two concurrent latencies plus the leader
        # channel — bit-identical to the seed engine's scalar arithmetic.
        pool = ChannelDelayPool(generator(9), 1.5, stages=(2, 1), block=1)
        composite = [pool() for _ in range(25)]
        rng = generator(9)
        expected = []
        for _ in range(25):
            a, b, c = (float(rng.exponential(1.0 / 1.5)) for _ in range(3))
            expected.append(max(a, b) + c)
        assert composite == expected

    def test_channel_delay_sequential_plan(self):
        pool = ChannelDelayPool(generator(4), 1.0, stages=(1, 1, 1), block=1)
        total = [pool() for _ in range(10)]
        rng = generator(4)
        expected = []
        for _ in range(10):
            expected.append(sum(float(rng.exponential(1.0)) for _ in range(3)))
        assert total == pytest.approx(expected)

    def test_refill_is_transparent(self):
        pool = ExponentialPool(generator(2), 1.0, block=4)
        assert pool.remaining == 0
        first = pool()
        assert pool.remaining == 3
        for _ in range(4):  # crosses a refill boundary
            pool()
        assert first > 0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            ExponentialPool(generator(0), 0.0)
        with pytest.raises(ConfigurationError):
            ExponentialPool(generator(0), 1.0, block=0)
        with pytest.raises(ConfigurationError):
            IntegerPool(generator(0), 0)
        with pytest.raises(ConfigurationError):
            ChannelDelayPool(generator(0), 1.0, stages=())
        with pytest.raises(ConfigurationError):
            ChannelDelayPool(generator(0), 1.0, stages=(2, 0))
        with pytest.raises(ConfigurationError):
            ChannelDelayPool(generator(0), 0.0)
