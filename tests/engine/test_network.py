"""Tests for complete-graph sampling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.network import CompleteGraph
from repro.errors import ConfigurationError


class TestCompleteGraph:
    def test_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            CompleteGraph(1)

    def test_contains_and_len(self):
        graph = CompleteGraph(5)
        assert 0 in graph and 4 in graph
        assert 5 not in graph and -1 not in graph
        assert len(graph) == 5

    def test_neighbor_never_self(self, rng):
        graph = CompleteGraph(4)
        for node in range(4):
            draws = [graph.sample_neighbor(node, rng) for _ in range(200)]
            assert node not in draws
            assert all(0 <= d < 4 for d in draws)

    def test_neighbor_distribution_uniform(self, rng):
        graph = CompleteGraph(5)
        node = 2
        draws = np.array([graph.sample_neighbor(node, rng) for _ in range(20_000)])
        counts = np.bincount(draws, minlength=5)
        assert counts[node] == 0
        expected = 20_000 / 4
        for other in (0, 1, 3, 4):
            assert abs(counts[other] - expected) < 5 * np.sqrt(expected)

    def test_sample_neighbors_batch(self, rng):
        graph = CompleteGraph(10)
        batch = graph.sample_neighbors(3, 50, rng)
        assert len(batch) == 50
        assert 3 not in batch

    def test_sample_uniform_covers_all(self, rng):
        graph = CompleteGraph(3)
        draws = {graph.sample_uniform(rng) for _ in range(200)}
        assert draws == {0, 1, 2}
