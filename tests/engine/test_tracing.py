"""Tests for the tracing sinks."""

from __future__ import annotations

import io
import json

import numpy as np
import pytest

from repro.engine.tracing import (
    NULL_TRACER,
    CountingTracer,
    JsonlTracer,
    NullTracer,
    TraceRecorder,
)


class TestNullTracer:
    def test_drops_everything(self):
        tracer = NullTracer()
        tracer.record("kind", 1.0, field=1)
        assert not tracer.enabled_for("kind")

    def test_module_singleton(self):
        assert isinstance(NULL_TRACER, NullTracer)


class TestTraceRecorder:
    def test_records_everything_by_default(self):
        recorder = TraceRecorder()
        recorder.record("a", 1.0, x=1)
        recorder.record("b", 2.0)
        assert len(recorder) == 2
        assert recorder.records[0].fields == {"x": 1}

    def test_kind_filter(self):
        recorder = TraceRecorder(kinds=["keep"])
        recorder.record("keep", 1.0)
        recorder.record("drop", 2.0)
        assert len(recorder) == 1
        assert recorder.enabled_for("keep")
        assert not recorder.enabled_for("drop")

    def test_by_kind_and_times(self):
        recorder = TraceRecorder()
        recorder.record("tick", 1.0)
        recorder.record("other", 1.5)
        recorder.record("tick", 2.0)
        assert [r.time for r in recorder.by_kind("tick")] == [1.0, 2.0]
        assert recorder.times("tick") == [1.0, 2.0]


class TestTraceRecorderCap:
    def test_cap_drops_and_flags(self):
        recorder = TraceRecorder(max_records=2)
        recorder.record("a", 1.0)
        recorder.record("a", 2.0)
        assert not recorder.truncated
        recorder.record("a", 3.0)
        assert len(recorder) == 2
        assert recorder.truncated
        assert recorder.times("a") == [1.0, 2.0]

    def test_filtered_records_do_not_consume_cap(self):
        recorder = TraceRecorder(kinds=["keep"], max_records=1)
        recorder.record("drop", 1.0)
        recorder.record("keep", 2.0)
        assert len(recorder) == 1
        assert not recorder.truncated

    def test_negative_cap_rejected(self):
        with pytest.raises(ValueError):
            TraceRecorder(max_records=-1)


class TestJsonlTracer:
    def test_writes_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlTracer(path) as tracer:
            tracer.record("run", 0.0, n=4)
            tracer.record("state", 1.5, node=2, col=0)
        lines = path.read_text().splitlines()
        assert [json.loads(line)["kind"] for line in lines] == ["run", "state"]
        assert json.loads(lines[1]) == {"kind": "state", "t": 1.5, "node": 2, "col": 0}
        assert tracer.records_written == 2

    def test_deterministic_bytes(self, tmp_path):
        paths = [tmp_path / "a.jsonl", tmp_path / "b.jsonl"]
        for path in paths:
            with JsonlTracer(path, buffer_records=1 if path.name == "a.jsonl" else 100) as tracer:
                tracer.record("run", 0.0, b=1, a=2)
                tracer.record("end", 3.0, converged=True)
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_buffering_defers_writes_until_flush(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = JsonlTracer(path, buffer_records=10)
        tracer.record("tick", 1.0)
        assert path.read_text() == ""
        tracer.flush()
        assert len(path.read_text().splitlines()) == 1
        tracer.close()
        tracer.close()  # idempotent

    def test_buffer_limit_triggers_batch_write(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = JsonlTracer(path, buffer_records=2)
        tracer.record("tick", 1.0)
        tracer.record("tick", 2.0)
        assert len(path.read_text().splitlines()) == 2
        tracer.close()

    def test_kind_filter(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlTracer(path, kinds=["end"]) as tracer:
            assert tracer.enabled_for("end")
            assert not tracer.enabled_for("state")
            tracer.record("state", 1.0, node=0)
            tracer.record("end", 2.0, converged=True)
        assert [json.loads(line)["kind"] for line in path.read_text().splitlines()] == ["end"]

    def test_numpy_scalars_serialized_plain(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlTracer(path) as tracer:
            tracer.record("round", np.float64(1.5), counts=[np.int64(3)])
        record = json.loads(path.read_text())
        assert record == {"kind": "round", "t": 1.5, "counts": [3]}

    def test_accepts_open_file_object(self):
        sink = io.StringIO()
        tracer = JsonlTracer(sink)
        tracer.record("run", 0.0, n=1)
        tracer.close()
        assert json.loads(sink.getvalue()) == {"kind": "run", "t": 0.0, "n": 1}
        assert not sink.closed  # caller owns the handle

    def test_flush_after_close_rejected(self, tmp_path):
        tracer = JsonlTracer(tmp_path / "t.jsonl")
        tracer.close()
        with pytest.raises(ValueError):
            tracer.flush()

    def test_bad_buffer_size_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            JsonlTracer(tmp_path / "t.jsonl", buffer_records=0)


class TestCountingTracer:
    def test_counts_per_kind(self):
        tracer = CountingTracer()
        for _ in range(3):
            tracer.record("tick", 0.0)
        tracer.record("signal", 0.0)
        assert tracer.counts == {"tick": 3, "signal": 1}
