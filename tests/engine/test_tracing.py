"""Tests for the tracing sinks."""

from __future__ import annotations

from repro.engine.tracing import NULL_TRACER, CountingTracer, NullTracer, TraceRecorder


class TestNullTracer:
    def test_drops_everything(self):
        tracer = NullTracer()
        tracer.record("kind", 1.0, field=1)
        assert not tracer.enabled_for("kind")

    def test_module_singleton(self):
        assert isinstance(NULL_TRACER, NullTracer)


class TestTraceRecorder:
    def test_records_everything_by_default(self):
        recorder = TraceRecorder()
        recorder.record("a", 1.0, x=1)
        recorder.record("b", 2.0)
        assert len(recorder) == 2
        assert recorder.records[0].fields == {"x": 1}

    def test_kind_filter(self):
        recorder = TraceRecorder(kinds=["keep"])
        recorder.record("keep", 1.0)
        recorder.record("drop", 2.0)
        assert len(recorder) == 1
        assert recorder.enabled_for("keep")
        assert not recorder.enabled_for("drop")

    def test_by_kind_and_times(self):
        recorder = TraceRecorder()
        recorder.record("tick", 1.0)
        recorder.record("other", 1.5)
        recorder.record("tick", 2.0)
        assert [r.time for r in recorder.by_kind("tick")] == [1.0, 2.0]
        assert recorder.times("tick") == [1.0, 2.0]


class TestCountingTracer:
    def test_counts_per_kind(self):
        tracer = CountingTracer()
        for _ in range(3):
            tracer.record("tick", 0.0)
        tracer.record("signal", 0.0)
        assert tracer.counts == {"tick": 3, "signal": 1}
