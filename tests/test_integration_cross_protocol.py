"""Cross-protocol integration tests.

These tie the three protocol implementations and the closed-form theory
to each other: the same workload must produce the same *story*
(generation counts, bias squaring, plurality win) whether simulated
synchronously, asynchronously with one leader, or fully decentralized.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.params import SingleLeaderParams
from repro.core.schedule import FixedSchedule
from repro.core.single_leader import SingleLeaderSim
from repro.core.synchronous import run_synchronous
from repro.core.theory import predict_synchronous, total_generations
from repro.engine.rng import RngRegistry
from repro.multileader.clustering import ideal_clustering
from repro.multileader.consensus import MultiLeaderConsensusSim
from repro.multileader.params import MultiLeaderParams
from repro.workloads.opinions import biased_counts


class TestGenerationBudgetConsistency:
    """All protocols consume about G* generations on the same workload."""

    N, K, ALPHA = 900, 3, 2.0

    def test_synchronous_generation_count(self, rngs):
        counts = biased_counts(50_000, self.K, self.ALPHA)
        result = run_synchronous(
            counts,
            FixedSchedule(n=50_000, k=self.K, alpha0=self.ALPHA),
            rngs.stream("sync"),
            max_steps=500,
        )
        budget = total_generations(50_000, self.ALPHA)
        assert result.converged
        assert len(result.births) <= budget + 2
        assert len(result.births) >= max(1, budget - 2)

    def test_async_leader_generation_count(self, rngs):
        params = SingleLeaderParams(n=self.N, k=self.K, alpha0=self.ALPHA)
        counts = biased_counts(self.N, self.K, self.ALPHA)
        sim = SingleLeaderSim(params, counts, rngs.stream("async"))
        result = sim.run(max_time=3000.0)
        assert result.converged
        assert sim.leader.gen <= params.max_generation

    def test_multileader_generation_count(self, rngs):
        params = MultiLeaderParams(n=self.N, k=self.K, alpha0=self.ALPHA)
        counts = biased_counts(self.N, self.K, self.ALPHA)
        clustering = ideal_clustering(self.N, params.target_cluster_size)
        sim = MultiLeaderConsensusSim(params, clustering, counts, rngs.stream("ml"))
        result = sim.run(max_time=5000.0)
        assert result.converged
        assert max(state.gen for state in sim.leaders.values()) <= params.max_generation


class TestBiasSquaringEverywhere:
    def test_async_births_square_bias(self, rngs):
        params = SingleLeaderParams(n=4000, k=3, alpha0=1.8)
        counts = biased_counts(4000, 3, 1.8)
        sim = SingleLeaderSim(params, counts, rngs.stream("sq"))
        sim.run(max_time=3000.0)
        finite = [b.bias for b in sim.births if math.isfinite(b.bias)]
        # Bias grows strictly along recorded prop-flip snapshots, and the
        # growth outpaces linear drift (it is driven by squaring).
        assert len(finite) >= 1
        for previous, current in zip([1.8] + finite, finite):
            assert current > previous


class TestTheoryAgainstMeasurement:
    def test_synchronous_prediction_brackets_measurement(self, rngs):
        n, k, alpha = 200_000, 8, 1.5
        counts = biased_counts(n, k, alpha)
        measured = [
            run_synchronous(
                counts,
                FixedSchedule(n=n, k=k, alpha0=alpha),
                rngs.stream(f"pred/{rep}"),
                max_steps=1000,
            ).elapsed
            for rep in range(3)
        ]
        predicted = predict_synchronous(n, k, alpha).total_steps
        mean = float(np.mean(measured))
        # Shape-level agreement: within a factor of three either way.
        assert predicted / 3.0 < mean < predicted * 3.0

    def test_async_time_unit_flat_in_latency(self, rngs):
        """Doubling the latency doubles steps but not units."""
        n, k, alpha = 600, 3, 2.0
        counts = biased_counts(n, k, alpha)
        unit_times = []
        for lam in (1.0, 0.25):
            params = SingleLeaderParams(n=n, k=k, alpha0=alpha, latency_rate=lam)
            result = SingleLeaderSim(params, counts, rngs.stream(f"lam/{lam}")).run(
                max_time=6000.0
            )
            assert result.converged
            unit_times.append(result.elapsed / params.time_unit)
        assert max(unit_times) < 1.6 * min(unit_times)


class TestZipfWorkloads:
    """The protocols are workload-agnostic: skewed tails work too."""

    def test_sync_on_zipf(self, rngs):
        from repro.workloads.opinions import zipf_counts

        counts = zipf_counts(100_000, 10, exponent=1.2)
        result = run_synchronous(
            counts,
            FixedSchedule(n=100_000, k=10, alpha0=1.5),
            rngs.stream("zipf"),
            max_steps=500,
        )
        assert result.converged
        assert result.plurality_won

    def test_async_on_zipf(self, rngs):
        from repro.workloads.opinions import zipf_counts

        counts = zipf_counts(800, 5, exponent=1.5)
        params = SingleLeaderParams(n=800, k=5, alpha0=1.8)
        result = SingleLeaderSim(params, counts, rngs.stream("zipf-a")).run(
            max_time=3000.0
        )
        assert result.converged
        assert result.plurality_won
