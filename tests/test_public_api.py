"""Tests for the top-level public API."""

from __future__ import annotations

import pytest

import repro


class TestExports:
    def test_version(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_error_hierarchy(self):
        assert issubclass(repro.ConfigurationError, repro.ReproError)
        assert issubclass(repro.ConvergenceError, repro.SimulationError)
        assert issubclass(repro.SchedulingError, repro.SimulationError)


class TestQuickHelpers:
    def test_quick_sync(self):
        result = repro.quick_sync(n=10_000, k=4, alpha=2.0, seed=7, max_steps=400)
        assert result.converged
        assert result.plurality_won

    def test_quick_sync_deterministic(self):
        first = repro.quick_sync(n=5000, k=3, alpha=2.0, seed=3, max_steps=400)
        second = repro.quick_sync(n=5000, k=3, alpha=2.0, seed=3, max_steps=400)
        assert first.elapsed == second.elapsed

    def test_quick_async(self):
        result = repro.quick_async(n=400, k=3, alpha=2.5, seed=7, max_time=600.0)
        assert result.converged
        assert result.plurality_won

    def test_quick_kwargs_forwarded(self):
        result = repro.quick_sync(
            n=5000, k=3, alpha=2.0, seed=1, max_steps=400, record_trajectory=True
        )
        assert result.trajectory
