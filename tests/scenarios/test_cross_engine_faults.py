"""Cross-engine robustness differential harness.

The repository now has *two* fault seams — event-stream transforms for
the asynchronous protocols (:mod:`repro.scenarios.faults`) and
vectorized per-round masks for the synchronous/population engines
(:mod:`repro.scenarios.round_faults`) — built from one knob vocabulary.
This suite pins the claim that the two models describe the *same*
adversity:

* **matched marginals** (Hypothesis): for any drop rate, the realized
  loss fraction of the event-level transform chain and the round-level
  mask agree with the knob and with each other, for both the iid and
  the bursty (Gilbert–Elliott) channel built from the shared parameter
  solver;
* **convergence agreement**: the *relative* ε-convergence slowdown a
  matched loss rate inflicts on the event-driven single-leader protocol
  and on the round-driven synchronous protocol falls in overlapping
  confidence intervals (each engine measured in its own time unit —
  the ratio cancels the unit);
* **composition**: stragglers and churn hitting the same node compose
  without deadlock on both seams.

Everything runs on fixed seeds: the statistics are deterministic, the
tolerances are calibrated against the measured values with generous
margins.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import SingleLeaderParams
from repro.core.schedule import FixedSchedule
from repro.core.single_leader import SingleLeaderSim
from repro.core.synchronous import run_synchronous
from repro.engine.rng import RngRegistry
from repro.scenarios.faults import (
    GilbertElliottDrop,
    IidDrop,
    build_faults,
    gilbert_elliott_params,
    prepare_faulty_simulator,
)
from repro.scenarios.round_faults import (
    RoundBurstyLoss,
    RoundIidLoss,
    build_round_faults,
    prepare_round_faults,
)
from repro.workloads.opinions import biased_counts

rates = st.floats(min_value=0.05, max_value=0.5)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


class _Wiring:
    """Minimal install() context for driving fault models directly."""

    def __init__(self, rng: np.random.Generator, n: int = 256):
        self.rng = rng
        self.n = n


def _event_realized_rate(model, samples: int, rng) -> float:
    model.install(_Wiring(rng))
    dropped = sum(
        1 for _ in range(samples) if model.transform("exchange", 0, 1.0) is None
    )
    return dropped / samples


def _round_realized_rate(model, rounds: int, rng, n: int = 256) -> float:
    model.install(_Wiring(rng, n=n))
    dropped = 0
    for index in range(rounds):
        mask = model.round_mask(float(index))
        if mask is not None:
            dropped += mask.size - int(mask.sum())
    return dropped / (rounds * n)


class TestMatchedMarginals:
    @settings(max_examples=20, deadline=None)
    @given(rates, seeds)
    def test_iid_models_realize_the_knob(self, rate, seed):
        rngs = RngRegistry(seed)
        event = _event_realized_rate(IidDrop(rate), 20_000, rngs.stream("event"))
        round_level = _round_realized_rate(
            RoundIidLoss(rate), 80, rngs.stream("round")
        )
        # Binomial sd at 20k samples is < 0.004; 0.02 is a 5-sigma band.
        assert abs(event - rate) < 0.02
        assert abs(round_level - rate) < 0.02
        assert abs(event - round_level) < 0.03

    @settings(max_examples=15, deadline=None)
    @given(rates, seeds)
    def test_bursty_models_share_the_stationary_rate(self, rate, seed):
        rngs = RngRegistry(seed)
        params = gilbert_elliott_params(rate)
        event = _event_realized_rate(
            GilbertElliottDrop(**params), 60_000, rngs.stream("event")
        )
        round_level = _round_realized_rate(
            RoundBurstyLoss(**params), 1500, rngs.stream("round")
        )
        # Bursts correlate the draws (the round chain advances once per
        # round, so 1500 rounds ≈ a few hundred independent sojourns) —
        # wider bands than the iid case.
        assert abs(event - rate) < 0.05
        assert abs(round_level - rate) < 0.05
        assert abs(event - round_level) < 0.08

    @settings(max_examples=20, deadline=None)
    @given(rates)
    def test_builders_map_the_knob_identically(self, rate):
        event = build_faults(drop=rate, drop_model="bursty")[0]
        round_level = build_round_faults(drop=rate, drop_model="bursty")[0]
        assert event.drop_bad == round_level.drop_bad
        assert event.drop_good == round_level.drop_good
        assert event.to_bad == round_level.to_bad
        assert event.to_good == round_level.to_good


#: Convergence-agreement scale (calibrated; see module docstring).
N, K, ALPHA, DROP, REPS = 200, 3, 2.0, 0.4, 5
EPSILON = 0.1


def _event_epsilon_time(drop: float, rep: int) -> float:
    rngs = RngRegistry(1000 + rep)
    counts = biased_counts(N, K, ALPHA)
    simulator, wiring = prepare_faulty_simulator(
        N, build_faults(drop=drop), rngs.stream("f")
    )
    sim = SingleLeaderSim(
        SingleLeaderParams(n=N, k=K, alpha0=ALPHA),
        counts,
        rngs.stream("s"),
        simulator=simulator,
    )
    if wiring is not None:
        wiring.bind(sim)
    result = sim.run(max_time=3000.0, epsilon=EPSILON, stop_at_epsilon=True)
    assert result.epsilon_convergence_time is not None
    return result.epsilon_convergence_time


def _round_epsilon_time(drop: float, rep: int) -> float:
    rngs = RngRegistry(2000 + rep)
    counts = biased_counts(N, K, ALPHA)
    wiring = prepare_round_faults(N, build_round_faults(drop=drop), rngs.stream("f"))
    result = run_synchronous(
        counts,
        FixedSchedule(n=N, k=K, alpha0=ALPHA),
        rngs.stream("s"),
        engine="pernode",
        max_steps=5000,
        epsilon=EPSILON,
        round_faults=wiring,
    )
    assert result.epsilon_convergence_time is not None
    return result.epsilon_convergence_time


def _slowdown_interval(epsilon_time) -> tuple[float, float, float]:
    """Mean and a ±2.5·SEM interval of the per-rep slowdown ratios."""
    ratios = np.array(
        [epsilon_time(DROP, rep) / epsilon_time(0.0, rep) for rep in range(REPS)]
    )
    mean = float(ratios.mean())
    margin = 2.5 * float(ratios.std(ddof=1)) / np.sqrt(REPS)
    return mean, mean - margin, mean + margin


class TestConvergenceAgreement:
    """Matched loss ⇒ overlapping ε-convergence slowdown CIs."""

    def test_slowdown_intervals_overlap(self):
        event_mean, event_lo, event_hi = _slowdown_interval(_event_epsilon_time)
        round_mean, round_lo, round_hi = _slowdown_interval(_round_epsilon_time)
        # Both engines slow down (a drop cannot speed consensus up) ...
        assert event_mean >= 1.0
        assert round_mean >= 1.0
        # ... by the same factor up to statistical noise.  The iid
        # wasted-cycle model predicts ~1/(1-rate) ≈ 1.67 for both.
        assert event_lo <= round_hi and round_lo <= event_hi, (
            f"event slowdown {event_mean:.2f} [{event_lo:.2f}, {event_hi:.2f}] vs "
            f"round slowdown {round_mean:.2f} [{round_lo:.2f}, {round_hi:.2f}]"
        )

    def test_slowdowns_bracket_the_wasted_cycle_model(self):
        # Coarse absolute sanity: both means within a factor band of
        # the 1/(1-rate) prediction, neither degenerate nor exploding.
        prediction = 1.0 / (1.0 - DROP)
        for epsilon_time in (_event_epsilon_time, _round_epsilon_time):
            mean, _, _ = _slowdown_interval(epsilon_time)
            assert 0.5 * prediction <= mean <= 2.0 * prediction


class TestComposition:
    """Stragglers + churn on the same nodes: no deadlock on either seam."""

    def test_event_seam_composes(self):
        rngs = RngRegistry(77)
        counts = biased_counts(150, 3, 2.0)
        simulator, wiring = prepare_faulty_simulator(
            150,
            build_faults(drop=0.2, churn=1.0, stragglers=1.0, straggler_slowdown=3.0),
            rngs.stream("f"),
        )
        sim = SingleLeaderSim(
            SingleLeaderParams(n=150, k=3, alpha0=2.0),
            counts,
            rngs.stream("s"),
            simulator=simulator,
        )
        wiring.bind(sim)
        result = sim.run(max_time=1500.0, epsilon=EPSILON)
        # Every node is a straggler AND churn hits stragglers too; with
        # this much adversity the plurality may legitimately lose, but
        # the system must never deadlock: cycles keep completing, locks
        # keep releasing, and the leader's phase machine keeps moving.
        assert sim.good_ticks > sim.n
        assert int(sim.locked.sum()) < sim.n
        assert sim.leader.gen > 0
        assert result.elapsed == 1500.0 or result.converged
        info = wiring.info()
        assert info["fault_crashes"] > 0

    def test_round_seam_composes(self):
        rngs = RngRegistry(78)
        counts = biased_counts(200, 3, 2.0)
        wiring = prepare_round_faults(
            200,
            build_round_faults(drop=0.2, churn=1.0, stragglers=1.0, straggler_slowdown=3.0),
            rngs.stream("f"),
        )
        result = run_synchronous(
            counts,
            FixedSchedule(n=200, k=3, alpha0=2.0),
            rngs.stream("s"),
            engine="pernode",
            max_steps=8000,
            epsilon=EPSILON,
            round_faults=wiring,
        )
        assert result.epsilon_convergence_time is not None
        info = wiring.info()
        assert info["fault_crashes"] > 0
        assert info["fault_straggler_skips"] > 0
