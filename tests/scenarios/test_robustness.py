"""The robustness experiment: cached sweep plumbing and coverage."""

from __future__ import annotations

import pytest

from repro.experiments.robustness import PROFILES, run_robustness
from repro.sweep.cache import RunCache


class TestRobustnessSmoke:
    @pytest.fixture(scope="class")
    def reports(self, tmp_path_factory):
        cache = RunCache(tmp_path_factory.mktemp("runs"))
        first = run_robustness(profile="smoke", seed=0, cache=cache)
        second = run_robustness(profile="smoke", seed=0, cache=cache)
        return first, second

    def test_second_invocation_executes_zero_runs(self, reports):
        first, second = reports
        assert first.executed > 0
        assert second.executed == 0
        assert second.cached >= first.executed

    def test_cached_tables_byte_identical(self, reports):
        first, second = reports
        assert [t.render() for t in first.result.tables] == [
            t.render() for t in second.result.tables
        ]

    def test_covers_topologies_and_fault_models(self, reports):
        first, _ = reports
        rendered = "\n".join(table.render() for table in first.result.tables)
        # >= 3 topologies ...
        for topology in ("complete", "regular", "gnp", "torus", "cluster"):
            assert topology in rendered
        # ... x >= 2 fault models (iid + bursty drop, plus churn).
        assert "iid" in rendered
        assert "bursty" in rendered
        assert any(table.title.startswith("sweep: churn") for table in first.result.tables)

    def test_markdown_renders(self, reports):
        first, _ = reports
        markdown = first.result.render_markdown()
        assert markdown.startswith("### robustness")
        assert "| topology" in markdown

    def test_accounting_note_present(self, reports):
        first, _ = reports
        assert any("runs executed" in note for note in first.result.notes)


class TestProfiles:
    def test_known_profiles(self):
        assert set(PROFILES) == {"smoke", "quick", "full"}

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError):
            run_robustness(profile="gigantic")

    def test_registry_entry_exists(self):
        from repro.experiments.registry import EXPERIMENTS

        assert "robustness" in EXPERIMENTS
