"""Default-path regression guard: no graph argument == pre-scenario engine.

``golden_default_path.json`` was generated from the repository *before*
the scenario subsystem existed (same seeds, same configurations). Every
protocol invoked with ``graph=None`` or ``graph=CompleteGraph(n)`` on
the **heap fallback engine** must reproduce those trajectories
byte-for-byte — neither the scenario layer nor the batched-engine
refactor is allowed to perturb the legacy world, not even by one RNG
draw.  The batched default engine draws in window-granular order, so
its trajectories differ (statistically equivalent — see
``tests/engine/test_fast_equivalence.py``); they are pinned separately
in ``golden_default_path_batch.json`` so future engine changes cannot
slip through unnoticed.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.baselines import ThreeMajority, run_dynamics
from repro.core.delayed_exchange import DelayedExchangeSim
from repro.core.params import SingleLeaderParams
from repro.core.schedule import FixedSchedule
from repro.core.single_leader import SingleLeaderSim
from repro.core.synchronous import PerNodeSynchronousSim
from repro.engine.network import CompleteGraph
from repro.engine.rng import RngRegistry
from repro.multileader.params import MultiLeaderParams
from repro.multileader.protocol import run_multileader
from repro.sweep.runner import execute_run
from repro.sweep.spec import SweepSpec
from repro.workloads.opinions import biased_counts

import repro.engine.simulator as engine_sim

GOLDEN = json.loads((Path(__file__).parent / "golden_default_path.json").read_text())
GOLDEN_BATCH = json.loads(
    (Path(__file__).parent / "golden_default_path_batch.json").read_text()
)
#: Round-seam era pins (generated when the round-level fault subsystem
#: landed): population scheduler, aggregate engine, population target.
GOLDEN_ROUND = json.loads(
    (Path(__file__).parent / "golden_round_defaults.json").read_text()
)

#: graph= values that must hit the identical code path.
DEFAULT_GRAPHS = [None, "complete"]


@pytest.fixture(autouse=True)
def _heap_engine(monkeypatch):
    """The legacy goldens are heap-engine trajectories."""
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    monkeypatch.setattr(engine_sim, "DEFAULT_ENGINE", "heap")


def _graph(tag, n):
    return CompleteGraph(n) if tag == "complete" else None


@pytest.mark.parametrize("tag", DEFAULT_GRAPHS)
class TestByteIdenticalDefaults:
    def test_single_leader(self, tag):
        rngs = RngRegistry(42)
        params = SingleLeaderParams(n=300, k=3, alpha0=2.0)
        sim = SingleLeaderSim(
            params, biased_counts(300, 3, 2.0), rngs.stream("sl"), graph=_graph(tag, 300)
        )
        result = sim.run(max_time=800.0)
        assert [
            bool(result.converged),
            int(result.winner),
            repr(result.elapsed),
            result.final_color_counts.tolist(),
            int(sim.sim.events_executed),
        ] == GOLDEN["single_leader"]

    def test_delayed_exchange(self, tag):
        rngs = RngRegistry(42)
        params = SingleLeaderParams(n=300, k=3, alpha0=2.0)
        sim = DelayedExchangeSim(
            params,
            biased_counts(300, 3, 2.0),
            rngs.stream("dx"),
            exchange_rate=2.0,
            graph=_graph(tag, 300),
        )
        result = sim.run(max_time=1200.0)
        assert [
            bool(result.converged),
            int(result.winner),
            repr(result.elapsed),
            result.final_color_counts.tolist(),
            int(sim.sim.events_executed),
        ] == GOLDEN["delayed"]

    def test_pernode_synchronous(self, tag):
        rngs = RngRegistry(42)
        counts = biased_counts(400, 4, 2.0)
        sim = PerNodeSynchronousSim(
            counts,
            FixedSchedule(n=400, k=4, alpha0=2.0),
            rngs.stream("sync"),
            graph=_graph(tag, 400),
        )
        result = sim.run(max_steps=4000)
        assert [
            bool(result.converged),
            int(result.winner),
            repr(result.elapsed),
            result.final_color_counts.tolist(),
        ] == GOLDEN["pernode_sync"]

    def test_multileader(self, tag):
        rngs = RngRegistry(42)
        params = MultiLeaderParams(n=400, k=3, alpha0=2.0)
        result = run_multileader(
            params,
            biased_counts(400, 3, 2.0),
            rngs.stream("ml"),
            clustering_max_time=300.0,
            max_time=1500.0,
            graph=_graph(tag, 400),
        )
        assert [
            bool(result.converged),
            int(result.winner),
            repr(result.elapsed),
            result.final_color_counts.tolist(),
        ] == GOLDEN["multileader"]

    def test_baseline_dynamics(self, tag):
        rngs = RngRegistry(42)
        result = run_dynamics(
            ThreeMajority(),
            biased_counts(500, 4, 2.0),
            rngs.stream("b3m"),
            max_rounds=5000,
            graph=_graph(tag, 500),
        )
        assert [
            bool(result.converged),
            int(result.winner),
            repr(result.elapsed),
            result.final_color_counts.tolist(),
        ] == GOLDEN["three_majority"]


class TestSweepRecords:
    def test_default_target_records_byte_identical(self):
        spec = SweepSpec(
            target="single_leader",
            base={"k": 3, "alpha": 2.0},
            grid={"n": [200, 300]},
            repetitions=2,
            seed=7,
        )
        records = [execute_run(config) for config in spec.expand()]
        for record in records:
            record.pop("wall_time", None)
        assert records == GOLDEN["sweep_records"]


class TestRoundSeamDefaults:
    """The round-level fault subsystem's zero-fault paths, pinned.

    ``round_faults=None`` / ``assignment=None`` / ``graph=None`` must
    consume no randomness and take the literal pre-seam code path.  The
    population scheduler and the aggregate engine gained the seam in
    the same change, so their default trajectories are pinned here the
    way ``golden_default_path.json`` pins the event engines.
    """

    def test_population_scheduler_three_state(self):
        from repro.baselines.population import PairwiseScheduler, ThreeStateMajority

        rngs = RngRegistry(42)
        result = PairwiseScheduler(ThreeStateMajority()).run(
            biased_counts(400, 2, 2.0), rngs.stream("p3"),
            graph=None, round_faults=None, assignment=None,
        )
        assert [
            bool(result.converged),
            int(result.winner),
            int(result.interactions),
            result.final_state_counts.tolist(),
        ] == GOLDEN_ROUND["population_three_state"]

    def test_population_scheduler_four_state(self):
        from repro.baselines.population import FourStateExactMajority, PairwiseScheduler

        rngs = RngRegistry(42)
        result = PairwiseScheduler(FourStateExactMajority()).run(
            biased_counts(120, 2, 1.5), rngs.stream("p4")
        )
        assert [
            bool(result.converged),
            None if result.winner is None else int(result.winner),
            int(result.interactions),
            result.final_state_counts.tolist(),
        ] == GOLDEN_ROUND["population_four_state"]

    def test_aggregate_synchronous(self):
        from repro.core.schedule import FixedSchedule
        from repro.core.synchronous import AggregateSynchronousSim

        rngs = RngRegistry(42)
        sim = AggregateSynchronousSim(
            biased_counts(600, 4, 2.0),
            FixedSchedule(n=600, k=4, alpha0=2.0),
            rngs.stream("agg"),
            round_faults=None,
        )
        result = sim.run(max_steps=4000)
        assert [
            bool(result.converged),
            int(result.winner),
            repr(result.elapsed),
            result.final_color_counts.tolist(),
        ] == GOLDEN_ROUND["aggregate_sync"]

    def test_population_target_records(self):
        spec = SweepSpec(
            target="population",
            base={"k": 2, "alpha": 2.0},
            grid={"n": [200, 300]},
            repetitions=2,
            seed=7,
        )
        records = [execute_run(config) for config in spec.expand()]
        for record in records:
            record.pop("wall_time", None)
        assert records == GOLDEN_ROUND["population_records"]


class TestBatchEngineGolden:
    """Pin the batched default engine's trajectories going forward."""

    def test_single_leader_batch(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        monkeypatch.setattr(engine_sim, "DEFAULT_ENGINE", "batch")
        rngs = RngRegistry(42)
        params = SingleLeaderParams(n=300, k=3, alpha0=2.0)
        sim = SingleLeaderSim(params, biased_counts(300, 3, 2.0), rngs.stream("sl"))
        result = sim.run(max_time=800.0)
        assert [
            bool(result.converged),
            int(result.winner),
            repr(result.elapsed),
            result.final_color_counts.tolist(),
            int(sim.sim.events_executed),
        ] == GOLDEN_BATCH["single_leader"]

    def test_multileader_batch(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        monkeypatch.setattr(engine_sim, "DEFAULT_ENGINE", "batch")
        rngs = RngRegistry(42)
        params = MultiLeaderParams(n=400, k=3, alpha0=2.0)
        result = run_multileader(
            params,
            biased_counts(400, 3, 2.0),
            rngs.stream("ml"),
            clustering_max_time=300.0,
            max_time=1500.0,
        )
        assert [
            bool(result.converged),
            int(result.winner),
            repr(result.elapsed),
            result.final_color_counts.tolist(),
        ] == GOLDEN_BATCH["multileader"]
