"""Round-level fault models: masks, churn bookkeeping, engine behavior."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import ThreeMajority, UndecidedStateDynamics, run_dynamics
from repro.baselines.population import PairwiseScheduler, ThreeStateMajority
from repro.core.schedule import FixedSchedule
from repro.core.synchronous import run_synchronous
from repro.engine.rng import RngRegistry
from repro.errors import ConfigurationError
from repro.scenarios.round_faults import (
    RoundBurstyLoss,
    RoundChurn,
    RoundCrashAtTimes,
    RoundFaults,
    RoundIidLoss,
    RoundStragglers,
    build_round_faults,
    prepare_round_faults,
)
from repro.scenarios.topology import RandomRegularGraph
from repro.workloads.opinions import biased_counts


def _wire(models, rngs, n=200, name="rf"):
    return RoundFaults(n, models, rngs.stream(name))


class TestModels:
    def test_iid_mask_marginal_rate(self, rngs):
        wiring = _wire([RoundIidLoss(0.3)], rngs, n=4000)
        active, rejoined = wiring.begin_round(1.0)
        assert rejoined is None
        dropped = active.size - int(active.sum())
        assert 0.2 * active.size < dropped < 0.4 * active.size
        assert wiring.info()["fault_round_dropped"] == dropped

    def test_zero_rate_is_no_mask(self, rngs):
        wiring = _wire([RoundIidLoss(0.0)], rngs)
        active, rejoined = wiring.begin_round(1.0)
        assert active is None and rejoined is None

    def test_bursty_records_bursts_and_matches_marginal(self, rngs):
        model = RoundBurstyLoss(drop_good=0.0, drop_bad=0.9, to_bad=0.1, to_good=0.5)
        wiring = _wire([model], rngs, n=500)
        dropped = total = 0
        for round_index in range(400):
            active, _ = wiring.begin_round(float(round_index))
            total += 500
            if active is not None:
                dropped += 500 - int(active.sum())
        assert model.bursts > 0
        # Stationary loss = (0.1 / 0.6) * 0.9 = 0.15; allow a wide band.
        assert 0.10 < dropped / total < 0.20

    def test_straggler_subset_is_fixed_and_skips(self, rngs):
        model = RoundStragglers(0.5, slowdown=4.0)
        wiring = _wire([model], rngs, n=1000)
        assert 400 < model.count < 600
        skip_counts = np.zeros(1000)
        for round_index in range(100):
            active, _ = wiring.begin_round(float(round_index))
            skip_counts += ~active
        # Only the fixed subset ever skips; it acts ~1/4 of the time.
        slow = skip_counts > 0
        assert int(slow.sum()) == model.count
        mean_skip = skip_counts[slow].mean()
        assert 60 < mean_skip < 90  # ~75 of 100 rounds skipped

    def test_poisson_churn_down_and_rejoin(self, rngs):
        model = RoundChurn(5.0, mean_downtime=3.0)
        wiring = _wire([model], rngs, n=300)
        downs = 0
        rejoined_total = 0
        for round_index in range(1, 200):
            active, rejoined = wiring.begin_round(float(round_index))
            if active is not None:
                downs += active.size - int(active.sum())
            if rejoined is not None:
                rejoined_total += rejoined.size
        assert model.crashes > 0
        assert model.rejoins > 0
        assert rejoined_total == model.rejoins
        assert downs > 0

    def test_crash_at_times_permanent_and_temporary(self, rngs):
        permanent = RoundCrashAtTimes({3: 5.0})
        temporary = RoundCrashAtTimes({7: 5.0}, downtime=4.0)
        wiring = _wire([permanent, temporary], rngs, n=20)
        for round_index in range(1, 20):
            active, rejoined = wiring.begin_round(float(round_index))
            if round_index < 5:
                assert active is None or bool(active[3]) and bool(active[7])
            elif round_index < 9:
                assert not active[3] and not active[7]
            else:
                assert not active[3]  # permanent
                assert active[7]  # rejoined at t=9
        assert permanent.crashes == 1 and permanent.rejoins == 0
        assert temporary.crashes == 1 and temporary.rejoins == 1

    def test_crash_at_times_rejects_unknown_node(self, rngs):
        with pytest.raises(ConfigurationError):
            _wire([RoundCrashAtTimes({99: 1.0})], rngs, n=10)

    def test_crash_at_times_rejected_on_count_seam(self, rngs):
        wiring = _wire([RoundCrashAtTimes({1: 1.0})], rngs, n=10)
        with pytest.raises(ConfigurationError):
            wiring.count_round(1.0, np.array([5, 5]))

    def test_count_seam_participation_and_down_pool(self, rngs):
        wiring = _wire(
            [RoundIidLoss(0.25), RoundChurn(8.0, mean_downtime=2.0)], rngs, n=400
        )
        alive = np.array([250, 150], dtype=np.int64)
        saw_down = False
        for round_index in range(1, 60):
            participation, rejoined, down = wiring.count_round(float(round_index), alive)
            assert participation == pytest.approx(0.75)
            if down is not None and down.sum() > 0:
                saw_down = True
                assert (down <= alive).all()
            if rejoined is not None:
                assert (rejoined >= 0).all()
        assert saw_down

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            RoundIidLoss(1.0)
        with pytest.raises(ConfigurationError):
            RoundStragglers(1.5)
        with pytest.raises(ConfigurationError):
            RoundBurstyLoss(drop_bad=2.0)
        with pytest.raises(ConfigurationError):
            RoundCrashAtTimes({})


class TestBuildRoundFaults:
    def test_zero_knobs_build_nothing(self):
        assert build_round_faults() == []

    def test_prepare_empty_is_none(self, rngs):
        assert prepare_round_faults(100, [], rngs.stream("f")) is None
        assert prepare_round_faults(100, [None], rngs.stream("f")) is None

    def test_knobs_map_to_models(self):
        models = build_round_faults(drop=0.2, churn=0.5, stragglers=0.1)
        kinds = [type(model).__name__ for model in models]
        assert kinds == ["RoundIidLoss", "RoundChurn", "RoundStragglers"]
        bursty = build_round_faults(drop=0.2, drop_model="bursty")
        assert type(bursty[0]).__name__ == "RoundBurstyLoss"

    def test_unknown_drop_model_rejected(self):
        with pytest.raises(ConfigurationError):
            build_round_faults(drop=0.2, drop_model="lossy")

    def test_describe_composes(self, rngs):
        wiring = prepare_round_faults(
            50, build_round_faults(drop=0.1, churn=0.2), rngs.stream("f")
        )
        text = wiring.describe()
        assert "loss" in text and "churn" in text


class TestSynchronousEngines:
    def test_pernode_loss_slows_convergence(self, rngs):
        counts = biased_counts(400, 3, 2.0)
        schedule = FixedSchedule(n=400, k=3, alpha0=2.0)

        def run(drop, stream):
            wiring = prepare_round_faults(
                400, build_round_faults(drop=drop), rngs.stream(f"f/{stream}")
            )
            return run_synchronous(
                counts,
                FixedSchedule(n=400, k=3, alpha0=2.0),
                rngs.stream(stream),
                engine="pernode",
                max_steps=4000,
                epsilon=0.1,
                round_faults=wiring,
            )

        clean = run(0.0, "clean")
        lossy = run(0.6, "lossy")
        assert clean.converged and lossy.converged
        assert lossy.epsilon_convergence_time > clean.epsilon_convergence_time

    def test_pernode_crash_freezes_generation(self, rngs):
        counts = biased_counts(100, 3, 2.0)
        fault = RoundCrashAtTimes({5: 3.0}, downtime=50.0)
        wiring = prepare_round_faults(100, [fault], rngs.stream("f"))
        from repro.core.synchronous import PerNodeSynchronousSim

        sim = PerNodeSynchronousSim(
            counts, FixedSchedule(n=100, k=3, alpha0=2.0), rngs.stream("s"),
            round_faults=wiring,
        )
        frozen_at = None
        for _ in range(50):
            sim.step()
            if sim.steps_done == 3:
                frozen_at = int(sim.generations[5])
            elif sim.steps_done > 3:
                # Down from round 3 to 53: the node cannot act, so its
                # generation stays frozen at its crash value.
                assert sim.generations[5] == frozen_at
        assert fault.crashes == 1 and fault.rejoins == 0
        assert sim.generations.max() > 0  # the rest moved on

    def test_pernode_rejoin_resets_generation(self, rngs):
        # Seam-level check with a stub wiring: the engine must apply
        # the generation-0 reset to exactly the rejoining nodes, color
        # kept, before the round's updates run.
        counts = biased_counts(100, 3, 2.0)
        from repro.core.synchronous import PerNodeSynchronousSim

        class StubFaults:
            def __init__(self):
                self.calls = 0

            def begin_round(self, now):
                self.calls += 1
                if self.calls == 1:
                    active = np.ones(100, dtype=bool)
                    active[5] = False  # cannot re-adopt this round
                    return active, np.array([5])
                return None, None

        stub = StubFaults()
        sim = PerNodeSynchronousSim(
            counts, FixedSchedule(n=100, k=3, alpha0=2.0), rngs.stream("s"),
            round_faults=stub,
        )
        sim.generations[5] = 7
        color_before = int(sim.colors[5])
        sim.step()
        assert sim.generations[5] == 0
        assert sim.colors[5] == color_before

    def test_aggregate_churn_conserves_nodes(self, rngs):
        counts = biased_counts(500, 3, 2.0)
        wiring = prepare_round_faults(
            500, build_round_faults(drop=0.2, churn=3.0), rngs.stream("f")
        )
        result = run_synchronous(
            counts,
            FixedSchedule(n=500, k=3, alpha0=2.0),
            rngs.stream("s"),
            engine="aggregate",
            max_steps=3000,
            round_faults=wiring,
        )
        # The step() assertion enforces conservation every round; the
        # run finishing at all is the integration signal.
        assert int(result.final_color_counts.sum()) == 500
        assert wiring.info()["fault_crashes"] > 0

    def test_aggregate_rejects_assignment(self, rngs):
        counts = biased_counts(100, 2, 2.0)
        with pytest.raises(ConfigurationError):
            run_synchronous(
                counts,
                FixedSchedule(n=100, k=2, alpha0=2.0),
                rngs.stream("s"),
                engine="aggregate",
                assignment=np.zeros(100, dtype=np.int64),
            )


class TestDynamicsEngines:
    def test_multinomial_loss_slows_convergence(self, rngs):
        counts = biased_counts(600, 2, 1.5)

        def run(drop, stream):
            wiring = prepare_round_faults(
                600, build_round_faults(drop=drop), rngs.stream(f"f/{stream}")
            )
            return run_dynamics(
                ThreeMajority(), counts, rngs.stream(stream),
                max_rounds=20_000, round_faults=wiring,
            )

        clean = run(0.0, "clean")
        lossy = run(0.7, "lossy")
        assert clean.converged and lossy.converged
        assert lossy.elapsed > clean.elapsed

    def test_undecided_rejoins_undecided_on_graph(self, rngs):
        graph = RandomRegularGraph(120, 8, rngs.stream("g"))
        counts = biased_counts(120, 2, 2.0)
        wiring = prepare_round_faults(
            120, [RoundCrashAtTimes({3: 2.0}, downtime=3.0)], rngs.stream("f")
        )
        dynamics = UndecidedStateDynamics()
        result = run_dynamics(
            dynamics, counts, rngs.stream("d"), max_rounds=5000,
            graph=graph, round_faults=wiring,
        )
        assert result.converged
        assert wiring.info()["fault_rejoins"] == 1

    def test_undecided_rejoin_counts_move_to_undecided(self):
        dynamics = UndecidedStateDynamics()
        dynamics.initial_state(np.array([5, 5]))
        moved = dynamics.rejoin_counts(np.array([2, 1, 0]))
        assert moved.tolist() == [0, 0, 3]

    def test_graph_engine_respects_mask(self, rngs):
        # Crash every node permanently: no state can ever change.
        graph = RandomRegularGraph(60, 6, rngs.stream("g"))
        counts = biased_counts(60, 2, 2.0)
        wiring = prepare_round_faults(
            60, [RoundCrashAtTimes({node: 0.0 for node in range(60)})], rngs.stream("f")
        )
        result = run_dynamics(
            ThreeMajority(), counts, rngs.stream("d"), max_rounds=50,
            graph=graph, round_faults=wiring,
        )
        assert not result.converged
        assert result.final_color_counts.tolist() == counts.tolist()


class TestPopulationScheduler:
    def test_loss_thins_interactions(self, rngs):
        counts = biased_counts(300, 2, 2.0)

        def run(drop, stream):
            wiring = prepare_round_faults(
                300, build_round_faults(drop=drop), rngs.stream(f"f/{stream}")
            )
            result = PairwiseScheduler(ThreeStateMajority()).run(
                counts, rngs.stream(stream), round_faults=wiring
            )
            return result, wiring

        clean, _ = run(0.0, "clean")
        lossy, wiring = run(0.6, "lossy")
        assert clean.converged and lossy.converged
        assert lossy.interactions > clean.interactions
        assert wiring.info()["fault_round_dropped"] > 0

    def test_all_nodes_crashed_freezes_population(self, rngs):
        counts = biased_counts(100, 2, 2.0)
        wiring = prepare_round_faults(
            100, [RoundCrashAtTimes({node: 0.0 for node in range(100)})], rngs.stream("f")
        )
        result = PairwiseScheduler(ThreeStateMajority()).run(
            counts, rngs.stream("p"), max_interactions=20_000, round_faults=wiring
        )
        assert not result.converged
        assert result.final_state_counts[:2].tolist() == counts.tolist()

    def test_graph_restricted_pairs_converge(self, rngs):
        counts = biased_counts(200, 2, 3.0)
        graph = RandomRegularGraph(200, 8, rngs.stream("g"))
        result = PairwiseScheduler(ThreeStateMajority()).run(
            counts, rngs.stream("p"), graph=graph
        )
        assert result.converged
        assert result.winner == 0

    def test_assignment_seam(self, rngs):
        counts = biased_counts(50, 2, 2.0)
        assignment = np.repeat(np.arange(2), counts)
        result = PairwiseScheduler(ThreeStateMajority()).run(
            counts, rngs.stream("p"), assignment=assignment
        )
        assert result.converged
        with pytest.raises(ConfigurationError):
            PairwiseScheduler(ThreeStateMajority()).run(
                counts, rngs.stream("p2"), assignment=np.zeros(50, dtype=np.int64)
            )


class TestCountSeamChurnInvariant:
    """Regression: heavy churn on the anonymous count engines.

    The down pool is bounded by the post-rejoin matrix per category
    (crash victims are drawn before rejoins are popped); before that
    ordering fix, a rejoiner relocated to generation 0 could leave a
    phantom down count behind and drive a matrix entry negative,
    crashing ``rng.multinomial`` (observed in ~90% of seeds at
    churn=8, n=1000, within 400 aggregate steps).
    """

    @pytest.mark.parametrize("seed", range(5))
    def test_aggregate_heavy_churn_never_goes_negative(self, seed):
        rngs = RngRegistry(seed)
        wiring = prepare_round_faults(
            1000, build_round_faults(churn=8.0, churn_downtime=1.0), rngs.stream("f")
        )
        result = run_synchronous(
            biased_counts(1000, 3, 2.0),
            FixedSchedule(n=1000, k=3, alpha0=2.0),
            rngs.stream("s"),
            engine="aggregate",
            max_steps=400,
            round_faults=wiring,
        )
        assert int(result.final_color_counts.sum()) == 1000

    def test_dynamics_count_seam_heavy_churn(self, rngs):
        wiring = prepare_round_faults(
            500, build_round_faults(churn=6.0, churn_downtime=2.0), rngs.stream("f")
        )
        result = run_dynamics(
            UndecidedStateDynamics(),
            biased_counts(500, 2, 2.0),
            rngs.stream("d"),
            max_rounds=2000,
            round_faults=wiring,
        )
        assert int(result.final_color_counts.sum()) <= 500  # undecided excluded


class TestPopulationLossMarginal:
    """Regression: the drop knob is charged once per interaction.

    Before the ``begin_block`` split the scheduler composed the loss
    models' per-node round masks AND the per-interaction loss mask, so
    drop=p delivered ~(1-p)^3 of interactions instead of 1-p.
    """

    def test_drop_knob_is_the_interaction_loss_rate(self, rngs):
        wiring = prepare_round_faults(
            500, build_round_faults(drop=0.2), rngs.stream("f")
        )
        # Exact majority from an exact tie can never converge (the
        # #strong-X − #strong-Y invariant is 0), so every drawn loss
        # mask is fully consumed and the realized fraction is exact (a
        # converging run would abandon its last block's tail and
        # overcount the telemetry by up to one block).
        from repro.baselines.population import FourStateExactMajority

        result = PairwiseScheduler(FourStateExactMajority()).run(
            np.array([250, 250]),
            rngs.stream("p"),
            max_interactions=100_000,
            round_faults=wiring,
        )
        assert result.interactions == 100_000
        fraction = wiring.info()["fault_round_dropped"] / result.interactions
        # The pre-fix bug charged the knob per endpoint AND per message
        # (~0.49 effective); one charge per interaction is the contract.
        assert abs(fraction - 0.2) < 0.01

    def test_churn_and_stragglers_still_void_interactions(self, rngs):
        wiring = prepare_round_faults(
            300,
            build_round_faults(churn=2.0, stragglers=0.5, straggler_slowdown=4.0),
            rngs.stream("f"),
        )
        result = PairwiseScheduler(ThreeStateMajority()).run(
            biased_counts(300, 2, 2.0), rngs.stream("p"), round_faults=wiring
        )
        assert result.converged
        info = wiring.info()
        assert info["fault_skipped_node_rounds"] > 0
        assert info["fault_straggler_skips"] > 0
