"""Adversarial initial-configuration builders."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.network import CompleteGraph
from repro.engine.rng import RngRegistry
from repro.errors import ConfigurationError
from repro.scenarios.adversary import (
    adversarial_counts,
    clustered_assignment,
    init_names,
    minimal_bias_counts,
    opinion_ramp_counts,
    planted_tie_counts,
)
from repro.scenarios.topology import ClusterGraph, RandomGeometricGraph
from repro.workloads.opinions import biased_counts


class TestMinimalBias:
    @settings(max_examples=50)
    @given(st.integers(4, 5000), st.integers(2, 40))
    def test_lead_is_minimal(self, n, k):
        if k + 1 > n:
            k = n - 1
        counts = minimal_bias_counts(n, k)
        assert int(counts.sum()) == n
        lead = int(counts[0] - counts[1:].max())
        # One-node lead whenever feasible; the two-node lead only when
        # forced (k=2 parity, or a tie with the tail already at 1 node
        # — e.g. n=5, k=3 where no lead-1 configuration exists).
        assert lead == 1 or (lead == 2 and (k == 2 or int(counts[1:].max()) == 1))
        assert int(counts.min()) >= 1


class TestPlantedTie:
    @settings(max_examples=50)
    @given(st.integers(6, 5000), st.integers(2, 40))
    def test_top_two_exactly_tied(self, n, k):
        if 2 * (k - 1) > n:
            k = max(2, n // 2)
        if k == 2 and n % 2:
            n += 1
        counts = planted_tie_counts(n, k)
        assert int(counts.sum()) == n
        assert counts[0] == counts[1]
        if k > 2:
            assert counts[0] >= counts[2:].max()

    def test_odd_two_color_tie_rejected(self):
        with pytest.raises(ConfigurationError):
            planted_tie_counts(11, 2)


class TestOpinionRamp:
    @settings(max_examples=50)
    @given(st.integers(10, 100_000), st.floats(0.1, 0.9))
    def test_k_scales_as_power(self, n, exponent):
        counts = opinion_ramp_counts(n, exponent)
        assert int(counts.sum()) == n
        assert counts.size >= 2
        assert counts.size <= max(2, int(np.ceil(n**exponent)))
        # A strict plurality exists, so plurality_won stays well defined.
        assert counts[0] > counts[1:].max()

    def test_exponent_one_rejected(self):
        with pytest.raises(ConfigurationError):
            opinion_ramp_counts(100, 1.0)


def _plurality_is_connected(graph, assignment) -> bool:
    """BFS inside the plurality-colored subgraph reaches all of it."""
    members = np.nonzero(assignment == 0)[0]
    member_set = set(members.tolist())
    seen = {int(members[0])}
    frontier = [int(members[0])]
    while frontier:
        node = frontier.pop()
        for other in graph.neighbors(node):
            other = int(other)
            if other in member_set and other not in seen:
                seen.add(other)
                frontier.append(other)
    return len(seen) == members.size


class TestClusteredAssignment:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 2**31 - 1))
    def test_realizes_counts_and_forms_a_ball(self, seed):
        rngs = RngRegistry(seed)
        graph = RandomGeometricGraph(150, 0.25, rngs.stream("g"))
        counts = biased_counts(150, 3, 2.0)
        assignment = clustered_assignment(graph, counts, rngs.stream("a"))
        assert np.bincount(assignment, minlength=3).tolist() == counts.tolist()
        # The plurality occupies a BFS-prefix ball: connected whenever
        # the graph is (each BFS layer touches the previous one).
        if graph.is_connected():
            assert _plurality_is_connected(graph, assignment)

    def test_cluster_graph_placement_is_locally_concentrated(self, rng):
        rngs = RngRegistry(7)
        graph = ClusterGraph(200, 4, rngs.stream("g"))
        counts = biased_counts(200, 4, 2.0)
        assignment = clustered_assignment(graph, counts, rngs.stream("a"))
        # Contiguous cluster blocks of 50 nodes: the plurality must
        # dominate the block(s) it lands in instead of spreading thin —
        # its densest block is near-pure, unlike a uniform shuffle
        # (which would put ~25% everywhere).
        blocks = assignment.reshape(4, 50)
        densest = max(int((block == 0).sum()) for block in blocks)
        assert densest >= 45

    def test_complete_graph_degenerates_to_shuffle(self):
        rngs = RngRegistry(3)
        counts = biased_counts(80, 3, 2.0)
        assignment = clustered_assignment(CompleteGraph(80), counts, rngs.stream("a"))
        assert np.bincount(assignment, minlength=3).tolist() == counts.tolist()

    def test_bit_identical_across_registries(self):
        def build():
            rngs = RngRegistry(11)
            graph = RandomGeometricGraph(100, 0.3, rngs.stream("g"))
            return clustered_assignment(
                graph, biased_counts(100, 3, 2.0), rngs.stream("a")
            )

        assert build().tolist() == build().tolist()

    def test_size_mismatch_rejected(self):
        rngs = RngRegistry(1)
        with pytest.raises(ConfigurationError):
            clustered_assignment(
                CompleteGraph(50), biased_counts(80, 3, 2.0), rngs.stream("a")
            )


class TestDispatcher:
    def test_init_names_cover_dispatcher(self):
        for kind in init_names():
            n = 120
            counts = adversarial_counts(kind, n, 4, 2.0)
            assert int(counts.sum()) == n

    def test_biased_matches_canonical_workload(self):
        assert (
            adversarial_counts("biased", 500, 4, 2.0).tolist()
            == biased_counts(500, 4, 2.0).tolist()
        )

    def test_clustered_counts_are_the_biased_counts(self):
        # The topology-correlated part is the *placement*; the count
        # vector is the canonical biased workload, so clustered-vs-
        # biased comparisons isolate pure placement cost.
        assert (
            adversarial_counts("clustered", 300, 3, 2.0).tolist()
            == biased_counts(300, 3, 2.0).tolist()
        )

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            adversarial_counts("worst-case", 100, 4, 2.0)
