"""Adversarial initial-configuration builders."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.scenarios.adversary import (
    adversarial_counts,
    init_names,
    minimal_bias_counts,
    opinion_ramp_counts,
    planted_tie_counts,
)


class TestMinimalBias:
    @settings(max_examples=50)
    @given(st.integers(4, 5000), st.integers(2, 40))
    def test_lead_is_minimal(self, n, k):
        if k + 1 > n:
            k = n - 1
        counts = minimal_bias_counts(n, k)
        assert int(counts.sum()) == n
        lead = int(counts[0] - counts[1:].max())
        # One-node lead whenever feasible; the two-node lead only when
        # forced (k=2 parity, or a tie with the tail already at 1 node
        # — e.g. n=5, k=3 where no lead-1 configuration exists).
        assert lead == 1 or (lead == 2 and (k == 2 or int(counts[1:].max()) == 1))
        assert int(counts.min()) >= 1


class TestPlantedTie:
    @settings(max_examples=50)
    @given(st.integers(6, 5000), st.integers(2, 40))
    def test_top_two_exactly_tied(self, n, k):
        if 2 * (k - 1) > n:
            k = max(2, n // 2)
        if k == 2 and n % 2:
            n += 1
        counts = planted_tie_counts(n, k)
        assert int(counts.sum()) == n
        assert counts[0] == counts[1]
        if k > 2:
            assert counts[0] >= counts[2:].max()

    def test_odd_two_color_tie_rejected(self):
        with pytest.raises(ConfigurationError):
            planted_tie_counts(11, 2)


class TestOpinionRamp:
    @settings(max_examples=50)
    @given(st.integers(10, 100_000), st.floats(0.1, 0.9))
    def test_k_scales_as_power(self, n, exponent):
        counts = opinion_ramp_counts(n, exponent)
        assert int(counts.sum()) == n
        assert counts.size >= 2
        assert counts.size <= max(2, int(np.ceil(n**exponent)))
        # A strict plurality exists, so plurality_won stays well defined.
        assert counts[0] > counts[1:].max()

    def test_exponent_one_rejected(self):
        with pytest.raises(ConfigurationError):
            opinion_ramp_counts(100, 1.0)


class TestDispatcher:
    def test_init_names_cover_dispatcher(self):
        for kind in init_names():
            n = 120
            counts = adversarial_counts(kind, n, 4, 2.0)
            assert int(counts.sum()) == n

    def test_biased_matches_canonical_workload(self):
        from repro.workloads.opinions import biased_counts

        assert (
            adversarial_counts("biased", 500, 4, 2.0).tolist()
            == biased_counts(500, 4, 2.0).tolist()
        )

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            adversarial_counts("worst-case", 100, 4, 2.0)
