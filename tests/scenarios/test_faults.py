"""Fault-injection behavior on real protocol simulators.

The behavioral classes (injection, churn, prepared simulator) run on a
4-way engine matrix: the heap fallback plus the batch engine at pool
block sizes 1, 2, and the production default — block 1 collapses the
batch engine's tick window to the event-granular legacy sequence and
block 2 sits exactly on the window-collapse boundary, the two places a
fault/batching interaction bug would hide.
"""

from __future__ import annotations

import math

import pytest

import repro.engine.rng as engine_rng
import repro.engine.simulator as engine_sim
from repro.core.params import SingleLeaderParams
from repro.core.single_leader import SingleLeaderSim
from repro.engine.rng import RngRegistry
from repro.errors import ConfigurationError
from repro.scenarios.faults import (
    CrashAtTimes,
    CrashChurn,
    GilbertElliottDrop,
    IidDrop,
    Stragglers,
    build_faults,
    inject_faults,
    prepare_faulty_simulator,
)
from repro.workloads.opinions import biased_counts


@pytest.fixture(
    params=[("heap", None), ("batch", 1), ("batch", 2), ("batch", None)],
    ids=["heap", "batch-block1", "batch-block2", "batch-blockD"],
)
def fault_engine(request, monkeypatch):
    """Engine × pool-block matrix for the behavioral fault tests."""
    engine, block = request.param
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    monkeypatch.setattr(engine_sim, "DEFAULT_ENGINE", engine)
    if block is not None:
        monkeypatch.setattr(engine_rng, "DEFAULT_BLOCK", block)
    return request.param


def _sim(seed: int, n: int = 200, k: int = 3) -> SingleLeaderSim:
    rngs = RngRegistry(seed)
    params = SingleLeaderParams(n=n, k=k, alpha0=2.0)
    return SingleLeaderSim(params, biased_counts(n, k, 2.0), rngs.stream("sim"))


@pytest.mark.usefixtures("fault_engine")
class TestInjection:
    def test_empty_fault_list_is_identity(self, rngs):
        baseline = _sim(1)
        reference = baseline.run(max_time=600.0)
        instrumented = _sim(1)
        assert inject_faults(instrumented, [], rngs.stream("faults")) is None
        result = instrumented.run(max_time=600.0)
        assert result.elapsed == reference.elapsed
        assert result.final_color_counts.tolist() == reference.final_color_counts.tolist()
        assert instrumented.sim.events_executed == baseline.sim.events_executed

    def test_iid_drop_loses_leader_signals(self, rngs):
        clean = _sim(2)
        clean.run(max_time=100.0)
        lossy = _sim(2)
        wiring = inject_faults(lossy, [IidDrop(0.5)], rngs.stream("faults"))
        lossy.run(max_time=100.0)
        info = wiring.info()
        assert info["fault_dropped_messages"] > 0
        assert info["fault_dropped_exchanges"] > 0
        # Half the 0-signals never arrive, so the leader counts far
        # fewer than in the clean run over the same time span.
        assert lossy.leader.zero_signals < 0.75 * clean.leader.zero_signals

    def test_dropped_exchange_unlocks_node(self, rngs):
        sim = _sim(3, n=100)
        inject_faults(sim, [IidDrop(0.9)], rngs.stream("faults"))
        sim.run(max_time=50.0)
        # With 90% loss almost every cycle aborts; if aborted cycles
        # leaked locks the whole population would be locked and good
        # ticks would stop early.
        assert sim.locked.sum() < sim.n
        assert sim.good_ticks > sim.n

    def test_bursty_drop_records_bursts(self, rngs):
        sim = _sim(4, n=100)
        wiring = inject_faults(
            sim, [GilbertElliottDrop(drop_bad=0.9, to_bad=0.1, to_good=0.5)], rngs.stream("f")
        )
        sim.run(max_time=100.0)
        info = wiring.info()
        assert info["fault_ge_bursts"] > 0
        assert info["fault_ge_dropped"] > 0

    def test_stragglers_slow_the_run(self, rngs):
        fast = _sim(5)
        fast_result = fast.run(max_time=2000.0, epsilon=0.1)
        slow = _sim(5)
        wiring = inject_faults(slow, [Stragglers(0.5, slowdown=20.0)], rngs.stream("f"))
        slow_result = slow.run(max_time=2000.0, epsilon=0.1)
        assert wiring.faults[0].count > 0
        assert slow_result.epsilon_convergence_time is None or (
            fast_result.epsilon_convergence_time is not None
            and slow_result.epsilon_convergence_time > fast_result.epsilon_convergence_time
        )


@pytest.mark.usefixtures("fault_engine")
class TestChurn:
    def test_poisson_churn_crashes_and_rejoins(self, rngs):
        sim = _sim(6)
        churn = CrashChurn(2.0, mean_downtime=2.0)
        wiring = inject_faults(sim, [churn], rngs.stream("f"))
        result = sim.run(max_time=300.0)
        assert churn.crashes > 0
        assert churn.rejoins > 0
        info = wiring.info()
        assert info["fault_crashes"] == churn.crashes
        # The run must still terminate (converge or budget) despite churn.
        assert result.elapsed <= 300.0

    def test_rejoin_resets_generation(self, rngs):
        sim = _sim(7, n=100)
        # Crash node 5 once generations exist; stop just after rejoin so
        # the node cannot have re-adopted a generation yet.
        fault = CrashAtTimes({5: 30.0}, downtime=5.0)
        inject_faults(sim, [fault], rngs.stream("f"))
        sim.run(max_time=35.01)
        assert fault.crashes == 1
        assert fault.rejoins == 1
        assert sim.gens[5] == 0
        assert sim.gens.max() > 0  # the rest of the population moved on

    def test_permanent_crash_silences_node(self, rngs):
        sim = _sim(8, n=100)
        fault = CrashAtTimes({0: 0.5, 1: 0.5})
        wiring = inject_faults(sim, [fault], rngs.stream("f"))
        sim.run(max_time=60.0)
        assert fault.crashes == 2
        assert fault.rejoins == 0
        assert fault.crashed_until(0) == math.inf
        # Crashed nodes' events were suppressed, not executed; their
        # clocks die as dead ticks, not as dropped exchanges.
        assert wiring.dead_ticks > 0
        assert wiring.dropped_exchanges <= 2  # at most the in-flight cycles

    def test_crash_schedule_validates_nodes(self, rngs):
        sim = _sim(9, n=50)
        with pytest.raises(ConfigurationError):
            inject_faults(sim, [CrashAtTimes({999: 1.0})], rngs.stream("f"))


class TestBuildFaults:
    def test_zero_knobs_build_nothing(self):
        assert build_faults() == []

    def test_iid_and_bursty_and_churn(self):
        faults = build_faults(drop=0.2, drop_model="iid", churn=0.5, stragglers=0.1)
        kinds = [type(fault).__name__ for fault in faults]
        assert kinds == ["IidDrop", "CrashChurn", "Stragglers"]
        bursty = build_faults(drop=0.2, drop_model="bursty")
        assert type(bursty[0]).__name__ == "GilbertElliottDrop"

    def test_unknown_drop_model_rejected(self):
        with pytest.raises(ConfigurationError):
            build_faults(drop=0.2, drop_model="lossy")

    def test_invalid_rates_rejected(self):
        with pytest.raises(ConfigurationError):
            IidDrop(1.5)
        with pytest.raises(ConfigurationError):
            Stragglers(-0.1)
        with pytest.raises(ConfigurationError):
            GilbertElliottDrop(drop_bad=2.0)

    def test_reproducible_under_same_streams(self):
        def run(seed):
            rngs = RngRegistry(seed)
            sim = SingleLeaderSim(
                SingleLeaderParams(n=150, k=3, alpha0=2.0),
                biased_counts(150, 3, 2.0),
                rngs.stream("sim"),
            )
            inject_faults(sim, build_faults(drop=0.3, churn=0.5), rngs.stream("faults"))
            result = sim.run(max_time=200.0)
            return (result.elapsed, result.final_color_counts.tolist())

        assert run(11) == run(11)
        assert run(11) != run(12)


@pytest.mark.usefixtures("fault_engine")
class TestPreparedSimulator:
    """`prepare_faulty_simulator` closes the initial-tick churn escape."""

    def test_node_crashed_at_t0_never_ticks(self, rngs):
        n = 60
        params = SingleLeaderParams(n=n, k=3, alpha0=2.0)
        simulator, wiring = prepare_faulty_simulator(
            n, [CrashAtTimes({node: 0.0 for node in range(n)})], rngs.stream("f")
        )
        sim = SingleLeaderSim(
            params, biased_counts(n, 3, 2.0), rngs.stream("sim"), simulator=simulator
        )
        wiring.bind(sim)
        sim.run(max_time=30.0)
        # Every node is crashed from t=0 permanently: with the pre-wrapped
        # simulator even the construction-time initial ticks are guarded,
        # so not a single tick ever fires.
        assert sim.total_ticks == 0
        assert sim.good_ticks == 0
        assert wiring.dead_ticks == n

    def test_inject_faults_documents_the_escape(self, rngs):
        # The post-construction path cannot govern construction-time
        # scheduling: the very first ticks still fire.  This pins the
        # behavioral difference the prepared path exists to fix.
        n = 60
        sim = _sim(11, n=n)
        wiring = inject_faults(
            sim, [CrashAtTimes({node: 0.0 for node in range(n)})], rngs.stream("f")
        )
        sim.run(max_time=30.0)
        assert sim.total_ticks > 0  # the escape
        assert wiring.dead_ticks > 0  # everything after it is governed

    def test_empty_fault_list_prepares_nothing(self, rngs):
        simulator, wiring = prepare_faulty_simulator(50, [], rngs.stream("f"))
        assert simulator is None
        assert wiring is None

    def test_prepared_run_converges_under_drop(self, rngs):
        n = 120
        params = SingleLeaderParams(n=n, k=3, alpha0=2.0)
        simulator, wiring = prepare_faulty_simulator(
            n, [IidDrop(0.2)], rngs.stream("f")
        )
        sim = SingleLeaderSim(
            params, biased_counts(n, 3, 2.0), rngs.stream("sim"), simulator=simulator
        )
        wiring.bind(sim)
        result = sim.run(max_time=600.0, epsilon=0.1)
        assert result.epsilon_convergence_time is not None
        assert wiring.dropped_messages > 0


class TestFaultModelEdgeCases:
    """Previously-unpinned corners of the event-stream fault models."""

    def test_gilbert_elliott_stationary_rate_matches_parameters(self, rngs):
        # The chain's stationary bad fraction is to_bad/(to_bad+to_good);
        # the marginal loss follows analytically.  60k driven messages
        # give a tight statistical pin (the chain mixes in ~2 steps).
        model = GilbertElliottDrop(
            drop_good=0.05, drop_bad=0.8, to_bad=0.2, to_good=0.4
        )

        class _Ctx:
            rng = rngs.stream("ge")
            n = 64

        model.install(_Ctx())
        samples = 60_000
        dropped = sum(
            1 for _ in range(samples) if model.transform("message", 0, 1.0) is None
        )
        stationary_bad = 0.2 / (0.2 + 0.4)
        expected = stationary_bad * 0.8 + (1.0 - stationary_bad) * 0.05
        assert abs(dropped / samples - expected) < 0.02
        assert model.bursts > 0

    def test_crash_at_times_duplicate_times_and_out_of_order(self, rngs):
        # Several nodes crashing at the same instant, inserted out of
        # order, must each crash exactly once and rejoin exactly once.
        schedule = {17: 10.0, 3: 10.0, 42: 2.0, 8: 10.0}
        sim = _sim(21, n=80)
        fault = CrashAtTimes(schedule, downtime=4.0)
        inject_faults(sim, [fault], rngs.stream("f"))
        sim.run(max_time=11.0)
        # At t=11: node 42 crashed at 2 and rejoined at 6; nodes 3, 8,
        # 17 crashed at 10 and are still down.
        assert fault.crashes == 4
        assert fault.rejoins == 1
        assert fault.crashed_until(42) is None
        for node in (3, 8, 17):
            assert fault.crashed_until(node) == pytest.approx(14.0)
        # Same schedule run past every rejoin: all four nodes come back.
        sim = _sim(21, n=80)
        fault = CrashAtTimes(schedule, downtime=4.0)
        wiring = inject_faults(sim, [fault], rngs.stream("f2"))
        sim.run(max_time=30.0)
        assert fault.crashes == 4
        assert fault.rejoins == 4
        assert wiring.info()["fault_rejoins"] == 4

    def test_crash_time_in_the_past_fires_immediately(self, rngs):
        # A schedule entry before the injection time is clamped to "now",
        # not silently skipped.  Drive the raw simulator (no end-of-run
        # accounting) so injection can happen mid-flight.
        sim = _sim(22, n=60)
        sim.sim.run(until=5.0)
        fault = CrashAtTimes({7: 1.0})  # t=1 is already in the past
        inject_faults(sim, [fault], rngs.stream("f"))
        sim.sim.run(until=6.0)
        assert fault.crashes == 1
        assert fault.crashed_until(7) == math.inf

    def test_stragglers_and_churn_composed_on_same_node(self, rngs):
        # fraction=1.0 forces every node into the straggler set, so the
        # crashed node is certainly both slowed and churned; the
        # deferred-tick resume path must then run through the straggler
        # transform without deadlocking the node.
        sim = _sim(23, n=60)
        straggle = Stragglers(1.0, slowdown=3.0)
        crash = CrashAtTimes({11: 5.0}, downtime=10.0)
        wiring = inject_faults(sim, [straggle, crash], rngs.stream("f"))
        result = sim.run(max_time=120.0)
        assert straggle.count == 60
        assert crash.crashes == 1 and crash.rejoins == 1
        # Node 11 came back: its state was reset at rejoin and it kept
        # participating (its clock survived the downtime).
        assert not sim.locked[11] or sim.good_ticks > 60
        assert wiring.deferred_ticks > 0
        assert result.elapsed <= 120.0
