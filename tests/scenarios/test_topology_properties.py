"""Hypothesis property tests for the graph samplers.

Mirrors ``tests/engine/test_event_queue_properties.py``: the topology
layer is the substrate every scenario trajectory rests on, so its
contract is pinned down property-style — no self-loops, degree bounds
respected, the connectivity flag honored, and construction bit-identical
across worker counts through :class:`~repro.engine.rng.RngRegistry`
substreams.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.network import CompleteGraph
from repro.engine.rng import RngRegistry
from repro.errors import ConfigurationError
from repro.scenarios.topology import (
    ClusterGraph,
    ErdosRenyiGraph,
    RandomRegularGraph,
    RingLattice,
    TorusGrid,
    build_graph,
    graph_names,
)

seeds = st.integers(min_value=0, max_value=2**31 - 1)


def _stream(seed: int, name: str = "graph") -> np.random.Generator:
    return RngRegistry(seed).stream(name)


def _assert_simple(graph) -> None:
    """No self-loops, no duplicate edges, symmetric adjacency."""
    for node in range(graph.n):
        neighbors = graph.neighbors(node)
        assert node not in neighbors, f"self-loop at {node}"
        assert len(np.unique(neighbors)) == neighbors.size, f"duplicate edge at {node}"
        for other in neighbors:
            assert node in graph.neighbors(int(other)), "asymmetric edge"


class TestRandomRegular:
    @settings(max_examples=25, deadline=None)
    @given(seeds, st.integers(2, 60).map(lambda x: 2 * x), st.integers(2, 8))
    def test_degree_bounds_and_simplicity(self, seed, n, d):
        if d >= n:
            d = n - 1 if ((n - 1) * n) % 2 == 0 else n - 2
        graph = RandomRegularGraph(n, d, _stream(seed), ensure_connected=False)
        assert (graph.degrees == d).all()
        _assert_simple(graph)

    @settings(max_examples=10, deadline=None)
    @given(seeds)
    def test_connectivity_flag_honored(self, seed):
        graph = RandomRegularGraph(80, 4, _stream(seed), ensure_connected=True)
        assert graph.is_connected()

    @settings(max_examples=10, deadline=None)
    @given(seeds)
    def test_bit_identical_across_registries(self, seed):
        # Two fresh registries with the same root seed and stream name
        # model two worker processes constructing the same run's graph.
        a = RandomRegularGraph(120, 6, _stream(seed, "run/3"))
        b = RandomRegularGraph(120, 6, _stream(seed, "run/3"))
        assert (a.indptr == b.indptr).all()
        assert (a.indices == b.indices).all()

    def test_odd_stub_count_rejected(self):
        with pytest.raises(ConfigurationError):
            RandomRegularGraph(5, 3, _stream(0))


class TestErdosRenyi:
    @settings(max_examples=20, deadline=None)
    @given(seeds, st.integers(10, 150), st.floats(0.05, 0.5))
    def test_simple_and_in_range(self, seed, n, p):
        graph = ErdosRenyiGraph(n, p, _stream(seed))
        _assert_simple(graph)
        assert graph.edge_count <= n * (n - 1) // 2
        assert (graph.degrees <= n - 1).all()

    @settings(max_examples=10, deadline=None)
    @given(seeds)
    def test_connectivity_flag_honored(self, seed):
        graph = ErdosRenyiGraph(60, 0.2, _stream(seed), ensure_connected=True)
        assert graph.is_connected()

    @settings(max_examples=10, deadline=None)
    @given(seeds)
    def test_bit_identical_across_registries(self, seed):
        a = ErdosRenyiGraph(90, 0.1, _stream(seed, "er/0"))
        b = ErdosRenyiGraph(90, 0.1, _stream(seed, "er/0"))
        assert (a.indptr == b.indptr).all()
        assert (a.indices == b.indices).all()

    def test_empty_probability_gives_empty_graph(self):
        graph = ErdosRenyiGraph(20, 0.0, _stream(1))
        assert graph.edge_count == 0


class TestLattices:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(5, 200), st.integers(1, 4))
    def test_ring_is_regular_and_connected(self, n, radius):
        if 2 * radius >= n:
            radius = (n - 1) // 2
        graph = RingLattice(n, radius)
        assert (graph.degrees == 2 * radius).all()
        assert graph.is_connected()
        _assert_simple(graph)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(3, 15), st.integers(3, 15))
    def test_torus_is_4_regular_and_connected(self, rows, cols):
        graph = TorusGrid(rows, cols)
        assert (graph.degrees == 4).all()
        assert graph.is_connected()
        _assert_simple(graph)

    def test_torus_near_square_rejects_primes(self):
        with pytest.raises(ConfigurationError):
            TorusGrid.near_square(97)


class TestClusterGraph:
    @settings(max_examples=15, deadline=None)
    @given(seeds, st.integers(24, 120), st.integers(2, 6))
    def test_simple_and_connected_enough(self, seed, n, clusters):
        graph = ClusterGraph(n, clusters, _stream(seed))
        _assert_simple(graph)
        # Every node has its intra-cluster clique plus >= 1 bridge draw,
        # so the minimum degree is at least the smallest clique size - 1.
        assert int(graph.degrees.min()) >= n // clusters - 1


class TestNeighborPools:
    @settings(max_examples=10, deadline=None)
    @given(seeds)
    def test_pool_samples_are_neighbors(self, seed):
        graph = ErdosRenyiGraph(50, 0.2, _stream(seed), ensure_connected=True)
        pool = graph.neighbor_pool(_stream(seed, "pool"))
        for node in range(graph.n):
            sample = pool.sample(node)
            assert sample in graph.neighbors(node)

    @settings(max_examples=10, deadline=None)
    @given(seeds)
    def test_regular_pool_samples_are_neighbors(self, seed):
        graph = RandomRegularGraph(60, 4, _stream(seed))
        pool = graph.neighbor_pool(_stream(seed, "pool"))
        for node in range(graph.n):
            assert pool.sample(node) in graph.neighbors(node)

    @settings(max_examples=10, deadline=None)
    @given(seeds, st.integers(2, 40))
    def test_complete_pool_matches_inline_shift_trick(self, seed, n):
        # The pooled K_n sampler must replay the exact inline sequence
        # the protocols used pre-scenario (the bit-identical guarantee).
        pool = CompleteGraph(n).neighbor_pool(_stream(seed))
        rng = _stream(seed)
        from repro.engine.rng import IntegerPool

        reference = IntegerPool(rng, n - 1)
        for node in range(min(n, 25)):
            draw = reference()
            expected = draw + 1 if draw >= node else draw
            assert pool.sample(node) == expected


class TestBuilders:
    def test_graph_names_sorted(self):
        names = graph_names()
        assert names == sorted(names)
        assert {"complete", "regular", "gnp", "ring", "torus", "cluster"} <= set(names)

    @pytest.mark.parametrize("name", ["complete", "regular", "gnp", "ring", "torus", "cluster"])
    def test_builders_build_requested_size(self, name):
        graph = build_graph(name, 144, _stream(11, name))
        assert len(graph) == 144
        assert 0 in graph and 143 in graph and 144 not in graph

    def test_unknown_topology_rejected(self):
        with pytest.raises(ConfigurationError):
            build_graph("smallworld", 100, _stream(0))

    def test_complete_builder_consumes_no_randomness(self):
        rng = _stream(5)
        before = rng.bit_generator.state
        build_graph("complete", 64, rng)
        assert rng.bit_generator.state == before
