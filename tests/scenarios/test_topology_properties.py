"""Hypothesis property tests for the graph samplers.

Mirrors ``tests/engine/test_event_queue_properties.py``: the topology
layer is the substrate every scenario trajectory rests on, so its
contract is pinned down property-style — no self-loops, degree bounds
respected, the connectivity flag honored, and construction bit-identical
across worker counts through :class:`~repro.engine.rng.RngRegistry`
substreams.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.network import CompleteGraph
from repro.engine.rng import RngRegistry
from repro.errors import ConfigurationError
from repro.scenarios.topology import (
    ClusterGraph,
    ErdosRenyiGraph,
    PreferentialAttachmentGraph,
    RandomGeometricGraph,
    RandomRegularGraph,
    RingLattice,
    TorusGrid,
    assign_uniform_weights,
    build_graph,
    graph_names,
    weight_names,
)

seeds = st.integers(min_value=0, max_value=2**31 - 1)


def _stream(seed: int, name: str = "graph") -> np.random.Generator:
    return RngRegistry(seed).stream(name)


def _assert_simple(graph) -> None:
    """No self-loops, no duplicate edges, symmetric adjacency."""
    for node in range(graph.n):
        neighbors = graph.neighbors(node)
        assert node not in neighbors, f"self-loop at {node}"
        assert len(np.unique(neighbors)) == neighbors.size, f"duplicate edge at {node}"
        for other in neighbors:
            assert node in graph.neighbors(int(other)), "asymmetric edge"


class TestRandomRegular:
    @settings(max_examples=25, deadline=None)
    @given(seeds, st.integers(2, 60).map(lambda x: 2 * x), st.integers(2, 8))
    def test_degree_bounds_and_simplicity(self, seed, n, d):
        if d >= n:
            d = n - 1 if ((n - 1) * n) % 2 == 0 else n - 2
        graph = RandomRegularGraph(n, d, _stream(seed), ensure_connected=False)
        assert (graph.degrees == d).all()
        _assert_simple(graph)

    @settings(max_examples=10, deadline=None)
    @given(seeds)
    def test_connectivity_flag_honored(self, seed):
        graph = RandomRegularGraph(80, 4, _stream(seed), ensure_connected=True)
        assert graph.is_connected()

    @settings(max_examples=10, deadline=None)
    @given(seeds)
    def test_bit_identical_across_registries(self, seed):
        # Two fresh registries with the same root seed and stream name
        # model two worker processes constructing the same run's graph.
        a = RandomRegularGraph(120, 6, _stream(seed, "run/3"))
        b = RandomRegularGraph(120, 6, _stream(seed, "run/3"))
        assert (a.indptr == b.indptr).all()
        assert (a.indices == b.indices).all()

    def test_odd_stub_count_rejected(self):
        with pytest.raises(ConfigurationError):
            RandomRegularGraph(5, 3, _stream(0))


class TestErdosRenyi:
    @settings(max_examples=20, deadline=None)
    @given(seeds, st.integers(10, 150), st.floats(0.05, 0.5))
    def test_simple_and_in_range(self, seed, n, p):
        graph = ErdosRenyiGraph(n, p, _stream(seed))
        _assert_simple(graph)
        assert graph.edge_count <= n * (n - 1) // 2
        assert (graph.degrees <= n - 1).all()

    @settings(max_examples=10, deadline=None)
    @given(seeds)
    def test_connectivity_flag_honored(self, seed):
        graph = ErdosRenyiGraph(60, 0.2, _stream(seed), ensure_connected=True)
        assert graph.is_connected()

    @settings(max_examples=10, deadline=None)
    @given(seeds)
    def test_bit_identical_across_registries(self, seed):
        a = ErdosRenyiGraph(90, 0.1, _stream(seed, "er/0"))
        b = ErdosRenyiGraph(90, 0.1, _stream(seed, "er/0"))
        assert (a.indptr == b.indptr).all()
        assert (a.indices == b.indices).all()

    def test_empty_probability_gives_empty_graph(self):
        graph = ErdosRenyiGraph(20, 0.0, _stream(1))
        assert graph.edge_count == 0


class TestLattices:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(5, 200), st.integers(1, 4))
    def test_ring_is_regular_and_connected(self, n, radius):
        if 2 * radius >= n:
            radius = (n - 1) // 2
        graph = RingLattice(n, radius)
        assert (graph.degrees == 2 * radius).all()
        assert graph.is_connected()
        _assert_simple(graph)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(3, 15), st.integers(3, 15))
    def test_torus_is_4_regular_and_connected(self, rows, cols):
        graph = TorusGrid(rows, cols)
        assert (graph.degrees == 4).all()
        assert graph.is_connected()
        _assert_simple(graph)

    def test_torus_near_square_rejects_primes(self):
        with pytest.raises(ConfigurationError):
            TorusGrid.near_square(97)


class TestClusterGraph:
    @settings(max_examples=15, deadline=None)
    @given(seeds, st.integers(24, 120), st.integers(2, 6))
    def test_simple_and_connected_enough(self, seed, n, clusters):
        graph = ClusterGraph(n, clusters, _stream(seed))
        _assert_simple(graph)
        # Every node has its intra-cluster clique plus >= 1 bridge draw,
        # so the minimum degree is at least the smallest clique size - 1.
        assert int(graph.degrees.min()) >= n // clusters - 1


class TestRandomGeometric:
    @settings(max_examples=15, deadline=None)
    @given(seeds, st.integers(20, 150), st.floats(0.15, 0.5))
    def test_simple_and_edges_respect_radius(self, seed, n, radius):
        graph = RandomGeometricGraph(n, radius, _stream(seed), ensure_connected=False)
        _assert_simple(graph)
        points = graph.points
        for node in range(graph.n):
            for other in graph.neighbors(node):
                dist = float(np.linalg.norm(points[node] - points[int(other)]))
                assert dist <= radius + 1e-12

    @settings(max_examples=10, deadline=None)
    @given(seeds)
    def test_connectivity_flag_honored(self, seed):
        graph = RandomGeometricGraph(80, 0.3, _stream(seed), ensure_connected=True)
        assert graph.is_connected()

    @settings(max_examples=10, deadline=None)
    @given(seeds)
    def test_bit_identical_across_registries(self, seed):
        a = RandomGeometricGraph(90, 0.25, _stream(seed, "rgg/1"), weighted=True)
        b = RandomGeometricGraph(90, 0.25, _stream(seed, "rgg/1"), weighted=True)
        assert (a.indptr == b.indptr).all()
        assert (a.indices == b.indices).all()
        assert (a.weights == b.weights).all()

    @settings(max_examples=10, deadline=None)
    @given(seeds)
    def test_distance_weights_positive_symmetric_mean_one(self, seed):
        graph = RandomGeometricGraph(100, 0.25, _stream(seed), weighted=True)
        assert graph.is_weighted
        assert graph.weights.shape == graph.indices.shape
        assert (graph.weights > 0).all()
        # Every undirected edge carries the same weight in both directions.
        for node in range(0, graph.n, 7):
            for slot, other in enumerate(graph.neighbors(node)):
                other = int(other)
                weight = graph.weights[graph.indptr[node] + slot]
                back = np.nonzero(graph.neighbors(other) == node)[0][0]
                assert weight == graph.weights[graph.indptr[other] + back]
        assert abs(float(graph.weights.mean()) - 1.0) < 0.25

    def test_expected_degree_solves_radius(self):
        graph = RandomGeometricGraph.from_expected_degree(
            400, 12, _stream(3), ensure_connected=False
        )
        # Boundary effects pull the realized mean below the target, but
        # it must be the right order of magnitude.
        mean = float(graph.degrees.mean())
        assert 6 <= mean <= 15

    def test_invalid_radius_rejected(self):
        with pytest.raises(ConfigurationError):
            RandomGeometricGraph(50, 0.0, _stream(0))
        with pytest.raises(ConfigurationError):
            RandomGeometricGraph(50, 3.0, _stream(0))


class TestPreferentialAttachment:
    @settings(max_examples=15, deadline=None)
    @given(seeds, st.integers(10, 150), st.integers(1, 6))
    def test_simple_min_degree_and_connected(self, seed, n, m):
        if m >= n:
            m = n - 1
        graph = PreferentialAttachmentGraph(n, m, _stream(seed))
        _assert_simple(graph)
        # Arriving nodes carry their own m attachment edges (arrivals
        # only ever add degree); the m seed nodes start at degree 1.
        # Connected by construction.
        assert int(graph.degrees[m:].min()) >= m
        assert int(graph.degrees.min()) >= 1
        assert graph.is_connected()
        assert graph.edge_count == (n - m) * m

    @settings(max_examples=10, deadline=None)
    @given(seeds)
    def test_heavy_tail_hubs_exist(self, seed):
        # The degree law's signature: the max degree dwarfs the median
        # (no regular/Poisson graph at mean degree 4 gets close).
        graph = PreferentialAttachmentGraph(400, 2, _stream(seed))
        assert int(graph.degrees.max()) >= 4 * int(np.median(graph.degrees))

    @settings(max_examples=10, deadline=None)
    @given(seeds)
    def test_bit_identical_across_registries(self, seed):
        a = PreferentialAttachmentGraph(150, 3, _stream(seed, "pa/2"))
        b = PreferentialAttachmentGraph(150, 3, _stream(seed, "pa/2"))
        assert (a.indptr == b.indptr).all()
        assert (a.indices == b.indices).all()

    def test_attachment_count_bounds(self):
        with pytest.raises(ConfigurationError):
            PreferentialAttachmentGraph(5, 5, _stream(0))


class TestUniformWeights:
    @settings(max_examples=10, deadline=None)
    @given(seeds)
    def test_uniform_weights_symmetric_and_in_range(self, seed):
        graph = RandomRegularGraph(80, 6, _stream(seed))
        assert not graph.is_weighted
        assign_uniform_weights(graph, _stream(seed, "w"))
        assert graph.is_weighted
        assert (graph.weights >= 0.25).all() and (graph.weights <= 1.75).all()
        for node in range(0, graph.n, 5):
            for slot, other in enumerate(graph.neighbors(node)):
                other = int(other)
                weight = graph.weights[graph.indptr[node] + slot]
                back = np.nonzero(graph.neighbors(other) == node)[0][0]
                assert weight == graph.weights[graph.indptr[other] + back]

    def test_scaled_pool_returns_edge_weight(self):
        graph = RandomRegularGraph(60, 4, _stream(7))
        assign_uniform_weights(graph, _stream(7, "w"))
        pool = graph.neighbor_pool(_stream(7, "pool"))
        for node in range(graph.n):
            neighbor, scale = pool.sample_scaled(node)
            slot = np.nonzero(graph.neighbors(node) == neighbor)[0][0]
            assert scale == graph.weights[graph.indptr[node] + slot]

    def test_general_pool_scaled_matches_weights(self):
        graph = ErdosRenyiGraph(60, 0.15, _stream(9), ensure_connected=True)
        assign_uniform_weights(graph, _stream(9, "w"))
        pool = graph.neighbor_pool(_stream(9, "pool"))
        for node in range(graph.n):
            neighbor, scale = pool.sample_scaled(node)
            slot = np.nonzero(graph.neighbors(node) == neighbor)[0][0]
            assert scale == graph.weights[graph.indptr[node] + slot]

    def test_invalid_weights_rejected(self):
        graph = RandomRegularGraph(20, 4, _stream(1))
        with pytest.raises(ConfigurationError):
            graph.set_weights(np.zeros(graph.indices.size))
        with pytest.raises(ConfigurationError):
            graph.set_weights(np.ones(3))


class TestNeighborPools:
    @settings(max_examples=10, deadline=None)
    @given(seeds)
    def test_pool_samples_are_neighbors(self, seed):
        graph = ErdosRenyiGraph(50, 0.2, _stream(seed), ensure_connected=True)
        pool = graph.neighbor_pool(_stream(seed, "pool"))
        for node in range(graph.n):
            sample = pool.sample(node)
            assert sample in graph.neighbors(node)

    @settings(max_examples=10, deadline=None)
    @given(seeds)
    def test_regular_pool_samples_are_neighbors(self, seed):
        graph = RandomRegularGraph(60, 4, _stream(seed))
        pool = graph.neighbor_pool(_stream(seed, "pool"))
        for node in range(graph.n):
            assert pool.sample(node) in graph.neighbors(node)

    @settings(max_examples=10, deadline=None)
    @given(seeds, st.integers(2, 40))
    def test_complete_pool_matches_inline_shift_trick(self, seed, n):
        # The pooled K_n sampler must replay the exact inline sequence
        # the protocols used pre-scenario (the bit-identical guarantee).
        pool = CompleteGraph(n).neighbor_pool(_stream(seed))
        rng = _stream(seed)
        from repro.engine.rng import IntegerPool

        reference = IntegerPool(rng, n - 1)
        for node in range(min(n, 25)):
            draw = reference()
            expected = draw + 1 if draw >= node else draw
            assert pool.sample(node) == expected


class TestBuilders:
    def test_graph_names_sorted(self):
        names = graph_names()
        assert names == sorted(names)
        assert {
            "complete", "regular", "gnp", "geometric", "preferential",
            "ring", "torus", "cluster",
        } <= set(names)

    @pytest.mark.parametrize(
        "name",
        ["complete", "regular", "gnp", "geometric", "preferential", "ring", "torus", "cluster"],
    )
    def test_builders_build_requested_size(self, name):
        graph = build_graph(name, 144, _stream(11, name))
        assert len(graph) == 144
        assert 0 in graph and 143 in graph and 144 not in graph

    def test_unknown_topology_rejected(self):
        with pytest.raises(ConfigurationError):
            build_graph("smallworld", 100, _stream(0))

    def test_complete_builder_consumes_no_randomness(self):
        rng = _stream(5)
        before = rng.bit_generator.state
        build_graph("complete", 64, rng)
        assert rng.bit_generator.state == before

    def test_weight_laws(self):
        assert weight_names() == sorted(weight_names())
        weighted = build_graph("regular", 100, _stream(6), degree=6, weights="uniform")
        assert weighted.is_weighted
        spatial = build_graph("geometric", 100, _stream(7), degree=12, weights="distance")
        assert spatial.is_weighted
        plain = build_graph("regular", 100, _stream(8), degree=6)
        assert not plain.is_weighted

    def test_unsupported_weight_laws_rejected(self):
        with pytest.raises(ConfigurationError):
            build_graph("complete", 64, _stream(0), weights="uniform")
        with pytest.raises(ConfigurationError):
            build_graph("regular", 64, _stream(0), weights="distance")
        with pytest.raises(ConfigurationError):
            build_graph("geometric", 64, _stream(0), weights="lognormal")
