"""Scenario axes through the sweep targets, protocols on sparse graphs,
and the CLI discoverability commands."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    PullVoting,
    ThreeMajority,
    TwoChoices,
    UndecidedStateDynamics,
    run_dynamics,
)
from repro.cli import main
from repro.core.params import SingleLeaderParams
from repro.core.schedule import FixedSchedule
from repro.core.single_leader import SingleLeaderSim
from repro.core.synchronous import run_synchronous
from repro.engine.rng import RngRegistry
from repro.errors import ConfigurationError
from repro.multileader.params import MultiLeaderParams
from repro.multileader.protocol import run_multileader
from repro.scenarios.topology import RandomRegularGraph
from repro.sweep.targets import (
    get_target,
    target_is_harness,
    target_names,
    target_params,
)


def protocol_target_names():
    # Harness targets (e.g. ``chaos``) exercise the runner, not a
    # protocol — the one-vocabulary guarantee doesn't apply to them.
    return [name for name in target_names() if not target_is_harness(name)]
from repro.workloads.opinions import biased_counts


class TestProtocolsOnSparseGraphs:
    def test_single_leader_progresses_on_regular_graph(self, rngs):
        graph = RandomRegularGraph(200, 16, rngs.stream("g"))
        sim = SingleLeaderSim(
            SingleLeaderParams(n=200, k=3, alpha0=2.0),
            biased_counts(200, 3, 2.0),
            rngs.stream("run"),
            graph=graph,
        )
        result = sim.run(max_time=1500.0, epsilon=0.1)
        assert result.epsilon_convergence_time is not None
        assert result.plurality_won

    def test_graph_size_mismatch_rejected(self, rngs):
        graph = RandomRegularGraph(100, 4, rngs.stream("g"))
        with pytest.raises(ConfigurationError):
            SingleLeaderSim(
                SingleLeaderParams(n=200, k=3, alpha0=2.0),
                biased_counts(200, 3, 2.0),
                rngs.stream("run"),
                graph=graph,
            )

    def test_aggregate_engine_rejects_sparse_graph(self, rngs):
        graph = RandomRegularGraph(100, 4, rngs.stream("g"))
        with pytest.raises(ConfigurationError):
            run_synchronous(
                biased_counts(100, 2, 2.0),
                FixedSchedule(n=100, k=2, alpha0=2.0),
                rngs.stream("run"),
                engine="aggregate",
                graph=graph,
            )

    def test_pernode_engine_runs_on_sparse_graph(self, rngs):
        graph = RandomRegularGraph(200, 16, rngs.stream("g"))
        result = run_synchronous(
            biased_counts(200, 2, 3.0),
            FixedSchedule(n=200, k=2, alpha0=3.0),
            rngs.stream("run"),
            engine="pernode",
            max_steps=2000,
            graph=graph,
        )
        assert result.plurality_won

    def test_multileader_runs_on_sparse_graph(self, rngs):
        graph = RandomRegularGraph(400, 32, rngs.stream("g"))
        result = run_multileader(
            MultiLeaderParams(n=400, k=2, alpha0=2.0),
            biased_counts(400, 2, 2.0),
            rngs.stream("run"),
            clustering_max_time=300.0,
            max_time=1500.0,
            epsilon=0.1,
            graph=graph,
        )
        assert result.elapsed > 0

    @pytest.mark.parametrize(
        "dynamics",
        [PullVoting(), TwoChoices(), ThreeMajority(), UndecidedStateDynamics()],
        ids=lambda d: d.name,
    )
    def test_baseline_local_rules_run_on_graphs(self, dynamics, rngs):
        graph = RandomRegularGraph(200, 12, rngs.stream("g"))
        result = run_dynamics(
            dynamics,
            biased_counts(200, 3, 3.0),
            rngs.stream(dynamics.name),
            max_rounds=20_000,
            graph=graph,
        )
        assert result.converged
        assert int(result.final_color_counts.sum()) == 200

    def test_local_rule_matches_mean_field_on_dense_graph(self, rngs):
        # On a dense random graph the per-node engine's winner statistics
        # should track the multinomial engine's (same dynamics, easy bias).
        graph = RandomRegularGraph(300, 64, rngs.stream("g"))
        wins = 0
        for rep in range(5):
            result = run_dynamics(
                ThreeMajority(),
                biased_counts(300, 2, 4.0),
                rngs.stream(f"rep/{rep}"),
                max_rounds=5000,
                graph=graph,
            )
            wins += bool(result.plurality_won)
        assert wins >= 4


class TestScenarioTargets:
    def test_every_target_documents_topology_axes(self):
        for name in protocol_target_names():
            params = target_params(name)
            assert "topology" in params and "init" in params, name

    def test_weights_axis_only_where_it_has_physics(self):
        # Only the single-leader engine consumes per-edge latency
        # multipliers; exposing the axis elsewhere would run unweighted
        # physics under a weighted label.
        assert "weights" in target_params("single_leader")
        for name in protocol_target_names():
            if name != "single_leader":
                assert "weights" not in target_params(name), name

    def test_weights_rejected_on_targets_without_weighted_physics(self):
        rng = RngRegistry(20).stream("t")
        for name in ("synchronous", "multileader", "voter", "population"):
            with pytest.raises(ConfigurationError):
                get_target(name)({"weights": "uniform", "topology": "regular"}, rng)

    def test_every_target_documents_fault_axes(self):
        # The one-vocabulary guarantee: every target — event-driven or
        # round-driven — exposes the same fault knobs.
        for name in protocol_target_names():
            params = target_params(name)
            for knob in (
                "drop", "drop_model", "churn", "churn_downtime",
                "stragglers", "straggler_slowdown",
            ):
                assert knob in params, (name, knob)

    def test_single_leader_target_with_faults(self):
        rng = RngRegistry(1).stream("t")
        record = get_target("single_leader")(
            {
                "n": 200,
                "k": 3,
                "alpha": 2.0,
                "topology": "regular",
                "degree": 16,
                "drop": 0.2,
                "churn": 0.2,
                "max_time": 1000.0,
                "epsilon": 0.1,
            },
            rng,
        )
        assert record["fault_dropped_messages"] > 0
        assert "fault_crashes" in record

    def test_synchronous_target_switches_to_pernode_on_sparse(self):
        rng = RngRegistry(2).stream("t")
        record = get_target("synchronous")(
            {"n": 144, "k": 2, "alpha": 3.0, "topology": "torus", "max_steps": 2000},
            rng,
        )
        assert isinstance(record["converged"], bool)

    def test_baseline_target_on_graph_with_adversarial_init(self):
        rng = RngRegistry(3).stream("t")
        record = get_target("two_choices")(
            {"n": 200, "k": 3, "alpha": 2.0, "topology": "gnp", "degree": 12, "init": "minimal"},
            rng,
        )
        assert record["converged"]

    def test_unknown_scenario_parameter_rejected(self):
        rng = RngRegistry(4).stream("t")
        with pytest.raises(ConfigurationError):
            get_target("single_leader")({"topo": "regular"}, rng)

    def test_synchronous_target_round_faults(self):
        rng = RngRegistry(5).stream("t")
        record = get_target("synchronous")(
            {
                "n": 200, "k": 3, "alpha": 2.0, "engine": "pernode",
                "drop": 0.3, "churn": 0.5, "stragglers": 0.2,
                "max_steps": 3000, "epsilon": 0.1,
            },
            rng,
        )
        assert record["converged"] in (True, False)
        assert record["fault_round_dropped"] > 0
        assert "fault_crashes" in record

    def test_baseline_target_round_faults(self):
        # Multinomial path: loss enters as participation thinning, so
        # the telemetry is the (mean-field) expected skip count.
        rng = RngRegistry(6).stream("t")
        record = get_target("voter")(
            {"n": 150, "k": 2, "alpha": 3.0, "drop": 0.3, "max_rounds": 50_000},
            rng,
        )
        assert record["fault_skipped_node_rounds"] > 0
        # Per-node path (sparse graph): realized mask drops are counted.
        graphy = get_target("voter")(
            {
                "n": 150, "k": 2, "alpha": 3.0, "drop": 0.3,
                "topology": "regular", "degree": 8, "max_rounds": 50_000,
            },
            RngRegistry(61).stream("t"),
        )
        assert graphy["fault_round_dropped"] > 0

    def test_population_target_protocols_and_faults(self):
        rng = RngRegistry(7).stream("t")
        record = get_target("population")(
            {"n": 200, "drop": 0.2, "churn": 0.5}, rng
        )
        assert record["converged"]
        assert record["interactions"] > 0
        assert record["fault_round_dropped"] > 0
        exact = get_target("population")(
            {"n": 120, "protocol": "four_state"}, RngRegistry(8).stream("t")
        )
        assert exact["converged"]
        with pytest.raises(ConfigurationError):
            get_target("population")({"protocol": "five_state"}, rng)

    def test_clustered_init_on_clustered_topology(self):
        rng = RngRegistry(9).stream("t")
        record = get_target("single_leader")(
            {
                "n": 144, "k": 3, "alpha": 2.0, "topology": "cluster",
                "init": "clustered", "max_time": 600.0, "epsilon": 0.1,
            },
            rng,
        )
        assert "plurality_won" in record

    def test_clustered_on_complete_keeps_aggregate_engine(self):
        # On K_n placement is exchangeable, so the clustered start must
        # NOT force the per-node engine (the aggregate engine exists to
        # scale to n the per-node loop cannot touch).
        rng = RngRegistry(19).stream("t")
        record = get_target("synchronous")(
            {"n": 400, "k": 3, "alpha": 2.0, "init": "clustered", "max_steps": 2000},
            rng,
        )
        assert "engine_substituted" not in record

    def test_aggregate_loss_telemetry_nonzero(self):
        # Count-seam loss is participation thinning (no masks), but the
        # records must still show the expected drop counts.
        rng = RngRegistry(21).stream("t")
        record = get_target("synchronous")(
            {"n": 400, "k": 3, "alpha": 2.0, "drop": 0.3, "max_steps": 2000},
            rng,
        )
        assert record["fault_round_dropped"] > 0
        assert record["fault_skipped_node_rounds"] > 0

    def test_clustered_init_rejected_on_multileader(self):
        rng = RngRegistry(10).stream("t")
        with pytest.raises(ConfigurationError):
            get_target("multileader")({"init": "clustered"}, rng)

    def test_weighted_geometric_single_leader(self):
        rng = RngRegistry(11).stream("t")
        record = get_target("single_leader")(
            {
                "n": 144, "k": 3, "alpha": 2.0, "topology": "geometric",
                "degree": 16, "weights": "distance", "max_time": 400.0,
            },
            rng,
        )
        assert record["events"] > 0

    def test_weights_rejected_on_complete(self):
        rng = RngRegistry(12).stream("t")
        with pytest.raises(ConfigurationError):
            get_target("single_leader")({"weights": "uniform"}, rng)


class TestCliDiscoverability:
    def test_sweep_list_targets(self, capsys):
        assert main(["sweep", "--list-targets"]) == 0
        out = capsys.readouterr().out
        assert "single_leader" in out
        assert "topology" in out
        assert "drop_model" in out

    def test_sweep_without_target_errors(self, capsys):
        assert main(["sweep"]) == 2
        assert "list-targets" in capsys.readouterr().err

    def test_reproduce_list(self, capsys):
        assert main(["reproduce", "--list"]) == 0
        out = capsys.readouterr().out
        assert "robustness" in out
        assert "thm13" in out

    @pytest.mark.slow
    def test_robustness_cli_smoke_cached(self, tmp_path, capsys):
        cache = tmp_path / "runs"
        out_file = tmp_path / "robustness.md"
        assert (
            main(
                ["robustness", "--profile", "smoke", "--cache-dir", str(cache),
                 "--out", str(out_file)]
            )
            == 0
        )
        capsys.readouterr()
        assert out_file.read_text().startswith("### robustness")
        # Second invocation replays entirely from the cache.
        assert (
            main(["robustness", "--profile", "smoke", "--cache-dir", str(cache)]) == 0
        )
        err = capsys.readouterr().err
        assert "0 runs executed" in err
