"""Chaos harness: fault injection against the supervised sweep runner.

Every test here injects a real fault — a worker raising, SIGKILLing
itself, hanging, or on-disk state corrupted between invocations — and
asserts the supervision contract: the sweep completes, retried runs are
byte-identical to unfaulted ones (same content-addressed RNG
substream), failures are isolated and counted exactly, and interrupted
sweeps resume executing only the remainder.

The ``chaos`` sweep target misbehaves exactly once per mode: flaky
modes create a marker file *before* faulting, so the retry (and any
later comparison sweep) runs clean.
"""

from __future__ import annotations

import json

import pytest

from repro.engine.metrics import MetricsRegistry
from repro.errors import ConfigurationError
from repro.sweep.runner import run_sweep
from repro.sweep.spec import SweepSpec
from repro.sweep.supervisor import MANIFEST_NAME, SupervisorPolicy, SweepManifest

#: Snappy backoff so retry-heavy tests stay inside the tier-1 budget.
FAST_POLICY = SupervisorPolicy(max_retries=2, backoff_base=0.02, backoff_max=0.1)


def chaos_spec(tmp_path, modes, name="chaos-test", **base):
    return SweepSpec(
        target="chaos",
        base={"marker_dir": str(tmp_path / "markers"), **base},
        grid={"mode": list(modes)},
        repetitions=1,
        seed=0,
        name=name,
    )


def strip_wall_time(record):
    return {k: v for k, v in record.items() if k != "wall_time"}


class TestRetryByteIdentity:
    def test_flaky_raise_retries_to_the_unfaulted_record(self, tmp_path):
        spec = chaos_spec(tmp_path, ["ok", "flaky_raise"])
        metrics = MetricsRegistry()
        report = run_sweep(
            spec, workers=1, supervisor=FAST_POLICY, metrics=metrics
        )
        assert report.succeeded and report.retries == 1
        counters = metrics.snapshot()["counters"]
        assert counters["sweep.retries"] == 1
        assert counters["sweep.failures"] == 0
        # Markers persist, so the same spec now runs fault-free; the
        # retried record must match byte-for-byte (modulo wall clock).
        clean = run_sweep(spec, workers=1)
        assert [strip_wall_time(r) for r in report.records] == [
            strip_wall_time(r) for r in clean.records
        ]


class TestFailureIsolation:
    def test_always_raising_config_is_isolated(self, tmp_path):
        spec = chaos_spec(tmp_path, ["ok", "raise"])
        policy = SupervisorPolicy(max_retries=1, backoff_base=0.02, backoff_max=0.1)
        metrics = MetricsRegistry()
        report = run_sweep(spec, workers=1, supervisor=policy, metrics=metrics)
        assert not report.succeeded
        [failure] = report.failures
        assert failure.kind == "error"
        assert failure.params["mode"] == "raise"
        assert failure.attempts == policy.attempts
        assert "configured to fail" in failure.error
        # The healthy config still produced its record; the failed slot
        # is None, exactly where the aggregate annotates.
        by_mode = {
            config.params_dict["mode"]: record
            for config, record in zip(report.configs, report.records)
        }
        assert by_mode["ok"] is not None and by_mode["raise"] is None
        counters = metrics.snapshot()["counters"]
        assert counters["sweep.failures"] == 1
        assert counters["sweep.retries"] == policy.max_retries

    def test_aggregate_annotates_failures(self, tmp_path):
        from repro.sweep.aggregate import aggregate_table

        spec = chaos_spec(tmp_path, ["ok", "raise"])
        policy = SupervisorPolicy(max_retries=0, backoff_base=0.02)
        report = run_sweep(spec, workers=1, supervisor=policy)
        table = aggregate_table(spec, report.records)
        assert "failed" in table.headers
        rendered = table.render()
        assert "raise" in rendered


@pytest.mark.slow
class TestKillHangMatrix:
    def test_kill_hang_raise_matrix_counts_exactly(self, tmp_path):
        """The full fault matrix: SIGKILL, hang, and a deterministic bug
        in one sweep — completes, counts each fault exactly once, and
        recovered records match the unfaulted sweep byte-for-byte."""
        modes = ["ok", "flaky_raise", "flaky_kill", "flaky_hang", "raise"]
        spec = chaos_spec(tmp_path, modes)
        policy = SupervisorPolicy(
            max_retries=2, run_timeout=2.0, backoff_base=0.05, backoff_max=0.25
        )
        metrics = MetricsRegistry()
        report = run_sweep(
            spec, workers=1, supervisor=policy, metrics=metrics,
            state_dir=str(tmp_path / "state"),
        )
        counters = metrics.snapshot()["counters"]
        # raise burns its whole budget (2 retries); each flaky mode
        # faults once then its marker disarms it (3 more retries).
        assert counters["sweep.retries"] == policy.max_retries + 3
        assert counters["sweep.timeouts"] == 1
        assert counters["sweep.failures"] == 1
        assert counters["sweep.pool_rebuilds"] >= 2  # kill + hang
        [failure] = report.failures
        assert failure.params["mode"] == "raise" and failure.kind == "error"
        clean = run_sweep(
            chaos_spec(tmp_path, [m for m in modes if m != "raise"]), workers=1
        )
        recovered = {
            c.params_dict["mode"]: strip_wall_time(r)
            for c, r in zip(report.configs, report.records)
            if r is not None
        }
        baseline = {
            c.params_dict["mode"]: strip_wall_time(r)
            for c, r in zip(clean.configs, clean.records)
        }
        assert recovered == baseline


class TestCheckpointResume:
    SPEC = SweepSpec(
        target="synchronous",
        base={"k": 2, "alpha": 2.0},
        grid={"n": [200, 400]},
        repetitions=2,
        seed=3,
    )

    def test_resume_executes_only_the_remainder(self, tmp_path):
        state = tmp_path / "state"
        first = MetricsRegistry()
        report = run_sweep(
            self.SPEC, workers=1, state_dir=str(state), metrics=first
        )
        assert report.succeeded
        assert first.snapshot()["counters"]["sweep.runs_executed"] == 4

        # Simulate an interruption: forget two completions.
        manifest = SweepManifest.load(state)
        for index in (1, 3):
            manifest.entries[index].update(state="pending", record=None, attempts=0)
        manifest.write()

        second = MetricsRegistry()
        resumed = run_sweep(
            self.SPEC, workers=1, state_dir=str(state), resume=True, metrics=second
        )
        counters = second.snapshot()["counters"]
        assert counters["sweep.runs_executed"] == 2
        assert counters["sweep.runs_resumed"] == 2
        assert resumed.resumed == 2
        # Content-addressed substreams: re-executed runs reproduce the
        # original records exactly.
        assert [strip_wall_time(r) for r in resumed.records] == [
            strip_wall_time(r) for r in report.records
        ]

    def test_full_resume_executes_nothing(self, tmp_path):
        state = tmp_path / "state"
        report = run_sweep(self.SPEC, workers=1, state_dir=str(state))
        metrics = MetricsRegistry()
        resumed = run_sweep(
            self.SPEC, workers=1, state_dir=str(state), resume=True, metrics=metrics
        )
        assert metrics.snapshot()["counters"]["sweep.runs_executed"] == 0
        assert resumed.records == report.records

    def test_resume_without_state_dir_is_an_error(self):
        with pytest.raises(ConfigurationError, match="state directory"):
            run_sweep(self.SPEC, workers=1, resume=True)


class TestCorruptState:
    def test_corrupt_manifest_fails_loudly(self, tmp_path):
        state = tmp_path / "state"
        run_sweep(
            chaos_spec(tmp_path, ["ok"]), workers=1,
            supervisor=FAST_POLICY, state_dir=str(state),
        )
        (state / MANIFEST_NAME).write_bytes(b"\x00garbage\xff")
        with pytest.raises(ConfigurationError, match="corrupt"):
            run_sweep(
                chaos_spec(tmp_path, ["ok"]), workers=1,
                state_dir=str(state), resume=True,
            )

    def test_corrupt_cache_entry_reexecutes_under_supervision(self, tmp_path):
        from repro.sweep.cache import RunCache

        cache = RunCache(tmp_path / "cache")
        spec = chaos_spec(tmp_path, ["ok"])
        first = run_sweep(spec, cache=cache, workers=1, supervisor=FAST_POLICY)
        [path] = list(cache.entry_paths())
        path.write_bytes(b"\xde\xad\xbe\xef not json")
        second = run_sweep(spec, cache=cache, workers=1, supervisor=FAST_POLICY)
        assert second.succeeded and second.executed == 1
        assert [strip_wall_time(r) for r in second.records] == [
            strip_wall_time(r) for r in first.records
        ]
        # The atomic re-put repaired the entry.
        assert json.loads(path.read_text())["version"] >= 1
