"""Chaos harness: SIGKILLed shard workers vs the checkpoint–restart seam.

A kernel wrapper SIGKILLs its own worker process mid-run (a marker file
arms the fault exactly once), and the ``resumable=`` controller must
restore the last checkpoint, rebuild fresh workers in resume mode, and
replay to a result *bit-identical* to the unfaulted run — the
determinism contract of :mod:`repro.shard.recovery`. A statistical
gate (the cross-shard KS/CI harness) additionally pins the recovered
runs against the unsharded engine's distribution.
"""

from __future__ import annotations

import os
import signal

import numpy as np
import pytest
from scipy import stats as scipy_stats

import repro.shard.dynamics as dynamics_module
from repro.baselines.base import run_dynamics
from repro.baselines.three_majority import ThreeMajority
from repro.engine.metrics import MetricsRegistry
from repro.engine.rng import RngRegistry
from repro.errors import ConfigurationError
from repro.shard.count_engine import DynamicsKernel
from repro.shard.dynamics import run_sharded_dynamics
from repro.shard.runtime import ShardError

COUNTS = np.array([260, 200, 140], dtype=np.int64)

KS_P_FLOOR = 0.01  # same gate as the cross-shard differential harness


class KillingKernel(DynamicsKernel):
    """SIGKILL the worker on its Nth ``advance`` call — exactly once.

    The marker file is created with ``open(..., "x")`` *before* the
    kill, so exactly one worker across all processes and restarts dies
    (atomic create: later arrivals see ``FileExistsError`` and run on).
    Picklable like any kernel; it rides the worker payload.
    """

    def __init__(self, dynamics, kill_after: int, marker: str):
        super().__init__(dynamics)
        self.kill_after = kill_after
        self.marker = marker
        self.calls = 0

    def advance(self, global_state, local_state, rng, flag):
        self.calls += 1
        if self.calls == self.kill_after:
            try:
                with open(self.marker, "x"):
                    pass
                os.kill(os.getpid(), signal.SIGKILL)
            except FileExistsError:
                pass
        return super().advance(global_state, local_state, rng, flag)


class AlwaysKillingKernel(DynamicsKernel):
    """SIGKILL on every build — recovery can never make progress."""

    def __init__(self, dynamics, kill_after: int):
        super().__init__(dynamics)
        self.kill_after = kill_after
        self.calls = 0

    def advance(self, global_state, local_state, rng, flag):
        self.calls += 1
        if self.calls >= self.kill_after:
            os.kill(os.getpid(), signal.SIGKILL)
        return super().advance(global_state, local_state, rng, flag)


def run_with_kernel(kernel_factory, *, seed_label, metrics=None, **kwargs):
    """Run sharded ThreeMajority with the module's kernel monkeypatched."""
    original = dynamics_module.DynamicsKernel
    dynamics_module.DynamicsKernel = kernel_factory
    try:
        return run_sharded_dynamics(
            ThreeMajority(),
            COUNTS.copy(),
            RngRegistry(17).stream(seed_label),
            shards=2,
            max_rounds=400,
            metrics=metrics,
            **kwargs,
        )
    finally:
        dynamics_module.DynamicsKernel = original


class TestSigkillRecovery:
    def test_killed_worker_resumes_bit_identically(self, tmp_path):
        baseline = run_with_kernel(
            DynamicsKernel, seed_label="recovery-test",
            resumable=True, checkpoint_every=3,
        )
        marker = str(tmp_path / "killed.marker")
        metrics = MetricsRegistry()
        faulted = run_with_kernel(
            lambda d: KillingKernel(d, 4, marker), seed_label="recovery-test",
            resumable=True, checkpoint_every=3, metrics=metrics,
        )
        # The fault actually fired (kill at advance-call 4, between the
        # round-3 checkpoint and round 6) and one restart recovered it.
        assert os.path.exists(marker)
        assert metrics.snapshot()["counters"]["shard.restarts"] == 1
        # Bit-identical recovery, not merely statistical.
        assert faulted.elapsed == baseline.elapsed
        assert faulted.winner == baseline.winner
        assert (faulted.final_color_counts == baseline.final_color_counts).all()

    def test_restart_budget_exhausted_reraises(self, tmp_path):
        with pytest.raises(ShardError):
            run_with_kernel(
                lambda d: AlwaysKillingKernel(d, 2), seed_label="budget-test",
                resumable=True, checkpoint_every=3, max_restarts=1,
            )

    def test_pernode_engine_refuses_resumable(self):
        from repro.core.schedule import FixedSchedule
        from repro.shard.synchronous import run_sharded_synchronous
        from repro.workloads import biased_counts

        with pytest.raises(ConfigurationError, match="per-node"):
            run_sharded_synchronous(
                biased_counts(200, 2, 2.0),
                FixedSchedule(n=200, k=2, alpha0=2.0),
                RngRegistry(0).stream("pernode-resumable"),
                shards=2, engine="pernode", resumable=True,
            )


@pytest.mark.slow
class TestRecoveryStatisticalEquivalence:
    def test_killed_and_resumed_runs_match_the_unsharded_law(self, tmp_path):
        """The KS/CI gate from the cross-shard differential harness,
        applied to recovered runs: convergence times of sharded runs
        that each survived a SIGKILL are indistinguishable from the
        unsharded engine's."""
        seeds = range(24)
        unsharded = [
            float(
                run_dynamics(
                    ThreeMajority(), COUNTS.copy(),
                    RngRegistry(17).stream(f"recovery-ks/{seed}"),
                    max_rounds=400,
                ).elapsed
            )
            for seed in seeds
        ]
        recovered = []
        for seed in seeds:
            marker = str(tmp_path / f"kill-{seed}.marker")
            metrics = MetricsRegistry()
            result = run_with_kernel(
                lambda d: KillingKernel(d, 4, marker),
                seed_label=f"recovery-ks/{seed}",
                resumable=True, checkpoint_every=3, metrics=metrics,
            )
            assert os.path.exists(marker), f"fault never fired for seed {seed}"
            assert metrics.snapshot()["counters"]["shard.restarts"] == 1
            recovered.append(float(result.elapsed))
        baseline = np.asarray(unsharded)
        sharded = np.asarray(recovered)
        ks = scipy_stats.ks_2samp(baseline, sharded)
        assert ks.pvalue >= KS_P_FLOOR, (
            f"recovered runs distinguishable from unsharded "
            f"(KS p={ks.pvalue:.4g}, means {baseline.mean():.1f} "
            f"vs {sharded.mean():.1f})"
        )

        def ci95(values):
            mean = float(values.mean())
            half = 1.96 * float(values.std(ddof=1)) / np.sqrt(values.size)
            return mean - half, mean + half

        low_a, high_a = ci95(baseline)
        low_b, high_b = ci95(sharded)
        assert low_a <= high_b and low_b <= high_a, (
            f"95% CIs do not overlap ({(low_a, high_a)} vs {(low_b, high_b)})"
        )
