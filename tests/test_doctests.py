"""Run the library's embedded doctests (docstrings are part of the API)."""

from __future__ import annotations

import doctest

import pytest

import repro.analysis.records
import repro.engine.hypoexp
import repro.engine.rng
import repro.experiments.common
import repro.scenarios.adversary
import repro.sweep.aggregate
import repro.sweep.cache
import repro.sweep.runner
import repro.sweep.spec
import repro.sweep.targets

MODULES = [
    repro.engine.rng,
    repro.engine.hypoexp,
    repro.experiments.common,
    repro.analysis.records,
    repro.scenarios.adversary,
    repro.sweep.spec,
    repro.sweep.cache,
    repro.sweep.targets,
    repro.sweep.runner,
    repro.sweep.aggregate,
]

@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"
    assert results.attempted > 0, f"no doctests found in {module.__name__}"
