"""Run the library's embedded doctests (docstrings are part of the API)."""

from __future__ import annotations

import doctest

import pytest

import repro.engine.hypoexp
import repro.engine.rng

MODULES = [
    repro.engine.rng,
    repro.engine.hypoexp,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"
    assert results.attempted > 0, f"no doctests found in {module.__name__}"
