"""Sharded-engine weak/strong scaling benchmark.

Times the compute-heavy engines — per-node synchronous and the
population scheduler — at ``shards ∈ {1, 2, 4}`` on one fixed problem
size (strong scaling) plus a weak-scaling row where ``n`` grows with
the shard count, and writes:

* ``benchmarks/output/sharding.md`` — the human-readable table;
* ``benchmarks/output/BENCH_7.json`` — machine-readable throughputs.

Default scale is CI-sized (``n=10^5`` synchronous, ``n=2×10^5``
population); ``REPRO_SHARD_FULL=1`` switches to the paper-scale runs
(``n=10^6`` synchronous to convergence, ``n=10^7`` population on a
bounded interaction budget).

Like the sweep benchmark's MULTICORE-GATE, the >= 2x-at-4-shards
assertion only means something on a multi-core machine, so it is gated
on ``os.cpu_count() >= 4`` and prints an unmistakable
``SHARD-GATE: entered/skipped`` marker for CI to grep — a hosted
runner must *fail* if the gate silently skips there.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

pytestmark = pytest.mark.slow  # experiment-scale wall-clock

from repro.baselines.population import ThreeStateMajority
from repro.core.schedule import FixedSchedule
from repro.core.synchronous import run_synchronous
from repro.engine.rng import RngRegistry
from repro.shard import run_sharded_population
from repro.workloads import biased_counts

FULL = os.environ.get("REPRO_SHARD_FULL") == "1"
SCALE = "full" if FULL else "smoke"
# Smoke n stays large enough that per-round compute dominates barrier
# overhead on a multi-core runner — the throughput gate needs that.
SYNC_N = 1_000_000 if FULL else 300_000
POP_N = 10_000_000 if FULL else 200_000
POP_BUDGET = 4_000_000 if FULL else 400_000
SHARD_LEVELS = (1, 2, 4)


def _time_sync(n: int, shards: int) -> dict:
    counts = biased_counts(n, 4, 1.5)
    schedule = FixedSchedule(n=n, k=4, alpha0=1.5)
    rng = RngRegistry(7).stream("bench-sync")
    started = time.perf_counter()
    result = run_synchronous(
        counts, schedule, rng, engine="pernode", shards=shards
    )
    seconds = time.perf_counter() - started
    rounds = float(result.elapsed)
    return {
        "n": n,
        "shards": shards,
        "seconds": round(seconds, 3),
        "rounds": rounds,
        "converged": bool(result.converged),
        # node-updates per second: every node acts once per round
        "throughput": round(n * rounds / seconds, 1),
    }


def _time_population(n: int, shards: int, budget: int) -> dict:
    counts = biased_counts(n, 2, 2.0)
    rng = RngRegistry(7).stream("bench-pop")
    started = time.perf_counter()
    result = run_sharded_population(
        ThreeStateMajority(), counts, rng, shards=shards, max_interactions=budget
    )
    seconds = time.perf_counter() - started
    return {
        "n": n,
        "shards": shards,
        "seconds": round(seconds, 3),
        "interactions": int(result.interactions),
        "converged": bool(result.converged),
        "throughput": round(result.interactions / seconds, 1),
    }


def _render_rows(rows: list[dict], value_key: str) -> list[str]:
    base = rows[0]["throughput"]
    lines = [
        "| shards | n | seconds | " + value_key + " | throughput | speedup |",
        "|---|---|---|---|---|---|",
    ]
    for row in rows:
        lines.append(
            f"| {row['shards']} | {row['n']:,} | {row['seconds']:.2f} "
            f"| {row[value_key]:,.0f} | {row['throughput']:,.0f}/s "
            f"| {row['throughput'] / base:.2f}x |"
        )
    return lines


def test_bench_sharding_scaling(output_dir: Path):
    cores = os.cpu_count() or 1

    sync_rows = [_time_sync(SYNC_N, shards) for shards in SHARD_LEVELS]
    pop_rows = [
        _time_population(POP_N, shards, POP_BUDGET) for shards in SHARD_LEVELS
    ]
    # Weak scaling: problem size grows with the shard count, so perfect
    # scaling holds wall time constant.
    weak_rows = [
        _time_sync(SYNC_N // 4 * shards, shards) for shards in SHARD_LEVELS
    ]

    # Every run must complete; the synchronous runs must converge (the
    # population budget is bounded, so converged=False is honest there
    # at full scale and asserted only via completion).
    assert all(row["converged"] for row in sync_rows)
    assert all(row["interactions"] > 0 for row in pop_rows)

    lines = [
        f"# sharded-engine scaling ({SCALE} scale, {cores} core(s))",
        "",
        f"## per-node synchronous, strong scaling (n={SYNC_N:,})",
        "",
        *_render_rows(sync_rows, "rounds"),
        "",
        f"## population protocol, strong scaling (n={POP_N:,}, "
        f"budget {POP_BUDGET:,} interactions)",
        "",
        *_render_rows(pop_rows, "interactions"),
        "",
        "## per-node synchronous, weak scaling (n grows with shards)",
        "",
        *_render_rows(weak_rows, "rounds"),
        "",
        "Throughput = node-updates/s (synchronous) or interactions/s "
        "(population); speedup is relative to shards=1 within each table. "
        "On a single-core machine the sharded runs pay barrier overhead "
        "with no parallelism, so speedups below 1x there are expected.",
        "",
    ]
    (output_dir / "sharding.md").write_text("\n".join(lines))

    payload = {
        "scale": SCALE,
        "cores": cores,
        "synchronous_pernode": sync_rows,
        "population": pop_rows,
        "synchronous_weak": weak_rows,
    }
    bench_path = output_dir / "BENCH_7.json"
    merged = {}
    if bench_path.exists():
        try:
            merged = json.loads(bench_path.read_text())
        except ValueError:
            merged = {}
    # Keyed by scale so a smoke run never clobbers recorded full-scale
    # numbers (and vice versa).
    merged[f"sharding_{SCALE}"] = payload
    bench_path.write_text(json.dumps(merged, indent=1, sort_keys=True) + "\n")

    speedup = sync_rows[-1]["throughput"] / sync_rows[0]["throughput"]
    if cores >= 4:
        print(f"\nSHARD-GATE: entered ({cores} cores, 4-shard speedup {speedup:.2f}x)")
        assert speedup >= 2.0, (
            f"4-shard synchronous throughput {speedup:.2f}x below the 2x floor"
        )
    else:
        print(f"\nSHARD-GATE: skipped ({cores} core(s), 4-shard speedup {speedup:.2f}x)")
