"""Theorem 28 — constant-time leader broadcast table."""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.slow  # experiment-backed; minutes at seed pace


def test_bench_thm28(run_and_save):
    result = run_and_save("thm28")
    rows = result.tables[0].rows
    assert all(row[2] == 1.0 for row in rows)  # every broadcast completed
    times = [row[3] for row in rows]
    ns = [row[0] for row in rows]
    # O(1): time at the largest n stays within a small factor of the
    # smallest, while n itself grew by 16x+.
    assert ns[-1] / ns[0] >= 16
    assert times[-1] < 3.0 * times[0]
    assert max(times) < 3.0  # well under a handful of time units
