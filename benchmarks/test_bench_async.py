"""Theorem 13 + Propositions 16/17 — single-leader async tables,
plus an event-throughput microbenchmark of the protocol simulator."""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.slow  # experiment-backed; minutes at seed pace

from repro.core.params import SingleLeaderParams
from repro.core.single_leader import SingleLeaderSim
from repro.engine.rng import RngRegistry
from repro.workloads.opinions import biased_counts


def test_bench_thm13(run_and_save):
    result = run_and_save("thm13")
    n_rows = result.tables[0].rows
    lam_rows = result.tables[1].rows
    window_rows = result.tables[2].rows
    # Plurality wins everywhere.
    assert all(row[1] == 1.0 for row in n_rows)
    # Time measured in units is flat in n (doubly-log growth only).
    units = [row[3] for row in n_rows]
    assert max(units) < 2.0 * min(units)
    # Time in units is flat in lambda while steps scale with C1.
    unit_times = [row[4] for row in lam_rows]
    assert max(unit_times) < 1.5 * min(unit_times)
    # Prop 16: two-choices windows close near the 2-unit target and the
    # newborn generation clears the p/9 floor.
    for row in window_rows:
        assert 1.0 < row[1] < 4.0
        assert row[3] > row[4]


@pytest.mark.parametrize("engine", ["batch", "heap"])
def test_bench_single_leader_events(benchmark, engine, monkeypatch):
    """Protocol-event throughput of the single-leader simulator.

    Measured on both queue engines.  NOTE: the batched engine's
    skip-tick chains mean one dispatched event carries ~40% more
    simulated time than a heap-engine event (locked no-op ticks are
    counted, not dispatched), so the wall-per-20k-events numbers are
    not directly comparable across engines; ``extra_info`` records the
    simulated time covered so BENCH_4.json can normalize.
    """
    import repro.engine.simulator as engine_sim

    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    monkeypatch.setattr(engine_sim, "DEFAULT_ENGINE", engine)
    params = SingleLeaderParams(n=1000, k=3, alpha0=2.0)
    counts = biased_counts(1000, 3, 2.0)

    def run_chunk():
        sim = SingleLeaderSim(params, counts, RngRegistry(0).stream("bench"))
        sim.sim.run(max_events=20_000)
        return sim

    sim = benchmark(run_chunk)
    assert sim.sim.events_executed == 20_000
    benchmark.extra_info["sim_time_units"] = round(sim.sim.now, 3)
    benchmark.extra_info["total_ticks"] = sim.total_ticks
