"""Lemma 4 / Corollary 7 / Proposition 8 — bias-squaring table."""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.slow  # experiment-backed; minutes at seed pace

import math


def test_bench_bias_squaring(run_and_save):
    result = run_and_save("bias2")
    rows = result.tables[0].rows
    finite = [row for row in rows if isinstance(row[2], float) and math.isfinite(row[2])]
    assert len(finite) >= 3
    # Every finite generation stays within the concentration envelope and
    # respects Remark 2's collision floor.
    assert all(row[4] is True or row[4] == "yes" for row in finite)
    # The recursion actually squares: measured alpha_i grows faster than
    # linearly generation over generation.
    biases = [row[2] for row in finite]
    assert all(b > a * 1.2 for a, b in zip(biases, biases[1:]))
