"""Benchmark harness plumbing.

Every ``test_bench_*`` module regenerates one paper artifact (table or
figure) through the experiment registry, times it with pytest-benchmark,
and writes the rendered tables to ``benchmarks/output/<id>.md`` so the
rows the paper reports can be inspected after a run:

    pytest benchmarks/ --benchmark-only

Experiments run their *quick* configuration here; the full
configurations (the numbers recorded in EXPERIMENTS.md) are regenerated
with ``python -m repro reproduce --full``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.common import ExperimentResult
from repro.experiments.registry import run_experiment

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def output_dir() -> Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture()
def run_and_save(benchmark, output_dir):
    """Run one registered experiment exactly once, timed, and save it."""

    def runner(name: str, *, seed: int = 0) -> ExperimentResult:
        result = benchmark.pedantic(
            lambda: run_experiment(name, quick=True, seed=seed),
            rounds=1,
            iterations=1,
        )
        path = output_dir / f"{name}.md"
        path.write_text(result.render_markdown() + "\n")
        return result

    return runner


# --------------------------------------------------------------------------
# Machine-readable perf trajectory (BENCH_4.json).
#
# Every pytest-benchmark timing collected in a session is written to
# benchmarks/output/BENCH_4.json together with the seed-engine baseline
# recorded when the benchmark was first introduced, so future PRs can
# diff perf regressions numerically instead of by prose table.  The
# seed numbers are the PR 1 measurements of the *original seed commit*
# on the same benchmark definitions (ms; see ROADMAP.md's table).

SEED_BASELINES_MS = {
    "test_bench_simulator_event_loop": 33.2,
    "test_bench_event_queue_push_pop": 40.6,
    "test_bench_single_leader_events": 126.8,
    "test_bench_thm13": 29_800.0,
    "test_bench_thm26": 45_500.0,
    "test_bench_baselines": 4_700.0,
    "test_bench_pernode_step": 2.7,
}


def pytest_sessionfinish(session, exitstatus):
    benchsession = getattr(session.config, "_benchmarksession", None)
    if benchsession is None or not benchsession.benchmarks:
        return
    payload = {}
    for bench in benchsession.benchmarks:
        stats = getattr(bench, "stats", None)
        if stats is None:
            continue
        name = bench.name.split("[")[0]
        fast_ms = stats.min * 1000.0
        entry = {"fast_ms": round(fast_ms, 3)}
        if bench.name != name:
            entry["variant"] = bench.name
        seed_ms = SEED_BASELINES_MS.get(name)
        if seed_ms is not None:
            entry["seed_ms"] = seed_ms
            entry["speedup_vs_seed"] = round(seed_ms / fast_ms, 2)
        if bench.extra_info:
            entry["extra"] = dict(bench.extra_info)
        payload[bench.name] = entry
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / "BENCH_4.json"
    import json

    # Merge into the existing trajectory: a partial benchmark run (the
    # CI perf-floor / multicore-gate jobs, or a single local module)
    # must not clobber entries it did not re-measure.
    merged = {}
    if path.exists():
        try:
            merged = json.loads(path.read_text())
        except ValueError:
            merged = {}
    merged.update(payload)
    path.write_text(json.dumps(merged, indent=1, sort_keys=True) + "\n")
