"""Benchmark harness plumbing.

Every ``test_bench_*`` module regenerates one paper artifact (table or
figure) through the experiment registry, times it with pytest-benchmark,
and writes the rendered tables to ``benchmarks/output/<id>.md`` so the
rows the paper reports can be inspected after a run:

    pytest benchmarks/ --benchmark-only

Experiments run their *quick* configuration here; the full
configurations (the numbers recorded in EXPERIMENTS.md) are regenerated
with ``python -m repro reproduce --full``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.common import ExperimentResult
from repro.experiments.registry import run_experiment

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def output_dir() -> Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture()
def run_and_save(benchmark, output_dir):
    """Run one registered experiment exactly once, timed, and save it."""

    def runner(name: str, *, seed: int = 0) -> ExperimentResult:
        result = benchmark.pedantic(
            lambda: run_experiment(name, quick=True, seed=seed),
            rounds=1,
            iterations=1,
        )
        path = output_dir / f"{name}.md"
        path.write_text(result.render_markdown() + "\n")
        return result

    return runner
