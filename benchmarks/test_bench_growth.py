"""Proposition 9 — generation-growth table."""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.slow  # experiment-backed; minutes at seed pace


def test_bench_generation_growth(run_and_save):
    result = run_and_save("growth")
    rows = result.tables[0].rows
    assert rows, "no generations tracked"
    # Every generation reached the gamma fraction within its X_i window
    # and was born above the gamma^2 p floor.
    assert all(row[-1] for row in rows)
    assert all(row[3] is True or row[3] == "yes" for row in rows if row[3] != "-")
