"""Runtime-metrics layer benchmark + committed report.

Measures the one number the metrics layer promises — a metrics-enabled
run costs (almost) nothing extra — and regenerates the committed
metrics report:

* ``benchmarks/output/metrics.md`` — a shards=4 synchronous run's
  ``shard.*`` instruments (barrier-wait histogram, controller round
  latency) and a cold→warm cached sweep's hit/miss counters, all
  rendered through the same ``metrics-report`` pipeline the CLI uses;
* ``benchmarks/output/BENCH_8.json`` — machine-readable overhead ratio
  and headline counters.

The overhead measurement is the exact shape the CI ``metrics-smoke``
job pins at the 1.10x acceptance ceiling (best-of-3 single-leader
chunks, same params/seed as the trace-overhead guard).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

pytestmark = pytest.mark.slow  # experiment-scale wall-clock

from repro.analysis.metrics_report import metrics_report
from repro.core.params import SingleLeaderParams
from repro.core.schedule import FixedSchedule
from repro.core.single_leader import run_single_leader
from repro.engine.metrics import MetricsRegistry
from repro.engine.rng import RngRegistry
from repro.shard import run_sharded_synchronous
from repro.sweep.cache import RunCache
from repro.sweep.runner import run_sweep
from repro.sweep.spec import SweepSpec
from repro.workloads import biased_counts

BEST_OF = 3


def _time_single_leader(with_metrics: bool) -> float:
    params = SingleLeaderParams(n=300, k=3, alpha0=2.0)
    counts = np.array([150, 100, 50])
    best = float("inf")
    for _ in range(BEST_OF):
        rng = np.random.Generator(np.random.PCG64(42))
        metrics = MetricsRegistry() if with_metrics else None
        started = time.perf_counter()
        run_single_leader(params, counts.copy(), rng, max_time=1200.0, metrics=metrics)
        best = min(best, time.perf_counter() - started)
    return best


def _sharded_snapshot() -> dict:
    metrics = MetricsRegistry()
    n = 100_000
    run_sharded_synchronous(
        biased_counts(n, 4, 1.5),
        FixedSchedule(n=n, k=4, alpha0=1.5),
        RngRegistry(7).stream("bench-metrics"),
        shards=4,
        engine="pernode",
        metrics=metrics,
    )
    return metrics.snapshot()


def _sweep_snapshots(tmp_path: Path) -> tuple[dict, dict]:
    spec = SweepSpec(
        target="synchronous",
        base={"k": 2, "alpha": 2.0},
        grid={"n": [2_000, 4_000]},
        repetitions=2,
        seed=3,
    )
    cache = RunCache(tmp_path / "runs")
    cold = MetricsRegistry()
    run_sweep(spec, cache=cache, metrics=cold)
    warm = MetricsRegistry()
    run_sweep(spec, cache=cache, metrics=warm)
    return cold.snapshot(), warm.snapshot()


def test_bench_metrics(output_dir: Path, tmp_path: Path):
    disabled = _time_single_leader(False)
    enabled = _time_single_leader(True)
    ratio = enabled / disabled

    shard_snapshot = _sharded_snapshot()
    cold_snapshot, warm_snapshot = _sweep_snapshots(tmp_path)

    shard_path = tmp_path / "shard.json"
    cold_path = tmp_path / "cold.json"
    warm_path = tmp_path / "warm.json"
    for path, snapshot in (
        (shard_path, shard_snapshot),
        (cold_path, cold_snapshot),
        (warm_path, warm_snapshot),
    ):
        path.write_text(json.dumps(snapshot, sort_keys=True, indent=2) + "\n")

    shard_report = metrics_report([shard_path])
    warm_vs_cold = metrics_report([warm_path], compare=cold_path)

    lines = [
        f"# runtime metrics ({os.cpu_count() or 1} core(s))",
        "",
        "## enabled-vs-disabled overhead (single-leader chunk, best of "
        f"{BEST_OF})",
        "",
        "| metrics | seconds |",
        "|---|---|",
        f"| disabled | {disabled:.4f} |",
        f"| enabled | {enabled:.4f} |",
        "",
        f"ratio: **{ratio:.3f}x** (CI ceiling 1.10x — metrics are harvested "
        "at run epilogues, so the hot path is untouched)",
        "",
        "## shards=4 synchronous run (n=100,000, per-node engine)",
        "",
        shard_report.render_markdown(),
        "",
        "## cached sweep, warm pass vs cold baseline",
        "",
        warm_vs_cold.render_markdown(),
        "",
    ]
    (output_dir / "metrics.md").write_text("\n".join(lines))

    payload = {
        "overhead": {
            "disabled_seconds": round(disabled, 4),
            "enabled_seconds": round(enabled, 4),
            "ratio": round(ratio, 3),
            "ceiling": 1.10,
        },
        "shard_counters": shard_snapshot["counters"],
        "shard_barrier_wait_count": shard_snapshot["histograms"][
            "shard.barrier_wait_seconds"
        ]["count"],
        "sweep_cold_counters": cold_snapshot["counters"],
        "sweep_warm_counters": warm_snapshot["counters"],
    }
    (output_dir / "BENCH_8.json").write_text(
        json.dumps(payload, indent=1, sort_keys=True) + "\n"
    )

    # Sanity: the report carries what the acceptance criteria name.
    assert shard_snapshot["histograms"]["shard.barrier_wait_seconds"]["count"] > 0
    assert cold_snapshot["counters"]["sweep.cache.misses"] == 4
    assert warm_snapshot["counters"]["sweep.cache.hits"] == 4
    # Not CI-enforced here (loaded runners); the metrics-smoke job pins
    # the 1.10x ceiling via REPRO_METRICS_OVERHEAD on the pytest guard.
    print(f"\nMETRICS-OVERHEAD: {ratio:.3f}x (enabled vs disabled)")
