"""Figure 2 / Proposition 31 — leader phase-timeline table."""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.slow  # experiment-backed; minutes at seed pace


def test_bench_fig2(run_and_save):
    result = run_and_save("fig2")
    rows = result.tables[0].rows
    assert rows, "no generation completed a full phase cycle"
    # Proposition 31's ordering: propagation never starts before the last
    # leader went to sleep, and spreads stay small (O(1) units).
    assert all(row[-1] for row in rows)
    assert all(row[4] < 3.0 for row in rows)  # sleep-entry spread in units
