"""Theorem 26 + Section 4.5 — decentralized protocol vs single leader."""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.slow  # experiment-backed; minutes at seed pace


def test_bench_thm26(run_and_save):
    result = run_and_save("thm26")
    comparison = result.tables[0].rows
    complexity = result.tables[1].rows
    # Correctness on both sides, at every n.
    assert all(row[1] == 1.0 and row[4] == 1.0 for row in comparison)
    # Theorem 26: the decentralized protocol stays within a constant
    # factor of the single-leader one (clustering included).
    for row in comparison:
        assert row[3] < 8.0 * row[5]
    # Section 4.5: per-node channel-request rate stays polylogarithmic —
    # far below one request per node per time step.
    for row in complexity:
        n, unit_requests = row[0], row[3]
        assert unit_requests < 60
        assert row[1] > 1  # genuinely decentralized: multiple clusters
