"""Figure 1 + Remark 14 + Example 15 — regenerate and time.

The only data figure in the paper: ``F^{-1}(0.9)`` vs ``1/λ``. The bench
asserts the series' load-bearing shape (linear growth in ``1/λ``, the
value ≈ 9.13 at ``λ = 1`` matching the figure's left edge) and records
the exact-vs-Monte-Carlo agreement.
"""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.slow  # experiment-backed; minutes at seed pace

from repro.engine.latency import time_unit_steps


def test_bench_fig1(run_and_save):
    result = run_and_save("fig1")
    rows = result.tables[0].rows
    inverse = [row[0] for row in rows]
    exact = [row[1] for row in rows]
    # Figure 1's shape: linear growth in 1/lambda on log-log axes.
    assert exact[0] == pytest.approx(9.13, abs=0.05)
    assert exact[-1] / exact[0] == pytest.approx(inverse[-1] / inverse[0], rel=0.25)
    # Monte-Carlo agrees with the phase-type computation everywhere.
    assert all(row[-1] < 0.02 for row in rows)


def test_bench_quantile_computation(benchmark):
    """Microbench: one exact hypoexponential quantile solve."""
    value = benchmark(lambda: time_unit_steps(0.1))
    assert value > 0
