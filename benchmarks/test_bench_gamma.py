"""Section 2.2's γ remark — speed/stability ablation."""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.slow  # experiment-backed; minutes at seed pace


def test_bench_gamma_ablation(run_and_save):
    result = run_and_save("gamma")
    fixed = result.tables[0].rows
    adaptive = result.tables[1].rows
    # "Too high values increase the time": the fixed schedule's horizon
    # at gamma=0.9 dwarfs gamma=0.5's.
    by_gamma = {row[0]: row for row in fixed}
    assert by_gamma[0.9][1] > 1.5 * by_gamma[0.5][1]
    # "Too small values decrease the stability": adaptive win rate at the
    # smallest gamma is worse than at gamma=0.5.
    adaptive_by_gamma = {row[0]: row for row in adaptive}
    assert adaptive_by_gamma[0.05][1] <= adaptive_by_gamma[0.5][1]
