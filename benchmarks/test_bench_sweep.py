"""Sweep orchestrator benchmarks: serial vs parallel vs cached.

A 32-run single-leader sweep measured three ways: serially, fanned out
over 4 worker processes, and replayed from a warm cache. The parallel
speedup scales with physical cores — on a multi-core machine the
4-worker run must beat serial by >= 2.5x; on fewer cores the ratio is
recorded without asserting. The cached replay must execute zero runs
(hence zero simulator events) regardless of hardware, and all three
must aggregate to byte-identical tables.
"""

from __future__ import annotations

import os
import time

import pytest

pytestmark = pytest.mark.slow  # experiment-scale wall-clock

from repro.sweep.aggregate import aggregate_table
from repro.sweep.cache import RunCache
from repro.sweep.runner import run_sweep
from repro.sweep.spec import SweepSpec


def sweep_spec() -> SweepSpec:
    # 4 grid points x 8 reps = 32 runs, each heavy enough (~10^5 events)
    # that fork/pickle overhead is noise next to simulation time.
    return SweepSpec(
        target="single_leader",
        base={"k": 4, "alpha": 2.0},
        grid={"n": [500, 750, 1000, 1250]},
        repetitions=8,
        seed=0,
        name="bench-sweep",
    )


def test_bench_sweep_serial_vs_parallel_vs_cached(tmp_path, output_dir):
    spec = sweep_spec()

    started = time.perf_counter()
    serial = run_sweep(spec, workers=1)
    serial_seconds = time.perf_counter() - started

    started = time.perf_counter()
    parallel = run_sweep(spec, workers=4)
    parallel_seconds = time.perf_counter() - started

    cache = RunCache(tmp_path / "runs")
    warm = run_sweep(spec, cache=cache, workers=4)
    started = time.perf_counter()
    cached = run_sweep(spec, cache=cache, workers=1)
    cached_seconds = time.perf_counter() - started

    # Cached replay executes nothing — zero runs, zero simulator events.
    assert warm.executed == spec.size
    assert cached.executed == 0
    assert cached.cached == spec.size

    # Byte-identical aggregation across execution strategies.
    table = aggregate_table(spec, serial.records).render()
    assert aggregate_table(spec, parallel.records).render() == table
    assert aggregate_table(spec, cached.records).render() == table

    speedup = serial_seconds / parallel_seconds
    cores = os.cpu_count() or 1
    lines = [
        f"# sweep benchmark ({spec.size} runs, target={spec.target})",
        "",
        f"- serial: {serial_seconds:.2f} s",
        f"- 4 workers: {parallel_seconds:.2f} s (speedup {speedup:.2f}x on {cores} core(s))",
        f"- cached replay: {cached_seconds:.3f} s, {cached.executed} runs executed",
        "",
        table,
        "",
    ]
    (output_dir / "sweep.md").write_text("\n".join(lines))

    # The multi-core assertion is gated on core count and has only ever
    # been exercised on multi-core CI runners — print an unmistakable
    # marker so CI can *fail* if the gate silently skips there (the dev
    # container exposes 1 CPU; see ROADMAP "Open items").
    if cores >= 4:
        print(f"\nMULTICORE-GATE: entered ({cores} cores, speedup {speedup:.2f}x)")
        assert speedup >= 2.5, f"4-worker speedup {speedup:.2f}x below 2.5x floor"
    else:
        print(f"\nMULTICORE-GATE: skipped ({cores} core(s), speedup {speedup:.2f}x)")
    assert cached_seconds < serial_seconds / 10
