"""Microbenchmarks of the discrete-event substrate itself."""

from __future__ import annotations

from repro.engine.events import EventQueue
from repro.engine.rng import RngRegistry
from repro.engine.simulator import Simulator


def test_bench_event_queue_push_pop(benchmark):
    """Throughput of 10k push + 10k pop on the binary-heap queue."""
    rng = RngRegistry(0).stream("bench-queue")
    times = rng.random(10_000).tolist()

    def churn():
        queue = EventQueue()
        for time in times:
            queue.push(time, lambda: None)
        drained = 0
        while queue:
            queue.pop()
            drained += 1
        return drained

    assert benchmark(churn) == 10_000


def test_bench_simulator_event_loop(benchmark):
    """Raw event-loop dispatch rate (self-rescheduling no-op events)."""

    def loop():
        sim = Simulator()
        remaining = [20_000]

        def hop():
            remaining[0] -= 1
            if remaining[0] > 0:
                sim.schedule_in(1.0, hop)

        sim.schedule_in(0.0, hop)
        sim.run()
        return sim.events_executed

    assert benchmark(loop) == 20_000


def test_bench_exponential_draws(benchmark):
    """Cost of the latency draws that dominate protocol event handlers."""
    rng = RngRegistry(0).stream("bench-exp")
    result = benchmark(lambda: rng.exponential(1.0, size=10_000).sum())
    assert result > 0
