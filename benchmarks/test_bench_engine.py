"""Microbenchmarks of the discrete-event substrate itself.

The first three benches measure the same operations as the seed suite
(10k queue churn, 20k self-rescheduling dispatches, 10k exponential
draws) so before/after numbers are directly comparable; the draw-pool
bench measures the batched-randomness layer the protocol hot path
actually uses.
"""

from __future__ import annotations

from repro.engine.events import EventQueue
from repro.engine.rng import ExponentialPool, RngRegistry
from repro.engine.simulator import Simulator


def noop() -> None:
    pass


def test_bench_event_queue_push_pop(benchmark):
    """Throughput of 10k push + 10k pop on the binary-heap queue."""
    rng = RngRegistry(0).stream("bench-queue")
    times = rng.random(10_000).tolist()

    def churn():
        queue = EventQueue()
        for time in times:
            queue.push(time, noop)
        drained = 0
        while queue:
            queue.pop()
            drained += 1
        return drained

    assert benchmark(churn) == 10_000


def test_bench_simulator_event_loop(benchmark):
    """Raw event-loop dispatch rate (self-rescheduling no-op events)."""

    def loop():
        sim = Simulator()
        remaining = [20_000]

        def hop():
            remaining[0] -= 1
            if remaining[0] > 0:
                sim.schedule_in(1.0, hop)

        sim.schedule_in(0.0, hop)
        sim.run()
        return sim.events_executed

    assert benchmark(loop) == 20_000


def test_bench_exponential_draws(benchmark):
    """Cost of one vectorized block draw (the pool refill primitive)."""
    rng = RngRegistry(0).stream("bench-exp")
    result = benchmark(lambda: rng.exponential(1.0, size=10_000).sum())
    assert result > 0


def test_bench_draw_pool(benchmark):
    """Amortized cost of 10k pooled scalar draws (the hot-path pattern)."""
    pool = ExponentialPool(RngRegistry(0).stream("bench-pool"), 1.0)

    def drain():
        total = 0.0
        for _ in range(10_000):
            total += pool()
        return total

    assert benchmark(drain) > 0
