"""Theorem 27 — clustering coverage and switch-spread table."""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.slow  # experiment-backed; minutes at seed pace


def test_bench_thm27(run_and_save):
    result = run_and_save("thm27")
    rows = result.tables[0].rows
    assert rows
    for row in rows:
        clustered, active, spread = row[2], row[3], row[4]
        assert clustered > 0.75
        assert active > 0.6
        # Theorem 27: t_l - t_f = O(1) time units, independent of n.
        assert spread == spread and spread < 2.0
