"""DESIGN ablations + Section 5 extension — regenerate and time."""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.slow  # experiment-backed; minutes at seed pace


def test_bench_ablation(run_and_save):
    result = run_and_save("ablation")
    for table in result.tables:
        by_variant = {row[0]: row for row in table.rows}
        # Columns: variant, win rate, consensus rate, steps, top fraction.
        # The full protocol reaches consensus; both ablated variants stall.
        assert by_variant["full"][2] > 0.5
        assert by_variant["single-sample"][2] == 0.0
        assert by_variant["no-propagation"][2] == 0.0


def test_bench_ext_delayed(run_and_save):
    result = run_and_save("ext-delayed")
    rows = result.tables[0].rows
    # Correctness preserved for every exchange delay.
    assert all(row[2] == 1.0 and row[3] == 1.0 for row in rows)
    # Slowdown is monotone in the mean exchange delay.
    times = [row[4] for row in rows]
    assert times == sorted(times)


def test_bench_ext_distributions(run_and_save):
    result = run_and_save("ext-distributions")
    rows = result.tables[0].rows
    # Correctness carries over to every latency law.
    assert all(row[2] == 1.0 and row[3] == 1.0 for row in rows)
    # Unit-normalized times agree within a factor of two across laws.
    unit_times = [row[5] for row in rows]
    assert max(unit_times) < 2.0 * min(unit_times)
