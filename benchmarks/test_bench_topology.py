"""Neighbor-sampling throughput: K_n vs sparse CSR substrates.

The scenario subsystem must not un-batch the PR 1 hot path: sampling a
contact on a sparse graph goes through one pooled draw plus two or
three Python list index operations, just like the complete-graph shift
trick. This bench drives each substrate's ``neighbor_pool`` through the
same call pattern the protocol simulators use (one scalar sample per
event) at ``n = 20k`` and asserts the sparse samplers stay within 2x of
the complete-graph hot path.
"""

from __future__ import annotations

import time

from repro.engine.network import CompleteGraph
from repro.engine.rng import RngRegistry
from repro.scenarios.topology import ErdosRenyiGraph, RandomRegularGraph

N = 20_000
SAMPLES = 200_000


def _throughput(graph, rng) -> float:
    """Samples per second over the protocol-shaped access pattern.

    Best of three timed passes: the assertion below gates a CI job, so
    a single scheduling hiccup on a shared runner must not be able to
    sink the ratio.
    """
    pool = graph.neighbor_pool(rng)
    sample = pool.sample
    # Skip isolated nodes (G(n, p) at mean degree 8 has ~ n e^-8 of
    # them; protocols require min degree >= 1 and reject such graphs).
    nodes = [
        node for node in range(0, N, max(1, N // 1000)) if graph.degree(node) > 0
    ]
    # Warm the pool (first refill) before timing.
    sample(nodes[0])
    best = 0.0
    for _ in range(3):
        started = time.perf_counter()
        done = 0
        while done < SAMPLES:
            for node in nodes:
                sample(node)
            done += len(nodes)
        best = max(best, done / (time.perf_counter() - started))
    return best


def test_bench_neighbor_sampling_throughput(output_dir):
    rngs = RngRegistry(0)
    complete = CompleteGraph(N)
    regular = RandomRegularGraph(N, 8, rngs.stream("build/regular"))
    gnp = ErdosRenyiGraph(N, 8 / (N - 1), rngs.stream("build/gnp"), ensure_connected=False)

    rates = {
        "complete (K_n shift trick)": _throughput(complete, rngs.stream("bench/complete")),
        "random 8-regular (CSR + IntegerPool)": _throughput(regular, rngs.stream("bench/regular")),
        "G(n, p), mean degree 8 (CSR + UniformPool)": _throughput(gnp, rngs.stream("bench/gnp")),
    }

    baseline = rates["complete (K_n shift trick)"]
    lines = [
        f"# neighbor-sampling throughput (n={N}, {SAMPLES} samples each)",
        "",
        "| substrate | samples/s | vs K_n |",
        "|---|---|---|",
    ]
    for name, rate in rates.items():
        lines.append(f"| {name} | {rate:,.0f} | {rate / baseline:.2f}x |")
    lines.append("")
    (output_dir / "topology.md").write_text("\n".join(lines))

    for name, rate in rates.items():
        assert rate >= baseline / 2.0, (
            f"{name} sampling throughput {rate:,.0f}/s is more than 2x slower "
            f"than the complete-graph hot path ({baseline:,.0f}/s)"
        )
