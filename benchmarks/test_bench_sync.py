"""Theorem 1 — synchronous scaling table, plus engine microbenchmarks."""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.slow  # experiment-backed; minutes at seed pace

from repro.core.schedule import FixedSchedule
from repro.core.synchronous import AggregateSynchronousSim, PerNodeSynchronousSim
from repro.engine.rng import RngRegistry
from repro.workloads.opinions import biased_counts


def test_bench_thm1(run_and_save):
    result = run_and_save("thm1")
    n_table = result.tables[0].rows
    k_table = result.tables[1].rows
    alpha_table = result.tables[2].rows
    # Theorem 1 shapes: the plurality wins everywhere; steps are nearly
    # flat in n, grow with k, shrink with alpha.
    assert all(row[3] == 1.0 for row in n_table)
    assert k_table[-1][4] > k_table[0][4]
    assert alpha_table[0][4] > alpha_table[-1][4]
    # log log n: one decade of n moves the mean by only a few steps.
    assert abs(n_table[-1][4] - n_table[0][4]) < 10


def test_bench_aggregate_step(benchmark):
    """Steps/second of the count-matrix engine at n = 1,000,000."""
    n, k, alpha = 1_000_000, 8, 1.5
    sim = AggregateSynchronousSim(
        biased_counts(n, k, alpha),
        FixedSchedule(n=n, k=k, alpha0=alpha),
        RngRegistry(0).stream("bench-agg"),
    )
    benchmark(sim.step)
    assert sim.matrix.sum() == n


def test_bench_pernode_step(benchmark):
    """Steps/second of the per-node engine at n = 100,000."""
    n, k, alpha = 100_000, 8, 1.5
    sim = PerNodeSynchronousSim(
        biased_counts(n, k, alpha),
        FixedSchedule(n=n, k=k, alpha0=alpha),
        RngRegistry(0).stream("bench-pn"),
    )
    benchmark(sim.step)
    assert sim.generation_color_matrix().sum() == n
