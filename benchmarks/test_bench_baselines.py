"""Section 1.1 — generations vs classical dynamics face-off."""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.slow  # experiment-backed; minutes at seed pace

import math


def test_bench_baselines(run_and_save):
    result = run_and_save("baselines")
    sync_rows = result.tables[0].rows
    # Columns: k, n, generations, gen win, 3maj, 3maj win, 2c, 2c win, usd, usd win.
    # Inside the validity regime the generation protocol wins every seed.
    assert all(row[3] == 1.0 for row in sync_rows)
    # 3-majority's Theta(k log n) growth outpaces the generation
    # protocol's polylog growth along the k sweep.
    by_k = {row[0]: row for row in sync_rows}
    ks = sorted(by_k)
    k_low, k_high = ks[0], ks[-1]
    if not math.isnan(by_k[k_high][4]):
        three_majority_growth = by_k[k_high][4] / by_k[k_low][4]
        generations_growth = by_k[k_high][2] / by_k[k_low][2]
        assert three_majority_growth > generations_growth

    regime_rows = result.tables[1].rows
    # Below Theorem 1's bias floor the generation protocol loses —
    # the precondition is real, not an artifact of the analysis.
    assert regime_rows[0][3] > regime_rows[0][2]  # floor > alpha
    assert regime_rows[0][4] < 1.0  # win rate suffers

    voter_rows = result.tables[2].rows
    # Pull voting pays Omega(n): round count comparable to n.
    assert voter_rows[0][2] > 0.3  # rounds/n

    population = result.tables[3].rows
    names = [row[0] for row in population]
    assert "3-state-majority" in names and "4-state-exact-majority" in names
