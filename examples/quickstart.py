"""Quickstart — plurality consensus with generations in ten lines.

Runs Algorithm 1 (the synchronous generation protocol) on a million
nodes holding eight opinions with a 1.5x plurality lead, then prints the
per-generation story: each generation is born purer than its parent
(the bias squares), grows to half the population, and hands over to the
next one.

Run:
    python examples/quickstart.py
"""

from __future__ import annotations

from repro import quick_sync


def main() -> None:
    result = quick_sync(n=1_000_000, k=8, alpha=1.5, seed=7)

    print("=== outcome ===")
    print(result.summary())
    print(f"initial plurality color: {result.plurality_color}")
    print(f"winner:                  {result.winner}")
    print(f"steps to full consensus: {result.elapsed:.0f}")
    print()
    print("=== generations ===")
    print(f"{'gen':>4} {'born at':>8} {'fraction':>9} {'bias in gen':>12}")
    for birth in result.births:
        bias = f"{birth.bias:.3g}" if birth.bias != float("inf") else "mono"
        print(f"{birth.generation:>4} {birth.time:>8.0f} {birth.fraction:>9.4f} {bias:>12}")
    print()
    print("Each generation's bias is roughly the square of its parent's —")
    print("the mechanism behind the O(log log_alpha k) generation count.")


if __name__ == "__main__":
    main()
