"""Section 4 end-to-end — consensus with no designated leader.

Phase 1 clusters the network into polylog-size groups with emergent
leaders (Section 4.1). Phase 2 broadcasts the switch to consensus mode
in O(1) time (Section 4.2). Phase 3 runs Algorithms 4+5: cluster leaders
sequence two-choices → sleeping → propagation stages per generation,
staying synchronized purely through members relaying leader states.

Run:
    python examples/decentralized_clusters.py [n] [k] [alpha]
"""

from __future__ import annotations

import sys
from collections import Counter

from repro import MultiLeaderParams, RngRegistry, biased_counts
from repro.multileader.clustering import ClusteringSim
from repro.multileader.consensus import MultiLeaderConsensusSim
from repro.multileader.cluster_leader import (
    STATE_PROPAGATION,
    STATE_SLEEPING,
    STATE_TWO_CHOICES,
)

STATE_NAMES = {
    STATE_TWO_CHOICES: "two-choices",
    STATE_SLEEPING: "sleeping",
    STATE_PROPAGATION: "propagation",
}


def main() -> None:
    args = sys.argv[1:]
    n = int(args[0]) if len(args) > 0 else 2000
    k = int(args[1]) if len(args) > 1 else 3
    alpha = float(args[2]) if len(args) > 2 else 2.0

    params = MultiLeaderParams(n=n, k=k, alpha0=alpha)
    rngs = RngRegistry(11)
    print(f"n={n} k={k} alpha0={alpha}  "
          f"target cluster size={params.target_cluster_size}  "
          f"unit={params.time_unit:.2f} steps")

    print("\n=== phase 1: clustering ===")
    clustering = ClusteringSim(params, rngs.stream("clustering")).run(max_time=400.0)
    sizes = clustering.cluster_sizes()
    histogram = Counter(size // 10 * 10 for size in sizes.values())
    print(f"elapsed:            {clustering.elapsed:.1f} steps")
    print(f"clustered fraction: {clustering.clustered_fraction:.3f}")
    print(f"active clusters:    {len(clustering.active_leaders)} "
          f"(covering {clustering.active_fraction:.3f} of nodes)")
    print(f"switch spread t_l - t_f: {clustering.switch_spread:.2f} steps "
          f"= {clustering.switch_spread / params.time_unit:.3f} units (Theorem 27: O(1))")
    print("cluster size histogram:",
          ", ".join(f"[{low}-{low + 9}]x{count}" for low, count in sorted(histogram.items())))

    print("\n=== phase 2+3: consensus (Algorithms 4+5) ===")
    counts = biased_counts(n, k, alpha)
    sim = MultiLeaderConsensusSim(params, clustering, counts, rngs.stream("consensus"))
    result = sim.run(max_time=6000.0, epsilon=0.02)
    unit = params.time_unit
    print(result.summary())
    print(f"consensus time: {result.elapsed / unit:.1f} units "
          f"(+ {clustering.elapsed / unit:.1f} units of clustering)")

    print("\n=== leader phase timeline, generation by generation ===")
    table = sim.leader_phase_table()
    for generation in sorted(table):
        line = [f"gen {generation}:"]
        for state in (STATE_TWO_CHOICES, STATE_SLEEPING, STATE_PROPAGATION):
            times = table[generation].get(state)
            if times:
                first, last = min(times.values()), max(times.values())
                line.append(
                    f"{STATE_NAMES[state]} {first / unit:.1f}-{last / unit:.1f}u"
                )
        print("  " + "  ".join(line))
    print("\nSleep windows separate two-choices from propagation across ALL")
    print("clusters (Proposition 31) — no leader ever allows propagation while")
    print("another still runs two-choices for the same generation.")


if __name__ == "__main__":
    main()
