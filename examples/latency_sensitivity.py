"""Figure 1 in your terminal — how edge latency sets the clock.

Computes the paper's time-unit constant ``C1 = F^{-1}(0.9)`` — the
number of time steps within which a node completes a full protocol cycle
with probability 0.9 — exactly via the hypoexponential (phase-type) CDF
of the cycle time ``T3``, sweeps the expected latency ``1/λ`` over three
decades, renders the log-log curve as ASCII art, writes the series to
CSV, and then *validates* the constant against a protocol run: the
single-leader protocol's consensus time in steps grows linearly with
``1/λ`` while the time measured in units stays put.

Run:
    python examples/latency_sensitivity.py
"""

from __future__ import annotations

import numpy as np

from repro import RngRegistry, SingleLeaderParams, biased_counts
from repro.analysis.series import Series, ascii_plot
from repro.core.single_leader import SingleLeaderSim
from repro.engine.latency import remark14_valid_bound, time_unit_steps


def main() -> None:
    print("=== Figure 1: steps per time unit vs expected latency 1/lambda ===")
    curve = Series("F^-1(0.9)")
    bound = Series("Markov bound 70/beta")
    for inverse in (1, 2, 5, 10, 20, 50, 100, 200, 500, 1000):
        rate = 1.0 / inverse
        curve.append(inverse, time_unit_steps(rate))
        bound.append(inverse, remark14_valid_bound(rate))
    print(ascii_plot([curve, bound], logx=True, logy=True,
                     title="steps/unit (log-log)"))
    path = curve.to_csv("examples/output/fig1_steps_per_unit.csv",
                        x_name="inverse_lambda", y_name="steps_per_unit")
    print(f"\nseries written to {path}")

    print("\n=== validation: protocol time in units is latency-invariant ===")
    n, k, alpha = 1000, 4, 2.0
    counts = biased_counts(n, k, alpha)
    rngs = RngRegistry(5)
    print(f"{'lambda':>7} {'C1':>8} {'steps':>9} {'units':>7}")
    units = []
    for lam in (0.5, 1.0, 2.0, 4.0):
        params = SingleLeaderParams(n=n, k=k, alpha0=alpha, latency_rate=lam)
        sim = SingleLeaderSim(params, counts, rngs.stream(f"lam/{lam}"))
        result = sim.run(max_time=4000.0)
        in_units = result.elapsed / params.time_unit
        units.append(in_units)
        print(f"{lam:>7.2f} {params.time_unit:>8.2f} {result.elapsed:>9.1f} "
              f"{in_units:>7.2f}")
    spread = max(units) / min(units)
    print(f"\nunit-time spread across an 8x latency range: {spread:.2f}x "
          "(the latency only rescales the clock, not the algorithm)")


if __name__ == "__main__":
    main()
