"""Algorithm 2+3 — the asynchronous single-leader protocol, phase by phase.

Every node runs on its own Poisson clock; opening a channel costs an
exponential latency; a designated leader alternates two-choices and
propagation stages by counting signals. This example runs the protocol
and prints the leader's phase timeline: when each generation was
allowed, when its two-choices window closed (≈ 2 time units later,
Proposition 16), and the state of the newborn generation at that moment.

Run:
    python examples/async_single_leader.py [n] [k] [alpha] [lambda]
"""

from __future__ import annotations

import sys

from repro import RngRegistry, SingleLeaderParams, biased_counts
from repro.core.single_leader import SingleLeaderSim


def main() -> None:
    args = sys.argv[1:]
    n = int(args[0]) if len(args) > 0 else 3000
    k = int(args[1]) if len(args) > 1 else 4
    alpha = float(args[2]) if len(args) > 2 else 1.8
    lam = float(args[3]) if len(args) > 3 else 1.0

    params = SingleLeaderParams(n=n, k=k, alpha0=alpha, latency_rate=lam)
    print(f"n={n} k={k} alpha0={alpha} lambda={lam}")
    print(
        f"time unit C1 = {params.time_unit:.2f} steps "
        f"(F^-1(0.9) of the cycle time T3), generation budget G* = "
        f"{params.max_generation}"
    )
    print()

    counts = biased_counts(n, k, alpha)
    sim = SingleLeaderSim(params, counts, RngRegistry(42).stream("example"))
    result = sim.run(max_time=3000.0, epsilon=0.02)

    births = sim.leader.generation_birth_times()
    print("=== leader phase timeline (times in units) ===")
    print(f"{'gen':>4} {'allowed':>9} {'prop-flip':>10} {'window':>7} "
          f"{'size@flip':>10} {'bias@flip':>10}")
    snapshots = {birth.generation: birth for birth in sim.births}
    for generation in sorted(births):
        allowed = births[generation] / params.time_unit
        flip = sim.leader.propagation_times().get(generation)
        if flip is None:
            print(f"{generation:>4} {allowed:>9.2f} {'—':>10}")
            continue
        snapshot = snapshots.get(generation)
        window = (flip - births[generation]) / params.time_unit
        size = f"{snapshot.fraction:.3f}" if snapshot else "—"
        bias = f"{snapshot.bias:.3g}" if snapshot else "—"
        print(
            f"{generation:>4} {allowed:>9.2f} {flip / params.time_unit:>10.2f} "
            f"{window:>7.2f} {size:>10} {bias:>10}"
        )
    print()
    print("=== outcome ===")
    print(result.summary())
    unit = params.time_unit
    if result.epsilon_convergence_time is not None:
        print(f"98%-convergence: {result.epsilon_convergence_time / unit:.2f} units")
    print(f"full consensus:  {result.elapsed / unit:.2f} units "
          f"({result.elapsed:.0f} steps)")
    print(f"leader processed {sim.leader.zero_signals} tick signals and "
          f"{sim.leader.gen_signals} promotion signals")


if __name__ == "__main__":
    main()
