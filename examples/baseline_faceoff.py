"""Generations vs the classics — one workload, five dynamics.

Puts the paper's generation protocol up against pull voting,
two-choices voting, 3-majority, and the undecided-state dynamics on the
same biased workload, using the exact count-based engines (population
sizes in the millions cost nothing). Prints rounds-to-consensus and
whether the initial plurality actually won.

Run:
    python examples/baseline_faceoff.py [k] [alpha]
"""

from __future__ import annotations

import sys

from repro import FixedSchedule, RngRegistry, biased_counts, run_synchronous
from repro.analysis.tables import render_table
from repro.baselines import (
    PullVoting,
    ThreeMajority,
    TwoChoices,
    UndecidedStateDynamics,
    run_dynamics,
)
from repro.core.theory import minimum_bias


def main() -> None:
    args = sys.argv[1:]
    k = int(args[0]) if len(args) > 0 else 16
    alpha = float(args[1]) if len(args) > 1 else 1.5
    n = 10_000_000
    floor = minimum_bias(n, k)
    print(f"workload: n={n:,} k={k} alpha={alpha} "
          f"(Theorem 1 bias floor at this size: {floor:.3f})")
    if alpha <= floor:
        print("warning: alpha is below the generation protocol's validity "
              "floor — expect it to lose; increase n or alpha.")
    counts = biased_counts(n, k, alpha)
    rngs = RngRegistry(2024)

    rows = []
    schedule = FixedSchedule(n=n, k=k, alpha0=alpha)
    result = run_synchronous(counts, schedule, rngs.stream("generations"),
                             engine="aggregate", max_steps=5000)
    rows.append(["generations (paper)", result.elapsed, result.converged,
                 result.plurality_won])
    for dynamics in (ThreeMajority(), TwoChoices(), UndecidedStateDynamics()):
        result = run_dynamics(dynamics, counts, rngs.stream(dynamics.name),
                              max_rounds=5000)
        rows.append([dynamics.name, result.elapsed, result.converged,
                     result.plurality_won])

    # Pull voting needs Omega(n) rounds — demonstrate on a small clique.
    voter_n = 500
    voter = run_dynamics(PullVoting(), biased_counts(voter_n, 2, 2.0),
                         rngs.stream("voter"), max_rounds=500_000)
    rows.append([f"pull voting (n={voter_n}!)", voter.elapsed, voter.converged,
                 voter.plurality_won])

    print()
    print(render_table(
        ["protocol", "rounds", "consensus", "plurality won"], rows
    ))
    print()
    print("3-majority needs Theta(k log n) rounds; the generation protocol's")
    print("round count is polylogarithmic in k — rerun with k=64 or k=128 to")
    print("watch the crossover (the workload stays inside the validity regime")
    print("as long as the printed bias floor is below alpha).")


if __name__ == "__main__":
    main()
