"""Composable fault models injected at the simulator layer.

Faults are *event-stream transforms*: :func:`inject_faults` wraps a
protocol simulator's scheduling methods with a classifier + transform
chain, so protocol code is untouched. Events are
classified by their bound handler's name — the repository-wide protocol
convention (``_tick`` clock events, ``_exchange``/``_tentative_exchange``/
``_commit``/``_join`` channel-completion events, ``_leader_signal``/
``_deliver_signal`` one-way signals); anything else (samplers, fault
internals) passes through untouched.

Fault semantics:

* **Dropping a signal** simply loses it — leaders count fewer 0-signals
  and phase transitions slow down, exactly the knob the paper's
  threshold analysis stresses.
* **Dropping an exchange** models a failed channel: the initiating node
  gives up its cycle (it is unlocked through the protocol adapter so it
  can tick again), and no state is read.
* **Crash/churn** marks nodes crashed; a crashed node's pending events
  are suppressed at dispatch time through a guard trampoline, its clock
  tick is deferred to the rejoin time (keeping the Poisson clock alive),
  and on rejoin its protocol state is reset (generation 0, cleared
  leader views) — the "state reset on rejoin" model of self-stabilizing
  population dynamics.
* **Stragglers** multiply channel-establishment delays of a fixed
  random subset of nodes.

Both scalar (``schedule_in``) and bulk (``schedule_many`` /
``schedule_many_at``) scheduling are intercepted — window-batched
protocols (see :mod:`repro.engine.simulator`) degrade to per-event
scheduling under faults, so fault semantics never depend on batching.
Two residual notes: (1) with :func:`inject_faults` the initial batch of
tick events is scheduled during protocol construction, *before* the
wrapper exists, so each node's very first tick escapes the churn guard
— construct the protocol over :func:`prepare_faulty_simulator`'s
pre-wrapped simulator to close that hole; (2) a crashed node's
already-scheduled 0-signals still arrive (in-flight messages survive
their sender's crash), bounded by one tick window.

Randomness flows from the generator handed to :func:`inject_faults`
through block-prefetched pools (:mod:`repro.engine.rng`), so faulty
runs stay exactly reproducible and cheap on the hot path.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Sequence

import numpy as np

from repro.engine.rng import UniformPool
from repro.engine.simulator import Simulator
from repro.errors import ConfigurationError
from repro.util.validation import check_positive

__all__ = [
    "FaultModel",
    "IidDrop",
    "GilbertElliottDrop",
    "Stragglers",
    "CrashChurn",
    "CrashAtTimes",
    "ProtocolAdapter",
    "FaultInjection",
    "inject_faults",
    "prepare_faulty_simulator",
    "build_faults",
    "fault_model_names",
    "gilbert_elliott_params",
]

#: Handler-name → event category. Everything unlisted is internal.
TICK = "tick"
EXCHANGE = "exchange"
MESSAGE = "message"
_CATEGORY: dict[str, str] = {
    "_tick": TICK,
    "_exchange": EXCHANGE,
    "_tentative_exchange": EXCHANGE,
    "_commit": EXCHANGE,
    "_join": EXCHANGE,
    "_leader_signal": MESSAGE,
    "_deliver_signal": MESSAGE,
}


def _node_of(name: str, payload: Any) -> int | None:
    """Best-effort owner node of an event (None when not attributable)."""
    if name == "_tick":
        return payload if isinstance(payload, int) else None
    if isinstance(payload, tuple) and payload and isinstance(payload[0], int):
        return payload[0]
    return None


class ProtocolAdapter:
    """Duck-typed bridge from generic faults to one protocol simulator.

    Works for every event-driven simulator in the repository
    (:class:`~repro.core.single_leader.SingleLeaderSim` and subclasses,
    :class:`~repro.multileader.consensus.MultiLeaderConsensusSim`,
    :class:`~repro.multileader.clustering.ClusteringSim`): they all keep
    ``_locked`` lists, and the generation-based ones expose
    ``_set_state`` plus per-node view lists that a rejoin reset clears.
    """

    def __init__(self, sim_obj: Any):
        self._sim_obj = sim_obj
        self.n = int(sim_obj.n)

    def unlock(self, node: int) -> None:
        """Abort the node's current cycle (failed channel semantics).

        Prefers the protocol's own ``_unlock`` hook when it exists —
        skip-tick protocols resume the node's pre-drawn tick chain there
        (see :meth:`repro.core.single_leader.SingleLeaderSim._unlock`);
        plain ``_locked`` clearing would silence the node forever.
        """
        unlock = getattr(self._sim_obj, "_unlock", None)
        if unlock is not None:
            unlock(node)
            return
        locked = getattr(self._sim_obj, "_locked", None)
        if locked is not None:
            locked[node] = False

    def reset(self, node: int) -> None:
        """Reset protocol state on rejoin: generation 0, cleared views.

        On :class:`~repro.multileader.clustering.ClusteringSim` the
        reset means forgetting cluster membership: a rejoining follower
        is unclustered again (its old cluster shrinks). A crashed
        *leader* keeps its role — leader failure is a different fault
        model than node churn.
        """
        sim = self._sim_obj
        if hasattr(sim, "_set_state") and hasattr(sim, "_cols"):
            sim._set_state(node, 0, sim._cols[node])
        for attr, value in (
            ("_seen_gen", -1),
            ("_seen_prop", -1),
            ("_tmp_gen", 0),
            ("_tmp_state", 0),
            ("_finished", False),
        ):
            store = getattr(sim, attr, None)
            if store is not None:
                store[node] = value
        membership = getattr(sim, "_leader", None)
        sizes = getattr(sim, "size", None)
        if membership is not None and sizes is not None:
            own = membership[node]
            if own >= 0 and own != node:
                membership[node] = -1
                if own in sizes:
                    sizes[own] -= 1
        self.unlock(node)


class FaultModel:
    """Base class: one composable transform over the scheduled stream."""

    def install(self, wiring: "FaultInjection") -> None:
        """Bind to one injection (draw pools, schedule internal events)."""

    def transform(self, category: str, node: int | None, delay: float) -> float | None:
        """Return the (possibly modified) delay, or ``None`` to drop."""
        return delay

    def crashed_until(self, node: int | None) -> float | None:
        """Churn hook: time the node rejoins, ``inf`` if never, ``None`` if alive."""
        return None

    def describe(self) -> str:
        """Human-readable one-liner for tables/logs."""
        return type(self).__name__

    def info(self) -> dict[str, float]:
        """Telemetry merged into run records (counters, not config)."""
        return {}


class IidDrop(FaultModel):
    """Drop each message/exchange independently with probability ``rate``."""

    def __init__(self, rate: float):
        if not 0.0 <= rate < 1.0:
            raise ConfigurationError(f"drop rate must be in [0, 1), got {rate}")
        self.rate = float(rate)
        self.dropped = 0

    def install(self, wiring: "FaultInjection") -> None:
        self._pool = UniformPool(wiring.rng)

    def transform(self, category: str, node: int | None, delay: float) -> float | None:
        if self.rate and self._pool() < self.rate:
            self.dropped += 1
            return None
        return delay

    def describe(self) -> str:
        return f"iid drop p={self.rate:g}"

    def info(self) -> dict[str, float]:
        return {"iid_dropped": float(self.dropped)}


class GilbertElliottDrop(FaultModel):
    """Bursty message loss: the classic two-state Gilbert–Elliott channel.

    The channel alternates between a *good* state (loss probability
    ``drop_good``) and a *bad* state (``drop_bad``); the state chain
    advances once per message event, so mean burst length is
    ``1 / to_good`` messages. One global channel is modeled — bursts
    hit the whole network at once, the hardest correlated-loss case.
    """

    def __init__(
        self,
        *,
        drop_good: float = 0.0,
        drop_bad: float = 0.9,
        to_bad: float = 0.05,
        to_good: float = 0.5,
    ):
        for name, value in (
            ("drop_good", drop_good),
            ("drop_bad", drop_bad),
            ("to_bad", to_bad),
            ("to_good", to_good),
        ):
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {value}")
        self.drop_good, self.drop_bad = float(drop_good), float(drop_bad)
        self.to_bad, self.to_good = float(to_bad), float(to_good)
        self.bad = False
        self.dropped = 0
        self.bursts = 0

    def install(self, wiring: "FaultInjection") -> None:
        self._pool = UniformPool(wiring.rng)

    def transform(self, category: str, node: int | None, delay: float) -> float | None:
        if self.bad:
            if self._pool() < self.to_good:
                self.bad = False
        elif self._pool() < self.to_bad:
            self.bad = True
            self.bursts += 1
        if self._pool() < (self.drop_bad if self.bad else self.drop_good):
            self.dropped += 1
            return None
        return delay

    def describe(self) -> str:
        return (
            f"Gilbert-Elliott drop good={self.drop_good:g} bad={self.drop_bad:g} "
            f"(to_bad={self.to_bad:g}, to_good={self.to_good:g})"
        )

    def info(self) -> dict[str, float]:
        return {"ge_dropped": float(self.dropped), "ge_bursts": float(self.bursts)}


class Stragglers(FaultModel):
    """A random node subset whose channel delays are multiplied.

    ``fraction`` of nodes (drawn once at install) see every exchange
    they initiate slowed by ``slowdown``; signals without an
    attributable owner are unaffected.
    """

    def __init__(self, fraction: float, slowdown: float = 4.0):
        if not 0.0 <= fraction <= 1.0:
            raise ConfigurationError(f"straggler fraction must be in [0, 1], got {fraction}")
        self.fraction = float(fraction)
        self.slowdown = check_positive("slowdown", slowdown)
        self.count = 0

    def install(self, wiring: "FaultInjection") -> None:
        mask = wiring.rng.random(wiring.n) < self.fraction
        self._slow: list[bool] = mask.tolist()
        self.count = int(mask.sum())

    def transform(self, category: str, node: int | None, delay: float) -> float | None:
        if node is not None and self._slow[node]:
            return delay * self.slowdown
        return delay

    def describe(self) -> str:
        return f"stragglers {self.fraction:g} x{self.slowdown:g}"

    # No info() counters: the straggler count is a gauge derived from
    # config (fraction * n), and gauges must not be sum-merged when one
    # run instruments several phase simulators.


class _ChurnBase(FaultModel):
    """Shared crash bookkeeping: crashed-until map + rejoin resets."""

    def __init__(self, *, reset_on_rejoin: bool = True):
        self.reset_on_rejoin = reset_on_rejoin
        self._down: dict[int, float] = {}
        self.crashes = 0
        self.rejoins = 0

    def crashed_until(self, node: int | None) -> float | None:
        if node is None:
            return None
        return self._down.get(node)

    def _crash_node(self, node: int, until: float) -> None:
        self._down[node] = until
        self.crashes += 1
        wiring = getattr(self, "_wiring", None)
        if wiring is not None:
            tracer = wiring.sim.tracer
            if tracer.enabled_for("fault"):
                tracer.record("fault", wiring.sim.now, event="crash", node=node)

    def _rejoin(self, node: int) -> None:
        if self._down.pop(node, None) is not None:
            self.rejoins += 1
            adapter = self._wiring.adapter
            if self.reset_on_rejoin and adapter is not None:
                adapter.reset(node)
            tracer = self._wiring.sim.tracer
            if tracer.enabled_for("fault"):
                tracer.record("fault", self._wiring.sim.now, event="rejoin", node=node)

    def info(self) -> dict[str, float]:
        return {"crashes": float(self.crashes), "rejoins": float(self.rejoins)}


class CrashChurn(_ChurnBase):
    """Poisson churn: nodes crash at global rate ``rate`` and rejoin.

    Crash times form a Poisson process of intensity ``rate`` (crashes
    per simulated time unit, over the whole network); the crashed node
    is uniform and stays down for an ``Exp(1/mean_downtime)`` period,
    after which it rejoins with reset state (when ``reset_on_rejoin``).
    """

    def __init__(self, rate: float, *, mean_downtime: float = 1.0, reset_on_rejoin: bool = True):
        super().__init__(reset_on_rejoin=reset_on_rejoin)
        self.rate = check_positive("rate", rate)
        self.mean_downtime = check_positive("mean_downtime", mean_downtime)

    def install(self, wiring: "FaultInjection") -> None:
        self._wiring = wiring
        self._rng = wiring.rng
        wiring.schedule_internal(float(self._rng.exponential(1.0 / self.rate)), self._next_crash)

    def _next_crash(self, _payload: Any = None) -> None:
        wiring = self._wiring
        node = int(self._rng.integers(wiring.n))
        if node not in self._down:
            downtime = float(self._rng.exponential(self.mean_downtime))
            self._crash_node(node, wiring.sim.now + downtime)
            wiring.schedule_internal(downtime, self._rejoin, node)
        wiring.schedule_internal(float(self._rng.exponential(1.0 / self.rate)), self._next_crash)

    def describe(self) -> str:
        return f"Poisson churn rate={self.rate:g} downtime={self.mean_downtime:g}"


class CrashAtTimes(_ChurnBase):
    """Deterministic crash schedule: ``{node: crash_time}``.

    ``downtime=None`` crashes nodes permanently (their clocks die);
    otherwise each node rejoins ``downtime`` later with reset state.
    """

    def __init__(
        self,
        schedule: dict[int, float],
        *,
        downtime: float | None = None,
        reset_on_rejoin: bool = True,
    ):
        super().__init__(reset_on_rejoin=reset_on_rejoin)
        if not schedule:
            raise ConfigurationError("crash schedule must name at least one node")
        self.schedule = {int(node): float(when) for node, when in schedule.items()}
        self.downtime = None if downtime is None else check_positive("downtime", downtime)

    def install(self, wiring: "FaultInjection") -> None:
        self._wiring = wiring
        for node, when in sorted(self.schedule.items()):
            if not 0 <= node < wiring.n:
                raise ConfigurationError(f"crash schedule names unknown node {node}")
            wiring.schedule_internal(max(0.0, when - wiring.sim.now), self._crash_now, node)

    def _crash_now(self, node: int) -> None:
        wiring = self._wiring
        if self.downtime is None:
            self._crash_node(node, math.inf)
        else:
            self._crash_node(node, wiring.sim.now + self.downtime)
            wiring.schedule_internal(self.downtime, self._rejoin, node)

    def describe(self) -> str:
        tail = "permanently" if self.downtime is None else f"for {self.downtime:g}"
        return f"crash {len(self.schedule)} node(s) {tail}"


class FaultInjection:
    """One wiring of fault models into a protocol simulator.

    Created by :func:`inject_faults` (wrap + bind in one step, after
    protocol construction) or :func:`prepare_faulty_simulator` (wrap a
    bare :class:`~repro.engine.simulator.Simulator` *before* protocol
    construction, then :meth:`bind` the protocol object — the only way
    the nodes' initial ticks are governed too).  Exposes telemetry
    through :meth:`info` and the internal scheduling seam fault models
    use.

    Both the scalar (``schedule_in``) and the bulk (``schedule_many`` /
    ``schedule_many_at``) scheduling paths are intercepted; bulk blocks
    are routed through the same per-event transform chain, so fault
    semantics are independent of how the protocol batches its inserts.
    """

    def __init__(
        self,
        sim: Any,
        faults: Sequence[FaultModel],
        rng: np.random.Generator,
        *,
        n: int,
    ):
        self.adapter: ProtocolAdapter | None = None
        self.n = int(n)
        self.sim = sim
        self.rng = rng
        self.faults = list(faults)
        self.dropped_messages = 0
        self.dropped_exchanges = 0
        self.deferred_ticks = 0
        self.dead_ticks = 0
        self._original_schedule = sim.schedule
        self._original_schedule_in = sim.schedule_in
        self._original_schedule_many = sim.schedule_many
        self._original_schedule_many_at = sim.schedule_many_at
        self._has_churn = any(
            isinstance(fault, _ChurnBase) or type(fault).crashed_until is not FaultModel.crashed_until
            for fault in faults
        )
        # Instance-attribute overrides: every protocol handler looks the
        # scheduling methods up on the simulator object per call.
        sim.schedule = self._schedule
        sim.schedule_in = self._schedule_in
        sim.schedule_many = self._schedule_many
        sim.schedule_many_at = self._schedule_many_at
        for fault in self.faults:
            fault.install(self)

    def bind(self, sim_obj: Any) -> "FaultInjection":
        """Attach the protocol object (unlock/reset seam) after construction."""
        self.adapter = ProtocolAdapter(sim_obj)
        return self

    # -- seam for fault internals (bypasses classification) ------------
    def schedule_internal(self, delay: float, action: Callable, payload: Any = None) -> int:
        """Schedule a fault-model event outside the transform chain."""
        return self._original_schedule_in(delay, action, payload)

    # -- the wrapped scheduling paths ------------------------------------
    def _schedule(self, time: float, action: Callable, payload: Any = None) -> int:
        """Absolute-time seam: route through the scalar transform chain."""
        return self._schedule_in(time - self.sim.now, action, payload)

    def _schedule_many(self, delays, action: Callable, payloads=None) -> list[int]:
        """Bulk seam: route every event through the scalar transform chain."""
        if payloads is None:
            return [self._schedule_in(delay, action) for delay in delays]
        return [
            self._schedule_in(delay, action, payload)
            for delay, payload in zip(delays, payloads)
        ]

    def _schedule_many_at(self, times, action: Callable, payloads=None) -> list[int]:
        """Bulk seam (absolute times): per-event transform chain."""
        now = self.sim.now
        if payloads is None:
            return [self._schedule_in(time - now, action) for time in times]
        return [
            self._schedule_in(time - now, action, payload)
            for time, payload in zip(times, payloads)
        ]

    def _schedule_in(self, delay: float, action: Callable, payload: Any = None) -> int:
        name = getattr(action, "__name__", "")
        category = _CATEGORY.get(name)
        if category is None:
            return self._original_schedule_in(delay, action, payload)
        node = _node_of(name, payload)
        if category is not TICK:
            for fault in self.faults:
                transformed = fault.transform(category, node, delay)
                if transformed is None:
                    self._note_drop(category, node)
                    # Hand back a fresh (never-scheduled) handle so
                    # caller code that stores it keeps working.
                    return self.sim.queue.reserve_handle()
                delay = transformed
        if self._has_churn:
            return self._original_schedule_in(
                delay, self._guard, (action, payload, category, node)
            )
        return self._original_schedule_in(delay, action, payload)

    def _guard(self, bundle: tuple) -> None:
        """Dispatch-time churn check (the trampoline for governed events)."""
        action, payload, category, node = bundle
        until = None
        for fault in self.faults:
            down = fault.crashed_until(node)
            if down is not None:
                until = down if until is None else max(until, down)
        if until is None:
            if payload is None:
                action()
            else:
                action(payload)
            return
        if category is TICK:
            if until is math.inf:
                # Permanently crashed: the node's clock dies silently.
                self.dead_ticks += 1
                return
            # Keep the Poisson clock alive: resume the tick at rejoin.
            # The rejoin event carries an earlier sequence number, so
            # the node is reset before this tick fires.
            self.deferred_ticks += 1
            self._original_schedule_in(max(0.0, until - self.sim.now), self._guard, bundle)
            return
        self._note_drop(category, node)

    def _note_drop(self, category: str, node: int | None) -> None:
        if category is MESSAGE:
            self.dropped_messages += 1
            event = "dropped-message"
        else:
            self.dropped_exchanges += 1
            event = "dropped-exchange"
            if node is not None and self.adapter is not None:
                self.adapter.unlock(node)
        tracer = self.sim.tracer
        if tracer.enabled_for("fault"):
            tracer.record("fault", self.sim.now, event=event, node=node)

    # -- telemetry ------------------------------------------------------
    def info(self) -> dict[str, float]:
        """Flat counters for run records (prefixed ``fault_``)."""
        merged: dict[str, float] = {
            "fault_dropped_messages": float(self.dropped_messages),
            "fault_dropped_exchanges": float(self.dropped_exchanges),
            "fault_deferred_ticks": float(self.deferred_ticks),
            "fault_dead_ticks": float(self.dead_ticks),
        }
        for fault in self.faults:
            for key, value in fault.info().items():
                merged[f"fault_{key}"] = merged.get(f"fault_{key}", 0.0) + value
        return merged

    def publish_metrics(self, metrics) -> None:
        """Harvest the per-model drop/crash/rejoin counters (epilogue).

        Counter names drop the record-level ``fault_`` prefix in favor
        of the registry's ``faults.`` namespace: ``faults.iid_dropped``,
        ``faults.crashes``, ``faults.rejoins``, ...
        """
        if metrics is None or not metrics.enabled:
            return
        for key, value in self.info().items():
            metrics.counter("faults." + key.removeprefix("fault_")).inc(value)

    def describe(self) -> str:
        return ", ".join(fault.describe() for fault in self.faults) or "no faults"


def inject_faults(
    sim_obj: Any, faults: Sequence[FaultModel], rng: np.random.Generator
) -> FaultInjection | None:
    """Wire ``faults`` into a built (not yet run) protocol simulator.

    Returns the :class:`FaultInjection` (telemetry handle), or ``None``
    when ``faults`` is empty — the zero-fault path leaves the simulator
    byte-identical to an uninstrumented run.

    NOTE: the protocol's construction-time scheduling (each node's
    initial tick) predates this call and therefore escapes the fault
    transforms; use :func:`prepare_faulty_simulator` to govern a run
    from its very first event.
    """
    faults = [fault for fault in faults if fault is not None]
    if not faults:
        return None
    return FaultInjection(sim_obj.sim, faults, rng, n=int(sim_obj.n)).bind(sim_obj)


def prepare_faulty_simulator(
    n: int,
    faults: Sequence[FaultModel],
    rng: np.random.Generator,
    *,
    engine: str | None = None,
    tracer=None,
) -> "tuple[Simulator | None, FaultInjection | None]":
    """Pre-wrap a fresh :class:`Simulator` so construction is governed too.

    Returns ``(simulator, injection)``.  Pass the simulator to the
    protocol constructor (``simulator=``) and call
    ``injection.bind(protocol)`` once it is built — then even the
    initial batch of tick events flows through the fault transforms,
    closing the churn-guard escape that :func:`inject_faults` documents
    (a node crashed at t=0 will never fire its first tick).

    With an empty fault list both elements are ``None``: the protocol
    builds its own simulator and stays byte-identical to an
    uninstrumented run.  ``tracer`` is attached to the built simulator
    (fault-free traced runs still get a simulator so records flow).
    """
    faults = [fault for fault in faults if fault is not None]
    if not faults:
        if tracer is None:
            return None, None
        return Simulator(engine=engine, tracer=tracer), None
    simulator = Simulator(engine=engine, tracer=tracer)
    return simulator, FaultInjection(simulator, faults, rng, n=n)


#: Named drop models for the ``drop_model=`` sweep axis.
_DROP_MODELS = ("iid", "bursty")


def fault_model_names() -> list[str]:
    """Named drop models usable from sweep grids."""
    return sorted(_DROP_MODELS)


def gilbert_elliott_params(drop: float) -> dict[str, float]:
    """Gilbert–Elliott parameters whose stationary loss equals ``drop``.

    Shared by the event-stream (:func:`build_faults`) and round-level
    (:func:`repro.scenarios.round_faults.build_round_faults`) builders,
    so matched ``drop`` knobs mean matched marginal loss on both seams.
    The stationary bad fraction is ``to_bad / (to_bad + to_good)``,
    capped at 2/3 by ``to_bad <= 1``; the marginal loss
    ``stationary * drop_bad + (1 - stationary) * drop_good`` is solved
    to equal the requested rate exactly (bad-state dwell tuned to burst
    ~2 messages; beyond the bad state's capacity the residual loss is
    assigned to the good state).
    """
    if not 0.0 <= drop < 1.0:
        raise ConfigurationError(f"drop rate must be in [0, 1), got {drop}")
    to_good = 0.5
    drop_bad = max(0.9, drop)
    stationary = min(2.0 / 3.0, drop / drop_bad) if drop else 0.0
    to_bad = stationary * to_good / (1.0 - stationary)
    drop_good = (
        max(0.0, (drop - stationary * drop_bad) / (1.0 - stationary)) if drop else 0.0
    )
    return {
        "drop_good": drop_good,
        "drop_bad": drop_bad,
        "to_bad": to_bad,
        "to_good": to_good,
    }


def build_faults(
    *,
    drop: float = 0.0,
    drop_model: str = "iid",
    churn: float = 0.0,
    churn_downtime: float = 1.0,
    stragglers: float = 0.0,
    straggler_slowdown: float = 4.0,
) -> list[FaultModel]:
    """Build a fault list from flat scalar knobs (the sweep-axis seam).

    ``drop`` is the marginal loss rate: ``iid`` uses it directly, and
    ``bursty`` maps it onto a Gilbert–Elliott channel whose stationary
    loss matches *exactly* (bad-state dwell tuned to burst ~2 messages;
    beyond the bad state's capacity the residual loss is assigned to
    the good state, so iid-vs-bursty grid comparisons stay honest at
    every rate).
    """
    if not 0.0 <= drop < 1.0:
        raise ConfigurationError(f"drop rate must be in [0, 1), got {drop}")
    faults: list[FaultModel] = []
    if drop:
        if drop_model == "iid":
            faults.append(IidDrop(drop))
        elif drop_model == "bursty":
            faults.append(GilbertElliottDrop(**gilbert_elliott_params(drop)))
        else:
            raise ConfigurationError(
                f"unknown drop model {drop_model!r}; available: {', '.join(fault_model_names())}"
            )
    if churn:
        faults.append(CrashChurn(churn, mean_downtime=churn_downtime))
    if stragglers:
        faults.append(Stragglers(stragglers, slowdown=straggler_slowdown))
    return faults
