"""Adversarial initial configurations.

The paper's canonical workload (:func:`repro.workloads.opinions.biased_counts`)
already minimizes the collision probability for a given ``(k, α)``; the
related literature points at harder starts still. Cooper et al.
(*Asynchronous 3-Majority Dynamics with Many Opinions*, 2024) study
initial-bias adversaries and opinion counts polynomial in ``n``;
Bankhamer et al. (*Fast Consensus via the Unconstrained Undecided State
Dynamics*, 2021) stress near-tied configurations. This module builds
those configurations as count vectors compatible with every runner in
the repository:

* :func:`minimal_bias_counts` — the plurality leads by exactly one
  node (additive bias 1, multiplicative bias ``1 + o(1)``);
* :func:`planted_tie_counts` — the two leading colors are exactly
  tied, so "plurality wins" is at best a coin flip;
* :func:`opinion_ramp_counts` — ``k = ceil(n^a)`` near-uniform
  opinions, the many-opinions regime.

:func:`adversarial_counts` dispatches by name so sweeps can put the
initial configuration on a grid axis (``init=...``).
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigurationError
from repro.util.validation import check_positive, check_positive_int
from repro.workloads.opinions import biased_counts, uniform_counts

__all__ = [
    "minimal_bias_counts",
    "planted_tie_counts",
    "opinion_ramp_counts",
    "adversarial_counts",
    "init_names",
]


def minimal_bias_counts(n: int, k: int) -> np.ndarray:
    """Counts where color 0 leads the runner-up by the smallest strict gap.

    The weakest strict plurality that exists for ``(n, k)``: a one-node
    lead whenever the division of nodes allows it, otherwise (a tie
    whose tail colors are already at one node, including the ``k == 2``
    even-``n`` parity case) the two-node minimum.

    >>> minimal_bias_counts(10, 3).tolist()
    [4, 3, 3]
    >>> minimal_bias_counts(10, 2).tolist()
    [6, 4]
    >>> minimal_bias_counts(5, 3).tolist()
    [3, 1, 1]
    """
    n = check_positive_int("n", n, minimum=3)
    k = check_positive_int("k", k, minimum=2)
    if k + 1 > n:
        raise ConfigurationError(f"cannot host a minimal-bias lead with n={n}, k={k}")
    # uniform_counts puts leftover nodes on the lowest color indices, so
    # counts[0] - counts[1] is either 0 or 1 already. A tie is broken by
    # moving one node from the smallest tail color to the top (lead 1);
    # when that color is already at one node no lead-1 configuration
    # exists, and the donor is the runner-up itself (lead 2).
    counts = uniform_counts(n, k)
    if counts[0] == counts[1]:
        counts[0] += 1
        counts[1 if counts[-1] <= 1 else -1] -= 1
    lead = int(counts[0] - counts[1:].max())
    assert counts.sum() == n and 1 <= lead <= 2 and int(counts.min()) >= 1
    return counts


def planted_tie_counts(n: int, k: int) -> np.ndarray:
    """Counts where colors 0 and 1 are exactly tied at the top.

    There is no plurality to find — a correct protocol must still
    converge, and which of the two leaders wins is (empirically) a fair
    coin. ``plurality_won`` rates near 0.5 are the expected signature.

    >>> planted_tie_counts(10, 3).tolist()
    [4, 4, 2]
    """
    n = check_positive_int("n", n, minimum=4)
    k = check_positive_int("k", k, minimum=2)
    if 2 * (k - 1) > n:
        raise ConfigurationError(f"cannot host a planted tie with n={n}, k={k}")
    if k == 2:
        if n % 2:
            raise ConfigurationError(f"an exact 2-color tie needs even n, got n={n}")
        return np.array([n // 2, n // 2], dtype=np.int64)
    # Give the tail one node per color, then split the rest evenly on top.
    tail = np.ones(k - 2, dtype=np.int64)
    rest = n - int(tail.sum())
    top = rest // 2
    counts = np.concatenate([[top, rest - top], tail]).astype(np.int64)
    if counts[0] != counts[1]:
        # Odd remainder: move the spare node into the tail.
        counts[0] = counts[1] = top
        counts[-1] += rest - 2 * top
    if counts.size > 2 and counts[0] < counts[2:].max():
        # Tiny populations (e.g. n=4, k=3) cannot tie two colors at the
        # top without a tail color overtaking them.
        raise ConfigurationError(f"cannot host a planted tie with n={n}, k={k}")
    assert counts.sum() == n and counts[0] == counts[1] >= counts[2:].max(initial=0)
    return counts


def opinion_ramp_counts(n: int, exponent: float) -> np.ndarray:
    """Near-uniform counts over ``k = ceil(n^exponent)`` opinions.

    The many-opinions regime (``k = n^a`` for ``a in (0, 1)``): the
    plurality exists (leftover nodes land on color 0) but its support is
    a vanishing fraction of ``n``.

    >>> opinion_ramp_counts(100, 0.5).size
    10
    """
    n = check_positive_int("n", n, minimum=2)
    check_positive("exponent", exponent)
    if exponent >= 1.0:
        raise ConfigurationError(f"exponent must be < 1 (k < n), got {exponent}")
    k = max(2, math.ceil(n**exponent))
    counts = uniform_counts(n, k)
    if counts[0] == counts[1:].max():
        # Perfectly divisible: create a minimal strict plurality so the
        # plurality-won metric stays well defined.
        counts[0] += 1
        counts[-1] -= 1
    return counts


#: Named initial-configuration families (the ``init=`` sweep axis).
_INITS = ("biased", "minimal", "tie", "ramp", "uniform")


def init_names() -> list[str]:
    """All named initial configurations, sorted."""
    return sorted(_INITS)


def adversarial_counts(kind: str, n: int, k: int, alpha: float) -> np.ndarray:
    """Dispatch a named initial configuration to its builder.

    ``alpha`` is only consulted by ``biased``; ``ramp`` reinterprets
    ``k`` as ``10 * a`` — e.g. ``k=5`` means ``k = ceil(n^0.5)`` — so
    the axis stays a JSON scalar in sweep grids.
    """
    if kind == "biased":
        return biased_counts(n, k, alpha)
    if kind == "minimal":
        return minimal_bias_counts(n, k)
    if kind == "tie":
        return planted_tie_counts(n, k)
    if kind == "ramp":
        return opinion_ramp_counts(n, k / 10.0)
    if kind == "uniform":
        return uniform_counts(n, k)
    raise ConfigurationError(
        f"unknown initial configuration {kind!r}; available: {', '.join(init_names())}"
    )
