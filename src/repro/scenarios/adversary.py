"""Adversarial initial configurations.

The paper's canonical workload (:func:`repro.workloads.opinions.biased_counts`)
already minimizes the collision probability for a given ``(k, α)``; the
related literature points at harder starts still. Cooper et al.
(*Asynchronous 3-Majority Dynamics with Many Opinions*, 2024) study
initial-bias adversaries and opinion counts polynomial in ``n``;
Bankhamer et al. (*Fast Consensus via the Unconstrained Undecided State
Dynamics*, 2021) stress near-tied configurations. This module builds
those configurations as count vectors compatible with every runner in
the repository:

* :func:`minimal_bias_counts` — the plurality leads by exactly one
  node (additive bias 1, multiplicative bias ``1 + o(1)``);
* :func:`planted_tie_counts` — the two leading colors are exactly
  tied, so "plurality wins" is at best a coin flip;
* :func:`opinion_ramp_counts` — ``k = ceil(n^a)`` near-uniform
  opinions, the many-opinions regime;
* :func:`clustered_assignment` — *topology-correlated* placement: the
  plurality is confined to one ball of the communication graph (one
  cluster of a :class:`~repro.scenarios.topology.ClusterGraph`, one
  geographic region of a geometric graph) instead of being uniformly
  interleaved. Counts alone cannot express this adversary — it is a
  node→color map, consumed through the per-node engines'
  ``assignment=`` seam.

:func:`adversarial_counts` dispatches by name so sweeps can put the
initial configuration on a grid axis (``init=...``).
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigurationError
from repro.util.validation import check_positive, check_positive_int
from repro.workloads.bias import validate_counts
from repro.workloads.opinions import biased_counts, uniform_counts

__all__ = [
    "minimal_bias_counts",
    "planted_tie_counts",
    "opinion_ramp_counts",
    "clustered_assignment",
    "adversarial_counts",
    "init_names",
]


def minimal_bias_counts(n: int, k: int) -> np.ndarray:
    """Counts where color 0 leads the runner-up by the smallest strict gap.

    The weakest strict plurality that exists for ``(n, k)``: a one-node
    lead whenever the division of nodes allows it, otherwise (a tie
    whose tail colors are already at one node, including the ``k == 2``
    even-``n`` parity case) the two-node minimum.

    >>> minimal_bias_counts(10, 3).tolist()
    [4, 3, 3]
    >>> minimal_bias_counts(10, 2).tolist()
    [6, 4]
    >>> minimal_bias_counts(5, 3).tolist()
    [3, 1, 1]
    """
    n = check_positive_int("n", n, minimum=3)
    k = check_positive_int("k", k, minimum=2)
    if k + 1 > n:
        raise ConfigurationError(f"cannot host a minimal-bias lead with n={n}, k={k}")
    # uniform_counts puts leftover nodes on the lowest color indices, so
    # counts[0] - counts[1] is either 0 or 1 already. A tie is broken by
    # moving one node from the smallest tail color to the top (lead 1);
    # when that color is already at one node no lead-1 configuration
    # exists, and the donor is the runner-up itself (lead 2).
    counts = uniform_counts(n, k)
    if counts[0] == counts[1]:
        counts[0] += 1
        counts[1 if counts[-1] <= 1 else -1] -= 1
    lead = int(counts[0] - counts[1:].max())
    assert counts.sum() == n and 1 <= lead <= 2 and int(counts.min()) >= 1
    return counts


def planted_tie_counts(n: int, k: int) -> np.ndarray:
    """Counts where colors 0 and 1 are exactly tied at the top.

    There is no plurality to find — a correct protocol must still
    converge, and which of the two leaders wins is (empirically) a fair
    coin. ``plurality_won`` rates near 0.5 are the expected signature.

    >>> planted_tie_counts(10, 3).tolist()
    [4, 4, 2]
    """
    n = check_positive_int("n", n, minimum=4)
    k = check_positive_int("k", k, minimum=2)
    if 2 * (k - 1) > n:
        raise ConfigurationError(f"cannot host a planted tie with n={n}, k={k}")
    if k == 2:
        if n % 2:
            raise ConfigurationError(f"an exact 2-color tie needs even n, got n={n}")
        return np.array([n // 2, n // 2], dtype=np.int64)
    # Give the tail one node per color, then split the rest evenly on top.
    tail = np.ones(k - 2, dtype=np.int64)
    rest = n - int(tail.sum())
    top = rest // 2
    counts = np.concatenate([[top, rest - top], tail]).astype(np.int64)
    if counts[0] != counts[1]:
        # Odd remainder: move the spare node into the tail.
        counts[0] = counts[1] = top
        counts[-1] += rest - 2 * top
    if counts.size > 2 and counts[0] < counts[2:].max():
        # Tiny populations (e.g. n=4, k=3) cannot tie two colors at the
        # top without a tail color overtaking them.
        raise ConfigurationError(f"cannot host a planted tie with n={n}, k={k}")
    assert counts.sum() == n and counts[0] == counts[1] >= counts[2:].max(initial=0)
    return counts


def opinion_ramp_counts(n: int, exponent: float) -> np.ndarray:
    """Near-uniform counts over ``k = ceil(n^exponent)`` opinions.

    The many-opinions regime (``k = n^a`` for ``a in (0, 1)``): the
    plurality exists (leftover nodes land on color 0) but its support is
    a vanishing fraction of ``n``.

    >>> opinion_ramp_counts(100, 0.5).size
    10
    """
    n = check_positive_int("n", n, minimum=2)
    check_positive("exponent", exponent)
    if exponent >= 1.0:
        raise ConfigurationError(f"exponent must be < 1 (k < n), got {exponent}")
    k = max(2, math.ceil(n**exponent))
    counts = uniform_counts(n, k)
    if counts[0] == counts[1:].max():
        # Perfectly divisible: create a minimal strict plurality so the
        # plurality-won metric stays well defined.
        counts[0] += 1
        counts[-1] -= 1
    return counts


def _bfs_order(graph, seed: int, rng: np.random.Generator) -> np.ndarray:
    """Every node in BFS order from ``seed`` (deterministic per layer).

    Layers are expanded in sorted id order, so the order is a pure
    function of (graph, seed). On the complete graph — where every
    subset is a ball — the "BFS order" is a uniform permutation drawn
    from ``rng``, making clustered placement degenerate gracefully to
    the uniform shuffle it cannot improve upon there. Unreachable nodes
    (disconnected graphs) are appended in id order.
    """
    indptr = getattr(graph, "indptr", None)
    n = len(graph)
    if indptr is None:
        order = np.arange(n, dtype=np.int64)
        rng.shuffle(order)
        return order
    indices = graph.indices
    visited = np.zeros(n, dtype=bool)
    visited[seed] = True
    order = [np.array([seed], dtype=np.int64)]
    frontier = order[0]
    total = 1
    while frontier.size and total < n:
        parts = [indices[indptr[v] : indptr[v + 1]] for v in frontier]
        reached = np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
        fresh = np.unique(reached[~visited[reached]])
        if not fresh.size:
            break
        visited[fresh] = True
        order.append(fresh)
        frontier = fresh
        total += fresh.size
    if total < n:
        order.append(np.nonzero(~visited)[0].astype(np.int64))
    return np.concatenate(order)


def clustered_assignment(
    graph, counts: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Per-node colors with the plurality confined to one graph ball.

    The plurality color (index 0) occupies the ``counts[0]`` nodes
    closest to a uniformly drawn seed node in BFS order — one cluster
    of a two-tier graph, one geographic ball of a spatial graph — and
    the remaining colors are shuffled uniformly over the rest.  This is
    the placement adversary counts cannot express: the initial bias is
    globally identical to the canonical workload, but locally the
    plurality is a monoculture island whose information must *travel*
    to win, instead of being sampled everywhere immediately.

    Consumed through the per-node engines' ``assignment=`` parameter;
    :func:`repro.workloads.opinions.validate_assignment` guards that
    the placement realizes exactly ``counts``.
    """
    counts = validate_counts(counts)
    n = int(counts.sum())
    if len(graph) != n:
        raise ConfigurationError(
            f"graph has {len(graph)} nodes but counts sum to {n}"
        )
    seed = int(rng.integers(n))
    order = _bfs_order(graph, seed, rng)
    assignment = np.empty(n, dtype=np.int64)
    ball = int(counts[0])
    assignment[order[:ball]] = 0
    rest = np.repeat(np.arange(1, counts.size, dtype=np.int64), counts[1:])
    rng.shuffle(rest)
    assignment[order[ball:]] = rest
    return assignment


#: Named initial-configuration families (the ``init=`` sweep axis).
_INITS = ("biased", "minimal", "tie", "ramp", "uniform", "clustered")


def init_names() -> list[str]:
    """All named initial configurations, sorted."""
    return sorted(_INITS)


def adversarial_counts(kind: str, n: int, k: int, alpha: float) -> np.ndarray:
    """Dispatch a named initial configuration to its builder.

    ``alpha`` is only consulted by ``biased`` and ``clustered``;
    ``ramp`` reinterprets ``k`` as ``10 * a`` — e.g. ``k=5`` means
    ``k = ceil(n^0.5)`` — so the axis stays a JSON scalar in sweep
    grids. ``clustered`` uses the canonical biased *counts*; the
    topology-correlated part is the placement, built separately by
    :func:`clustered_assignment` once the run's graph exists.
    """
    if kind in ("biased", "clustered"):
        return biased_counts(n, k, alpha)
    if kind == "minimal":
        return minimal_bias_counts(n, k)
    if kind == "tie":
        return planted_tie_counts(n, k)
    if kind == "ramp":
        return opinion_ramp_counts(n, k / 10.0)
    if kind == "uniform":
        return uniform_counts(n, k)
    raise ConfigurationError(
        f"unknown initial configuration {kind!r}; available: {', '.join(init_names())}"
    )
