"""Communication substrates beyond the complete graph.

Every graph here satisfies the :class:`~repro.engine.network.CompleteGraph`
sampling contract — ``sample_neighbor`` / ``sample_neighbors`` /
``sample_uniform`` / ``neighbor_pool`` / ``len`` / ``in`` — so any
engine-driven protocol runs on any of them through its ``graph=``
parameter.

Sparse topologies are stored as CSR-style flat adjacency (``indptr`` /
``indices`` numpy arrays, plus plain-list mirrors for the event hot
path). The per-event sampler is *pooled* per degree class, mirroring
the PR 1 draw-pool design: regular graphs draw offsets from one
:class:`~repro.engine.rng.IntegerPool` over the common degree, and
irregular graphs scale one :class:`~repro.engine.rng.UniformPool` draw
by the caller's degree — one vectorized numpy call per few thousand
samples either way, never a per-call ``rng.choice``.

Random constructions draw from whatever generator they are given;
experiments pass :class:`~repro.engine.rng.RngRegistry` substreams so a
graph is a pure function of ``(seed, stream name, parameters)`` —
bit-identical regardless of worker count or construction order.

Construction notes (documented approximations, both standard for
simulation studies):

* :class:`RandomRegularGraph` uses the configuration-model pairing with
  a vectorized swap-repair pass for self-loops/multi-edges instead of
  whole-matching rejection (whose acceptance probability decays like
  ``exp(-(d^2-1)/4)``).
* :class:`ErdosRenyiGraph` draws ``m ~ Binomial(C(n,2), p)`` and then
  ``m`` distinct edges by batched sampling with de-duplication — exact
  ``G(n, p)`` up to the uniformity of the top-up subsample.
"""

from __future__ import annotations

import math

import numpy as np

from repro.engine.network import CompleteGraph
from repro.engine.rng import IntegerPool, UniformPool
from repro.errors import ConfigurationError, SimulationError
from repro.util.validation import check_positive, check_positive_int

__all__ = [
    "SparseGraph",
    "RandomRegularGraph",
    "ErdosRenyiGraph",
    "RandomGeometricGraph",
    "PreferentialAttachmentGraph",
    "RingLattice",
    "TorusGrid",
    "ClusterGraph",
    "assign_uniform_weights",
    "build_graph",
    "graph_names",
    "weight_names",
    "GRAPH_BUILDERS",
]

#: Construction retries before a connectivity-constrained random graph
#: gives up (each retry consumes fresh draws from the same generator).
MAX_CONNECT_ATTEMPTS = 64


class _RegularNeighborPool:
    """Pooled sampler for graphs whose nodes share one degree ``d``.

    Draws offsets in ``[0, d)`` from one :class:`IntegerPool` (one
    vectorized refill per block) and resolves them through the flat
    adjacency list.
    """

    __slots__ = ("_pool", "_indices", "_degree", "_weights")

    def __init__(self, graph: "SparseGraph", rng: np.random.Generator, *, block=None):
        degree = graph._degrees_list[0]
        self._pool = IntegerPool(rng, degree, block=block)
        self._indices = graph._indices_list
        self._degree = degree
        self._weights = graph._weights_list

    def sample(self, node: int) -> int:
        return self._indices[node * self._degree + self._pool()]

    def sample_scaled(self, node: int) -> tuple[int, float]:
        """One neighbor plus the edge's latency multiplier."""
        slot = node * self._degree + self._pool()
        weights = self._weights
        return self._indices[slot], 1.0 if weights is None else weights[slot]


#: Neighbor ids a :class:`_GeneralNeighborPool` pre-resolves per node and
#: refill: one uniform-block draw + one fancy-index CSR gather covers the
#: node's next ``NEIGHBOR_BLOCK`` samples, so the steady-state call is a
#: plain list index (no per-call arithmetic or numpy work at all).
NEIGHBOR_BLOCK = 32


class _GeneralNeighborPool:
    """Pooled sampler for graphs with heterogeneous degrees.

    Samples are pre-resolved in per-node blocks: a refill takes
    :data:`NEIGHBOR_BLOCK` uniforms straight from the shared pool's
    array buffer (zero-copy), scales them by the node's degree, and
    gathers the neighbor ids through the CSR row with one fancy index.
    The per-call cost is then two list indexings — the same as the
    regular-graph fast path — instead of a Python-level
    ``indices[indptr[v] + int(u * deg)]`` resolve per call.
    """

    __slots__ = ("_pool", "_graph", "_degrees", "_bufs", "_pos", "_wbufs")

    def __init__(self, graph: "SparseGraph", rng: np.random.Generator, *, block=None):
        self._pool = UniformPool(rng, block=block)
        self._graph = graph
        self._degrees = graph._degrees_list
        self._bufs: list[list[int]] = [[]] * graph.n
        self._pos = [0] * graph.n
        self._wbufs: list[list[float]] | None = (
            None if graph.weights is None else [[]] * graph.n
        )

    def _refill(self, node: int) -> list[int]:
        degree = self._degrees[node]
        if not degree:
            raise SimulationError(f"node {node} is isolated; cannot sample a neighbor")
        graph = self._graph
        offsets = (self._pool.take_array(NEIGHBOR_BLOCK) * degree).astype(np.int64)
        start, stop = graph.indptr[node], graph.indptr[node + 1]
        buf = graph.indices[start:stop][offsets].tolist()
        self._bufs[node] = buf
        self._pos[node] = 1
        if self._wbufs is not None:
            self._wbufs[node] = graph.weights[start:stop][offsets].tolist()
        return buf

    def sample(self, node: int) -> int:
        pos_list = self._pos
        pos = pos_list[node]
        buf = self._bufs[node]
        if pos < len(buf):
            pos_list[node] = pos + 1
            return buf[pos]
        return self._refill(node)[0]

    def sample_scaled(self, node: int) -> tuple[int, float]:
        """One neighbor plus the edge's latency multiplier."""
        pos = self._pos[node]
        buf = self._bufs[node]
        if pos >= len(buf):
            buf = self._refill(node)
            pos = 0
        self._pos[node] = pos + 1
        return buf[pos], 1.0 if self._wbufs is None else self._wbufs[node][pos]


class SparseGraph:
    """A fixed undirected graph in CSR form with pooled uniform sampling.

    Parameters
    ----------
    n:
        Number of nodes (addresses ``0 .. n-1``).
    indptr, indices:
        Flat CSR adjacency: the neighbors of ``v`` are
        ``indices[indptr[v]:indptr[v+1]]``. Neighbor lists must not
        contain ``v`` itself (no self-loops) or duplicates.
    weights:
        Optional per-edge latency multipliers aligned with ``indices``
        (one entry per *directed* CSR entry; undirected edges carry the
        same value in both directions). Consumed by the weighted
        neighbor-pool seam (:meth:`neighbor_pool` samplers'
        ``sample_scaled``) — the edge-latency model of Bankhamer et al.
        (arXiv:1806.02596), where opening a channel over a slow edge
        takes proportionally longer.
    """

    def __init__(
        self,
        n: int,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray | None = None,
    ):
        self.n = check_positive_int("n", n, minimum=2)
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        if self.indptr.size != n + 1 or self.indptr[0] != 0 or self.indptr[-1] != self.indices.size:
            raise ConfigurationError("malformed CSR adjacency (indptr does not cover indices)")
        self.degrees = np.diff(self.indptr)
        self._offsets = self.indptr[:-1]
        # Plain-list mirrors: the per-event samplers index these with
        # scalar Python ints, avoiding a numpy round-trip per event.
        self._indptr_list: list[int] = self.indptr.tolist()
        self._indices_list: list[int] = self.indices.tolist()
        self._degrees_list: list[int] = self.degrees.tolist()
        self.weights: np.ndarray | None = None
        self._weights_list: list[float] | None = None
        if weights is not None:
            self.set_weights(weights)

    def set_weights(self, weights: np.ndarray) -> "SparseGraph":
        """Attach per-edge latency multipliers (aligned with ``indices``)."""
        weights = np.asarray(weights, dtype=float)
        if weights.shape != self.indices.shape:
            raise ConfigurationError(
                f"weights shape {weights.shape} does not match indices {self.indices.shape}"
            )
        if not np.isfinite(weights).all() or (weights <= 0).any():
            raise ConfigurationError("edge weights must be finite and positive")
        self.weights = weights
        self._weights_list = weights.tolist()
        return self

    @property
    def is_weighted(self) -> bool:
        """True when per-edge latency multipliers are attached."""
        return self.weights is not None

    # -- CompleteGraph sampling contract --------------------------------
    def sample_neighbor(self, node: int, rng: np.random.Generator) -> int:
        """One uniform neighbor of ``node`` (unpooled, for casual use)."""
        degree = self._degrees_list[node]
        if not degree:
            raise SimulationError(f"node {node} is isolated; cannot sample a neighbor")
        return self._indices_list[self._indptr_list[node] + int(rng.integers(degree))]

    def sample_neighbors(self, node: int, count: int, rng: np.random.Generator) -> list[int]:
        """``count`` independent uniform neighbors (with replacement)."""
        degree = self._degrees_list[node]
        if not degree:
            raise SimulationError(f"node {node} is isolated; cannot sample a neighbor")
        start = self._indptr_list[node]
        return [self._indices_list[start + int(d)] for d in rng.integers(degree, size=count)]

    def sample_uniform(self, rng: np.random.Generator) -> int:
        """A node chosen uniformly from the whole network (self allowed)."""
        return int(rng.integers(self.n))

    def neighbor_pool(self, rng: np.random.Generator, *, block: int | None = None):
        """Pooled per-call sampler; picks the degree-class implementation."""
        if self.is_regular:
            return _RegularNeighborPool(self, rng, block=block)
        return _GeneralNeighborPool(self, rng, block=block)

    def sample_neighbors_of(
        self, nodes: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """One uniform neighbor for each node in ``nodes`` (one gather).

        The population scheduler's per-block primitive: a single
        uniform vector scaled by the callers' degrees and resolved
        through the flat CSR adjacency. Requires minimum degree 1.
        """
        if self.min_degree < 1:
            raise SimulationError("graph has isolated nodes; batched sampling needs degree >= 1")
        nodes = np.asarray(nodes, dtype=np.int64)
        degrees = self.degrees[nodes]
        return self.indices[
            self._offsets[nodes] + (rng.random(nodes.size) * degrees).astype(np.int64)
        ]

    def sample_per_node(self, rng: np.random.Generator) -> np.ndarray:
        """One uniform neighbor for *every* node, in one batched draw.

        The synchronous engines' round primitive: a single uniform
        vector scaled by the per-node degrees and resolved through the
        flat CSR adjacency. Requires minimum degree 1.
        """
        if self.min_degree < 1:
            raise SimulationError("graph has isolated nodes; batched sampling needs degree >= 1")
        return self.indices[
            self._offsets + (rng.random(self.n) * self.degrees).astype(np.int64)
        ]

    # -- structure ------------------------------------------------------
    @property
    def edge_count(self) -> int:
        """Number of undirected edges."""
        return int(self.indices.size) // 2

    @property
    def min_degree(self) -> int:
        """Smallest node degree (0 means isolated nodes exist)."""
        return int(self.degrees.min()) if self.degrees.size else 0

    @property
    def is_regular(self) -> bool:
        """True when every node has the same (positive) degree."""
        degrees = self.degrees
        return bool(degrees.size and degrees[0] > 0 and (degrees == degrees[0]).all())

    def degree(self, node: int) -> int:
        """Degree of one node."""
        return self._degrees_list[node]

    def neighbors(self, node: int) -> np.ndarray:
        """The neighbor ids of ``node`` (CSR slice view)."""
        return self.indices[self.indptr[node] : self.indptr[node + 1]]

    def is_connected(self) -> bool:
        """BFS reachability of every node from node 0."""
        return _csr_connected(self.n, self.indptr, self.indices)

    def __contains__(self, node: int) -> bool:
        return 0 <= node < self.n

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(n={self.n}, edges={self.edge_count})"


def _csr_from_edges(n: int, u: np.ndarray, v: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Build deduplicated, sorted CSR arrays from undirected edge lists."""
    u = np.asarray(u, dtype=np.int64)
    v = np.asarray(v, dtype=np.int64)
    keep = u != v
    u, v = u[keep], v[keep]
    lo, hi = np.minimum(u, v), np.maximum(u, v)
    keys = np.unique(lo * n + hi)
    lo, hi = keys // n, keys % n
    heads = np.concatenate([lo, hi])
    tails = np.concatenate([hi, lo])
    order = np.lexsort((tails, heads))
    indices = tails[order]
    counts = np.bincount(heads, minlength=n)
    indptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
    return indptr, indices


def _csr_connected(n: int, indptr: np.ndarray, indices: np.ndarray) -> bool:
    """BFS reachability of every node from node 0 over raw CSR arrays."""
    visited = np.zeros(n, dtype=bool)
    visited[0] = True
    frontier = np.array([0], dtype=np.int64)
    while frontier.size:
        parts = [indices[indptr[v] : indptr[v + 1]] for v in frontier]
        reached = np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
        fresh = reached[~visited[reached]]
        if not fresh.size:
            break
        visited[fresh] = True
        frontier = np.unique(fresh)
    return bool(visited.all())


def _with_connectivity(build_csr, n: int, ensure_connected: bool, what: str) -> tuple:
    """Run ``build_csr() -> (indptr, indices, ...)`` until connected.

    Operates on raw CSR arrays so rejected attempts never pay for the
    :class:`SparseGraph` plain-list mirrors — those are built once, from
    the winning attempt.  Extra tuple elements (e.g. edge weights) pass
    through untouched.
    """
    if not ensure_connected:
        return build_csr()
    for _ in range(MAX_CONNECT_ATTEMPTS):
        result = build_csr()
        if _csr_connected(n, result[0], result[1]):
            return result
    raise SimulationError(
        f"could not draw a connected {what} in {MAX_CONNECT_ATTEMPTS} attempts; "
        "lower the connectivity requirement or raise the degree"
    )


class RandomRegularGraph(SparseGraph):
    """A random ``d``-regular graph via the repaired configuration model.

    ``n * d`` must be even and ``d < n``. The pairing of ``n*d`` stubs
    is drawn with one shuffle; self-loops and duplicate edges are then
    repaired by vectorized partner swaps (a bounded number of rounds),
    which is the standard practical substitute for whole-matching
    rejection.

    Parameters
    ----------
    n, d:
        Node count and common degree.
    rng:
        Drives the stub shuffle and repair swaps (pass an
        :class:`~repro.engine.rng.RngRegistry` substream for
        reproducible graphs).
    ensure_connected:
        Redraw (up to :data:`MAX_CONNECT_ATTEMPTS` times) until the
        graph is connected; for ``d >= 3`` random regular graphs are
        connected with high probability, so retries are rare.
    """

    def __init__(
        self,
        n: int,
        d: int,
        rng: np.random.Generator,
        *,
        ensure_connected: bool = True,
    ):
        n = check_positive_int("n", n, minimum=2)
        d = check_positive_int("d", d, minimum=1)
        if d >= n:
            raise ConfigurationError(f"degree d={d} needs at least n={d + 1} nodes, got n={n}")
        if (n * d) % 2:
            raise ConfigurationError(f"n*d must be even for a d-regular graph, got n={n}, d={d}")
        self.d = d

        def build_csr() -> tuple[np.ndarray, np.ndarray]:
            u, v = _regular_pairing(n, d, rng)
            return _csr_from_edges(n, u, v)

        indptr, indices = _with_connectivity(
            build_csr, n, ensure_connected, f"{d}-regular graph"
        )
        if not (np.diff(indptr) == d).all():
            raise SimulationError("configuration-model repair failed to restore regularity")
        super().__init__(n, indptr, indices)


def _regular_pairing(n: int, d: int, rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    """One repaired configuration-model pairing (u, v edge arrays)."""
    stubs = np.repeat(np.arange(n, dtype=np.int64), d)
    for _ in range(MAX_CONNECT_ATTEMPTS):
        rng.shuffle(stubs)
        u, v = stubs[0::2].copy(), stubs[1::2].copy()
        for _ in range(4 * MAX_CONNECT_ATTEMPTS):
            bad = _bad_pairs(n, u, v)
            if not bad.size:
                return u, v
            # Scalar swaps: a vectorized fancy-index swap can silently
            # drop stubs when two bad pairs draw the same partner, which
            # would break regularity. Bad pairs are O(d^2), so this loop
            # is cheap.
            partners = rng.integers(u.size, size=bad.size)
            for index, partner in zip(bad.tolist(), partners.tolist()):
                v[index], v[partner] = v[partner], v[index]
    raise SimulationError(
        f"could not repair a simple {d}-regular pairing for n={n}; "
        "this indicates d is too close to n"
    )


def _bad_pairs(n: int, u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Indices of pairs that are self-loops or non-first duplicates."""
    keys = np.minimum(u, v) * n + np.maximum(u, v)
    order = np.argsort(keys, kind="stable")
    dup_follow = np.zeros(keys.size, dtype=bool)
    dup_follow[order[1:]] = keys[order[1:]] == keys[order[:-1]]
    return np.nonzero(dup_follow | (u == v))[0]


class ErdosRenyiGraph(SparseGraph):
    """The binomial random graph ``G(n, p)``.

    Drawn as ``m ~ Binomial(C(n, 2), p)`` distinct uniform edges (the
    conditional law of ``G(n, p)`` given its edge count), with edges
    sampled in batches and de-duplicated.

    Parameters
    ----------
    n, p:
        Node count and edge probability.
    rng:
        Drives the edge-count and edge draws.
    ensure_connected:
        Redraw until connected (see :data:`MAX_CONNECT_ATTEMPTS`);
        requires ``p`` comfortably above the ``ln n / n`` threshold to
        succeed.
    """

    def __init__(
        self,
        n: int,
        p: float,
        rng: np.random.Generator,
        *,
        ensure_connected: bool = False,
    ):
        n = check_positive_int("n", n, minimum=2)
        if not 0.0 <= p <= 1.0:
            raise ConfigurationError(f"edge probability must be in [0, 1], got {p}")
        self.p = float(p)
        total = n * (n - 1) // 2

        def build_csr() -> tuple[np.ndarray, np.ndarray]:
            m = int(rng.binomial(total, p))
            u, v = _distinct_edges(n, m, rng)
            return _csr_from_edges(n, u, v)

        indptr, indices = _with_connectivity(
            build_csr, n, ensure_connected, f"G({n}, {p:g}) graph"
        )
        super().__init__(n, indptr, indices)


def _distinct_edges(n: int, m: int, rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    """``m`` distinct uniform node pairs as (u, v) arrays."""
    keys = np.empty(0, dtype=np.int64)
    while keys.size < m:
        need = m - keys.size
        u = rng.integers(n, size=need + need // 8 + 16)
        v = rng.integers(n - 1, size=u.size)
        v += v >= u
        fresh = np.minimum(u, v) * n + np.maximum(u, v)
        keys = np.unique(np.concatenate([keys, fresh]))
    if keys.size > m:
        keys = keys[rng.permutation(keys.size)[:m]]
    return keys // n, keys % n


class RandomGeometricGraph(SparseGraph):
    """The random geometric graph: points in the unit square, radius edges.

    ``n`` points are dropped uniformly in ``[0, 1]^2`` and two nodes are
    adjacent iff their Euclidean distance is at most ``radius`` — the
    canonical *spatial* substrate (sensor fields, proximity networks),
    where consensus must travel geographically rather than hop across a
    well-mixed population.  Related work (arXiv:2103.10366) shows
    undecided-state dynamics diverge sharply on such sparse/spatial
    graphs versus ``K_n``; this class makes that regime sweepable.

    With ``weighted=True`` every edge carries its length (normalized to
    mean 1) as a latency multiplier — the heterogeneous-substrate model
    of Bankhamer et al. (arXiv:1806.02596): longer links are slower.
    Pair distances are computed in vectorized row blocks (pure numpy,
    ``O(n^2)`` time but ``O(n * block)`` memory), fine for the ``n`` up
    to a few 10^4 the per-node engines target.

    Parameters
    ----------
    n, radius:
        Node count and connection radius.
    rng:
        Drives the point cloud (pass an
        :class:`~repro.engine.rng.RngRegistry` substream).
    ensure_connected:
        Redraw the cloud until the graph is connected; needs ``radius``
        comfortably above the ``sqrt(ln n / (pi n))`` threshold.
    weighted:
        Attach edge lengths (mean-normalized) as latency multipliers.
    """

    def __init__(
        self,
        n: int,
        radius: float,
        rng: np.random.Generator,
        *,
        ensure_connected: bool = True,
        weighted: bool = False,
    ):
        n = check_positive_int("n", n, minimum=2)
        if not 0.0 < radius <= math.sqrt(2.0):
            raise ConfigurationError(
                f"geometric radius must be in (0, sqrt(2)], got {radius}"
            )
        self.radius = float(radius)

        def build_csr() -> tuple[np.ndarray, np.ndarray, np.ndarray]:
            points = rng.random((n, 2))
            u, v, dist = _radius_pairs(points, self.radius)
            self.points = points
            return (*_csr_from_edges(n, u, v), _mirror_edge_values(n, u, v, dist))

        indptr, indices, lengths = _with_connectivity(
            build_csr, n, ensure_connected, f"geometric graph (r={radius:g})"
        )
        super().__init__(n, indptr, indices)
        if weighted:
            if not lengths.size:
                raise ConfigurationError("cannot weight a graph with no edges")
            # Mean-1 normalization keeps weighted runs comparable to
            # unweighted ones (same average channel latency); a floor
            # keeps coincident points from creating zero-latency edges.
            self.set_weights(np.maximum(lengths / lengths.mean(), 0.05))

    @classmethod
    def from_expected_degree(
        cls,
        n: int,
        degree: float,
        rng: np.random.Generator,
        *,
        ensure_connected: bool = True,
        weighted: bool = False,
    ) -> "RandomGeometricGraph":
        """Radius from a target mean degree: ``E[deg] ≈ (n-1) π r²``.

        Boundary effects make the realized mean degree a little lower;
        the sweep axis is a target, not a guarantee (same contract as
        the ``gnp`` builder's expected degree).
        """
        check_positive("degree", degree)
        radius = min(math.sqrt(2.0), math.sqrt(float(degree) / (math.pi * max(1, n - 1))))
        return cls(n, radius, rng, ensure_connected=ensure_connected, weighted=weighted)


def _radius_pairs(
    points: np.ndarray, radius: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """All index pairs within ``radius`` plus their distances.

    Vectorized block sweep over the upper triangle: one ``(block, n)``
    distance matrix at a time, so memory stays bounded while every
    comparison is a numpy primitive.
    """
    n = points.shape[0]
    block = max(1, (1 << 22) // max(1, n))
    r2 = radius * radius
    us, vs, ds = [], [], []
    for start in range(0, n, block):
        stop = min(n, start + block)
        diff = points[start:stop, None, :] - points[None, :, :]
        dist2 = np.einsum("ijk,ijk->ij", diff, diff)
        rows, cols = np.nonzero(dist2 <= r2)
        keep = start + rows < cols  # upper triangle only (u < v)
        if keep.any():
            rows, cols = rows[keep], cols[keep]
            us.append(start + rows)
            vs.append(cols)
            ds.append(np.sqrt(dist2[rows, cols]))
    if not us:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), np.empty(0)
    return np.concatenate(us), np.concatenate(vs), np.concatenate(ds)


def _mirror_edge_values(
    n: int, u: np.ndarray, v: np.ndarray, values: np.ndarray
) -> np.ndarray:
    """Per-undirected-edge values mapped onto CSR (directed) entry order.

    ``(u, v)`` must already be unique upper-triangle pairs; the result
    is aligned with the ``indices`` array :func:`_csr_from_edges`
    produces for the same edge list (lexsorted by head then tail), with
    each edge's value appearing in both directions.
    """
    if not u.size:
        return np.empty(0)
    heads = np.concatenate([u, v])
    tails = np.concatenate([v, u])
    both = np.concatenate([values, values])
    order = np.lexsort((tails, heads))
    return both[order]


class PreferentialAttachmentGraph(SparseGraph):
    """Barabási–Albert preferential attachment (heavy-tailed degrees).

    Nodes arrive one at a time and attach ``m`` edges to distinct
    existing nodes, chosen with probability proportional to current
    degree (the repeated-endpoints list trick).  Node ``m`` connects to
    all of ``0 .. m-1``, so the graph is connected by construction;
    every *arriving* node has degree at least ``m`` (the ``m`` seed
    nodes start at degree 1 and only grow if chosen).  The degree law
    has the classic ``deg^-3`` tail — hubs that a uniform-contact
    analysis on ``K_n`` never sees.
    """

    def __init__(self, n: int, m: int, rng: np.random.Generator):
        n = check_positive_int("n", n, minimum=3)
        m = check_positive_int("m", m, minimum=1)
        if m >= n:
            raise ConfigurationError(f"attachment count m={m} needs n > m, got n={n}")
        self.m = m
        edge_u = np.empty((n - m) * m, dtype=np.int64)
        edge_v = np.empty((n - m) * m, dtype=np.int64)
        # Every edge contributes both endpoints to the repeated list, so
        # drawing a uniform entry is exactly degree-proportional.
        repeated: list[int] = []
        filled = 0
        for node in range(m, n):
            if node == m:
                chosen = list(range(m))
            else:
                chosen_set: set[int] = set()
                need = m
                while need:
                    draws = rng.integers(len(repeated), size=2 * need)
                    for draw in draws.tolist():
                        target = repeated[draw]
                        if target not in chosen_set:
                            chosen_set.add(target)
                            need -= 1
                            if not need:
                                break
                chosen = sorted(chosen_set)
            for target in chosen:
                edge_u[filled] = node
                edge_v[filled] = target
                filled += 1
                repeated.append(node)
                repeated.append(target)
        super().__init__(n, *_csr_from_edges(n, edge_u, edge_v))


class RingLattice(SparseGraph):
    """The circulant ring: node ``v`` connects to ``v ± 1 .. v ± radius``.

    Deterministic (no randomness consumed); degree ``2 * radius``. The
    slowest substrate in the suite — consensus information travels at
    diameter speed ``n / (2 radius)``.
    """

    def __init__(self, n: int, radius: int = 1):
        n = check_positive_int("n", n, minimum=3)
        radius = check_positive_int("radius", radius, minimum=1)
        if 2 * radius >= n:
            raise ConfigurationError(f"ring radius {radius} too large for n={n}")
        self.radius = radius
        nodes = np.arange(n, dtype=np.int64)
        offsets = np.arange(1, radius + 1, dtype=np.int64)
        u = np.repeat(nodes, radius)
        v = (u + np.tile(offsets, n)) % n
        super().__init__(n, *_csr_from_edges(n, u, v))


class TorusGrid(SparseGraph):
    """The 4-regular two-dimensional torus lattice ``rows × cols``.

    Deterministic; both dimensions must be at least 3 so wrap-around
    edges stay simple.
    """

    def __init__(self, rows: int, cols: int):
        rows = check_positive_int("rows", rows, minimum=3)
        cols = check_positive_int("cols", cols, minimum=3)
        self.rows, self.cols = rows, cols
        n = rows * cols
        nodes = np.arange(n, dtype=np.int64)
        r, c = nodes // cols, nodes % cols
        right = r * cols + (c + 1) % cols
        down = ((r + 1) % rows) * cols + c
        u = np.concatenate([nodes, nodes])
        v = np.concatenate([right, down])
        super().__init__(n, *_csr_from_edges(n, u, v))

    @classmethod
    def near_square(cls, n: int) -> "TorusGrid":
        """The most-square ``rows × cols = n`` factorization (rows >= 3)."""
        n = check_positive_int("n", n, minimum=9)
        rows = int(math.isqrt(n))
        while rows >= 3 and n % rows:
            rows -= 1
        if rows < 3 or n // rows < 3:
            raise ConfigurationError(f"n={n} has no torus factorization with both sides >= 3")
        return cls(rows, n // rows)


class ClusterGraph(SparseGraph):
    """Two-tier topology: dense clusters joined by sparse random bridges.

    Nodes are partitioned into ``clusters`` near-equal contiguous
    groups; each group is a clique, and every node additionally draws
    ``bridges_per_node`` uniform contacts outside its own cluster. The
    substrate mirrors the paper's Section 4 world view (well-mixed
    clusters, expensive inter-cluster communication).
    """

    def __init__(
        self,
        n: int,
        clusters: int,
        rng: np.random.Generator,
        *,
        bridges_per_node: int = 1,
    ):
        n = check_positive_int("n", n, minimum=4)
        clusters = check_positive_int("clusters", clusters, minimum=2)
        bridges_per_node = check_positive_int("bridges_per_node", bridges_per_node, minimum=1)
        if clusters * 2 > n:
            raise ConfigurationError(f"need clusters at size >= 2, got n={n}, clusters={clusters}")
        self.clusters = clusters
        sizes = np.full(clusters, n // clusters, dtype=np.int64)
        sizes[: n % clusters] += 1
        starts = np.concatenate([[0], np.cumsum(sizes)])
        edge_u, edge_v = [], []
        for c in range(clusters):
            lo, size = int(starts[c]), int(sizes[c])
            iu, iv = np.triu_indices(size, k=1)
            edge_u.append(iu + lo)
            edge_v.append(iv + lo)
        # Bridges: per node, uniform contacts outside the own (contiguous)
        # cluster block via the shift trick over n - own_cluster_size ids.
        nodes = np.arange(n, dtype=np.int64)
        cluster_of = np.repeat(np.arange(clusters), sizes)
        own_start = starts[cluster_of]
        own_size = sizes[cluster_of]
        for _ in range(bridges_per_node):
            draw = (rng.random(n) * (n - own_size)).astype(np.int64)
            target = np.where(draw < own_start, draw, draw + own_size)
            edge_u.append(nodes)
            edge_v.append(target)
        u = np.concatenate(edge_u)
        v = np.concatenate(edge_v)
        super().__init__(n, *_csr_from_edges(n, u, v))


# --------------------------------------------------------------------------
# Edge-weight attachment (the heterogeneous-latency seam).


def assign_uniform_weights(
    graph: SparseGraph,
    rng: np.random.Generator,
    *,
    low: float = 0.25,
    high: float = 1.75,
) -> SparseGraph:
    """Attach iid ``Uniform[low, high]`` latency multipliers per edge.

    One draw per *undirected* edge (mirrored to both CSR directions),
    in canonical sorted-edge order — a pure function of the generator
    state and the graph, bit-identical across worker processes.  The
    default range has mean 1, keeping weighted and unweighted runs
    comparable in average channel latency.
    """
    if low <= 0 or high < low:
        raise ConfigurationError(f"need 0 < low <= high, got [{low}, {high}]")
    keys = np.minimum(graph.indices, _csr_heads(graph)) * graph.n + np.maximum(
        graph.indices, _csr_heads(graph)
    )
    unique_keys, inverse = np.unique(keys, return_inverse=True)
    per_edge = rng.uniform(low, high, size=unique_keys.size)
    return graph.set_weights(per_edge[inverse])


def _csr_heads(graph: SparseGraph) -> np.ndarray:
    """The head (owning) node of every directed CSR entry."""
    return np.repeat(np.arange(graph.n, dtype=np.int64), graph.degrees)


# --------------------------------------------------------------------------
# Named builders (the sweep/CLI integration point).


def _build_complete(n, rng, *, degree, clusters, ensure_connected, weights):
    if weights != "none":
        raise ConfigurationError(
            "the complete graph has no edge list to weight; use a sparse topology"
        )
    return CompleteGraph(n)


def _build_regular(n, rng, *, degree, clusters, ensure_connected, weights):
    # No silent degree adjustment: an odd n*d raises (in the
    # constructor) rather than building a graph the swept 'degree'
    # parameter would misreport.
    graph = RandomRegularGraph(n, int(degree), rng, ensure_connected=ensure_connected)
    return _apply_weights(graph, rng, weights, "regular")


def _build_gnp(n, rng, *, degree, clusters, ensure_connected, weights):
    p = min(1.0, float(degree) / (n - 1))
    graph = ErdosRenyiGraph(n, p, rng, ensure_connected=ensure_connected)
    return _apply_weights(graph, rng, weights, "gnp")


def _build_geometric(n, rng, *, degree, clusters, ensure_connected, weights):
    graph = RandomGeometricGraph.from_expected_degree(
        n, degree, rng, ensure_connected=ensure_connected, weighted=(weights == "distance")
    )
    if weights == "distance":
        return graph
    return _apply_weights(graph, rng, weights, "geometric")


def _build_preferential(n, rng, *, degree, clusters, ensure_connected, weights):
    graph = PreferentialAttachmentGraph(n, max(1, int(round(degree / 2))), rng)
    return _apply_weights(graph, rng, weights, "preferential")


def _build_ring(n, rng, *, degree, clusters, ensure_connected, weights):
    graph = RingLattice(n, radius=max(1, int(degree) // 2))
    return _apply_weights(graph, rng, weights, "ring")


def _build_torus(n, rng, *, degree, clusters, ensure_connected, weights):
    graph = TorusGrid.near_square(n)
    return _apply_weights(graph, rng, weights, "torus")


def _build_cluster(n, rng, *, degree, clusters, ensure_connected, weights):
    graph = ClusterGraph(n, int(clusters), rng)
    return _apply_weights(graph, rng, weights, "cluster")


def _apply_weights(graph: SparseGraph, rng, weights: str, name: str) -> SparseGraph:
    if weights == "none":
        return graph
    if weights == "uniform":
        return assign_uniform_weights(graph, rng)
    supported = ["none", "uniform"] + (["distance"] if name == "geometric" else [])
    raise ConfigurationError(
        f"unknown weights {weights!r} for topology {name!r}; available: "
        + ", ".join(supported)
    )


GRAPH_BUILDERS = {
    "complete": _build_complete,
    "regular": _build_regular,
    "gnp": _build_gnp,
    "geometric": _build_geometric,
    "preferential": _build_preferential,
    "ring": _build_ring,
    "torus": _build_torus,
    "cluster": _build_cluster,
}


def graph_names() -> list[str]:
    """All named topologies, sorted (the ``topology=`` sweep axis)."""
    return sorted(GRAPH_BUILDERS)


def weight_names() -> list[str]:
    """Named edge-weight laws (the ``weights=`` sweep axis)."""
    return ["distance", "none", "uniform"]


def build_graph(
    name: str,
    n: int,
    rng: np.random.Generator,
    *,
    degree: float = 8,
    clusters: int = 8,
    ensure_connected: bool = True,
    weights: str = "none",
):
    """Build a named topology from scalar parameters.

    ``degree`` is interpreted per family: exact degree for ``regular``,
    expected degree for ``gnp`` (``p = degree / (n - 1)``) and
    ``geometric`` (radius solved from ``(n-1) π r² = degree``), twice
    the attachment count for ``preferential`` (``m = degree / 2``), and
    ``2 * radius`` for ``ring``; ``torus`` and ``complete`` ignore it.
    ``clusters`` only applies to the ``cluster`` topology.  ``weights``
    attaches per-edge latency multipliers: ``"uniform"`` (iid mean-1,
    any sparse topology) or ``"distance"`` (edge length, ``geometric``
    only). Building ``complete`` consumes no randomness, which keeps
    the default sweep path bit-identical to the pre-scenario engine.
    """
    try:
        builder = GRAPH_BUILDERS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown topology {name!r}; available: {', '.join(graph_names())}"
        ) from None
    return builder(
        n,
        rng,
        degree=degree,
        clusters=clusters,
        ensure_connected=ensure_connected,
        weights=weights,
    )
