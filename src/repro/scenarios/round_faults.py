"""Round-level fault models for the synchronous-round engines.

The event-stream faults in :mod:`repro.scenarios.faults` wrap a
:class:`~repro.engine.simulator.Simulator`'s scheduling methods — a
seam that only exists for the event-driven protocols.  The synchronous
engines (:mod:`repro.core.synchronous`), the opinion-dynamics runner
(:mod:`repro.baselines.base`), and the population-protocol scheduler
(:mod:`repro.baselines.population`) have no event stream: their unit of
progress is a *round* (or, for population protocols, a block of
pairwise interactions).  This module gives them the same adversity axes
at round granularity:

* **message loss** (iid or bursty) — a node whose round exchange is
  lost learns nothing and keeps its state, exactly the "failed channel:
  give up the cycle" semantics of the event layer.  Loss is drawn as
  one vectorized boolean mask per round over the contact matrix, never
  as a per-node Python transform.
* **crash/rejoin churn** — a Poisson stream of crashes; a crashed node
  skips rounds (its state stays readable by its neighbors, matching the
  event engines where in-flight contacts still read a crashed node's
  memory) and rejoins after an ``Exp(mean_downtime)`` outage with its
  protocol state *reset* (the engines decide what reset means: the
  generation protocol returns the node to generation 0 with its color
  kept — the same rule :class:`repro.scenarios.faults.ProtocolAdapter`
  applies).
* **stragglers** — a fixed random subset whose members only *act* in a
  ``1/slowdown`` fraction of rounds (a round-skip mask).  In
  expectation this matches the event layer's delay multiplication: a
  node whose cycles take ``slowdown`` times longer completes a
  ``1/slowdown`` fraction of the rounds everyone else does.

Two consumption surfaces cover the two engine families:

:meth:`RoundFaults.begin_round`
    Per-node engines.  Returns an *active* boolean mask (``True`` =
    the node performs its update this round) plus the ids rejoining
    this round (state-reset hook).  Inactive nodes keep their state
    but remain sampleable as contacts.
:meth:`RoundFaults.count_round`
    Count-matrix (mean-field multinomial) engines, which have no node
    identities.  Loss and straggling become a scalar *participation
    probability* ``q`` — each node independently acts with probability
    ``q``, so a group's outcome stays multinomial with its movement
    probabilities thinned by ``q`` — and churn is tracked as per-category
    down-counts drawn without replacement from the live matrix.

``build_round_faults`` accepts exactly the knobs of
:func:`repro.scenarios.faults.build_faults` (``drop`` / ``drop_model`` /
``churn`` / ``churn_downtime`` / ``stragglers`` /
``straggler_slowdown``), so every sweep target exposes one fault
vocabulary regardless of which engine family runs underneath; the
bursty mapping shares the Gilbert–Elliott parameter solver, so matched
``drop`` rates mean matched stationary loss on both seams (pinned by
``tests/scenarios/test_cross_engine_faults.py``).

All randomness comes from the single generator handed to
:func:`prepare_round_faults` — one vectorized draw per model per round.
"""

from __future__ import annotations

import heapq
from typing import Sequence

import numpy as np

from repro.engine.tracing import NULL_TRACER
from repro.errors import ConfigurationError
from repro.scenarios.faults import gilbert_elliott_params, fault_model_names
from repro.util.validation import check_positive

__all__ = [
    "RoundFaultModel",
    "RoundIidLoss",
    "RoundBurstyLoss",
    "RoundStragglers",
    "RoundChurn",
    "RoundCrashAtTimes",
    "RoundFaults",
    "prepare_round_faults",
    "build_round_faults",
]


class RoundFaultModel:
    """One composable per-round adversity source."""

    def install(self, wiring: "RoundFaults") -> None:
        """Bind to one wiring (n, generator, counters)."""

    def node_mask(self, now: float) -> np.ndarray | None:
        """Node-availability mask (churn/straggler models; ``None`` = all up)."""
        return None

    def round_mask(self, now: float) -> np.ndarray | None:
        """Participation mask for this round (``None`` = everyone acts).

        For node-availability models this is :meth:`node_mask`; loss
        models override it to express "this node's round exchange was
        lost".  The population scheduler composes :meth:`node_mask`
        and :meth:`loss_mask` separately (loss applies per interaction
        there, not per node-round), so a loss model must never also
        report a node mask — that would double-apply the rate.
        """
        return self.node_mask(now)

    def rejoined(self, now: float) -> np.ndarray | None:
        """Node ids rejoining this round (churn models only)."""
        return None

    def loss_mask(self, count: int) -> np.ndarray | None:
        """Delivery mask over ``count`` interactions (loss models only)."""
        return None

    def participation_probability(self, now: float) -> float:
        """Mean-field acting probability for count engines (advances state)."""
        return 1.0

    def count_step(
        self, now: float, alive: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray | None:
        """Churn hook for count engines: rejoined counts per category.

        ``alive`` is the engine's flattened category-count vector
        *including* currently-down nodes; the model keeps its own
        per-category down bookkeeping (see :attr:`down_counts`) and
        returns the counts rejoining this round (``None`` when nothing
        rejoins).
        """
        return None

    #: Per-category down counts (count engines); ``None`` = no churn.
    down_counts: np.ndarray | None = None

    #: Expected node-rounds this model suppressed on the count seam,
    #: where no masks are drawn (participation thinning instead) —
    #: folded into the model's drop/skip counters by :meth:`info` so
    #: count-engine records never read "fault-free" at nonzero knobs.
    count_seam_skips: float = 0.0

    def describe(self) -> str:
        return type(self).__name__

    def info(self) -> dict[str, float]:
        return {}


class RoundIidLoss(RoundFaultModel):
    """Each node's round exchange is lost independently with ``rate``.

    Matches the event layer's one-drop-draw-per-cycle semantics of
    :class:`repro.scenarios.faults.IidDrop` on exchanges: a lost round
    is a wasted cycle, not a corrupted one.
    """

    def __init__(self, rate: float):
        if not 0.0 <= rate < 1.0:
            raise ConfigurationError(f"drop rate must be in [0, 1), got {rate}")
        self.rate = float(rate)
        self.dropped = 0

    def install(self, wiring: "RoundFaults") -> None:
        self._rng = wiring.rng
        self._n = wiring.n

    def loss_mask(self, count: int) -> np.ndarray | None:
        if not self.rate:
            return None
        keep = self._rng.random(count) >= self.rate
        self.dropped += int(count - keep.sum())
        return keep

    def round_mask(self, now: float) -> np.ndarray | None:
        return self.loss_mask(self._n)

    def participation_probability(self, now: float) -> float:
        return 1.0 - self.rate

    def describe(self) -> str:
        return f"round iid loss p={self.rate:g}"

    def info(self) -> dict[str, float]:
        return {"round_dropped": float(self.dropped) + self.count_seam_skips}


class RoundBurstyLoss(RoundFaultModel):
    """Gilbert–Elliott loss with the channel state advancing per round.

    One global channel: a bad round hits the whole network at once.  The
    two-state chain has the same stationary law as the per-message
    event-layer channel, so the *marginal* loss rate matches
    :class:`repro.scenarios.faults.GilbertElliottDrop` built from the
    same knobs; burst lengths are measured in rounds here and in
    messages there.
    """

    def __init__(
        self,
        *,
        drop_good: float = 0.0,
        drop_bad: float = 0.9,
        to_bad: float = 0.05,
        to_good: float = 0.5,
    ):
        for name, value in (
            ("drop_good", drop_good),
            ("drop_bad", drop_bad),
            ("to_bad", to_bad),
            ("to_good", to_good),
        ):
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {value}")
        self.drop_good, self.drop_bad = float(drop_good), float(drop_bad)
        self.to_bad, self.to_good = float(to_bad), float(to_good)
        self.bad = False
        self.dropped = 0
        self.bursts = 0

    def install(self, wiring: "RoundFaults") -> None:
        self._rng = wiring.rng
        self._n = wiring.n

    def _advance(self) -> float:
        if self.bad:
            if self._rng.random() < self.to_good:
                self.bad = False
        elif self._rng.random() < self.to_bad:
            self.bad = True
            self.bursts += 1
        return self.drop_bad if self.bad else self.drop_good

    def loss_mask(self, count: int) -> np.ndarray | None:
        rate = self._advance()
        if not rate:
            return None
        keep = self._rng.random(count) >= rate
        self.dropped += int(count - keep.sum())
        return keep

    def round_mask(self, now: float) -> np.ndarray | None:
        return self.loss_mask(self._n)

    def participation_probability(self, now: float) -> float:
        return 1.0 - self._advance()

    def describe(self) -> str:
        return (
            f"round Gilbert-Elliott loss good={self.drop_good:g} bad={self.drop_bad:g} "
            f"(to_bad={self.to_bad:g}, to_good={self.to_good:g})"
        )

    def info(self) -> dict[str, float]:
        return {
            "ge_dropped": float(self.dropped) + self.count_seam_skips,
            "ge_bursts": float(self.bursts),
        }


class RoundStragglers(RoundFaultModel):
    """A fixed random subset that acts only every ``1/slowdown`` rounds."""

    def __init__(self, fraction: float, slowdown: float = 4.0):
        if not 0.0 <= fraction <= 1.0:
            raise ConfigurationError(f"straggler fraction must be in [0, 1], got {fraction}")
        self.fraction = float(fraction)
        self.slowdown = check_positive("slowdown", slowdown)
        self.count = 0
        self.skipped = 0

    def install(self, wiring: "RoundFaults") -> None:
        self._rng = wiring.rng
        self._slow = wiring.rng.random(wiring.n) < self.fraction
        self.count = int(self._slow.sum())

    def node_mask(self, now: float) -> np.ndarray | None:
        if not self.count or self.slowdown <= 1.0:
            return None
        act = ~self._slow | (self._rng.random(self._slow.size) < 1.0 / self.slowdown)
        self.skipped += int(act.size - act.sum())
        return act

    def participation_probability(self, now: float) -> float:
        # Mean-field: membership in the slow subset is re-drawn per
        # round (the count engines have no node identities to pin a
        # fixed subset to).  The per-round acting probability matches.
        if self.slowdown <= 1.0:
            return 1.0
        return 1.0 - self.fraction + self.fraction / self.slowdown

    def describe(self) -> str:
        return f"round stragglers {self.fraction:g} x{self.slowdown:g}"

    def info(self) -> dict[str, float]:
        return {"straggler_skips": float(self.skipped) + self.count_seam_skips}


class _RoundChurnBase(RoundFaultModel):
    """Shared crash bookkeeping for the per-node and count seams."""

    def __init__(self) -> None:
        self.crashes = 0
        self.rejoins = 0
        self._down_until: np.ndarray | None = None  # per-node seam
        self.down_counts: np.ndarray | None = None  # count seam
        self._rejoin_heap: list[tuple[float, int]] = []  # (time, category)

    def install(self, wiring: "RoundFaults") -> None:
        self._rng = wiring.rng
        self._n = wiring.n
        self._down_until = np.full(wiring.n, -np.inf)
        self._last_now = 0.0

    # -- per-node seam ---------------------------------------------------
    def rejoined(self, now: float) -> np.ndarray | None:
        down = self._down_until
        back = (down <= now) & (down > -np.inf)
        if not back.any():
            return None
        nodes = np.nonzero(back)[0]
        down[nodes] = -np.inf
        self.rejoins += len(nodes)
        return nodes

    def node_mask(self, now: float) -> np.ndarray | None:
        self._crash_step(now)
        down = self._down_until > now
        if not down.any():
            return None
        return ~down

    def _crash_step(self, now: float) -> None:
        """Draw this round's crash victims (per-node seam)."""
        raise NotImplementedError

    # -- count seam ------------------------------------------------------
    def count_step(
        self, now: float, alive: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray | None:
        if self.down_counts is None or self.down_counts.size != alive.size:
            resized = np.zeros(alive.size, dtype=np.int64)
            if self.down_counts is not None:
                resized[: self.down_counts.size] = self.down_counts
            self.down_counts = resized
        # Crashes are drawn BEFORE rejoins are popped.  ``alive`` is the
        # pre-rejoin category layout, and the engine relocates rejoined
        # counts (e.g. to generation 0) right after this call — drawing
        # victims first, from ``alive - down`` with the rejoiners still
        # in the down pool, guarantees ``down[c] + victims[c] <=
        # alive[c]`` per category, so the pool can never exceed the
        # post-relocation matrix entry (a phantom down node would later
        # rejoin out of a category that no longer holds it and drive a
        # count negative).
        self._count_crashes(now, alive, rng)
        return self._pop_rejoins(now)

    def _pop_rejoins(self, now: float) -> np.ndarray | None:
        heap = self._rejoin_heap
        if not heap or heap[0][0] > now:
            return None
        rejoined = np.zeros(self.down_counts.size, dtype=np.int64)
        while heap and heap[0][0] <= now:
            _, category = heapq.heappop(heap)
            rejoined[category] += 1
            self.down_counts[category] -= 1
            self.rejoins += 1
        return rejoined

    def _count_crashes(self, now: float, alive: np.ndarray, rng) -> None:
        raise NotImplementedError

    def _crash_categories(
        self, now: float, crashes: int, alive: np.ndarray, rng, downtimes: np.ndarray
    ) -> None:
        """Mark ``crashes`` uniform up-nodes down (count seam)."""
        up = np.maximum(alive - self.down_counts, 0)
        total = int(up.sum())
        crashes = min(crashes, total)
        if crashes <= 0:
            return
        victims = rng.multivariate_hypergeometric(up, crashes)
        self.down_counts += victims
        self.crashes += crashes
        index = 0
        for category in np.nonzero(victims)[0]:
            for _ in range(int(victims[category])):
                heapq.heappush(
                    self._rejoin_heap, (now + float(downtimes[index]), int(category))
                )
                index += 1

    def info(self) -> dict[str, float]:
        return {"crashes": float(self.crashes), "rejoins": float(self.rejoins)}


class RoundChurn(_RoundChurnBase):
    """Poisson churn at round granularity.

    Crashes arrive at network-wide intensity ``rate`` per simulated time
    unit (one synchronous round = one time unit; the population
    scheduler advances ``block / n`` parallel-time units per block), hit
    a uniform currently-up node, and last ``Exp(mean_downtime)``.
    """

    def __init__(self, rate: float, *, mean_downtime: float = 1.0):
        super().__init__()
        self.rate = check_positive("rate", rate)
        self.mean_downtime = check_positive("mean_downtime", mean_downtime)

    def _crash_step(self, now: float) -> None:
        dt = now - self._last_now
        self._last_now = now
        if dt <= 0:
            return
        crashes = int(self._rng.poisson(self.rate * dt))
        if not crashes:
            return
        down = self._down_until
        up = np.nonzero(down <= now)[0]
        crashes = min(crashes, up.size)
        if not crashes:
            return
        victims = self._rng.choice(up, size=crashes, replace=False)
        down[victims] = now + self._rng.exponential(self.mean_downtime, size=crashes)
        self.crashes += crashes

    def _count_crashes(self, now: float, alive: np.ndarray, rng) -> None:
        dt = now - self._last_now
        self._last_now = now
        if dt <= 0:
            return
        crashes = int(rng.poisson(self.rate * dt))
        if crashes:
            downtimes = rng.exponential(self.mean_downtime, size=crashes)
            self._crash_categories(now, crashes, alive, rng, downtimes)

    def describe(self) -> str:
        return f"round Poisson churn rate={self.rate:g} downtime={self.mean_downtime:g}"


class RoundCrashAtTimes(_RoundChurnBase):
    """Deterministic crash schedule ``{node: time}`` (per-node engines only).

    ``downtime=None`` crashes permanently.  The count engines have no
    node identities, so this model raises if used through
    :meth:`RoundFaults.count_round`.
    """

    def __init__(self, schedule: dict[int, float], *, downtime: float | None = None):
        super().__init__()
        if not schedule:
            raise ConfigurationError("crash schedule must name at least one node")
        self.schedule = {int(node): float(when) for node, when in schedule.items()}
        self.downtime = None if downtime is None else check_positive("downtime", downtime)

    def install(self, wiring: "RoundFaults") -> None:
        super().install(wiring)
        for node in self.schedule:
            if not 0 <= node < wiring.n:
                raise ConfigurationError(f"crash schedule names unknown node {node}")
        self._pending = sorted(self.schedule.items(), key=lambda item: item[1])

    def _crash_step(self, now: float) -> None:
        while self._pending and self._pending[0][1] <= now:
            node, _ = self._pending.pop(0)
            self._down_until[node] = (
                np.inf if self.downtime is None else now + self.downtime
            )
            self.crashes += 1

    def _count_crashes(self, now: float, alive: np.ndarray, rng) -> None:
        raise ConfigurationError(
            "RoundCrashAtTimes names node ids; the count-matrix engines are "
            "anonymous — use RoundChurn there instead"
        )

    def describe(self) -> str:
        tail = "permanently" if self.downtime is None else f"for {self.downtime:g}"
        return f"round crash {len(self.schedule)} node(s) {tail}"


class RoundFaults:
    """One wiring of round-fault models into a synchronous-round engine.

    Engines call exactly one of the two seams per round:

    * :meth:`begin_round` (per-node engines) — composes every model's
      participation mask and collects rejoining node ids;
    * :meth:`count_round` (count-matrix engines) — composes the scalar
      participation probability, advances churn down-counts, and
      reports rejoining counts per category.

    The population scheduler additionally thins its interaction blocks
    with :meth:`loss_mask` (loss applies per interaction there, not per
    node-round).
    """

    def __init__(self, n: int, models: Sequence[RoundFaultModel], rng: np.random.Generator):
        self.n = int(n)
        self.rng = rng
        self.models = list(models)
        self.skipped_node_rounds = 0
        #: Trace sink for aggregate per-round fault records; bound by
        #: the engine when it is handed both a tracer and this wiring.
        self.tracer = NULL_TRACER
        for model in self.models:
            model.install(self)

    # -- per-node seam ---------------------------------------------------
    def begin_round(self, now: float) -> tuple[np.ndarray | None, np.ndarray | None]:
        """``(active_mask, rejoined_nodes)`` for the round starting at ``now``.

        ``active_mask`` is ``None`` when every node acts; ``rejoined``
        is ``None`` when no node returns from an outage this round.
        Rejoins are reported *before* the crash/skip masks are drawn, so
        an engine resets a returning node's state in the same round the
        node resumes acting.
        """
        rejoined = None
        active = None
        for model in self.models:
            back = model.rejoined(now)
            if back is not None:
                rejoined = back if rejoined is None else np.union1d(rejoined, back)
            mask = model.round_mask(now)
            if mask is not None:
                active = mask if active is None else active & mask
        if active is not None:
            self.skipped_node_rounds += int(active.size - active.sum())
        if self.tracer.enabled_for("fault"):
            skipped = 0 if active is None else int(active.size - active.sum())
            back = 0 if rejoined is None else int(rejoined.size)
            if skipped or back:
                self.tracer.record(
                    "fault", now, event="round", skipped=skipped, rejoined=back
                )
        return active, rejoined

    # -- count seam ------------------------------------------------------
    def count_round(
        self, now: float, alive: np.ndarray
    ) -> tuple[float, np.ndarray | None, np.ndarray | None]:
        """``(participation, rejoined_counts, down_counts)`` for count engines.

        ``alive`` is the engine's flattened category-count vector
        including down nodes.  ``participation`` thins every group's
        movement probabilities; ``down_counts`` (``None`` = no churn)
        are per-category counts that must not act this round;
        ``rejoined_counts`` left the down pool this round and should be
        state-reset by the engine.
        """
        participation = 1.0
        rejoined = None
        down = None
        for model in self.models:
            back = model.count_step(now, alive, self.rng)
            if back is not None:
                rejoined = back if rejoined is None else rejoined + back
            if model.down_counts is not None:
                down = (
                    model.down_counts.copy()
                    if down is None
                    else down + model.down_counts
                )
            q = model.participation_probability(now)
            if q < 1.0:
                model.count_seam_skips = (
                    model.count_seam_skips + (1.0 - q) * float(alive.sum())
                )
            participation *= q
        if participation < 1.0:
            # The count seam never draws masks, so the skip counters
            # (wiring-level here, per-model above) record the
            # *expected* node-rounds lost (mean-field telemetry); the
            # mask seam records realized counts.
            self.skipped_node_rounds += (1.0 - participation) * float(alive.sum())
        if self.tracer.enabled_for("fault"):
            back = 0 if rejoined is None else int(rejoined.sum())
            parked = 0 if down is None else int(down.sum())
            if participation < 1.0 or back or parked:
                self.tracer.record(
                    "fault", now, event="count-round",
                    participation=participation, rejoined=back, down=parked,
                )
        return participation, rejoined, down

    # -- interaction seam (population scheduler) -------------------------
    def begin_block(self, now: float) -> tuple[np.ndarray | None, np.ndarray | None]:
        """``(node_mask, rejoined)`` for an interaction block.

        Like :meth:`begin_round` but composing only the node-*availability*
        masks (churn downs, straggler skips) — message loss is applied
        per interaction through :meth:`loss_mask` instead, so a single
        ``drop`` knob is charged exactly once per interaction, never
        once per endpoint and once per message.
        """
        rejoined = None
        available = None
        for model in self.models:
            back = model.rejoined(now)
            if back is not None:
                rejoined = back if rejoined is None else np.union1d(rejoined, back)
            mask = model.node_mask(now)
            if mask is not None:
                available = mask if available is None else available & mask
        if available is not None:
            self.skipped_node_rounds += int(available.size - available.sum())
        if self.tracer.enabled_for("fault"):
            skipped = 0 if available is None else int(available.size - available.sum())
            back = 0 if rejoined is None else int(rejoined.size)
            if skipped or back:
                self.tracer.record(
                    "fault", now, event="block", skipped=skipped, rejoined=back
                )
        return available, rejoined

    def loss_mask(self, count: int) -> np.ndarray | None:
        """Delivery mask over a block of ``count`` pairwise interactions.

        Drop counters tally drawn mask entries, so a consumer that
        abandons a block's tail (the population scheduler converging
        mid-block) overcounts the telemetry by at most one block — the
        delivered *physics* is exact either way.
        """
        keep = None
        for model in self.models:
            mask = model.loss_mask(count)
            if mask is not None:
                keep = mask if keep is None else keep & mask
        return keep

    # -- telemetry -------------------------------------------------------
    def info(self) -> dict[str, float]:
        """Flat counters for run records (prefixed ``fault_``)."""
        merged: dict[str, float] = {
            "fault_skipped_node_rounds": float(self.skipped_node_rounds),
        }
        for model in self.models:
            for key, value in model.info().items():
                merged[f"fault_{key}"] = merged.get(f"fault_{key}", 0.0) + value
        return merged

    def publish_metrics(self, metrics) -> None:
        """Harvest per-model drop/skip/crash/rejoin counters (epilogue).

        Same namespace as the event seam's
        :meth:`repro.scenarios.faults.FaultInjection.publish_metrics`:
        ``faults.round_dropped``, ``faults.crashes``, ... — one metric
        vocabulary across both fault seams.
        """
        if metrics is None or not metrics.enabled:
            return
        for key, value in self.info().items():
            metrics.counter("faults." + key.removeprefix("fault_")).inc(value)

    def describe(self) -> str:
        return ", ".join(model.describe() for model in self.models) or "no faults"


def prepare_round_faults(
    n: int, models: Sequence[RoundFaultModel], rng: np.random.Generator
) -> RoundFaults | None:
    """Wire ``models`` for an ``n``-node round engine.

    Returns ``None`` for an empty model list — the zero-fault path
    consumes no randomness and leaves every engine byte-identical to an
    uninstrumented run (regression-guarded in
    ``tests/scenarios/test_default_path_regression.py``).
    """
    models = [model for model in models if model is not None]
    if not models:
        return None
    return RoundFaults(n, models, rng)


def build_round_faults(
    *,
    drop: float = 0.0,
    drop_model: str = "iid",
    churn: float = 0.0,
    churn_downtime: float = 1.0,
    stragglers: float = 0.0,
    straggler_slowdown: float = 4.0,
) -> list[RoundFaultModel]:
    """Round-level twin of :func:`repro.scenarios.faults.build_faults`.

    Accepts the identical flat knobs, so a sweep grid axis means the
    same adversity regardless of whether the target runs an event-driven
    or a round-driven engine; the bursty mapping shares
    :func:`repro.scenarios.faults.gilbert_elliott_params`, making the
    stationary loss of matched ``drop`` rates equal across the seams.
    """
    if not 0.0 <= drop < 1.0:
        raise ConfigurationError(f"drop rate must be in [0, 1), got {drop}")
    models: list[RoundFaultModel] = []
    if drop:
        if drop_model == "iid":
            models.append(RoundIidLoss(drop))
        elif drop_model == "bursty":
            models.append(RoundBurstyLoss(**gilbert_elliott_params(drop)))
        else:
            raise ConfigurationError(
                f"unknown drop model {drop_model!r}; available: {', '.join(fault_model_names())}"
            )
    if churn:
        models.append(RoundChurn(churn, mean_downtime=churn_downtime))
    if stragglers:
        models.append(RoundStragglers(stragglers, slowdown=straggler_slowdown))
    return models
