"""Topology and fault-injection scenarios.

The paper analyzes its protocols on the complete graph ``K_n`` with
ideal communication. This package is the robustness layer around that
ideal world: alternative communication substrates
(:mod:`~repro.scenarios.topology`), composable fault models for both
engine families — event-stream transforms for the asynchronous
protocols (:mod:`~repro.scenarios.faults`) and vectorized per-round
masks for the synchronous/population engines
(:mod:`~repro.scenarios.round_faults`) — and adversarial initial
configurations including topology-correlated placement
(:mod:`~repro.scenarios.adversary`). Every engine-driven protocol
accepts a ``graph=`` parameter with the same sampling contract as
:class:`~repro.engine.network.CompleteGraph`; faults wrap an
already-built simulator (event seam) or are consulted once per round
(round seam) without touching protocol update rules. Both fault seams
share one knob vocabulary (``drop`` / ``drop_model`` / ``churn`` /
``churn_downtime`` / ``stragglers`` / ``straggler_slowdown``) through
:func:`build_faults` / :func:`build_round_faults`.
"""

from repro.scenarios.adversary import (
    adversarial_counts,
    clustered_assignment,
    init_names,
    minimal_bias_counts,
    opinion_ramp_counts,
    planted_tie_counts,
)
from repro.scenarios.faults import (
    CrashAtTimes,
    CrashChurn,
    FaultModel,
    GilbertElliottDrop,
    IidDrop,
    Stragglers,
    build_faults,
    gilbert_elliott_params,
    inject_faults,
)
from repro.scenarios.round_faults import (
    RoundBurstyLoss,
    RoundChurn,
    RoundCrashAtTimes,
    RoundFaultModel,
    RoundFaults,
    RoundIidLoss,
    RoundStragglers,
    build_round_faults,
    prepare_round_faults,
)
from repro.scenarios.topology import (
    ClusterGraph,
    ErdosRenyiGraph,
    PreferentialAttachmentGraph,
    RandomGeometricGraph,
    RandomRegularGraph,
    RingLattice,
    SparseGraph,
    TorusGrid,
    build_graph,
    graph_names,
)

__all__ = [
    "SparseGraph",
    "RandomRegularGraph",
    "ErdosRenyiGraph",
    "RandomGeometricGraph",
    "PreferentialAttachmentGraph",
    "RingLattice",
    "TorusGrid",
    "ClusterGraph",
    "build_graph",
    "graph_names",
    "FaultModel",
    "IidDrop",
    "GilbertElliottDrop",
    "Stragglers",
    "CrashChurn",
    "CrashAtTimes",
    "inject_faults",
    "build_faults",
    "gilbert_elliott_params",
    "RoundFaultModel",
    "RoundIidLoss",
    "RoundBurstyLoss",
    "RoundStragglers",
    "RoundChurn",
    "RoundCrashAtTimes",
    "RoundFaults",
    "prepare_round_faults",
    "build_round_faults",
    "adversarial_counts",
    "clustered_assignment",
    "init_names",
    "minimal_bias_counts",
    "planted_tie_counts",
    "opinion_ramp_counts",
]
