"""Topology and fault-injection scenarios.

The paper analyzes its protocols on the complete graph ``K_n`` with
ideal communication. This package is the robustness layer around that
ideal world: alternative communication substrates
(:mod:`~repro.scenarios.topology`), composable fault models injected at
the simulator layer (:mod:`~repro.scenarios.faults`), and adversarial
initial configurations (:mod:`~repro.scenarios.adversary`). Every
engine-driven protocol accepts a ``graph=`` parameter with the same
sampling contract as :class:`~repro.engine.network.CompleteGraph`;
faults wrap an already-built simulator without touching protocol code.
"""

from repro.scenarios.adversary import (
    adversarial_counts,
    init_names,
    minimal_bias_counts,
    opinion_ramp_counts,
    planted_tie_counts,
)
from repro.scenarios.faults import (
    CrashAtTimes,
    CrashChurn,
    FaultModel,
    GilbertElliottDrop,
    IidDrop,
    Stragglers,
    build_faults,
    inject_faults,
)
from repro.scenarios.topology import (
    ClusterGraph,
    ErdosRenyiGraph,
    RandomRegularGraph,
    RingLattice,
    SparseGraph,
    TorusGrid,
    build_graph,
    graph_names,
)

__all__ = [
    "SparseGraph",
    "RandomRegularGraph",
    "ErdosRenyiGraph",
    "RingLattice",
    "TorusGrid",
    "ClusterGraph",
    "build_graph",
    "graph_names",
    "FaultModel",
    "IidDrop",
    "GilbertElliottDrop",
    "Stragglers",
    "CrashChurn",
    "CrashAtTimes",
    "inject_faults",
    "build_faults",
    "adversarial_counts",
    "init_names",
    "minimal_bias_counts",
    "planted_tie_counts",
    "opinion_ramp_counts",
]
