"""Argument validation helpers used across parameter dataclasses.

Each helper raises :class:`repro.errors.ConfigurationError` with a message
that names the offending parameter, so configuration mistakes surface at
construction time with actionable errors instead of failing deep inside a
simulation run.
"""

from __future__ import annotations

import math
from typing import SupportsFloat, SupportsInt

from repro.errors import ConfigurationError


def check_positive(name: str, value: SupportsFloat) -> float:
    """Return ``value`` as float, requiring it to be finite and ``> 0``."""
    value = float(value)
    if not math.isfinite(value) or value <= 0:
        raise ConfigurationError(f"{name} must be a finite positive number, got {value!r}")
    return value


def check_positive_int(name: str, value: SupportsInt, *, minimum: int = 1) -> int:
    """Return ``value`` as int, requiring ``value >= minimum``."""
    as_int = int(value)
    if as_int != float(value):
        raise ConfigurationError(f"{name} must be an integer, got {value!r}")
    if as_int < minimum:
        raise ConfigurationError(f"{name} must be >= {minimum}, got {as_int}")
    return as_int


def check_probability(name: str, value: SupportsFloat) -> float:
    """Return ``value`` as float, requiring it to lie in ``[0, 1]``."""
    value = float(value)
    if not (0.0 <= value <= 1.0):
        raise ConfigurationError(f"{name} must lie in [0, 1], got {value!r}")
    return value


def check_fraction(name: str, value: SupportsFloat) -> float:
    """Return ``value`` as float, requiring it to lie in the open ``(0, 1)``."""
    value = float(value)
    if not (0.0 < value < 1.0):
        raise ConfigurationError(f"{name} must lie in the open interval (0, 1), got {value!r}")
    return value
