"""Small shared utilities: validation, formatting, and math helpers."""

from repro.util.validation import (
    check_fraction,
    check_positive,
    check_positive_int,
    check_probability,
)

__all__ = [
    "check_fraction",
    "check_positive",
    "check_positive_int",
    "check_probability",
]
