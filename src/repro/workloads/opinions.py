"""Initial-opinion workload generators.

The paper's statements are parametrized by ``n`` nodes, ``k`` opinions,
and the initial multiplicative bias ``α = c_a/c_b``. These generators
build integer count vectors realizing a requested configuration, plus
per-node assignments for the event-driven simulators.

The canonical adversarial workload is :func:`biased_counts`: the
dominant color at bias ``α`` and all ``k−1`` remaining colors tied —
exactly the configuration that minimizes the collision probability ``p``
in Remark 2, i.e. the hardest instance for a given ``(k, α)``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.util.validation import check_positive, check_positive_int
from repro.workloads.bias import multiplicative_bias, validate_counts

__all__ = [
    "biased_counts",
    "additive_gap_counts",
    "uniform_counts",
    "zipf_counts",
    "counts_to_assignment",
    "assignment_to_counts",
    "validate_assignment",
]


def _distribute_remainder(counts: np.ndarray, remainder: int) -> np.ndarray:
    """Spread ``remainder`` extra nodes over the non-dominant colors.

    Keeps the dominant color's support untouched so the realized bias
    never exceeds the requested one by rounding accidents; removing
    nodes (negative remainder) also only touches non-dominant colors.
    """
    counts = counts.copy()
    k = counts.size
    step = 1 if remainder >= 0 else -1
    index = 1
    for _ in range(abs(remainder)):
        # Cycle over colors 1..k-1 (color 0 is the dominant one).
        if k == 1:
            counts[0] += step
            continue
        counts[index] += step
        index += 1
        if index >= k:
            index = 1
    return counts


def biased_counts(n: int, k: int, alpha: float) -> np.ndarray:
    """Counts with plurality color 0 at bias ``≈ alpha`` and a flat tail.

    Solves ``c_b (α + k − 1) = n`` for the runner-up support, rounds, and
    repairs the total back to ``n`` by adjusting non-dominant colors. The
    realized bias is within one rounding unit of the request; it is
    always ``> 1`` (strict plurality).

    Parameters
    ----------
    n: number of nodes.
    k: number of opinions, ``2 ≤ k ≤ n``.
    alpha: requested multiplicative bias, ``> 1``.
    """
    n = check_positive_int("n", n, minimum=2)
    k = check_positive_int("k", k, minimum=2)
    alpha = check_positive("alpha", alpha)
    if alpha <= 1.0:
        raise ConfigurationError(f"alpha must be > 1 for a strict plurality, got {alpha}")
    if k > n:
        raise ConfigurationError(f"cannot host k={k} opinions on n={n} nodes")
    runner_up = max(1, int(round(n / (alpha + k - 1))))
    dominant = int(round(alpha * runner_up))
    counts = np.full(k, runner_up, dtype=np.int64)
    counts[0] = dominant
    counts = _distribute_remainder(counts, n - int(counts.sum()))
    if counts.min() < 1:
        raise ConfigurationError(
            f"workload infeasible: n={n}, k={k}, alpha={alpha} leaves some color empty"
        )
    # Rounding (and the remainder spread) may have levelled or even
    # inverted the top; take nodes from the largest tail colors until the
    # dominant color strictly leads. Several donors can be tied, so loop.
    while counts[0] <= counts[1:].max():
        donor = int(np.argmax(counts[1:])) + 1
        if counts[donor] <= 1:
            raise ConfigurationError(
                f"workload infeasible: n={n}, k={k}, alpha={alpha} cannot host "
                "a strict plurality with every color non-empty"
            )
        counts[donor] -= 1
        counts[0] += 1
    assert counts.sum() == n
    assert multiplicative_bias(counts) > 1.0
    return counts


def additive_gap_counts(n: int, k: int, gap: int) -> np.ndarray:
    """Counts with an absolute gap ``c_a − c_b = gap`` and a flat tail."""
    n = check_positive_int("n", n, minimum=2)
    k = check_positive_int("k", k, minimum=2)
    gap = check_positive_int("gap", gap, minimum=1)
    base = (n - gap) // k
    if base < 1:
        raise ConfigurationError(f"gap={gap} too large for n={n}, k={k}")
    counts = np.full(k, base, dtype=np.int64)
    counts[0] += gap
    counts = _distribute_remainder(counts, n - int(counts.sum()))
    assert counts.sum() == n
    return counts


def uniform_counts(n: int, k: int) -> np.ndarray:
    """Near-uniform counts; leftover nodes go to the lowest color indices.

    With ``n % k != 0`` color 0 is a (minimal) plurality; with ``n % k == 0``
    the configuration is perfectly tied — useful for testing behaviour
    without an initial bias.
    """
    n = check_positive_int("n", n, minimum=2)
    k = check_positive_int("k", k, minimum=1)
    if k > n:
        raise ConfigurationError(f"cannot host k={k} opinions on n={n} nodes")
    counts = np.full(k, n // k, dtype=np.int64)
    counts[: n % k] += 1
    return counts


def zipf_counts(n: int, k: int, exponent: float = 1.0) -> np.ndarray:
    """Counts proportional to a Zipf law ``1/rank^exponent``.

    A natural skewed workload: a clear plurality with a long tail, as in
    label-propagation / community-detection applications cited in the
    paper's introduction.
    """
    n = check_positive_int("n", n, minimum=2)
    k = check_positive_int("k", k, minimum=2)
    check_positive("exponent", exponent)
    weights = 1.0 / np.arange(1, k + 1, dtype=float) ** exponent
    raw = weights / weights.sum() * n
    counts = np.floor(raw).astype(np.int64)
    counts = np.maximum(counts, 1)
    counts = _distribute_remainder(counts, n - int(counts.sum()))
    if counts.min() < 1:
        raise ConfigurationError(f"zipf workload infeasible for n={n}, k={k}")
    assert counts.sum() == n
    return counts


def counts_to_assignment(
    counts: np.ndarray, rng: np.random.Generator | None = None
) -> np.ndarray:
    """Expand a count vector into a length-``n`` per-node color array.

    Shuffled when ``rng`` is given (node identity should not correlate
    with color); deterministic block layout otherwise.
    """
    counts = validate_counts(counts)
    assignment = np.repeat(np.arange(counts.size), counts)
    if rng is not None:
        rng.shuffle(assignment)
    return assignment


def validate_assignment(assignment: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Check a per-node color array realizes ``counts``; return it as int64.

    The seam for topology-correlated adversarial placement
    (:func:`repro.scenarios.adversary.clustered_assignment`): per-node
    engines accept an explicit assignment instead of shuffling
    ``counts``, but the assignment must describe exactly the same
    configuration the run's parameters claim.

    >>> validate_assignment([1, 0, 0], np.array([2, 1])).tolist()
    [1, 0, 0]
    """
    counts = validate_counts(counts)
    assignment = np.asarray(assignment, dtype=np.int64)
    if assignment.ndim != 1:
        raise ConfigurationError("assignment must be 1-D")
    if assignment.size != int(counts.sum()):
        raise ConfigurationError(
            f"assignment has {assignment.size} nodes but counts sum to {int(counts.sum())}"
        )
    if assignment.min(initial=0) < 0 or assignment.max(initial=0) >= counts.size:
        raise ConfigurationError("assignment names colors outside the count vector")
    realized = np.bincount(assignment, minlength=counts.size)
    if not np.array_equal(realized, counts):
        raise ConfigurationError(
            "assignment does not realize the requested counts "
            f"({realized.tolist()} != {counts.tolist()})"
        )
    return assignment


def assignment_to_counts(assignment: np.ndarray, k: int) -> np.ndarray:
    """Count vector of a per-node color array (inverse of the above)."""
    assignment = np.asarray(assignment)
    if assignment.ndim != 1:
        raise ConfigurationError("assignment must be 1-D")
    return np.bincount(assignment, minlength=k).astype(np.int64)
