"""Initial-opinion workloads and bias mathematics."""

from repro.workloads.bias import (
    additive_gap,
    collision_probability,
    multiplicative_bias,
    plurality_color,
    remark2_lower_bound,
    top_two,
    validate_counts,
)
from repro.workloads.opinions import (
    additive_gap_counts,
    assignment_to_counts,
    biased_counts,
    counts_to_assignment,
    uniform_counts,
    zipf_counts,
)

__all__ = [
    "additive_gap",
    "collision_probability",
    "multiplicative_bias",
    "plurality_color",
    "remark2_lower_bound",
    "top_two",
    "validate_counts",
    "additive_gap_counts",
    "assignment_to_counts",
    "biased_counts",
    "counts_to_assignment",
    "uniform_counts",
    "zipf_counts",
]
