"""Bias and concentration math over opinion-count vectors.

Throughout the paper the *multiplicative bias* ``α = c_a / c_b`` is the
ratio between the supports of the dominant and second-dominant opinions,
and ``p = Σ_j (c_j/n)^2`` is the probability that two independently
sampled nodes share an opinion (used to size newborn generations).
These helpers operate on integer count vectors and are shared by every
protocol implementation and every experiment.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "plurality_color",
    "top_two",
    "multiplicative_bias",
    "additive_gap",
    "collision_probability",
    "remark2_lower_bound",
    "validate_counts",
]


def validate_counts(counts: Sequence[int] | np.ndarray) -> np.ndarray:
    """Return ``counts`` as a validated 1-D integer numpy array."""
    array = np.asarray(counts)
    if array.ndim != 1 or array.size == 0:
        raise ConfigurationError("counts must be a non-empty 1-D sequence")
    if np.any(array < 0):
        raise ConfigurationError("counts must be non-negative")
    if array.sum() <= 0:
        raise ConfigurationError("counts must sum to a positive total")
    return array.astype(np.int64, copy=False)


def plurality_color(counts: Sequence[int] | np.ndarray) -> int:
    """Index of the most supported opinion (ties broken by lowest index)."""
    return int(np.argmax(validate_counts(counts)))


def top_two(counts: Sequence[int] | np.ndarray) -> tuple[int, int]:
    """Supports ``(c_a, c_b)`` of the dominant and second-dominant opinions.

    For a single-opinion vector, ``c_b`` is 0.
    """
    array = validate_counts(counts)
    if array.size == 1:
        return int(array[0]), 0
    order = np.sort(array)
    return int(order[-1]), int(order[-2])


def multiplicative_bias(counts: Sequence[int] | np.ndarray) -> float:
    """The paper's bias ``α = c_a / c_b``; ``inf`` once the runner-up dies out."""
    dominant, runner_up = top_two(counts)
    if runner_up == 0:
        return math.inf
    return dominant / runner_up


def additive_gap(counts: Sequence[int] | np.ndarray) -> int:
    """Absolute gap ``c_a − c_b`` between the top two opinions."""
    dominant, runner_up = top_two(counts)
    return dominant - runner_up


def collision_probability(counts: Sequence[int] | np.ndarray) -> float:
    """``p = Σ_j (c_j / n)^2`` — chance two uniform samples share a color."""
    array = validate_counts(counts)
    total = array.sum()
    fractions = array / total
    return float(np.dot(fractions, fractions))


def remark2_lower_bound(alpha: float, k: int) -> float:
    """Remark 2: ``p ≥ (α² + k − 1) / (α + k − 1)²`` for bias ``α``, ``k`` colors.

    Attained when all non-dominant colors have equal support.
    """
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    if alpha < 1.0:
        raise ConfigurationError(f"bias must be >= 1, got {alpha}")
    return (alpha**2 + k - 1) / (alpha + k - 1) ** 2
