"""Two-choices voting [CER14, CER+15].

Every node samples two uniform neighbors per round; if their opinions
coincide it adopts that opinion, otherwise it keeps its own. On random
regular graphs and expanders this converges in O(log n) rounds given
sufficient bias; with many opinions it is slower than 3-majority by a
polynomial factor in k [BCE+17], which our baseline face-off experiment
measures on the clique.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import OpinionDynamics

__all__ = ["TwoChoices"]


class TwoChoices(OpinionDynamics):
    """Two-sample voting: adopt iff both samples agree."""

    name = "two-choices"
    sample_size = 2

    def local_update_batch(
        self, own: np.ndarray, samples: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        agree = samples[:, 0] == samples[:, 1]
        return np.where(agree, samples[:, 0], own)

    def transition_probabilities(self, state: np.ndarray) -> np.ndarray:
        fractions = state / state.sum()
        pair = fractions**2  # both samples show color c
        matrix = np.tile(pair, (state.size, 1))
        # Keeping the own opinion absorbs all remaining probability,
        # including the case where both samples agree on the own color.
        for own in range(state.size):
            matrix[own, own] = 0.0
            matrix[own, own] = 1.0 - matrix[own].sum()
        return matrix
