"""Population protocols — the sequential pairwise-interaction substrate.

The paper's Section 1.1 frames asynchronous consensus through population
protocols: at each discrete step a uniformly random ordered pair of
nodes interacts and updates deterministically; *parallel time* divides
interaction counts by ``n`` [AGV15]. This module provides

* :class:`PairwiseScheduler` — an exact sequential scheduler (each
  interaction is a uniform ordered pair of distinct nodes) with batched
  pair sampling and a precomputed transition table; it optionally
  restricts responders to graph neighbors (``graph=``), thins the
  interaction stream through the round-level fault seam
  (``round_faults=``, :mod:`repro.scenarios.round_faults`), and accepts
  an explicit initial placement (``assignment=``);
* :class:`ThreeStateMajority` — Angluin et al.'s 3-state approximate
  majority protocol [AAE08] (states ``X``, ``Y``, ``B``): a responder
  holding the opposite opinion of the initiator turns blank, a blank
  responder adopts the initiator's opinion. Converges in O(n log n)
  interactions given bias ``ω(√n log n)``;
* :class:`FourStateExactMajority` — binary interval consensus
  [DV10, MNRS14] (states ``strong-X``, ``strong-Y``, ``weak-x``,
  ``weak-y``): strong opposites weaken each other (preserving the
  X−Y difference, hence *exact* majority for any bias), strong states
  flip opposite weak states. Needs O(n² log n) interactions on the
  clique — the price of exactness the paper contrasts with.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.tracing import NULL_TRACER
from repro.errors import ConfigurationError
from repro.workloads.bias import validate_counts
from repro.workloads.opinions import validate_assignment

__all__ = [
    "PopulationProtocol",
    "PairwiseScheduler",
    "PopulationResult",
    "ThreeStateMajority",
    "FourStateExactMajority",
]


class PopulationProtocol:
    """A deterministic two-party transition function over ``num_states``."""

    name: str = "population-protocol"
    num_states: int = 0

    def delta(self, initiator: int, responder: int) -> tuple[int, int]:
        """New ``(initiator, responder)`` states after an interaction."""
        raise NotImplementedError

    def initial_state(self, counts: np.ndarray) -> np.ndarray:
        """Internal state counts from binary opinion counts."""
        raise NotImplementedError

    def output_color(self, state: int) -> int:
        """Opinion (0 or 1) a node in ``state`` would output."""
        raise NotImplementedError

    def rejoin_state(self, state: int) -> int:
        """State of a node rejoining after a crash (churn reset).

        Identity by default: these protocols are anonymous and carry no
        clock or counter state, and the exact-majority protocols *must*
        keep their strong/weak tokens — resetting them would break the
        ``#strong-X − #strong-Y`` invariant that makes them exact.
        """
        return state

    def is_converged(self, counts: np.ndarray) -> bool:
        """All nodes output the same opinion."""
        outputs = {self.output_color(s) for s in np.nonzero(counts)[0]}
        return len(outputs) == 1


@dataclass
class PopulationResult:
    """Outcome of a sequential population-protocol run."""

    converged: bool
    winner: int | None
    interactions: int
    n: int
    final_state_counts: np.ndarray

    @property
    def parallel_time(self) -> float:
        """Interactions divided by ``n`` (the standard normalization)."""
        return self.interactions / self.n


class PairwiseScheduler:
    """Exact sequential scheduler with batched pair sampling.

    Drawing the initiator uniformly from all ``n`` nodes and the
    responder uniformly from the remaining ``n − 1`` (the shift trick) is
    exactly the uniform-ordered-pair law on distinct nodes — the same
    law as drawing states from the count vector, since anonymous
    protocols only see states.  Keeping an explicit per-node state list
    lets the scheduler prefetch whole blocks of pair indices with two
    vectorized ``rng.integers`` calls and resolve each interaction with
    a precomputed ``delta`` lookup table, instead of two
    probability-weighted ``rng.choice`` calls per interaction (the seed
    implementation, preserved in
    :func:`repro.core.reference.reference_population_run`, is ~50×
    slower).
    """

    def __init__(self, protocol: PopulationProtocol):
        self.protocol = protocol

    def run(
        self,
        counts: np.ndarray,
        rng: np.random.Generator,
        *,
        max_interactions: int | None = None,
        check_every: int = 64,
        batch: int = 4096,
        graph=None,
        round_faults=None,
        assignment=None,
        tracer=None,
        metrics=None,
        shards: int = 1,
    ) -> PopulationResult:
        """Run until consensus output or ``max_interactions``.

        ``check_every`` controls how often the (O(states)) convergence
        predicate is evaluated; ``batch`` how many interaction pairs are
        prefetched per vectorized draw.

        ``graph`` restricts the responder to a uniform neighbor of the
        initiator (one vectorized CSR gather per block); ``None`` or a
        :class:`~repro.engine.network.CompleteGraph` keeps the original
        shift-trick pair law bit-identically.  ``round_faults``
        (see :mod:`repro.scenarios.round_faults`) thins the interaction
        stream: loss masks individual interactions, churn and straggler
        masks advance once per *block* (``batch / n`` parallel-time
        units — the documented granularity of the round seam here) and
        void every interaction touching an inactive node; skipped
        interactions still count toward the interaction clock, exactly
        like an event-layer dropped exchange still spends its cycle.
        ``assignment`` fixes the initial opinion placement per node
        (both protocols encode opinion ``i`` as state ``i``
        initially).

        ``shards > 1`` hands the run to the sharded scheduler
        (:func:`repro.shard.population.run_sharded_population`:
        intra-shard interaction blocks plus a controller-run
        cross-shard exchange — an approximate pair law, gated by the
        CI-overlap equivalence tests); ``check_every``/``batch`` do
        not apply there (convergence is checked once per barrier
        round) and the scenario axes must stay unset. ``shards=1``
        (the default) is the exact sequential law, untouched.
        """
        protocol = self.protocol
        if int(shards) != 1:
            if graph is not None or round_faults is not None or assignment is not None:
                raise ConfigurationError(
                    "the sharded population scheduler supports the complete "
                    "graph without round faults or explicit placement; drop "
                    "those parameters or use shards=1"
                )
            from repro.shard.population import run_sharded_population

            return run_sharded_population(
                protocol,
                counts,
                rng,
                shards=shards,
                max_interactions=max_interactions,
                tracer=tracer,
                metrics=metrics,
            )
        state = protocol.initial_state(validate_counts(counts))
        n = int(state.sum())
        if n < 2:
            raise ConfigurationError("population needs at least 2 nodes")
        if graph is not None and getattr(graph, "min_degree", 1) >= n - 1:
            graph = None  # complete graph: keep the bit-identical shift-trick path
        if graph is not None and len(graph) != n:
            raise ConfigurationError(f"graph has {len(graph)} nodes but counts sum to {n}")
        if max_interactions is None:
            max_interactions = 500 * n * max(8, int(np.log2(n)) ** 2)
        num_states = int(state.size)
        # delta is deterministic: resolve every ordered state pair once.
        trans = [
            [protocol.delta(a, b) for b in range(num_states)] for a in range(num_states)
        ]
        if assignment is None:
            node_state: list[int] = np.repeat(np.arange(num_states), state).tolist()
        else:
            node_state = validate_assignment(assignment, counts).tolist()
        counts_list: list[int] = [int(c) for c in state]
        if tracer is None:
            tracer = NULL_TRACER
        elif round_faults is not None:
            round_faults.tracer = tracer
        trace_round = tracer.enabled_for("round")
        if tracer.enabled_for("run"):
            tracer.record(
                "run", 0.0, protocol=f"population:{protocol.name}",
                n=n, k=num_states, counts=[int(c) for c in state],
            )
        interactions = 0
        # Telemetry (plain ints on amortized/fault-only paths; harvested
        # at the run epilogue when metrics are enabled).
        blocks = 0
        voided = 0
        converged = protocol.is_converged(state)
        while not converged and interactions < max_interactions:
            block = min(batch, max_interactions - interactions)
            blocks += 1
            initiator_draws = rng.integers(n, size=block)
            if graph is None:
                responders = rng.integers(n - 1, size=block).tolist()
            else:
                responders = graph.sample_neighbors_of(initiator_draws, rng).tolist()
            initiators = initiator_draws.tolist()
            active = keep = None
            if round_faults is not None:
                mask, rejoined = round_faults.begin_block((interactions + block) / n)
                if rejoined is not None:
                    for node in rejoined.tolist():
                        old = node_state[node]
                        new = protocol.rejoin_state(old)
                        if new != old:
                            node_state[node] = new
                            counts_list[old] -= 1
                            counts_list[new] += 1
                active = None if mask is None else mask.tolist()
                loss = round_faults.loss_mask(block)
                keep = None if loss is None else loss.tolist()
            for index in range(block):
                u = initiators[index]
                v = responders[index]
                if graph is None and v >= u:
                    v += 1
                delivered = (keep is None or keep[index]) and (
                    active is None or (active[u] and active[v])
                )
                if delivered:
                    a = node_state[u]
                    b = node_state[v]
                    new_a, new_b = trans[a][b]
                    if new_a != a or new_b != b:
                        node_state[u] = new_a
                        node_state[v] = new_b
                        counts_list[a] -= 1
                        counts_list[b] -= 1
                        counts_list[new_a] += 1
                        counts_list[new_b] += 1
                else:
                    # Only reachable under round faults — fault-free runs
                    # never take this branch, so it costs them nothing.
                    voided += 1
                interactions += 1
                if interactions % check_every == 0:
                    converged = protocol.is_converged(
                        np.asarray(counts_list, dtype=np.int64)
                    )
                    if converged:
                        break
            if trace_round:
                # One snapshot per prefetched block, at parallel time.
                tracer.record(
                    "round", interactions / n, counts=list(counts_list),
                    top_gen=0, interactions=interactions,
                )
        state = np.asarray(counts_list, dtype=np.int64)
        converged = protocol.is_converged(state)
        winner = None
        if converged:
            live = np.nonzero(state)[0]
            winner = protocol.output_color(int(live[0]))
        if tracer.enabled_for("end"):
            tracer.record(
                "end", interactions / n, converged=converged,
                counts=[int(c) for c in state], eps_time=None,
                interactions=interactions,
            )
        if metrics is not None and metrics.enabled:
            metrics.counter(f"population.runs.{protocol.name}").inc()
            metrics.counter("population.interactions").inc(interactions)
            metrics.counter("population.blocks").inc(blocks)
            metrics.counter("population.voided_interactions").inc(voided)
            if converged:
                metrics.counter("population.converged_runs").inc()
            if round_faults is not None:
                round_faults.publish_metrics(metrics)
        return PopulationResult(
            converged=converged,
            winner=winner,
            interactions=interactions,
            n=n,
            final_state_counts=state,
        )


class ThreeStateMajority(PopulationProtocol):
    """AAE08's 3-state approximate majority: X=0, Y=1, blank=2."""

    name = "3-state-majority"
    num_states = 3
    X, Y, BLANK = 0, 1, 2

    def delta(self, initiator: int, responder: int) -> tuple[int, int]:
        if initiator == self.X and responder == self.Y:
            return initiator, self.BLANK
        if initiator == self.Y and responder == self.X:
            return initiator, self.BLANK
        if initiator in (self.X, self.Y) and responder == self.BLANK:
            return initiator, initiator
        return initiator, responder

    def initial_state(self, counts: np.ndarray) -> np.ndarray:
        if counts.size != 2:
            raise ConfigurationError("3-state majority is a two-opinion protocol")
        return np.array([counts[0], counts[1], 0], dtype=np.int64)

    def output_color(self, state: int) -> int:
        # Blank nodes output the opinion they would adopt next; by
        # convention they follow the surviving strong opinion — treat
        # blank as agreeing with either, so only X/Y matter.
        return 0 if state == self.X else 1 if state == self.Y else -1

    def is_converged(self, counts: np.ndarray) -> bool:
        # Consensus: one opinion extinct (blanks will be absorbed by the
        # survivor; X and Y cannot both be present).
        return counts[self.X] == 0 or counts[self.Y] == 0


class FourStateExactMajority(PopulationProtocol):
    """Binary interval consensus [DV10]: exact majority with 4 states.

    States: 0 = strong-X, 1 = strong-Y, 2 = weak-x, 3 = weak-y.
    ``#strong-X − #strong-Y`` is invariant, so the initial majority's
    strong tokens can never be wiped out — the output is exact for any
    non-zero bias.
    """

    name = "4-state-exact-majority"
    num_states = 4
    SX, SY, WX, WY = 0, 1, 2, 3

    def delta(self, initiator: int, responder: int) -> tuple[int, int]:
        a, b = initiator, responder
        if (a, b) == (self.SX, self.SY):
            return self.WX, self.WY
        if (a, b) == (self.SY, self.SX):
            return self.WY, self.WX
        if a == self.SX and b == self.WY:
            return a, self.WX
        if a == self.SY and b == self.WX:
            return a, self.WY
        return a, b

    def initial_state(self, counts: np.ndarray) -> np.ndarray:
        if counts.size != 2:
            raise ConfigurationError("4-state exact majority is a two-opinion protocol")
        return np.array([counts[0], counts[1], 0, 0], dtype=np.int64)

    def output_color(self, state: int) -> int:
        return 0 if state in (self.SX, self.WX) else 1

    def is_converged(self, counts: np.ndarray) -> bool:
        x_side = counts[self.SX] + counts[self.WX]
        y_side = counts[self.SY] + counts[self.WY]
        if x_side and y_side:
            return False
        # One side only; additionally no strong pair can still meet.
        return True
