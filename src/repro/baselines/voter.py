"""Pull voting [HP01, NIY99] — the simplest opinion dynamic.

Every node contacts one uniform neighbor per round and adopts its
opinion unconditionally. Convergence is slow (expected Ω(n) on many
graphs; O(n³ log n) worst case on general graphs) and the winner is only
proportional-probability, not plurality — the paper's Section 1.1 uses
it as the historical starting point.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import OpinionDynamics

__all__ = ["PullVoting"]


class PullVoting(OpinionDynamics):
    """One-sample pull voting: adopt the sampled node's opinion."""

    name = "pull-voting"
    sample_size = 1

    def transition_probabilities(self, state: np.ndarray) -> np.ndarray:
        fractions = state / state.sum()
        # Every node's next opinion is one uniform sample, regardless of
        # its current opinion: all rows equal the population fractions.
        return np.tile(fractions, (state.size, 1))

    def local_update_batch(
        self, own: np.ndarray, samples: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        return samples[:, 0]
