"""Undecided-state dynamics for k opinions [AAE08, BCN+15, BFGK16].

Each node samples one uniform neighbor per round. A node holding
opinion ``i`` that sees a *different* opinion ``j`` becomes *undecided*;
an undecided node adopts whatever opinion it sees (staying undecided on
seeing another undecided node). The undecided state is the mechanism at
the heart of the paper's lineage of plurality protocols ([BFGK16],
[GP16], [EFK+16]); its convergence time is governed by the
monochromatic distance of the initial configuration [BCN+15].

Internally the state vector has ``k + 1`` entries: the ``k`` opinions
followed by the undecided count.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import OpinionDynamics
from repro.workloads.bias import validate_counts

__all__ = ["UndecidedStateDynamics"]


class UndecidedStateDynamics(OpinionDynamics):
    """One-sample undecided-state dynamics, k opinions + undecided."""

    name = "undecided-state"
    sample_size = 1

    def local_update_batch(
        self, own: np.ndarray, samples: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        sampled = samples[:, 0]
        # The undecided state index is k (the last internal state),
        # recorded when the initial state vector was built.
        k = self._undecided_index
        decided = own < k
        next_decided = np.where((sampled == own) | (sampled == k), own, k)
        next_undecided = np.where(sampled < k, sampled, k)
        return np.where(decided, next_decided, next_undecided)

    def initial_state(self, counts: np.ndarray) -> np.ndarray:
        counts = validate_counts(counts)
        self._undecided_index = int(counts.size)
        return np.concatenate([counts, [0]]).astype(np.int64)

    def rejoin_states(self, states: np.ndarray) -> np.ndarray:
        # Self-stabilizing churn reset: a node back from an outage has
        # no trustworthy opinion and rejoins undecided.
        return np.full_like(states, self._undecided_index)

    def rejoin_counts(self, counts: np.ndarray) -> np.ndarray:
        reset = np.zeros_like(counts)
        reset[self._undecided_index] = counts.sum()
        return reset

    def project_colors(self, state: np.ndarray) -> np.ndarray:
        return state[:-1]

    def is_converged(self, state: np.ndarray) -> bool:
        return state[-1] == 0 and int(np.count_nonzero(state[:-1])) == 1

    def transition_probabilities(self, state: np.ndarray) -> np.ndarray:
        size = state.size
        k = size - 1
        fractions = state / state.sum()
        undecided_fraction = float(fractions[-1])
        matrix = np.zeros((size, size))
        for own in range(k):
            own_fraction = float(fractions[own])
            # Seeing the own opinion or an undecided node changes nothing;
            # any other opinion pushes the node into the undecided state.
            matrix[own, own] = own_fraction + undecided_fraction
            matrix[own, k] = 1.0 - own_fraction - undecided_fraction
        # An undecided node adopts the sampled opinion (stays on undecided).
        matrix[k, :k] = fractions[:k]
        matrix[k, k] = undecided_fraction
        return matrix
