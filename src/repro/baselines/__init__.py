"""Baseline consensus dynamics from the paper's related work."""

from repro.baselines.base import OpinionDynamics, run_dynamics
from repro.baselines.population import (
    FourStateExactMajority,
    PairwiseScheduler,
    PopulationProtocol,
    PopulationResult,
    ThreeStateMajority,
)
from repro.baselines.three_majority import ThreeMajority
from repro.baselines.two_choices import TwoChoices
from repro.baselines.undecided import UndecidedStateDynamics
from repro.baselines.voter import PullVoting

__all__ = [
    "OpinionDynamics",
    "run_dynamics",
    "FourStateExactMajority",
    "PairwiseScheduler",
    "PopulationProtocol",
    "PopulationResult",
    "ThreeStateMajority",
    "ThreeMajority",
    "TwoChoices",
    "UndecidedStateDynamics",
    "PullVoting",
]
