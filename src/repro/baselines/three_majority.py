"""3-majority dynamics [BCN+14].

Every node samples three uniform neighbors per round and adopts the
majority opinion among the samples, breaking ties (all three samples
distinct) by adopting one of the three uniformly at random. Becchetti
et al. prove a tight Θ(k · log n) convergence time given sufficient
bias; the baseline face-off experiment reproduces the linear-in-k shape
against the paper's doubly-logarithmic generation protocol.

The sampled-majority law per node is independent of its own opinion:

    P(adopt c) = q_c²(3 − 2 q_c)                    (two or three c's)
               + 2 q_c [(1 − q_c)² − (S₂ − q_c²)]   (all distinct, c picked)

with ``q`` the opinion fractions and ``S₂ = Σ q_j²``; the second term is
``(1/3) · P(all three distinct, one shows c)`` expanded via elementary
symmetric polynomials.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import OpinionDynamics

__all__ = ["ThreeMajority"]


class ThreeMajority(OpinionDynamics):
    """Three-sample majority with uniform tie-breaking."""

    name = "3-majority"
    sample_size = 3

    def local_update_batch(
        self, own: np.ndarray, samples: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        a, b, c = samples[:, 0], samples[:, 1], samples[:, 2]
        # Majority among the three samples; an all-distinct tie adopts
        # one of the three uniformly at random (matching adoption_law).
        tie_pick = samples[np.arange(samples.shape[0]), rng.integers(3, size=samples.shape[0])]
        return np.where((a == b) | (a == c), a, np.where(b == c, b, tie_pick))

    @staticmethod
    def adoption_law(fractions: np.ndarray) -> np.ndarray:
        """Distribution of one node's next opinion (own opinion ignored)."""
        q = np.asarray(fractions, dtype=float)
        s2 = float(np.dot(q, q))
        majority = q**2 * (3.0 - 2.0 * q)
        # e₂ of the other colors: pairs of distinct colors, both ≠ c.
        distinct_pairs = ((1.0 - q) ** 2 - (s2 - q**2)) / 2.0
        ties = 2.0 * q * distinct_pairs
        law = majority + ties
        return law / law.sum()

    def transition_probabilities(self, state: np.ndarray) -> np.ndarray:
        law = self.adoption_law(state / state.sum())
        return np.tile(law, (state.size, 1))
