"""Shared interface and runner for synchronous opinion dynamics.

All baselines from the paper's related-work section (Section 1.1) are
*anonymous* dynamics: a node's next opinion depends only on the opinions
of uniformly sampled nodes. Their population count vector therefore
evolves as an exact multinomial process, which
:class:`OpinionDynamics` subclasses express via
:meth:`OpinionDynamics.transition_probabilities`: for each current
opinion (group) the distribution over next opinions. The shared
:func:`run_dynamics` runner draws those multinomials and reports the
same :class:`~repro.core.results.RunResult` the paper's protocol
runners use, so head-to-head experiments are one loop.
"""

from __future__ import annotations

import numpy as np

from repro.core.results import RunResult, StepStats
from repro.errors import ConfigurationError
from repro.workloads.bias import multiplicative_bias, plurality_color, validate_counts

__all__ = ["OpinionDynamics", "run_dynamics"]


class OpinionDynamics:
    """One synchronous-round opinion dynamic on the complete graph.

    Subclasses implement :meth:`transition_probabilities`. ``states``
    may exceed the number of opinions (e.g. the undecided-state dynamic
    appends an *undecided* state); :meth:`project_colors` maps the
    internal state-count vector back to opinion counts.
    """

    #: Human-readable protocol name (used in tables).
    name: str = "dynamics"

    def initial_state(self, counts: np.ndarray) -> np.ndarray:
        """Internal state-count vector for initial opinion ``counts``."""
        return validate_counts(counts).copy()

    def project_colors(self, state: np.ndarray) -> np.ndarray:
        """Opinion counts visible in an internal state vector."""
        return state

    def transition_probabilities(self, state: np.ndarray) -> np.ndarray:
        """Row-stochastic matrix ``P[s, s']``: next-state law per group.

        ``P[s]`` is the outcome distribution of one node currently in
        state ``s`` given the population state (fractions of ``state``).
        """
        raise NotImplementedError

    def is_converged(self, state: np.ndarray) -> bool:
        """Default: a single opinion survives."""
        return int(np.count_nonzero(self.project_colors(state))) == 1

    def step(self, state: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """One exact synchronous round: a multinomial per state group."""
        matrix = self.transition_probabilities(state)
        if matrix.shape != (state.size, state.size):
            raise ConfigurationError(
                f"{self.name}: transition matrix shape {matrix.shape} "
                f"does not match state size {state.size}"
            )
        new_state = np.zeros_like(state)
        for group in np.nonzero(state)[0]:
            # Clip float round-off (rows are built from complements and can
            # dip a few ulp below zero) before the exactness check.
            row = np.clip(matrix[group].astype(float), 0.0, None)
            total = float(row.sum())
            if not np.isclose(total, 1.0, atol=1e-9):
                raise ConfigurationError(
                    f"{self.name}: transition row {group} sums to {total}, expected 1"
                )
            new_state += rng.multinomial(int(state[group]), row / total)
        return new_state


def run_dynamics(
    dynamics: OpinionDynamics,
    counts: np.ndarray,
    rng: np.random.Generator,
    *,
    max_rounds: int = 100_000,
    epsilon: float | None = None,
    record_trajectory: bool = False,
) -> RunResult:
    """Run ``dynamics`` from initial opinion ``counts`` to consensus.

    Mirrors :func:`repro.core.synchronous.run_synchronous`'s contract:
    never raises on non-convergence — inspect ``result.converged``.
    """
    counts = validate_counts(counts)
    n = int(counts.sum())
    plurality = plurality_color(counts)
    state = dynamics.initial_state(counts)
    trajectory: list[StepStats] = []
    epsilon_time: float | None = None
    rounds = 0
    converged = False
    while rounds < max_rounds:
        state = dynamics.step(state, rng)
        rounds += 1
        colors = dynamics.project_colors(state)
        if record_trajectory:
            trajectory.append(
                StepStats(
                    time=float(rounds),
                    top_generation=0,
                    top_generation_fraction=1.0,
                    plurality_fraction=float(colors.max()) / n,
                    bias=multiplicative_bias(colors) if colors.sum() else 1.0,
                )
            )
        if epsilon is not None and epsilon_time is None:
            if colors[plurality] >= (1.0 - epsilon) * n:
                epsilon_time = float(rounds)
        if dynamics.is_converged(state):
            converged = True
            break
    final = dynamics.project_colors(state)
    return RunResult(
        converged=converged,
        winner=int(np.argmax(final)),
        plurality_color=plurality,
        elapsed=float(rounds),
        final_color_counts=np.asarray(final, dtype=np.int64),
        epsilon_convergence_time=epsilon_time,
        trajectory=trajectory,
    )
