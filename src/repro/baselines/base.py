"""Shared interface and runner for synchronous opinion dynamics.

All baselines from the paper's related-work section (Section 1.1) are
*anonymous* dynamics: a node's next opinion depends only on the opinions
of uniformly sampled nodes. Their population count vector therefore
evolves as an exact multinomial process, which
:class:`OpinionDynamics` subclasses express via
:meth:`OpinionDynamics.transition_probabilities`: for each current
opinion (group) the distribution over next opinions. The shared
:func:`run_dynamics` runner draws those multinomials and reports the
same :class:`~repro.core.results.RunResult` the paper's protocol
runners use, so head-to-head experiments are one loop.

The multinomial shortcut is exact only on the complete graph. On a
sparse substrate (``graph=`` parameter) :func:`run_dynamics` switches
to a literal per-node engine: each node samples
:attr:`OpinionDynamics.sample_size` neighbors from its CSR adjacency
and applies the dynamic's local rule
(:meth:`OpinionDynamics.local_update_batch`) — fully vectorized per
round, and distributionally identical to the multinomial path when the
graph happens to be dense.

Both paths consult an optional round-level fault wiring
(:class:`repro.scenarios.round_faults.RoundFaults`): masked nodes keep
their state for the round (their state stays readable as a contact),
crashed nodes park in a down pool and rejoin through the dynamic's
:meth:`OpinionDynamics.rejoin_states` /
:meth:`OpinionDynamics.rejoin_counts` reset hook. With
``round_faults=None`` every round consumes exactly the pre-fault
randomness.
"""

from __future__ import annotations

import numpy as np

from repro.core.results import RunResult, StepStats
from repro.engine.network import CompleteGraph
from repro.engine.tracing import NULL_TRACER
from repro.errors import ConfigurationError
from repro.workloads.bias import multiplicative_bias, plurality_color, validate_counts
from repro.workloads.opinions import validate_assignment

__all__ = ["OpinionDynamics", "run_dynamics"]


class OpinionDynamics:
    """One synchronous-round opinion dynamic on the complete graph.

    Subclasses implement :meth:`transition_probabilities`. ``states``
    may exceed the number of opinions (e.g. the undecided-state dynamic
    appends an *undecided* state); :meth:`project_colors` maps the
    internal state-count vector back to opinion counts.
    """

    #: Human-readable protocol name (used in tables).
    name: str = "dynamics"

    #: Uniform contacts one node samples per round (graph-restricted path).
    sample_size: int = 1

    def initial_state(self, counts: np.ndarray) -> np.ndarray:
        """Internal state-count vector for initial opinion ``counts``."""
        return validate_counts(counts).copy()

    def project_colors(self, state: np.ndarray) -> np.ndarray:
        """Opinion counts visible in an internal state vector."""
        return state

    def transition_probabilities(self, state: np.ndarray) -> np.ndarray:
        """Row-stochastic matrix ``P[s, s']``: next-state law per group.

        ``P[s]`` is the outcome distribution of one node currently in
        state ``s`` given the population state (fractions of ``state``).
        """
        raise NotImplementedError

    def is_converged(self, state: np.ndarray) -> bool:
        """Default: a single opinion survives."""
        return int(np.count_nonzero(self.project_colors(state))) == 1

    def rejoin_states(self, states: np.ndarray) -> np.ndarray:
        """Internal states of rejoining nodes after a churn reset.

        Default: identity — the anonymous dynamics carry no auxiliary
        protocol state beyond the opinion itself, so a rejoining node
        simply resumes with the opinion it held. Dynamics with derived
        state override this (the undecided-state dynamic rejoins
        *undecided*, the self-stabilizing reset).
        """
        return states

    def rejoin_counts(self, counts: np.ndarray) -> np.ndarray:
        """Count-level twin of :meth:`rejoin_states` (multinomial engine).

        ``counts`` are the rejoining nodes per internal state; the
        return value redistributes them post-reset (identity by
        default).
        """
        return counts

    def local_update_batch(
        self, own: np.ndarray, samples: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Per-node rule: next internal state from the sampled states.

        ``own`` is the length-``n`` current state per node and
        ``samples`` the ``(n, sample_size)`` matrix of sampled contact
        states; returns the length-``n`` next-state array. Only needed
        for graph-restricted simulation — dynamics that do not override
        it remain complete-graph (multinomial) only.
        """
        raise ConfigurationError(
            f"{self.name} does not define a local update rule; "
            "it can only run on the complete graph"
        )

    def step(self, state: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """One exact synchronous round: a multinomial per state group."""
        return _multinomial_round(self, state, rng)


class _GraphDynamicsEngine:
    """Literal per-node engine for dynamics on a sparse graph.

    Holds one internal state per node; each round samples
    ``dynamics.sample_size`` CSR neighbors per node (batched uniform
    draws, no per-call ``rng.choice``) and applies the local rule
    simultaneously across the population.
    """

    def __init__(
        self, dynamics: OpinionDynamics, counts: np.ndarray, graph, rng, *, assignment=None
    ):
        state_counts = dynamics.initial_state(counts)
        self.states = int(state_counts.size)
        self.n = int(state_counts.sum())
        if len(graph) != self.n:
            raise ConfigurationError(
                f"graph has {len(graph)} nodes but counts sum to {self.n}"
            )
        if graph.min_degree < 1:
            raise ConfigurationError("graph has isolated nodes; dynamics need degree >= 1")
        self._graph = graph
        self._dynamics = dynamics
        if assignment is None:
            self.node_state = np.repeat(np.arange(self.states), state_counts)
            rng.shuffle(self.node_state)
        else:
            # Every dynamic in the suite maps opinion i to internal
            # state i at initialization (auxiliary states start empty),
            # so an opinion assignment is a valid initial state array.
            self.node_state = validate_assignment(assignment, counts)

    def step(
        self, rng: np.random.Generator, *, round_faults=None, now: float = 0.0
    ) -> np.ndarray:
        """One synchronous round; returns the new state-count vector."""
        dynamics = self._dynamics
        active = None
        if round_faults is not None:
            active, rejoined = round_faults.begin_round(now)
            if rejoined is not None:
                self.node_state[rejoined] = dynamics.rejoin_states(
                    self.node_state[rejoined]
                )
        samples = np.empty((self.n, dynamics.sample_size), dtype=np.int64)
        for column in range(dynamics.sample_size):
            samples[:, column] = self.node_state[self._graph.sample_per_node(rng)]
        updated = dynamics.local_update_batch(self.node_state, samples, rng)
        if active is not None:
            # Masked nodes keep their state; they were still sampled
            # above (a crashed node's opinion stays readable).
            updated = np.where(active, updated, self.node_state)
        self.node_state = updated
        return np.bincount(self.node_state, minlength=self.states).astype(np.int64)


def _multinomial_round(
    dynamics: OpinionDynamics,
    state: np.ndarray,
    rng: np.random.Generator,
    *,
    participation: float = 1.0,
    down: np.ndarray | None = None,
    probabilities_state: np.ndarray | None = None,
) -> np.ndarray:
    """One multinomial round, optionally thinned and partially frozen.

    The single copy of the row clip/validate/normalize loop both count
    paths share: :meth:`OpinionDynamics.step` calls it bare (the
    ``participation=1.0``/``down=None`` path consumes the generator
    exactly like the pre-fault implementation), and the faulty path
    adds participation thinning (each group's movement probabilities
    scaled by ``participation``, the remainder folded into staying)
    plus per-category frozen (churned-down) counts that do not act.

    ``probabilities_state`` separates the population the transition
    *probabilities* are computed from (contacts come from everyone) from
    the counts that actually move. Default ``None`` uses ``state`` for
    both — the unsharded law. The sharded count engine passes the
    cross-shard sum: each shard then draws an independent multinomial
    with the shared global probabilities, and the sum of those draws is
    exactly the global multinomial, so the sharded round is
    distribution-identical.
    """
    matrix = dynamics.transition_probabilities(
        state if probabilities_state is None else probabilities_state
    )
    if matrix.shape != (state.size, state.size):
        raise ConfigurationError(
            f"{dynamics.name}: transition matrix shape {matrix.shape} "
            f"does not match state size {state.size}"
        )
    new_state = np.zeros_like(state)
    for group in np.nonzero(state)[0]:
        # Clip float round-off (rows are built from complements and can
        # dip a few ulp below zero) before the exactness check.
        row = np.clip(matrix[group].astype(float), 0.0, None)
        total = float(row.sum())
        if not np.isclose(total, 1.0, atol=1e-9):
            raise ConfigurationError(
                f"{dynamics.name}: transition row {group} sums to {total}, expected 1"
            )
        row = row / total
        if participation < 1.0:
            row = row * participation
            row[group] += 1.0 - participation
        count = int(state[group])
        frozen = 0 if down is None else min(int(down[group]), count)
        new_state += rng.multinomial(count - frozen, row)
        new_state[group] += frozen
    return new_state


def _faulty_count_step(
    dynamics: OpinionDynamics,
    state: np.ndarray,
    rng: np.random.Generator,
    round_faults,
    now: float,
) -> np.ndarray:
    """One multinomial round under round-level faults.

    Applies the count seam
    (:meth:`repro.scenarios.round_faults.RoundFaults.count_round`):
    rejoining counts are redistributed through
    :meth:`OpinionDynamics.rejoin_counts`, then the shared
    :func:`_multinomial_round` runs with the seam's participation
    probability and down pool.
    """
    participation, rejoined, down = round_faults.count_round(now, np.asarray(state))
    if rejoined is not None and rejoined.any():
        state = state - rejoined + dynamics.rejoin_counts(rejoined)
    return _multinomial_round(
        dynamics, state, rng, participation=participation, down=down
    )


def run_dynamics(
    dynamics: OpinionDynamics,
    counts: np.ndarray,
    rng: np.random.Generator,
    *,
    max_rounds: int = 100_000,
    epsilon: float | None = None,
    record_trajectory: bool = False,
    graph=None,
    round_faults=None,
    assignment=None,
    tracer=None,
    metrics=None,
    shards: int = 1,
) -> RunResult:
    """Run ``dynamics`` from initial opinion ``counts`` to consensus.

    Mirrors :func:`repro.core.synchronous.run_synchronous`'s contract:
    never raises on non-convergence — inspect ``result.converged``.
    ``graph=None`` (or a :class:`~repro.engine.network.CompleteGraph`)
    uses the exact multinomial engine; a sparse graph switches to the
    per-node engine driven by the dynamic's local rule.
    ``round_faults`` applies per-round loss/churn/straggler masks on
    either path (see :mod:`repro.scenarios.round_faults`).
    ``assignment`` fixes the per-node placement on the per-node path
    (topology-correlated starts); the multinomial engine is anonymous,
    so on ``K_n`` — where placement cannot matter — it is validated and
    then ignored.

    ``shards > 1`` fans the multinomial rounds out over worker
    processes (:mod:`repro.shard`, distribution-identical law); that
    path supports the default scenario only. ``shards=1`` (the
    default) never touches the shard machinery.
    """
    if int(shards) != 1:
        if graph is not None or round_faults is not None or assignment is not None:
            raise ConfigurationError(
                "sharded dynamics support the complete graph without round "
                "faults or explicit placement; drop those parameters or use "
                "shards=1"
            )
        from repro.shard.dynamics import run_sharded_dynamics

        return run_sharded_dynamics(
            dynamics,
            counts,
            rng,
            shards=shards,
            max_rounds=max_rounds,
            epsilon=epsilon,
            record_trajectory=record_trajectory,
            tracer=tracer,
            metrics=metrics,
        )
    counts = validate_counts(counts)
    n = int(counts.sum())
    plurality = plurality_color(counts)
    if graph is not None and isinstance(graph, CompleteGraph):
        graph = None  # identical semantics, keep the exact multinomial path
    if assignment is not None and graph is None:
        validate_assignment(assignment, counts)  # anonymous engine: check, then ignore
    engine = (
        None
        if graph is None
        else _GraphDynamicsEngine(dynamics, counts, graph, rng, assignment=assignment)
    )
    state = dynamics.initial_state(counts)
    if tracer is None:
        tracer = NULL_TRACER
    elif round_faults is not None:
        round_faults.tracer = tracer
    trace_round = tracer.enabled_for("round")
    if tracer.enabled_for("run"):
        tracer.record(
            "run", 0.0, protocol=f"dynamics:{dynamics.name}",
            n=n, k=int(counts.size), counts=[int(c) for c in counts],
        )
    trajectory: list[StepStats] = []
    epsilon_time: float | None = None
    rounds = 0
    converged = False
    while rounds < max_rounds:
        if engine is not None:
            state = engine.step(rng, round_faults=round_faults, now=float(rounds + 1))
        elif round_faults is not None:
            state = _faulty_count_step(dynamics, state, rng, round_faults, float(rounds + 1))
        else:
            state = dynamics.step(state, rng)
        rounds += 1
        colors = dynamics.project_colors(state)
        if trace_round:
            tracer.record(
                "round", float(rounds), counts=[int(c) for c in colors],
                top_gen=0,
            )
        if record_trajectory:
            trajectory.append(
                StepStats(
                    time=float(rounds),
                    top_generation=0,
                    top_generation_fraction=1.0,
                    plurality_fraction=float(colors.max()) / n,
                    bias=multiplicative_bias(colors) if colors.sum() else 1.0,
                )
            )
        if epsilon is not None and epsilon_time is None:
            if colors[plurality] >= (1.0 - epsilon) * n:
                epsilon_time = float(rounds)
        if dynamics.is_converged(state):
            converged = True
            break
    final = dynamics.project_colors(state)
    if tracer.enabled_for("end"):
        tracer.record(
            "end", float(rounds), converged=converged,
            counts=[int(c) for c in final], eps_time=epsilon_time,
        )
    if metrics is not None and metrics.enabled:
        metrics.counter(f"dynamics.runs.{dynamics.name}").inc()
        metrics.counter("dynamics.rounds").inc(rounds)
        if converged:
            metrics.counter("dynamics.converged_runs").inc()
        if round_faults is not None:
            round_faults.publish_metrics(metrics)
    return RunResult(
        converged=converged,
        winner=int(np.argmax(final)),
        plurality_color=plurality,
        elapsed=float(rounds),
        final_color_counts=np.asarray(final, dtype=np.int64),
        epsilon_convergence_time=epsilon_time,
        trajectory=trajectory,
    )
