"""Shared interface and runner for synchronous opinion dynamics.

All baselines from the paper's related-work section (Section 1.1) are
*anonymous* dynamics: a node's next opinion depends only on the opinions
of uniformly sampled nodes. Their population count vector therefore
evolves as an exact multinomial process, which
:class:`OpinionDynamics` subclasses express via
:meth:`OpinionDynamics.transition_probabilities`: for each current
opinion (group) the distribution over next opinions. The shared
:func:`run_dynamics` runner draws those multinomials and reports the
same :class:`~repro.core.results.RunResult` the paper's protocol
runners use, so head-to-head experiments are one loop.

The multinomial shortcut is exact only on the complete graph. On a
sparse substrate (``graph=`` parameter) :func:`run_dynamics` switches
to a literal per-node engine: each node samples
:attr:`OpinionDynamics.sample_size` neighbors from its CSR adjacency
and applies the dynamic's local rule
(:meth:`OpinionDynamics.local_update_batch`) — fully vectorized per
round, and distributionally identical to the multinomial path when the
graph happens to be dense.
"""

from __future__ import annotations

import numpy as np

from repro.core.results import RunResult, StepStats
from repro.engine.network import CompleteGraph
from repro.errors import ConfigurationError
from repro.workloads.bias import multiplicative_bias, plurality_color, validate_counts

__all__ = ["OpinionDynamics", "run_dynamics"]


class OpinionDynamics:
    """One synchronous-round opinion dynamic on the complete graph.

    Subclasses implement :meth:`transition_probabilities`. ``states``
    may exceed the number of opinions (e.g. the undecided-state dynamic
    appends an *undecided* state); :meth:`project_colors` maps the
    internal state-count vector back to opinion counts.
    """

    #: Human-readable protocol name (used in tables).
    name: str = "dynamics"

    #: Uniform contacts one node samples per round (graph-restricted path).
    sample_size: int = 1

    def initial_state(self, counts: np.ndarray) -> np.ndarray:
        """Internal state-count vector for initial opinion ``counts``."""
        return validate_counts(counts).copy()

    def project_colors(self, state: np.ndarray) -> np.ndarray:
        """Opinion counts visible in an internal state vector."""
        return state

    def transition_probabilities(self, state: np.ndarray) -> np.ndarray:
        """Row-stochastic matrix ``P[s, s']``: next-state law per group.

        ``P[s]`` is the outcome distribution of one node currently in
        state ``s`` given the population state (fractions of ``state``).
        """
        raise NotImplementedError

    def is_converged(self, state: np.ndarray) -> bool:
        """Default: a single opinion survives."""
        return int(np.count_nonzero(self.project_colors(state))) == 1

    def local_update_batch(
        self, own: np.ndarray, samples: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Per-node rule: next internal state from the sampled states.

        ``own`` is the length-``n`` current state per node and
        ``samples`` the ``(n, sample_size)`` matrix of sampled contact
        states; returns the length-``n`` next-state array. Only needed
        for graph-restricted simulation — dynamics that do not override
        it remain complete-graph (multinomial) only.
        """
        raise ConfigurationError(
            f"{self.name} does not define a local update rule; "
            "it can only run on the complete graph"
        )

    def step(self, state: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """One exact synchronous round: a multinomial per state group."""
        matrix = self.transition_probabilities(state)
        if matrix.shape != (state.size, state.size):
            raise ConfigurationError(
                f"{self.name}: transition matrix shape {matrix.shape} "
                f"does not match state size {state.size}"
            )
        new_state = np.zeros_like(state)
        for group in np.nonzero(state)[0]:
            # Clip float round-off (rows are built from complements and can
            # dip a few ulp below zero) before the exactness check.
            row = np.clip(matrix[group].astype(float), 0.0, None)
            total = float(row.sum())
            if not np.isclose(total, 1.0, atol=1e-9):
                raise ConfigurationError(
                    f"{self.name}: transition row {group} sums to {total}, expected 1"
                )
            new_state += rng.multinomial(int(state[group]), row / total)
        return new_state


class _GraphDynamicsEngine:
    """Literal per-node engine for dynamics on a sparse graph.

    Holds one internal state per node; each round samples
    ``dynamics.sample_size`` CSR neighbors per node (batched uniform
    draws, no per-call ``rng.choice``) and applies the local rule
    simultaneously across the population.
    """

    def __init__(self, dynamics: OpinionDynamics, counts: np.ndarray, graph, rng):
        state_counts = dynamics.initial_state(counts)
        self.states = int(state_counts.size)
        self.n = int(state_counts.sum())
        if len(graph) != self.n:
            raise ConfigurationError(
                f"graph has {len(graph)} nodes but counts sum to {self.n}"
            )
        if graph.min_degree < 1:
            raise ConfigurationError("graph has isolated nodes; dynamics need degree >= 1")
        self._graph = graph
        self._dynamics = dynamics
        self.node_state = np.repeat(np.arange(self.states), state_counts)
        rng.shuffle(self.node_state)

    def step(self, rng: np.random.Generator) -> np.ndarray:
        """One synchronous round; returns the new state-count vector."""
        dynamics = self._dynamics
        samples = np.empty((self.n, dynamics.sample_size), dtype=np.int64)
        for column in range(dynamics.sample_size):
            samples[:, column] = self.node_state[self._graph.sample_per_node(rng)]
        self.node_state = dynamics.local_update_batch(self.node_state, samples, rng)
        return np.bincount(self.node_state, minlength=self.states).astype(np.int64)


def run_dynamics(
    dynamics: OpinionDynamics,
    counts: np.ndarray,
    rng: np.random.Generator,
    *,
    max_rounds: int = 100_000,
    epsilon: float | None = None,
    record_trajectory: bool = False,
    graph=None,
) -> RunResult:
    """Run ``dynamics`` from initial opinion ``counts`` to consensus.

    Mirrors :func:`repro.core.synchronous.run_synchronous`'s contract:
    never raises on non-convergence — inspect ``result.converged``.
    ``graph=None`` (or a :class:`~repro.engine.network.CompleteGraph`)
    uses the exact multinomial engine; a sparse graph switches to the
    per-node engine driven by the dynamic's local rule.
    """
    counts = validate_counts(counts)
    n = int(counts.sum())
    plurality = plurality_color(counts)
    if graph is not None and isinstance(graph, CompleteGraph):
        graph = None  # identical semantics, keep the exact multinomial path
    engine = None if graph is None else _GraphDynamicsEngine(dynamics, counts, graph, rng)
    state = dynamics.initial_state(counts)
    trajectory: list[StepStats] = []
    epsilon_time: float | None = None
    rounds = 0
    converged = False
    while rounds < max_rounds:
        state = dynamics.step(state, rng) if engine is None else engine.step(rng)
        rounds += 1
        colors = dynamics.project_colors(state)
        if record_trajectory:
            trajectory.append(
                StepStats(
                    time=float(rounds),
                    top_generation=0,
                    top_generation_fraction=1.0,
                    plurality_fraction=float(colors.max()) / n,
                    bias=multiplicative_bias(colors) if colors.sum() else 1.0,
                )
            )
        if epsilon is not None and epsilon_time is None:
            if colors[plurality] >= (1.0 - epsilon) * n:
                epsilon_time = float(rounds)
        if dynamics.is_converged(state):
            converged = True
            break
    final = dynamics.project_colors(state)
    return RunResult(
        converged=converged,
        winner=int(np.argmax(final)),
        plurality_color=plurality,
        elapsed=float(rounds),
        final_color_counts=np.asarray(final, dtype=np.int64),
        epsilon_convergence_time=epsilon_time,
        trajectory=trajectory,
    )
