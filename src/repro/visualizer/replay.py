"""Build the self-contained replay page from a JSONL trace.

The pipeline is deliberately thin: :func:`build_replay_data` reuses the
offline analyzer (:mod:`repro.analysis.trace_metrics`) to reduce the
trace to per-segment population curves, aging-phase markers, and fault
ticks; :func:`render_replay_html` embeds that JSON into a static HTML
template whose inline script draws an SVG timeline with a scrubber.
No D3, no CDN, no network — the file works from ``file://`` and from a
CI artifact tarball.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.analysis.trace_metrics import (
    TraceSegment,
    load_trace,
    phase_timeline,
    population_curve,
    split_segments,
    truncation_dropped,
)
from repro.errors import ConfigurationError

__all__ = ["build_replay_data", "render_replay_html", "write_replay_html"]

#: Samples per population polyline — enough for smooth curves, small
#: enough that the embedded JSON stays a few tens of kilobytes.
CURVE_POINTS = 240


def _segment_payload(segment: TraceSegment) -> dict[str, Any]:
    try:
        times, rows = population_curve(segment, points=CURVE_POINTS)
    except ConfigurationError:
        times, rows = [], []
    k = max((len(row) for row in rows), default=0)
    series = [[row[c] if c < len(row) else 0 for row in rows] for c in range(k)]
    phases = [
        {
            "t": entry["first_entry"] if entry["birth"] is None else entry["birth"],
            "gen": entry["generation"],
        }
        for entry in phase_timeline(segment)
        if entry["birth"] is not None or entry["first_entry"] is not None
    ]
    faults = [
        {"t": float(record["t"]), "event": str(record.get("event", "fault"))}
        for record in segment.by_kind("fault")
    ]
    end = segment.end
    return {
        "protocol": segment.protocol,
        "n": segment.n,
        "times": times,
        "series": series,
        "phases": phases,
        "faults": faults,
        "converged": None if end is None else end.get("converged"),
        "end_t": None if end is None else end.get("t"),
    }


def build_replay_data(trace_path: str | Path) -> dict[str, Any]:
    """Reduce a trace file to the JSON payload the replay page embeds."""
    records = load_trace(trace_path)
    if not records:
        raise ConfigurationError(f"trace {trace_path} is empty")
    segments = split_segments(records)
    return {
        "trace": Path(trace_path).name,
        "records": len(records),
        "dropped": truncation_dropped(records),
        "segments": [_segment_payload(segment) for segment in segments],
    }


_TEMPLATE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>__TITLE__</title>
<style>
  body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem auto; max-width: 960px;
         color: #1a1a2e; background: #fafafa; }
  h1 { font-size: 1.3rem; } h2 { font-size: 1.05rem; margin: 1.6rem 0 .4rem; }
  .meta { color: #666; font-size: .85rem; }
  .panel { background: #fff; border: 1px solid #ddd; border-radius: 6px;
           padding: 1rem; margin-bottom: 1.2rem; }
  svg { width: 100%; height: auto; display: block; }
  .legend span { display: inline-block; margin-right: 1em; font-size: .85rem; }
  .swatch { display: inline-block; width: .8em; height: .8em; border-radius: 2px;
            margin-right: .3em; vertical-align: -1px; }
  input[type=range] { width: 100%; }
  .readout { font-variant-numeric: tabular-nums; font-size: .85rem; color: #333; }
  .warn { background: #fef2f2; border: 1px solid #dc2626; color: #991b1b;
          border-radius: 6px; padding: .6rem 1rem; margin-bottom: 1rem;
          font-weight: 600; }
</style>
</head>
<body>
<h1>__TITLE__</h1>
<p class="meta" id="meta"></p>
<div id="truncation"></div>
<div id="panels"></div>
<script id="replay-data" type="application/json">__DATA__</script>
<script>
"use strict";
const DATA = JSON.parse(document.getElementById("replay-data").textContent);
const COLORS = ["#2563eb", "#dc2626", "#16a34a", "#d97706", "#9333ea",
                "#0891b2", "#be185d", "#4d7c0f"];
const W = 900, H = 320, PAD = {l: 48, r: 12, t: 12, b: 28};

document.getElementById("meta").textContent =
  DATA.trace + " — " + DATA.records + " records, " +
  DATA.segments.length + " run segment(s)";

if (DATA.dropped) {
  const warn = document.createElement("p");
  warn.className = "warn";
  warn.textContent = "TRUNCATED TRACE: " + DATA.dropped + " record(s) were " +
    "dropped at the tracer's max_records cap — the curves below " +
    "underestimate the run's real activity.";
  document.getElementById("truncation").appendChild(warn);
}

function scale(domain, range) {
  const d = domain[1] - domain[0] || 1;
  return v => range[0] + (v - domain[0]) / d * (range[1] - range[0]);
}

function el(tag, attrs, parent) {
  const node = tag === "div" || tag === "span" || tag === "input" ||
               tag === "h2" || tag === "p"
    ? document.createElement(tag)
    : document.createElementNS("http://www.w3.org/2000/svg", tag);
  for (const [k, v] of Object.entries(attrs || {})) node.setAttribute(k, v);
  if (parent) parent.appendChild(node);
  return node;
}

DATA.segments.forEach((seg, index) => {
  const panel = el("div", {class: "panel"}, document.getElementById("panels"));
  const head = el("h2", {}, panel);
  head.textContent = "run " + (index + 1) + ": " + seg.protocol +
    (seg.n ? " (n=" + seg.n + ")" : "");
  if (!seg.times.length) {
    const p = el("p", {class: "meta"}, panel);
    p.textContent = "no population curve in this segment";
    return;
  }
  const tMax = seg.times[seg.times.length - 1] || 1;
  const yMax = Math.max(1, ...seg.series.map(s => Math.max(...s)));
  const x = scale([0, tMax], [PAD.l, W - PAD.r]);
  const y = scale([0, yMax], [H - PAD.b, PAD.t]);
  const svg = el("svg", {viewBox: "0 0 " + W + " " + H}, panel);

  // axes
  el("line", {x1: PAD.l, y1: H - PAD.b, x2: W - PAD.r, y2: H - PAD.b,
              stroke: "#999"}, svg);
  el("line", {x1: PAD.l, y1: PAD.t, x2: PAD.l, y2: H - PAD.b,
              stroke: "#999"}, svg);
  for (let i = 0; i <= 4; i++) {
    const v = yMax * i / 4;
    const ty = y(v);
    el("line", {x1: PAD.l - 4, y1: ty, x2: W - PAD.r, y2: ty,
                stroke: "#eee"}, svg);
    const label = el("text", {x: PAD.l - 8, y: ty + 4, "text-anchor": "end",
                              "font-size": 11, fill: "#666"}, svg);
    label.textContent = Math.round(v);
  }
  for (let i = 0; i <= 5; i++) {
    const t = tMax * i / 5;
    const label = el("text", {x: x(t), y: H - PAD.b + 16,
                              "text-anchor": "middle", "font-size": 11,
                              fill: "#666"}, svg);
    label.textContent = t.toFixed(1);
  }

  // aging-phase markers (generation births) — dashed verticals
  seg.phases.forEach(ph => {
    el("line", {x1: x(ph.t), y1: PAD.t, x2: x(ph.t), y2: H - PAD.b,
                stroke: "#94a3b8", "stroke-dasharray": "4 3"}, svg);
    const label = el("text", {x: x(ph.t) + 3, y: PAD.t + 10,
                              "font-size": 10, fill: "#64748b"}, svg);
    label.textContent = "gen " + ph.gen;
  });

  // fault ticks along the top edge
  seg.faults.forEach(f => {
    const tick = el("line", {x1: x(f.t), y1: PAD.t, x2: x(f.t), y2: PAD.t + 8,
                             stroke: "#dc2626", "stroke-width": 2}, svg);
    el("title", {}, tick).textContent = f.event + " @ " + f.t.toFixed(2);
  });

  // per-opinion population polylines
  seg.series.forEach((s, c) => {
    const pts = seg.times.map((t, i) => x(t) + "," + y(s[i])).join(" ");
    el("polyline", {points: pts, fill: "none",
                    stroke: COLORS[c % COLORS.length],
                    "stroke-width": 2, class: "curve"}, svg);
  });

  // scrubber cursor
  const cursor = el("line", {x1: x(0), y1: PAD.t, x2: x(0), y2: H - PAD.b,
                             stroke: "#111", "stroke-width": 1.5,
                             opacity: .7}, svg);

  const legend = el("div", {class: "legend"}, panel);
  seg.series.forEach((_, c) => {
    const item = el("span", {}, legend);
    const sw = el("span", {class: "swatch"}, item);
    sw.style.background = COLORS[c % COLORS.length];
    item.appendChild(document.createTextNode("opinion " + c));
  });

  const slider = el("input", {type: "range", min: 0,
                              max: seg.times.length - 1, value: 0}, panel);
  const readout = el("div", {class: "readout"}, panel);
  function update() {
    const i = +slider.value;
    const t = seg.times[i];
    cursor.setAttribute("x1", x(t));
    cursor.setAttribute("x2", x(t));
    readout.textContent = "t = " + t.toFixed(2) + "   counts = [" +
      seg.series.map(s => s[i]).join(", ") + "]";
  }
  slider.addEventListener("input", update);
  update();

  if (seg.converged !== null) {
    const p = el("p", {class: "meta"}, panel);
    p.textContent = "converged=" + seg.converged +
      (seg.end_t !== null ? " at t=" + Number(seg.end_t).toFixed(2) : "");
  }
});
</script>
</body>
</html>
"""


def render_replay_html(data: dict[str, Any], *, title: str | None = None) -> str:
    """Embed a replay payload into the static HTML template."""
    if title is None:
        title = f"trace replay — {data.get('trace', 'trace')}"
    # `</` must not appear inside an inline <script> block; JSON strings
    # survive the escape unchanged when re-parsed.
    payload = json.dumps(data, sort_keys=True).replace("</", "<\\/")
    return _TEMPLATE.replace("__TITLE__", title).replace("__DATA__", payload)


def write_replay_html(
    trace_path: str | Path,
    out_path: str | Path | None = None,
    *,
    title: str | None = None,
) -> Path:
    """Render ``trace_path`` to HTML next to it (or at ``out_path``)."""
    trace_path = Path(trace_path)
    if out_path is None:
        out_path = trace_path.with_suffix(".html")
    out_path = Path(out_path)
    html = render_replay_html(build_replay_data(trace_path), title=title)
    out_path.write_text(html, encoding="utf-8")
    return out_path
