"""Static-HTML trace replay (``repro trace-view``).

Turns one JSONL trace into a single self-contained HTML file — inline
data, inline vanilla-JS SVG timeline, zero external dependencies — so a
run can be scrubbed through in any browser straight off a CI artifact.
"""

from repro.visualizer.replay import (
    build_replay_data,
    render_replay_html,
    write_replay_html,
)

__all__ = ["build_replay_data", "render_replay_html", "write_replay_html"]
