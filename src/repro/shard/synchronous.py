"""Sharded simulators for Algorithm 1 (both synchronous engines).

Both simulators subclass the unsharded
:class:`~repro.core.synchronous._SynchronousBase`, so the entire run
loop — births, epsilon bookkeeping, trajectory, tracing, the
:class:`~repro.core.results.RunResult` contract — is literally the same
code; only :meth:`step` crosses the process boundary.

* :class:`ShardedAggregateSynchronousSim` — count-matrix slots, the
  generic count worker, distribution-identical to the unsharded engine
  (see :mod:`repro.shard.count_engine`).
* :class:`ShardedPerNodeSynchronousSim` — the full ``colors`` /
  ``generations`` arrays live in shared memory; each worker computes the
  update for its contiguous node slice while sampling contacts from the
  *whole* population (reads in phase one, slice writes in phase two).
  That is exactly the unsharded Markov kernel — per-node updates only
  read the previous round's state — so this engine, too, is
  distribution-identical, just not bit-identical (per-shard substreams
  replace the single stream).

Schedules are stateful (:class:`~repro.core.schedule.AdaptiveSchedule`
latches its decisions), so only the controller consults
``is_two_choices_step``; workers receive the decision through the
control word.

:func:`run_sharded_synchronous` is the front-end; at ``shards=1`` it
delegates to :func:`repro.core.synchronous.run_synchronous` without
consuming any extra randomness, keeping single-shard runs byte-identical
to the unsharded engines.
"""

from __future__ import annotations

import numpy as np

from repro.core.results import RunResult
from repro.core.schedule import Schedule
from repro.core.synchronous import _SynchronousBase, run_synchronous
from repro.engine.tracing import Tracer
from repro.errors import ConfigurationError
from repro.shard.count_engine import AggregateSyncKernel, count_worker
from repro.shard.partition import partition_counts, partition_nodes, shard_seed_sequences
from repro.shard.runtime import ShardHarness, ShardWorkerContext, SharedArray
from repro.workloads.bias import validate_counts
from repro.workloads.opinions import counts_to_assignment

__all__ = [
    "ShardedAggregateSynchronousSim",
    "ShardedPerNodeSynchronousSim",
    "run_sharded_synchronous",
]


def _validate_shard_run(n: int, shards: int) -> int:
    shards = int(shards)
    if shards < 2:
        raise ConfigurationError(
            "sharded simulators need shards >= 2; shards=1 is the unsharded "
            "engine (run_sharded_synchronous routes it automatically)"
        )
    if n < 2 * shards:
        raise ConfigurationError(
            f"n={n} is too small for {shards} shards (need >= 2 nodes per shard)"
        )
    return shards


class _ShardedSynchronousBase(_SynchronousBase):
    """Run-loop reuse plus harness lifecycle shared by both engines."""

    _harness: ShardHarness | None = None

    def run(self, **kwargs) -> RunResult:
        try:
            return super().run(**kwargs)
        finally:
            self.close()

    def close(self) -> None:
        """Stop the workers and release shared memory (idempotent)."""
        if self._harness is not None:
            self._harness.close()
            self._harness = None
        for name in ("_slots", "_rng_states", "_shared_colors", "_shared_generations"):
            block = getattr(self, name, None)
            if block is not None:
                block.close()
                setattr(self, name, None)


class ShardedAggregateSynchronousSim(_ShardedSynchronousBase):
    """Multiprocess count-matrix simulator (distribution-exact sharding).

    Shared state: one ``(rows, k)`` int64 slot per shard; the initial
    counts are split by the deterministic
    :func:`~repro.shard.partition.partition_counts`.
    """

    def __init__(
        self,
        counts: np.ndarray,
        schedule: Schedule,
        rng: np.random.Generator,
        *,
        shards: int,
        promotion: str = "pair",
        tracer: Tracer | None = None,
        start_method: str | None = None,
        metrics=None,
        resumable: bool = False,
        checkpoint_every: int = 100,
        max_restarts: int = 2,
    ):
        counts = validate_counts(counts)
        self.n = int(counts.sum())
        self.k = int(counts.size)
        self.shards = _validate_shard_run(self.n, shards)
        if promotion not in ("pair", "single"):
            raise ConfigurationError(
                f"promotion must be 'pair' or 'single', got {promotion!r}"
            )
        self.schedule = schedule
        schedule.reset()
        self._rng = rng
        if tracer is not None:
            self._tracer = tracer
        self._rows = schedule.max_generation + 2
        self.steps_done = 0
        slot_counts = partition_counts(counts, self.shards)
        self._slots = SharedArray.create((self.shards, self._rows, self.k), np.int64)
        self._slots.array[:, 0, :] = slot_counts
        seeds = shard_seed_sequences(rng, self.shards)
        kernel = AggregateSyncKernel(self.n, promotion)
        if resumable:
            # Recovery seam: shared generator-state rows + a checkpoint
            # controller that restarts the round loop on ShardError (see
            # repro.shard.recovery for the determinism contract).
            from repro.shard.recovery import (
                PCG64_STATE_WORDS,
                CheckpointingController,
                initial_rng_states,
            )

            self._rng_states = SharedArray.create(
                (self.shards, PCG64_STATE_WORDS), np.uint64
            )
            self._rng_states.array[:] = initial_rng_states(seeds)

            def build(resume: bool) -> ShardHarness:
                payloads = [
                    {
                        "slots_spec": self._slots.spec,
                        "kernel": kernel,
                        "seed_seq": seed,
                        "rng_state_spec": self._rng_states.spec,
                        "checkpoint_every": int(checkpoint_every),
                        "resume": resume,
                    }
                    for seed in seeds
                ]
                return ShardHarness(
                    count_worker, payloads, phases=2, start_method=start_method,
                    metrics=metrics,
                )

            self._harness = CheckpointingController(
                build,
                slots=self._slots,
                rng_states=self._rng_states,
                checkpoint_every=int(checkpoint_every),
                max_restarts=int(max_restarts),
                metrics=metrics,
            )
        else:
            payloads = [
                {"slots_spec": self._slots.spec, "kernel": kernel, "seed_seq": seed}
                for seed in seeds
            ]
            self._harness = ShardHarness(
                count_worker, payloads, phases=2, start_method=start_method,
                metrics=metrics,
            )

    def generation_color_matrix(self) -> np.ndarray:
        return self._slots.array.sum(axis=0)

    def step(self) -> None:
        self.steps_done += 1
        matrix = self.generation_color_matrix()
        # Same float expressions as the unsharded engine's schedule feed.
        fractions = matrix / self.n
        per_generation = fractions.sum(axis=1)
        top = int(np.nonzero(per_generation)[0][-1])
        two_choices_step = self.schedule.is_two_choices_step(
            self.steps_done, float(per_generation[top])
        )
        self._harness.step(flag=1.0 if two_choices_step else 0.0)


def pernode_worker(ctx: ShardWorkerContext, payload: dict) -> None:
    """Per-node shard round: update one node slice from full-state reads.

    The body mirrors :meth:`~repro.core.synchronous.PerNodeSynchronousSim.step`
    restricted to ``[start, stop)`` — contacts are sampled from the
    *whole* population via the shared arrays (shift trick skips only the
    sampler's own global index), every read happens before the first
    phase barrier and every write after it, so each round sees exactly
    the previous round's global state: the unsharded Markov kernel.
    """
    colors_block = SharedArray.attach(payload["colors_spec"])
    generations_block = SharedArray.attach(payload["generations_spec"])
    try:
        colors = colors_block.array
        generations = generations_block.array
        start, stop = payload["range"]
        n = int(payload["n"])
        rng = np.random.Generator(np.random.PCG64(payload["seed_seq"]))
        own = np.arange(start, stop)
        size = stop - start
        while True:
            ctx.wait()  # round start
            if ctx.stopped:
                break
            first = rng.integers(n - 1, size=size)
            second = rng.integers(n - 1, size=size)
            first += first >= own
            second += second >= own
            gen_a, col_a = generations[first], colors[first]
            gen_b, col_b = generations[second], colors[second]
            # Order so sample "a" is the higher-generation one.
            swap = gen_b > gen_a
            gen_a, gen_b = np.where(swap, gen_b, gen_a), np.where(swap, gen_a, gen_b)
            col_a, col_b = np.where(swap, col_b, col_a), np.where(swap, col_a, col_b)
            own_gens = generations[start:stop].copy()
            own_cols = colors[start:stop].copy()
            if ctx.flag:  # the controller's two-choices decision
                two_choices = (gen_a == gen_b) & (col_a == col_b) & (own_gens <= gen_a)
            else:
                two_choices = np.zeros(size, dtype=bool)
            propagation = ~two_choices & (gen_a > own_gens)
            new_gens = np.where(two_choices, gen_a + 1, np.where(propagation, gen_a, own_gens))
            new_cols = np.where(two_choices | propagation, col_a, own_cols)
            ctx.wait()  # everyone has read the old state; writes may begin
            generations[start:stop] = new_gens
            colors[start:stop] = new_cols
            ctx.wait()  # round complete
    finally:
        colors_block.close()
        generations_block.close()


class ShardedPerNodeSynchronousSim(_ShardedSynchronousBase):
    """Multiprocess per-node simulator over shared state arrays.

    The initial placement consumes ``rng`` exactly like the unsharded
    constructor (one uniform shuffle); the per-round sampling moves to
    the per-shard substreams.
    """

    def __init__(
        self,
        counts: np.ndarray,
        schedule: Schedule,
        rng: np.random.Generator,
        *,
        shards: int,
        tracer: Tracer | None = None,
        start_method: str | None = None,
        metrics=None,
    ):
        counts = validate_counts(counts)
        self.n = int(counts.sum())
        self.k = int(counts.size)
        self.shards = _validate_shard_run(self.n, shards)
        self.schedule = schedule
        schedule.reset()
        self._rng = rng
        if tracer is not None:
            self._tracer = tracer
        self._rows = schedule.max_generation + 2
        self.steps_done = 0
        self._shared_colors = SharedArray.create((self.n,), np.int64)
        self._shared_generations = SharedArray.create((self.n,), np.int64)
        self._shared_colors.array[:] = counts_to_assignment(counts, rng)
        ranges = partition_nodes(self.n, self.shards)
        seeds = shard_seed_sequences(rng, self.shards)
        payloads = [
            {
                "colors_spec": self._shared_colors.spec,
                "generations_spec": self._shared_generations.spec,
                "range": node_range,
                "n": self.n,
                "seed_seq": seed,
            }
            for node_range, seed in zip(ranges, seeds)
        ]
        self._harness = ShardHarness(
            pernode_worker, payloads, phases=2, start_method=start_method,
            metrics=metrics,
        )

    def generation_color_matrix(self) -> np.ndarray:
        flat = np.bincount(
            self._shared_generations.array * self.k + self._shared_colors.array,
            minlength=self._rows * self.k,
        )
        return flat.reshape(self._rows, self.k).astype(np.int64, copy=False)

    def step(self) -> None:
        self.steps_done += 1
        generations = self._shared_generations.array
        top = int(generations.max())
        top_fraction = float(np.count_nonzero(generations == top)) / self.n
        two_choices_step = self.schedule.is_two_choices_step(self.steps_done, top_fraction)
        self._harness.step(flag=1.0 if two_choices_step else 0.0)


def run_sharded_synchronous(
    counts: np.ndarray,
    schedule: Schedule,
    rng: np.random.Generator,
    *,
    shards: int,
    engine: str = "aggregate",
    max_steps: int = 10_000,
    epsilon: float | None = None,
    record_trajectory: bool = False,
    tracer: Tracer | None = None,
    start_method: str | None = None,
    metrics=None,
    resumable: bool = False,
    checkpoint_every: int = 100,
    max_restarts: int = 2,
) -> RunResult:
    """Sharded twin of :func:`repro.core.synchronous.run_synchronous`.

    ``shards=1`` delegates straight to the unsharded front-end — no
    worker processes, no extra randomness consumed — so single-shard
    results are byte-identical to the existing engines. The sharded
    engines support the default scenario only (complete graph, no
    round faults, no explicit placement); the sweep target validates
    those combinations upfront.

    ``resumable=True`` (aggregate engine only) checkpoints count slots
    and per-shard generator states every ``checkpoint_every`` rounds
    and survives up to ``max_restarts`` worker failures per run by
    restarting from the last checkpoint with fresh workers — the
    recovered run is bit-identical to an unfaulted one (see
    :mod:`repro.shard.recovery`). The per-node engine keeps per-node
    state the checkpoint does not capture, so the combination is
    rejected rather than silently unprotected.
    """
    if int(shards) == 1:
        return run_synchronous(
            counts,
            schedule,
            rng,
            engine=engine,
            max_steps=max_steps,
            epsilon=epsilon,
            record_trajectory=record_trajectory,
            tracer=tracer,
            metrics=metrics,
        )
    if engine == "aggregate":
        sim: _ShardedSynchronousBase = ShardedAggregateSynchronousSim(
            counts, schedule, rng, shards=shards, tracer=tracer,
            start_method=start_method, metrics=metrics,
            resumable=resumable, checkpoint_every=checkpoint_every,
            max_restarts=max_restarts,
        )
    elif engine == "pernode":
        if resumable:
            raise ConfigurationError(
                "resumable=True supports the count-state engines only; the "
                "per-node engine's full colors/generations state is not "
                "checkpointed (use engine='aggregate')"
            )
        sim = ShardedPerNodeSynchronousSim(
            counts, schedule, rng, shards=shards, tracer=tracer,
            start_method=start_method, metrics=metrics,
        )
    else:
        raise ConfigurationError(
            f"unknown engine {engine!r}; use 'aggregate' or 'pernode'"
        )
    result = sim.run(
        max_steps=max_steps, epsilon=epsilon, record_trajectory=record_trajectory
    )
    # Same protocol-level counters as the unsharded epilogue, so
    # shards=1 and shards>1 snapshots agree on everything that is a pure
    # function of the run; the shard.* instruments ride in via the
    # harness and worker sidecars.
    sim.publish_metrics(metrics, result)
    return result
