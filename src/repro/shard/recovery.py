"""Checkpoint–restart recovery for the sharded count engines.

A :class:`~repro.shard.runtime.ShardError` normally discards the whole
run — unacceptable at n=10^7, where a single OOM-killed worker at round
40,000 wastes everything before it. This module adds the recovery seam
the ``resumable=`` flag on the sharded front-ends threads through:

* every K rounds each worker writes its generator state into a shared
  ``(shards, PCG64_STATE_WORDS)`` uint64 array (packed via
  :func:`pack_pcg64_state`) right after writing its count slot, and the
  controller snapshots count slots + generator states + round number
  into private copies;
* :class:`CheckpointingController` wraps the harness ``step`` call: on
  ``ShardError`` it tears the harness down, restores shared state from
  the snapshot, rebuilds fresh workers in *resume* mode (generators
  reconstructed from the saved states instead of the seed sequences),
  and replays the recorded per-round control flags up to the failure
  point.

**Determinism contract.** The count-engine workers consume randomness
only inside ``kernel.advance``, exactly once per round, and the
controller records every round's control flag instead of re-consulting
its (stateful) schedule during replay. Restoring counts + generator
states to round R and replaying the recorded flags therefore reproduces
rounds R+1..crash *bit-identically* — a killed-and-resumed run equals
the unfaulted run, not merely statistically. This holds for the
count-state engines only; the per-node synchronous engine and the
population scheduler keep state the checkpoint does not capture and are
deliberately not resumable (``resumable=`` raises there).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import ConfigurationError
from repro.shard.runtime import ROUND, ShardError, ShardHarness, SharedArray

__all__ = [
    "PCG64_STATE_WORDS",
    "pack_pcg64_state",
    "unpack_pcg64_state",
    "initial_rng_states",
    "CheckpointingController",
]

#: uint64 words per packed PCG64 state: 128-bit ``state`` (lo, hi),
#: 128-bit ``inc`` (lo, hi), ``has_uint32``, ``uinteger``.
PCG64_STATE_WORDS = 6

_U64 = (1 << 64) - 1


def pack_pcg64_state(state: dict) -> np.ndarray:
    """Pack ``PCG64.state`` into :data:`PCG64_STATE_WORDS` uint64 words."""
    if state.get("bit_generator") != "PCG64":
        raise ConfigurationError(
            f"can only checkpoint PCG64 generators, got "
            f"{state.get('bit_generator')!r}"
        )
    inner = state["state"]
    return np.array(
        [
            inner["state"] & _U64,
            (inner["state"] >> 64) & _U64,
            inner["inc"] & _U64,
            (inner["inc"] >> 64) & _U64,
            int(state["has_uint32"]) & _U64,
            int(state["uinteger"]) & _U64,
        ],
        dtype=np.uint64,
    )


def unpack_pcg64_state(words: np.ndarray) -> dict:
    """Inverse of :func:`pack_pcg64_state` (a ``PCG64.state`` dict)."""
    w = [int(word) for word in words]
    return {
        "bit_generator": "PCG64",
        "state": {"state": w[0] | (w[1] << 64), "inc": w[2] | (w[3] << 64)},
        "has_uint32": w[4],
        "uinteger": w[5],
    }


def restored_generator(words: np.ndarray) -> np.random.Generator:
    """A generator continuing exactly where the packed state left off."""
    bit_generator = np.random.PCG64()
    bit_generator.state = unpack_pcg64_state(words)
    return np.random.Generator(bit_generator)


def initial_rng_states(seed_seqs) -> np.ndarray:
    """Round-0 checkpoint rows: the pristine per-shard generator states.

    Computed controller-side from the same seed sequences the workers
    would consume, so a crash before the first worker-written checkpoint
    restarts from the exact initial states.
    """
    return np.stack(
        [pack_pcg64_state(np.random.PCG64(seq).state) for seq in seed_seqs]
    )


class CheckpointingController:
    """Harness wrapper: snapshot every K rounds, restart on ``ShardError``.

    Drop-in for the bare harness at the simulators' call sites — it
    exposes ``step(flag=..., extra=...)`` and ``close()`` — but owns the
    harness lifecycle: ``build`` is called with ``resume=False`` for the
    initial workers and ``resume=True`` after every restart (payloads
    must then tell :func:`~repro.shard.count_engine.count_worker` to
    reconstruct generators from the shared state rows).

    ``max_restarts`` bounds recovery attempts per run; exhausting it
    re-raises the last :class:`~repro.shard.runtime.ShardError`.
    """

    def __init__(
        self,
        build: Callable[[bool], ShardHarness],
        *,
        slots: SharedArray,
        rng_states: SharedArray,
        checkpoint_every: int,
        max_restarts: int = 2,
        metrics=None,
    ):
        if checkpoint_every < 1:
            raise ConfigurationError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        if max_restarts < 0:
            raise ConfigurationError(
                f"max_restarts must be >= 0, got {max_restarts}"
            )
        self._build = build
        self._slots = slots
        self._rng_states = rng_states
        self.checkpoint_every = int(checkpoint_every)
        self.max_restarts = int(max_restarts)
        self.restarts = 0
        self._metrics = metrics if metrics is not None and metrics.enabled else None
        self._round = 0
        # Per-round control words since the last snapshot; replayed
        # verbatim on restart (never re-derived — the schedule that
        # produced them is stateful).
        self._pending: list[tuple[float, float]] = []
        self._applied = 0
        self._harness: ShardHarness | None = build(False)
        self._snapshot()

    # -- snapshot / restore ------------------------------------------------

    def _snapshot(self) -> None:
        self._ckpt_round = self._round
        self._ckpt_slots = self._slots.array.copy()
        self._ckpt_rng = self._rng_states.array.copy()
        self._pending = []
        self._applied = 0

    def _restart(self) -> None:
        """Tear down, restore the checkpoint, rebuild resume workers."""
        self.restarts += 1
        if self._metrics is not None:
            self._metrics.counter("shard.restarts").inc()
        if self._harness is not None:
            # Already closed by the error path in the common case;
            # close() is idempotent and also reaps a hung worker.
            self._harness.close()
        self._slots.array[:] = self._ckpt_slots
        self._rng_states.array[:] = self._ckpt_rng
        self._harness = self._build(True)
        # Continue the round numbering: workers key their checkpoint
        # writes off control[ROUND], which a fresh harness resets.
        self._harness.control.array[ROUND] = float(self._ckpt_round)
        self._applied = 0

    # -- harness surface ---------------------------------------------------

    def step(self, *, flag: float = 0.0, extra: float = 0.0) -> None:
        """One supervised round (replaying from the checkpoint on failure)."""
        self._pending.append((flag, extra))
        while True:
            try:
                while self._applied < len(self._pending):
                    replay_flag, replay_extra = self._pending[self._applied]
                    self._harness.step(flag=replay_flag, extra=replay_extra)
                    self._applied += 1
                break
            except ShardError:
                if self.restarts >= self.max_restarts:
                    raise
                self._restart()
        self._round += 1
        if self._round % self.checkpoint_every == 0:
            self._snapshot()

    def close(self) -> None:
        if self._harness is not None:
            self._harness.close()
            self._harness = None
