"""Deterministic node/count partitioning and per-shard RNG substreams.

Everything here is a pure function of its arguments — no RNG is
consumed, no global state touched — so the partition layout for a given
``(n, shards)`` pair is identical across runs, processes, and platforms.
That purity is what the equivalence harness leans on: the only
randomness in a sharded run flows through the per-shard
:class:`~numpy.random.SeedSequence` children derived once, up front, by
:func:`shard_seed_sequences`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["partition_nodes", "partition_counts", "shard_seed_sequences"]


def _validate_shards(n: int, shards: int) -> tuple[int, int]:
    n = int(n)
    shards = int(shards)
    if shards < 1:
        raise ConfigurationError(f"shards must be >= 1, got {shards}")
    if n < shards:
        raise ConfigurationError(
            f"cannot partition {n} nodes into {shards} non-empty shards"
        )
    return n, shards


def partition_nodes(n: int, shards: int) -> list[tuple[int, int]]:
    """Split ``range(n)`` into ``shards`` contiguous ``[start, stop)`` ranges.

    The first ``n % shards`` shards receive one extra node, so shard
    sizes are balanced within ±1 and every node belongs to exactly one
    shard. Pure function of ``(n, shards)``.
    """
    n, shards = _validate_shards(n, shards)
    base, extra = divmod(n, shards)
    ranges: list[tuple[int, int]] = []
    start = 0
    for index in range(shards):
        stop = start + base + (1 if index < extra else 0)
        ranges.append((start, stop))
        start = stop
    return ranges


def partition_counts(counts: np.ndarray, shards: int) -> np.ndarray:
    """Split a count array into per-shard counts summing to the original.

    Conceptually the nodes are laid out in category order (all of
    category 0 first, then category 1, …) and cut at the
    :func:`partition_nodes` boundaries; each shard's counts are the
    category populations of its interval. The result has shape
    ``(shards, *counts.shape)``, every shard's total matches its
    :func:`partition_nodes` size, and columns sum to the input exactly.
    Pure function — anonymous engines only see counts, so any fixed
    deterministic split realizes the same process law.
    """
    counts = np.asarray(counts, dtype=np.int64)
    flat = counts.ravel()
    if flat.size == 0:
        raise ConfigurationError("cannot partition an empty count array")
    if (flat < 0).any():
        raise ConfigurationError("counts must be non-negative")
    edges = np.concatenate(([0], np.cumsum(flat)))
    n = int(edges[-1])
    ranges = partition_nodes(n, shards)
    out = np.empty((len(ranges), flat.size), dtype=np.int64)
    for index, (start, stop) in enumerate(ranges):
        lo = np.clip(edges[:-1], start, stop)
        hi = np.clip(edges[1:], start, stop)
        out[index] = hi - lo
    return out.reshape((len(ranges),) + counts.shape)


def shard_seed_sequences(
    rng: np.random.Generator, shards: int
) -> list[np.random.SeedSequence]:
    """Derive one child :class:`~numpy.random.SeedSequence` per shard.

    The children come from ``SeedSequence.spawn`` on the generator's own
    seed sequence — the same derivation tree the registry uses — so they
    are deterministic for a given registry stream, statistically
    independent of each other and of the parent stream, and picklable
    (they cross the process boundary in the worker payload). Spawning
    does **not** advance the generator's bit stream: the controller can
    keep drawing from ``rng`` afterwards exactly as the unsharded engine
    would.

    Call this once per run — ``spawn`` increments the parent's child
    counter, so a second call yields a *different* (still deterministic)
    batch.
    """
    if shards < 1:
        raise ConfigurationError(f"shards must be >= 1, got {shards}")
    seed_seq = getattr(rng.bit_generator, "seed_seq", None)
    if not isinstance(seed_seq, np.random.SeedSequence):
        raise ConfigurationError(
            "sharding requires a generator built from a SeedSequence "
            "(every RngRegistry stream qualifies)"
        )
    return list(seed_seq.spawn(int(shards)))
