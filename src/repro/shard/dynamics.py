"""Sharded runner for the anonymous opinion dynamics (baselines).

:func:`run_sharded_dynamics` mirrors
:func:`repro.baselines.base.run_dynamics` — same bookkeeping, same
:class:`~repro.core.results.RunResult` contract — with the per-round
multinomial fanned out over shard workers through the generic count
engine (:mod:`repro.shard.count_engine`), which is
distribution-identical to the unsharded round. ``shards=1`` delegates
to the unsharded runner untouched.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import OpinionDynamics, run_dynamics
from repro.core.results import RunResult, StepStats
from repro.engine.tracing import NULL_TRACER
from repro.errors import ConfigurationError
from repro.shard.count_engine import DynamicsKernel, count_worker
from repro.shard.partition import partition_counts, shard_seed_sequences
from repro.shard.runtime import ShardHarness, SharedArray
from repro.workloads.bias import multiplicative_bias, plurality_color, validate_counts

__all__ = ["run_sharded_dynamics"]


def run_sharded_dynamics(
    dynamics: OpinionDynamics,
    counts: np.ndarray,
    rng: np.random.Generator,
    *,
    shards: int,
    max_rounds: int = 100_000,
    epsilon: float | None = None,
    record_trajectory: bool = False,
    tracer=None,
    start_method: str | None = None,
    metrics=None,
    resumable: bool = False,
    checkpoint_every: int = 100,
    max_restarts: int = 2,
) -> RunResult:
    """Run ``dynamics`` to consensus across ``shards`` worker processes.

    ``resumable=True`` adds the count-engine checkpoint–restart seam:
    count slots and per-shard generator states snapshot every
    ``checkpoint_every`` rounds, and a worker failure restarts the
    round loop from the last checkpoint (bit-identical recovery — see
    :mod:`repro.shard.recovery`).
    """
    if int(shards) == 1:
        return run_dynamics(
            dynamics,
            counts,
            rng,
            max_rounds=max_rounds,
            epsilon=epsilon,
            record_trajectory=record_trajectory,
            tracer=tracer,
            metrics=metrics,
        )
    counts = validate_counts(counts)
    n = int(counts.sum())
    if n < 2 * int(shards):
        raise ConfigurationError(
            f"n={n} is too small for {shards} shards (need >= 2 nodes per shard)"
        )
    plurality = plurality_color(counts)
    initial_state = dynamics.initial_state(counts)
    states = int(initial_state.size)
    slots = SharedArray.create((int(shards), states), np.int64)
    slots.array[:] = partition_counts(initial_state, int(shards))
    seeds = shard_seed_sequences(rng, int(shards))
    kernel = DynamicsKernel(dynamics)
    if tracer is None:
        tracer = NULL_TRACER
    trace_round = tracer.enabled_for("round")
    if tracer.enabled_for("run"):
        tracer.record(
            "run", 0.0, protocol=f"dynamics:{dynamics.name}",
            n=n, k=int(counts.size), counts=[int(c) for c in counts],
        )
    trajectory: list[StepStats] = []
    epsilon_time: float | None = None
    rounds = 0
    converged = False
    rng_states = None
    if resumable:
        from repro.shard.recovery import (
            PCG64_STATE_WORDS,
            CheckpointingController,
            initial_rng_states,
        )

        rng_states = SharedArray.create((int(shards), PCG64_STATE_WORDS), np.uint64)
        rng_states.array[:] = initial_rng_states(seeds)

        def build(resume: bool) -> ShardHarness:
            payloads = [
                {
                    "slots_spec": slots.spec,
                    "kernel": kernel,
                    "seed_seq": seed,
                    "rng_state_spec": rng_states.spec,
                    "checkpoint_every": int(checkpoint_every),
                    "resume": resume,
                }
                for seed in seeds
            ]
            return ShardHarness(
                count_worker, payloads, phases=2, start_method=start_method,
                metrics=metrics,
            )

        harness = CheckpointingController(
            build,
            slots=slots,
            rng_states=rng_states,
            checkpoint_every=int(checkpoint_every),
            max_restarts=int(max_restarts),
            metrics=metrics,
        )
    else:
        payloads = [
            {"slots_spec": slots.spec, "kernel": kernel, "seed_seq": seed}
            for seed in seeds
        ]
        harness = ShardHarness(
            count_worker, payloads, phases=2, start_method=start_method,
            metrics=metrics,
        )
    try:
        while rounds < max_rounds:
            harness.step()
            rounds += 1
            state = slots.array.sum(axis=0)
            colors = dynamics.project_colors(state)
            if trace_round:
                tracer.record(
                    "round", float(rounds), counts=[int(c) for c in colors],
                    top_gen=0,
                )
            if record_trajectory:
                trajectory.append(
                    StepStats(
                        time=float(rounds),
                        top_generation=0,
                        top_generation_fraction=1.0,
                        plurality_fraction=float(colors.max()) / n,
                        bias=multiplicative_bias(colors) if colors.sum() else 1.0,
                    )
                )
            if epsilon is not None and epsilon_time is None:
                if colors[plurality] >= (1.0 - epsilon) * n:
                    epsilon_time = float(rounds)
            if dynamics.is_converged(state):
                converged = True
                break
        final = dynamics.project_colors(slots.array.sum(axis=0))
    finally:
        harness.close()
        slots.close()
        if rng_states is not None:
            rng_states.close()
    if tracer.enabled_for("end"):
        tracer.record(
            "end", float(rounds), converged=converged,
            counts=[int(c) for c in final], eps_time=epsilon_time,
        )
    if metrics is not None and metrics.enabled:
        # Mirror the unsharded run_dynamics epilogue so shard counts
        # agree on the protocol-level counters.
        metrics.counter(f"dynamics.runs.{dynamics.name}").inc()
        metrics.counter("dynamics.rounds").inc(rounds)
        if converged:
            metrics.counter("dynamics.converged_runs").inc()
    return RunResult(
        converged=converged,
        winner=int(np.argmax(final)),
        plurality_color=plurality,
        elapsed=float(rounds),
        final_color_counts=np.asarray(final, dtype=np.int64),
        epsilon_convergence_time=epsilon_time,
        trajectory=trajectory,
    )
