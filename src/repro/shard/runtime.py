"""Shared-memory blocks and the tick-barrier controller runtime.

The execution model is the simple synchronous design: one controller
process (the caller) and ``shards`` worker processes, all meeting at a
single reusable :class:`multiprocessing.Barrier` with ``shards + 1``
parties. One simulation round is a fixed barrier cadence:

1. **start barrier** — the controller has published this round's control
   words (command, per-round knobs); workers read them and either exit
   (``CMD_STOP``) or begin the round.
2. **phase barriers** (engine-chosen count) — e.g. the count engines use
   two: after the first every worker has *read* the global shared state,
   after the second every worker has *written* its own slice, so reads
   and writes never overlap.

Between rounds only the controller touches shared state (convergence
checks, cross-shard exchange), so no locks are needed anywhere — the
barrier cadence is the whole synchronization story.

Failure handling: a worker that raises pushes ``(shard, traceback)``
onto an error queue and aborts the barrier; everyone else's ``wait``
then raises ``BrokenBarrierError``, the controller drains the queue and
re-raises as :class:`ShardError` with the worker traceback inline.
Hung workers trip the same path via the barrier timeout.

The default start method is ``fork`` (cheap, and the payloads are
already picklable so ``spawn`` works too — exercised in the test suite
via the ``start_method`` parameter).
"""

from __future__ import annotations

import multiprocessing
import os
import tempfile
import time
import traceback
from multiprocessing import shared_memory
from threading import BrokenBarrierError
from time import perf_counter
from typing import Any, Callable

import numpy as np

from repro.engine.metrics import TIME_BUCKETS, MetricsRegistry, load_snapshot
from repro.errors import SimulationError

__all__ = ["SharedArray", "ShardHarness", "ShardWorkerContext", "ShardError"]

#: Control-word layout (a small shared float64 array).
CMD, ROUND, FLAG, EXTRA = 0, 1, 2, 3
_CONTROL_SLOTS = 8
CMD_RUN, CMD_STOP = 0.0, 1.0

_DEFAULT_TIMEOUT = 300.0


class ShardError(SimulationError):
    """A shard worker crashed or the barrier protocol broke down."""


class SharedArray:
    """A numpy array backed by named shared memory.

    The creating side owns the segment (``unlink`` on close); attaching
    sides only map it. ``spec`` is the picklable handle workers use to
    attach: ``(name, shape, dtype-str)``.
    """

    def __init__(self, shm: shared_memory.SharedMemory, shape, dtype, *, owner: bool):
        self._shm = shm
        self._owner = owner
        self.array = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf)

    @classmethod
    def create(cls, shape, dtype) -> "SharedArray":
        size = max(1, int(np.prod(shape)) * np.dtype(dtype).itemsize)
        shm = shared_memory.SharedMemory(create=True, size=size)
        block = cls(shm, shape, dtype, owner=True)
        block.array.fill(0)
        return block

    @property
    def spec(self) -> tuple[str, tuple, str]:
        return (self._shm.name, tuple(self.array.shape), self.array.dtype.str)

    @classmethod
    def attach(cls, spec: tuple[str, tuple, str]) -> "SharedArray":
        name, shape, dtype = spec
        # Attaching registers the segment with the (process-tree-wide)
        # resource tracker a second time; the tracker's cache is a set,
        # so the duplicate is harmless and the owner's unlink clears it.
        shm = shared_memory.SharedMemory(name=name)
        return cls(shm, shape, dtype, owner=False)

    def close(self) -> None:
        # The numpy view holds a buffer export on shm.buf; drop it first
        # or SharedMemory.close raises BufferError.
        self.array = None
        self._shm.close()
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass


class ShardWorkerContext:
    """Worker-side view of the barrier protocol and control words.

    When the harness runs with metrics enabled, ``metrics`` is a live
    per-worker :class:`~repro.engine.metrics.MetricsRegistry` (written to
    a sidecar file at worker exit and merged by the controller) and every
    ``wait`` feeds the ``shard.barrier_wait_seconds`` histogram — the
    direct read on shard imbalance. Without metrics, ``wait`` stays the
    bare barrier call.
    """

    def __init__(
        self,
        index: int,
        barrier,
        control: np.ndarray,
        timeout: float,
        metrics: MetricsRegistry | None = None,
        heartbeat: np.ndarray | None = None,
    ):
        self.index = index
        self.control = control
        self._barrier = barrier
        self._timeout = timeout
        self.metrics = metrics
        self._heartbeat = heartbeat
        self._wait_hist = (
            metrics.histogram("shard.barrier_wait_seconds", TIME_BUCKETS)
            if metrics is not None and metrics.enabled
            else None
        )

    def wait(self) -> None:
        # Bump the liveness word *before* parking at the barrier: on a
        # controller-side timeout, shards whose count trails the maximum
        # are the ones that never arrived — the stuck ones.
        if self._heartbeat is not None:
            self._heartbeat[self.index] += 1.0
        if self._wait_hist is None:
            self._barrier.wait(self._timeout)
            return
        start = perf_counter()
        self._barrier.wait(self._timeout)
        self._wait_hist.observe(perf_counter() - start)

    @property
    def stopped(self) -> bool:
        return self.control[CMD] == CMD_STOP

    @property
    def flag(self) -> float:
        return float(self.control[FLAG])

    @property
    def extra(self) -> float:
        return float(self.control[EXTRA])


def _worker_entry(
    worker: Callable[[ShardWorkerContext, dict], None],
    index: int,
    barrier,
    control_spec: tuple,
    errors,
    payload: dict,
    timeout: float,
    metrics_path: str | None = None,
    heartbeat_spec: tuple | None = None,
) -> None:
    control = SharedArray.attach(control_spec)
    heartbeat = (
        SharedArray.attach(heartbeat_spec) if heartbeat_spec is not None else None
    )
    metrics = MetricsRegistry() if metrics_path is not None else None
    try:
        worker(
            ShardWorkerContext(
                index,
                barrier,
                control.array,
                timeout,
                metrics,
                heartbeat.array if heartbeat is not None else None,
            ),
            payload,
        )
        if metrics is not None:
            metrics.write(metrics_path)
    except BrokenBarrierError:
        # Another shard (or the controller) already failed; exit quietly.
        pass
    except BaseException:
        errors.put((index, traceback.format_exc()))
        barrier.abort()
    finally:
        control.close()
        if heartbeat is not None:
            heartbeat.close()


class ShardHarness:
    """Controller-side lifecycle for ``shards`` barrier-driven workers.

    ``worker`` must be a module-level function
    ``worker(ctx: ShardWorkerContext, payload: dict) -> None`` running
    the per-round loop (see the module docstring cadence); ``payloads``
    carries one picklable dict per shard. ``phases`` is the number of
    barriers each round uses *after* the start barrier.
    """

    def __init__(
        self,
        worker: Callable[[ShardWorkerContext, dict], None],
        payloads: list[dict],
        *,
        phases: int,
        timeout: float = _DEFAULT_TIMEOUT,
        start_method: str | None = None,
        metrics=None,
    ):
        self.shards = len(payloads)
        self.phases = int(phases)
        self._timeout = float(timeout)
        ctx = multiprocessing.get_context(start_method or "fork")
        self._barrier = ctx.Barrier(self.shards + 1)
        self._errors = ctx.SimpleQueue()
        self.control = SharedArray.create((_CONTROL_SLOTS,), np.float64)
        # Per-shard liveness counters (bumped before every barrier wait)
        # so a barrier timeout can name the shard that never arrived.
        self._heartbeat = SharedArray.create((self.shards,), np.float64)
        self._stopped = False
        # Metrics are opt-in: workers get a per-shard sidecar file for
        # their registries (merged into ours on a clean stop) and the
        # controller times each round. With metrics off, every hot-path
        # branch below reduces to a None check.
        self._metrics = metrics if metrics is not None and metrics.enabled else None
        self._sidecar_dir: str | None = None
        sidecars: list[str | None] = [None] * self.shards
        if self._metrics is not None:
            self._sidecar_dir = tempfile.mkdtemp(prefix="repro-shard-metrics-")
            sidecars = [
                os.path.join(self._sidecar_dir, f"shard-{index:04d}.json")
                for index in range(self.shards)
            ]
            self._metrics.gauge("shard.workers").set(self.shards)
            self._round_hist = self._metrics.histogram(
                "shard.round_seconds", TIME_BUCKETS
            )
            self._rounds_counter = self._metrics.counter("shard.rounds")
        self._procs = [
            ctx.Process(
                target=_worker_entry,
                args=(
                    worker,
                    index,
                    self._barrier,
                    self.control.spec,
                    self._errors,
                    payload,
                    self._timeout,
                    sidecar,
                    self._heartbeat.spec,
                ),
                name=f"shard-{index}",
                daemon=True,
            )
            for index, (payload, sidecar) in enumerate(zip(payloads, sidecars))
        ]
        for proc in self._procs:
            proc.start()

    def _wait(self) -> None:
        # Poll until every worker is parked at the barrier before
        # joining it ourselves: a worker that died (spawn import error,
        # OOM kill) or crashed is then detected immediately instead of
        # after the full barrier timeout.
        barrier = self._barrier
        deadline = time.monotonic() + self._timeout
        while barrier.n_waiting < self.shards:
            if barrier.broken:
                # A healthy worker's own barrier wait timing out (it
                # shares self._timeout) aborts the barrier before the
                # controller deadline below fires; the heartbeats still
                # name the shard(s) that never arrived.
                self._raise_worker_error(
                    "a worker aborted the barrier; "
                    f"stuck shard(s): {self._stuck_shards()}"
                )
            for proc in self._procs:
                if not proc.is_alive():
                    self._raise_worker_error(
                        f"worker process for shard {proc.name} died "
                        f"with exit code {proc.exitcode}"
                    )
            if time.monotonic() > deadline:
                stuck = self._stuck_shards()
                barrier.abort()
                self._raise_worker_error(
                    f"barrier timeout after {self._timeout}s; "
                    f"stuck shard(s): {stuck}"
                )
            time.sleep(0.0002)
        try:
            barrier.wait(self._timeout)
        except BrokenBarrierError:
            self._raise_worker_error("barrier broke during release")

    def _stuck_shards(self) -> list[int]:
        """Shards whose heartbeat trails the front — the ones not at the
        barrier. All-equal heartbeats mean every shard stalled at the
        same point; report them all rather than none."""
        beats = self._heartbeat.array
        front = float(beats.max())
        behind = [int(i) for i in np.nonzero(beats < front)[0]]
        return behind if behind else list(range(self.shards))

    def _raise_worker_error(self, reason: str) -> None:
        self._stopped = True  # barrier is compromised; skip the stop round
        failures = []
        while not self._errors.empty():
            failures.append(self._errors.get())
        self.close()
        if failures:
            shard, trace = failures[0]
            raise ShardError(
                f"shard worker {shard} failed (of {len(failures)} failure(s)):\n{trace}"
            )
        raise ShardError(f"shard run failed: {reason}")

    def step(self, *, flag: float = 0.0, extra: float = 0.0) -> None:
        """Run one full round: publish control words, walk the barriers."""
        start = perf_counter() if self._metrics is not None else 0.0
        control = self.control.array
        control[CMD] = CMD_RUN
        control[ROUND] += 1.0
        control[FLAG] = flag
        control[EXTRA] = extra
        self._wait()  # start: workers pick up the round
        for _ in range(self.phases):
            self._wait()
        if self._metrics is not None:
            self._round_hist.observe(perf_counter() - start)
            self._rounds_counter.inc()

    def stop(self) -> None:
        """Release workers into a stop round and join them (idempotent)."""
        if self._stopped:
            return
        self._stopped = True
        self.control.array[CMD] = CMD_STOP
        try:
            self._barrier.wait(self._timeout)
        except BrokenBarrierError:  # pragma: no cover - racing a crash
            pass
        for proc in self._procs:
            proc.join(self._timeout)
        self._merge_worker_metrics()

    def _merge_worker_metrics(self) -> None:
        """Fold worker sidecar registries into the controller's.

        Workers write their sidecar only on a clean stop round, so a
        crashed shard simply contributes nothing — merging stays
        best-effort and never masks the real failure path.
        """
        if self._metrics is None or self._sidecar_dir is None:
            return
        directory, self._sidecar_dir = self._sidecar_dir, None
        try:
            for name in sorted(os.listdir(directory)):
                try:
                    self._metrics.merge_snapshot(
                        load_snapshot(os.path.join(directory, name))
                    )
                except Exception:  # pragma: no cover - partial sidecar
                    pass
        finally:
            for name in os.listdir(directory):
                try:
                    os.unlink(os.path.join(directory, name))
                except OSError:  # pragma: no cover - already gone
                    pass
            try:
                os.rmdir(directory)
            except OSError:  # pragma: no cover - already gone
                pass

    def close(self) -> None:
        """Stop workers (if still running) and release every resource."""
        if not self._stopped:
            self.stop()
        for proc in self._procs:
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
                proc.join(5.0)
        self._merge_worker_metrics()
        if self.control is not None:
            self.control.close()
            self.control = None
        if self._heartbeat is not None:
            self._heartbeat.close()
            self._heartbeat = None

    def __enter__(self) -> "ShardHarness":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
