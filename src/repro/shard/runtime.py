"""Shared-memory blocks and the tick-barrier controller runtime.

The execution model is the simple synchronous design: one controller
process (the caller) and ``shards`` worker processes, all meeting at a
single reusable :class:`multiprocessing.Barrier` with ``shards + 1``
parties. One simulation round is a fixed barrier cadence:

1. **start barrier** — the controller has published this round's control
   words (command, per-round knobs); workers read them and either exit
   (``CMD_STOP``) or begin the round.
2. **phase barriers** (engine-chosen count) — e.g. the count engines use
   two: after the first every worker has *read* the global shared state,
   after the second every worker has *written* its own slice, so reads
   and writes never overlap.

Between rounds only the controller touches shared state (convergence
checks, cross-shard exchange), so no locks are needed anywhere — the
barrier cadence is the whole synchronization story.

Failure handling: a worker that raises pushes ``(shard, traceback)``
onto an error queue and aborts the barrier; everyone else's ``wait``
then raises ``BrokenBarrierError``, the controller drains the queue and
re-raises as :class:`ShardError` with the worker traceback inline.
Hung workers trip the same path via the barrier timeout.

The default start method is ``fork`` (cheap, and the payloads are
already picklable so ``spawn`` works too — exercised in the test suite
via the ``start_method`` parameter).
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from multiprocessing import shared_memory
from threading import BrokenBarrierError
from typing import Any, Callable

import numpy as np

from repro.errors import SimulationError

__all__ = ["SharedArray", "ShardHarness", "ShardWorkerContext", "ShardError"]

#: Control-word layout (a small shared float64 array).
CMD, ROUND, FLAG, EXTRA = 0, 1, 2, 3
_CONTROL_SLOTS = 8
CMD_RUN, CMD_STOP = 0.0, 1.0

_DEFAULT_TIMEOUT = 300.0


class ShardError(SimulationError):
    """A shard worker crashed or the barrier protocol broke down."""


class SharedArray:
    """A numpy array backed by named shared memory.

    The creating side owns the segment (``unlink`` on close); attaching
    sides only map it. ``spec`` is the picklable handle workers use to
    attach: ``(name, shape, dtype-str)``.
    """

    def __init__(self, shm: shared_memory.SharedMemory, shape, dtype, *, owner: bool):
        self._shm = shm
        self._owner = owner
        self.array = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf)

    @classmethod
    def create(cls, shape, dtype) -> "SharedArray":
        size = max(1, int(np.prod(shape)) * np.dtype(dtype).itemsize)
        shm = shared_memory.SharedMemory(create=True, size=size)
        block = cls(shm, shape, dtype, owner=True)
        block.array.fill(0)
        return block

    @property
    def spec(self) -> tuple[str, tuple, str]:
        return (self._shm.name, tuple(self.array.shape), self.array.dtype.str)

    @classmethod
    def attach(cls, spec: tuple[str, tuple, str]) -> "SharedArray":
        name, shape, dtype = spec
        # Attaching registers the segment with the (process-tree-wide)
        # resource tracker a second time; the tracker's cache is a set,
        # so the duplicate is harmless and the owner's unlink clears it.
        shm = shared_memory.SharedMemory(name=name)
        return cls(shm, shape, dtype, owner=False)

    def close(self) -> None:
        # The numpy view holds a buffer export on shm.buf; drop it first
        # or SharedMemory.close raises BufferError.
        self.array = None
        self._shm.close()
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass


class ShardWorkerContext:
    """Worker-side view of the barrier protocol and control words."""

    def __init__(self, index: int, barrier, control: np.ndarray, timeout: float):
        self.index = index
        self.control = control
        self._barrier = barrier
        self._timeout = timeout

    def wait(self) -> None:
        self._barrier.wait(self._timeout)

    @property
    def stopped(self) -> bool:
        return self.control[CMD] == CMD_STOP

    @property
    def flag(self) -> float:
        return float(self.control[FLAG])

    @property
    def extra(self) -> float:
        return float(self.control[EXTRA])


def _worker_entry(
    worker: Callable[[ShardWorkerContext, dict], None],
    index: int,
    barrier,
    control_spec: tuple,
    errors,
    payload: dict,
    timeout: float,
) -> None:
    control = SharedArray.attach(control_spec)
    try:
        worker(ShardWorkerContext(index, barrier, control.array, timeout), payload)
    except BrokenBarrierError:
        # Another shard (or the controller) already failed; exit quietly.
        pass
    except BaseException:
        errors.put((index, traceback.format_exc()))
        barrier.abort()
    finally:
        control.close()


class ShardHarness:
    """Controller-side lifecycle for ``shards`` barrier-driven workers.

    ``worker`` must be a module-level function
    ``worker(ctx: ShardWorkerContext, payload: dict) -> None`` running
    the per-round loop (see the module docstring cadence); ``payloads``
    carries one picklable dict per shard. ``phases`` is the number of
    barriers each round uses *after* the start barrier.
    """

    def __init__(
        self,
        worker: Callable[[ShardWorkerContext, dict], None],
        payloads: list[dict],
        *,
        phases: int,
        timeout: float = _DEFAULT_TIMEOUT,
        start_method: str | None = None,
    ):
        self.shards = len(payloads)
        self.phases = int(phases)
        self._timeout = float(timeout)
        ctx = multiprocessing.get_context(start_method or "fork")
        self._barrier = ctx.Barrier(self.shards + 1)
        self._errors = ctx.SimpleQueue()
        self.control = SharedArray.create((_CONTROL_SLOTS,), np.float64)
        self._stopped = False
        self._procs = [
            ctx.Process(
                target=_worker_entry,
                args=(
                    worker,
                    index,
                    self._barrier,
                    self.control.spec,
                    self._errors,
                    payload,
                    self._timeout,
                ),
                name=f"shard-{index}",
                daemon=True,
            )
            for index, payload in enumerate(payloads)
        ]
        for proc in self._procs:
            proc.start()

    def _wait(self) -> None:
        # Poll until every worker is parked at the barrier before
        # joining it ourselves: a worker that died (spawn import error,
        # OOM kill) or crashed is then detected immediately instead of
        # after the full barrier timeout.
        barrier = self._barrier
        deadline = time.monotonic() + self._timeout
        while barrier.n_waiting < self.shards:
            if barrier.broken:
                self._raise_worker_error("a worker aborted the barrier")
            for proc in self._procs:
                if not proc.is_alive():
                    self._raise_worker_error(
                        f"worker process for shard {proc.name} died "
                        f"with exit code {proc.exitcode}"
                    )
            if time.monotonic() > deadline:
                barrier.abort()
                self._raise_worker_error(f"barrier timeout after {self._timeout}s")
            time.sleep(0.0002)
        try:
            barrier.wait(self._timeout)
        except BrokenBarrierError:
            self._raise_worker_error("barrier broke during release")

    def _raise_worker_error(self, reason: str) -> None:
        self._stopped = True  # barrier is compromised; skip the stop round
        failures = []
        while not self._errors.empty():
            failures.append(self._errors.get())
        self.close()
        if failures:
            shard, trace = failures[0]
            raise ShardError(
                f"shard worker {shard} failed (of {len(failures)} failure(s)):\n{trace}"
            )
        raise ShardError(f"shard run failed: {reason}")

    def step(self, *, flag: float = 0.0, extra: float = 0.0) -> None:
        """Run one full round: publish control words, walk the barriers."""
        control = self.control.array
        control[CMD] = CMD_RUN
        control[ROUND] += 1.0
        control[FLAG] = flag
        control[EXTRA] = extra
        self._wait()  # start: workers pick up the round
        for _ in range(self.phases):
            self._wait()

    def stop(self) -> None:
        """Release workers into a stop round and join them (idempotent)."""
        if self._stopped:
            return
        self._stopped = True
        self.control.array[CMD] = CMD_STOP
        try:
            self._barrier.wait(self._timeout)
        except BrokenBarrierError:  # pragma: no cover - racing a crash
            pass
        for proc in self._procs:
            proc.join(self._timeout)

    def close(self) -> None:
        """Stop workers (if still running) and release every resource."""
        if not self._stopped:
            self.stop()
        for proc in self._procs:
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
                proc.join(5.0)
        if self.control is not None:
            self.control.close()
            self.control = None

    def __enter__(self) -> "ShardHarness":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
