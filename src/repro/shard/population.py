"""Sharded population-protocol scheduler.

The exact sequential law — one uniform ordered pair of distinct nodes
per interaction — serializes every interaction and cannot shard
exactly. The sharded scheduler runs the standard relaxation:

* each round, every shard performs ``block`` interactions between
  uniform ordered pairs *within its own node slice* (the unsharded
  inner loop verbatim, shift trick included), concurrently;
* between rounds the controller performs ``exchange`` interactions
  between uniform ordered pairs drawn from the *whole* population on
  the shared state array (workers are parked at the barrier, so the
  controller is the only writer), keeping opinions mixing across the
  cut.

Every interaction — intra-shard and exchange — advances the interaction
clock, so a round costs ``shards * block + exchange`` interactions and
*parallel time* keeps its standard meaning. The pair law differs from
uniform-over-all-pairs by the missing intra-round cross-shard pairs
(an O(1/shards) rate perturbation with the default ``exchange``), which
is why the equivalence harness gates this engine on confidence-interval
overlap of convergence-time distributions rather than exact identity —
unlike the count engines, whose sharding is distribution-exact.

``shards=1`` delegates to
:class:`~repro.baselines.population.PairwiseScheduler` untouched
(byte-identical, no extra randomness).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.population import (
    PairwiseScheduler,
    PopulationProtocol,
    PopulationResult,
)
from repro.engine.tracing import NULL_TRACER
from repro.errors import ConfigurationError
from repro.shard.partition import partition_nodes, shard_seed_sequences
from repro.shard.runtime import ShardHarness, ShardWorkerContext, SharedArray
from repro.workloads.bias import validate_counts

__all__ = ["run_sharded_population", "population_worker"]


def population_worker(ctx: ShardWorkerContext, payload: dict) -> None:
    """One shard's round loop: ``ctx.flag`` intra-slice interactions.

    The slice state is re-read from shared memory each round (the
    controller's exchange pass may have rewritten any node between
    rounds) into a plain list, driven with the same precomputed
    transition table and shift-trick pair sampling as the unsharded
    scheduler, and written back before the end barrier.
    """
    states_block = SharedArray.attach(payload["states_spec"])
    counts_block = SharedArray.attach(payload["counts_spec"])
    try:
        start, stop = payload["range"]
        size = stop - start
        rng = np.random.Generator(np.random.PCG64(payload["seed_seq"]))
        protocol: PopulationProtocol = payload["protocol"]
        num_states = int(protocol.num_states)
        trans = [
            [protocol.delta(a, b) for b in range(num_states)] for a in range(num_states)
        ]
        while True:
            ctx.wait()  # round start
            if ctx.stopped:
                break
            block = int(ctx.flag)
            local_slice = states_block.array[start:stop]
            local = local_slice.tolist()
            counts_list = np.bincount(local_slice, minlength=num_states).tolist()
            initiators = rng.integers(size, size=block).tolist()
            responders = rng.integers(size - 1, size=block).tolist()
            for index in range(block):
                u = initiators[index]
                v = responders[index]
                if v >= u:
                    v += 1
                a = local[u]
                b = local[v]
                new_a, new_b = trans[a][b]
                if new_a != a or new_b != b:
                    local[u] = new_a
                    local[v] = new_b
                    counts_list[a] -= 1
                    counts_list[b] -= 1
                    counts_list[new_a] += 1
                    counts_list[new_b] += 1
            states_block.array[start:stop] = local
            counts_block.array[ctx.index] = counts_list
            ctx.wait()  # slice + counts published; controller takes over
    finally:
        states_block.close()
        counts_block.close()


def run_sharded_population(
    protocol: PopulationProtocol,
    counts: np.ndarray,
    rng: np.random.Generator,
    *,
    shards: int,
    max_interactions: int | None = None,
    block: int | None = None,
    exchange: int | None = None,
    tracer=None,
    start_method: str | None = None,
    metrics=None,
) -> PopulationResult:
    """Run ``protocol`` across ``shards`` workers; see the module docstring.

    ``block`` (default ``max(256, n // (4 * shards))``) is the
    interactions each shard runs per round; ``exchange`` (default
    ``max(128, shards * block // 4)``) the controller-run cross-shard
    interactions between rounds.
    """
    shards = int(shards)
    if shards == 1:
        return PairwiseScheduler(protocol).run(
            counts, rng, max_interactions=max_interactions, tracer=tracer,
            metrics=metrics,
        )
    state = protocol.initial_state(validate_counts(counts))
    n = int(state.sum())
    if n < 2 * shards:
        raise ConfigurationError(
            f"population of {n} is too small for {shards} shards "
            "(need >= 2 nodes per shard)"
        )
    if max_interactions is None:
        max_interactions = 500 * n * max(8, int(np.log2(n)) ** 2)
    if block is None:
        block = max(256, n // (4 * shards))
    if exchange is None:
        # Calibrated against the unsharded scheduler: below ~an eighth of
        # a round's intra-shard budget, convergence-time distributions
        # drift outside the 95% CI-overlap gate at n=2000 (the true pair
        # law makes 1 - 1/shards of pairs cross-shard; the exchange pass
        # only needs to keep global counts mixing, not match that rate).
        exchange = max(128, shards * block // 4)
    num_states = int(state.size)
    trans = [
        [protocol.delta(a, b) for b in range(num_states)] for a in range(num_states)
    ]
    # Uniform placement: the law's projection of the anonymous state
    # onto node slices (each shard's initial mix is hypergeometric, as
    # a uniform cut of the population would be).
    node_state = np.repeat(np.arange(num_states, dtype=np.int64), state)
    rng.shuffle(node_state)
    ranges = partition_nodes(n, shards)
    states_block = SharedArray.create((n,), np.int64)
    states_block.array[:] = node_state
    counts_block = SharedArray.create((shards, num_states), np.int64)
    for index, (start, stop) in enumerate(ranges):
        counts_block.array[index] = np.bincount(
            node_state[start:stop], minlength=num_states
        )
    seeds = shard_seed_sequences(rng, shards)
    payloads = [
        {
            "states_spec": states_block.spec,
            "counts_spec": counts_block.spec,
            "range": node_range,
            "seed_seq": seed,
            "protocol": protocol,
        }
        for node_range, seed in zip(ranges, seeds)
    ]
    if tracer is None:
        tracer = NULL_TRACER
    trace_round = tracer.enabled_for("round")
    if tracer.enabled_for("run"):
        tracer.record(
            "run", 0.0, protocol=f"population:{protocol.name}",
            n=n, k=num_states, counts=[int(c) for c in state],
        )
    interactions = 0
    exchanged = 0
    counts_now = np.asarray(state, dtype=np.int64).copy()
    converged = protocol.is_converged(counts_now)
    harness = ShardHarness(
        population_worker, payloads, phases=1, start_method=start_method,
        metrics=metrics,
    )
    try:
        while not converged and interactions < max_interactions:
            remaining = max_interactions - interactions
            this_block = min(block, max(1, remaining // shards))
            harness.step(flag=float(this_block))
            interactions += this_block * shards
            counts_now = counts_block.array.sum(axis=0)
            # Cross-shard exchange: the controller is the only process
            # touching shared state between barriers.
            shared_states = states_block.array
            budget = min(exchange, max(0, max_interactions - interactions))
            for _ in range(budget):
                u = int(rng.integers(n))
                v = int(rng.integers(n - 1))
                if v >= u:
                    v += 1
                a = int(shared_states[u])
                b = int(shared_states[v])
                new_a, new_b = trans[a][b]
                if new_a != a or new_b != b:
                    shared_states[u] = new_a
                    shared_states[v] = new_b
                    counts_now[a] -= 1
                    counts_now[b] -= 1
                    counts_now[new_a] += 1
                    counts_now[new_b] += 1
            interactions += budget
            exchanged += budget
            converged = protocol.is_converged(counts_now)
            if trace_round:
                tracer.record(
                    "round", interactions / n, counts=[int(c) for c in counts_now],
                    top_gen=0, interactions=interactions,
                )
    finally:
        harness.close()
        states_block.close()
        counts_block.close()
    winner = None
    if converged:
        live = np.nonzero(counts_now)[0]
        winner = protocol.output_color(int(live[0]))
    if tracer.enabled_for("end"):
        tracer.record(
            "end", interactions / n, converged=converged,
            counts=[int(c) for c in counts_now], eps_time=None,
            interactions=interactions,
        )
    if metrics is not None and metrics.enabled:
        metrics.counter(f"population.runs.{protocol.name}").inc()
        metrics.counter("population.interactions").inc(interactions)
        if converged:
            metrics.counter("population.converged_runs").inc()
        # Cross-shard exchange volume: the controller-run interactions
        # that stitch the shard slices back into one population.
        metrics.counter("shard.exchange_values").inc(exchanged)
    return PopulationResult(
        converged=converged,
        winner=winner,
        interactions=interactions,
        n=n,
        final_state_counts=np.asarray(counts_now, dtype=np.int64),
    )
