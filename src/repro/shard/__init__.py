"""Sharded count engines — multiprocess synchronous & population runs.

The synchronous engines and the population scheduler are count-matrix
processes: per-round behavior depends on the *global* state only through
fractions, so the state partitions cleanly across worker processes. This
package shards them behind the simplest correct design — one controller,
``shards`` workers, state in :mod:`multiprocessing.shared_memory`, and a
barrier per round (the tick-barrier controller pattern):

* :mod:`repro.shard.partition` — the pure node/count partitioner and the
  per-shard RNG substream derivation (``SeedSequence.spawn`` children of
  the run's registry stream, so a given ``(seed, shards)`` pair is
  bit-reproducible).
* :mod:`repro.shard.runtime` — :class:`~repro.shard.runtime.SharedArray`
  (named shared-memory numpy blocks) and
  :class:`~repro.shard.runtime.ShardHarness` (worker lifecycle, the
  per-round barrier protocol, worker-crash propagation).
* :mod:`repro.shard.count_engine` — the generic count-matrix worker and
  the kernels that shard the aggregate synchronous engine and the
  anonymous opinion dynamics exactly (same law: summing independent
  multinomials with shared probabilities is the global multinomial).
* :mod:`repro.shard.synchronous` — sharded front-ends for both
  synchronous engines (:func:`run_sharded_synchronous`).
* :mod:`repro.shard.dynamics` — :func:`run_sharded_dynamics` for the
  baseline opinion dynamics.
* :mod:`repro.shard.recovery` — the ``resumable=`` checkpoint–restart
  seam for the count engines: packed per-shard generator states, a
  checkpoint every K rounds, and a controller that survives worker
  failures by restarting the round loop bit-identically from the last
  checkpoint.
* :mod:`repro.shard.population` — :func:`run_sharded_population`:
  block-granular intra-shard interactions plus a small controller-run
  cross-shard exchange (the one *approximate* sharding in the package;
  see the module docstring for the law and the equivalence gate).

``shards=1`` never spawns processes or consumes extra randomness — every
front-end delegates straight to the unsharded engine, so single-shard
runs stay byte-identical to the existing goldens. The event engine is
deliberately not sharded here (see ``docs/architecture.md``).
"""

from repro.shard.dynamics import run_sharded_dynamics
from repro.shard.partition import partition_counts, partition_nodes, shard_seed_sequences
from repro.shard.population import run_sharded_population
from repro.shard.recovery import CheckpointingController
from repro.shard.runtime import ShardError, SharedArray, ShardHarness
from repro.shard.synchronous import (
    ShardedAggregateSynchronousSim,
    ShardedPerNodeSynchronousSim,
    run_sharded_synchronous,
)

__all__ = [
    "partition_nodes",
    "partition_counts",
    "shard_seed_sequences",
    "SharedArray",
    "ShardHarness",
    "ShardError",
    "CheckpointingController",
    "run_sharded_synchronous",
    "ShardedAggregateSynchronousSim",
    "ShardedPerNodeSynchronousSim",
    "run_sharded_dynamics",
    "run_sharded_population",
]
