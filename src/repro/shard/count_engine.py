"""The generic sharded count-matrix worker and its per-engine kernels.

Both the aggregate synchronous engine and the anonymous opinion
dynamics evolve a count array where one round is "every group draws a
multinomial whose probabilities depend only on the *global* counts".
That shape shards exactly: shared memory holds one count slot per shard
(``(shards, *state_shape)``), each round every worker

1. sums the slots into the global state (read phase, behind the first
   phase barrier so no writer is active),
2. advances *its own* counts with probabilities built from the global
   state, drawing from its private substream, and writes its slot back
   (write phase, behind the second barrier).

Summing independent multinomials with identical probabilities is the
multinomial of the summed counts, so the sharded round has exactly the
unsharded law — the statistical-equivalence tests on these engines are
a check, not a tolerance band.

Kernels are small picklable strategy objects (they ride the worker
payload through ``fork``/``spawn``): :class:`AggregateSyncKernel` wraps
:func:`repro.core.synchronous.aggregate_round`,
:class:`DynamicsKernel` wraps the baselines' multinomial round.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import OpinionDynamics, _multinomial_round
from repro.core.synchronous import aggregate_round
from repro.shard.runtime import ROUND, ShardWorkerContext, SharedArray

__all__ = ["AggregateSyncKernel", "DynamicsKernel", "count_worker"]


class AggregateSyncKernel:
    """Per-shard round of the aggregate synchronous engine.

    ``ctx.flag`` carries the controller's two-choices decision for the
    round (the schedule is stateful, so only the controller may consult
    it).
    """

    def __init__(self, n: int, promotion: str):
        self.n = int(n)
        self.promotion = promotion

    def advance(
        self,
        global_state: np.ndarray,
        local_state: np.ndarray,
        rng: np.random.Generator,
        flag: float,
    ) -> np.ndarray:
        return aggregate_round(
            global_state,
            local_state,
            self.n,
            rng,
            two_choices_step=bool(flag),
            promotion=self.promotion,
        )


class DynamicsKernel:
    """Per-shard round of an anonymous opinion dynamic."""

    def __init__(self, dynamics: OpinionDynamics):
        self.dynamics = dynamics

    def advance(
        self,
        global_state: np.ndarray,
        local_state: np.ndarray,
        rng: np.random.Generator,
        flag: float,
    ) -> np.ndarray:
        return _multinomial_round(
            self.dynamics, local_state, rng, probabilities_state=global_state
        )


def count_worker(ctx: ShardWorkerContext, payload: dict) -> None:
    """Round loop every count-engine shard runs (module-level: spawnable).

    Payload keys: ``slots_spec`` (shared ``(shards, *state)`` array),
    ``kernel`` (an object with ``advance``), ``seed_seq`` (this shard's
    :class:`~numpy.random.SeedSequence`).

    Recovery seam (all optional; absent keys leave the hot loop
    byte-identical to the non-resumable build): ``rng_state_spec`` names
    a shared ``(shards, PCG64_STATE_WORDS)`` uint64 array; on rounds
    divisible by ``checkpoint_every`` the worker writes its packed
    generator state there right after its count slot (inside the same
    write phase, so the controller's post-round snapshot sees a
    consistent pair). With ``resume`` set the generator is rebuilt from
    the shared state row instead of ``seed_seq`` — the restart
    continues the original substream exactly where the checkpoint left
    it (see :mod:`repro.shard.recovery` for the determinism contract).
    """
    slots = SharedArray.attach(payload["slots_spec"])
    rng_states = None
    checkpoint_every = int(payload.get("checkpoint_every") or 0)
    if payload.get("rng_state_spec") is not None:
        rng_states = SharedArray.attach(payload["rng_state_spec"])
    if payload.get("resume"):
        from repro.shard.recovery import restored_generator

        rng = restored_generator(rng_states.array[ctx.index])
    else:
        rng = np.random.Generator(np.random.PCG64(payload["seed_seq"]))
    kernel = payload["kernel"]
    try:
        local = slots.array[ctx.index].copy()
        while True:
            ctx.wait()  # round start (controller published control words)
            if ctx.stopped:
                break
            global_state = slots.array.sum(axis=0)
            flag = ctx.flag
            ctx.wait()  # everyone has read; writes may begin
            total_before = int(local.sum())
            local = kernel.advance(global_state, local, rng, flag)
            assert int(local.sum()) == total_before, "shard node conservation violated"
            slots.array[ctx.index] = local
            if (
                rng_states is not None
                and checkpoint_every
                and int(ctx.control[ROUND]) % checkpoint_every == 0
            ):
                from repro.shard.recovery import pack_pcg64_state

                rng_states.array[ctx.index] = pack_pcg64_state(rng.bit_generator.state)
            ctx.wait()  # everyone has written; controller may inspect
    finally:
        slots.close()
        if rng_states is not None:
            rng_states.close()
