"""Algorithm 5 — the cluster-leader state machine.

Each cluster leader publishes ``(gen, state)`` where ``state`` is

* ``1`` — **two-choices**: members may promote to generation ``gen`` by
  sampling two equal-colored nodes of generation ``gen − 1``;
* ``2`` — **sleeping**: members take no promotion action against this
  leader; the window absorbs inter-leader skew (Proposition 31) so no
  propagation starts anywhere before two-choices ended everywhere;
* ``3`` — **propagation**: members may adopt from nodes already in
  generation ``gen``.

Leaders never act spontaneously; they react to ``(i, s, hasChanged)``
signals from members:

* **lexicographic catch-up** (lines 1–3): if ``(i, s) >lex (gen, state)``
  adopt it — this is how leader states spread between clusters, relayed
  by members who observed a faster leader (Algorithm 4, line 18);
* **tick counting** (lines 4–9): ``i = 0`` signals arrive once per member
  tick, so ``t`` advances by ``card`` per time step; thresholds at
  ``C1·card·sleep_units`` and ``C1·card·propagation_units`` drive the
  1 → 2 → 3 phase progression in (approximate) wall-clock units;
* **generation counting** (lines 10–15): ``hasChanged`` signals with
  ``i = gen`` count members promoted to the newest generation; at
  ``⌈card · gen_size_fraction⌉`` the leader births the next generation
  (``gen += 1``, ``state ← 1``, counters reset).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.multileader.params import MultiLeaderParams

__all__ = ["ClusterLeaderState", "LeaderTransition", "STATE_TWO_CHOICES", "STATE_SLEEPING", "STATE_PROPAGATION"]

STATE_TWO_CHOICES = 1
STATE_SLEEPING = 2
STATE_PROPAGATION = 3


@dataclass(frozen=True, slots=True)
class LeaderTransition:
    """One ``(gen, state)`` transition of one cluster leader."""

    time: float
    generation: int
    state: int
    cause: str  # "ticks", "gen-size", or "relay"


class ClusterLeaderState:
    """Mutable Algorithm 5 state for one cluster leader."""

    __slots__ = (
        "node",
        "card",
        "gen",
        "state",
        "tick_count",
        "gen_size",
        "transitions",
        "tracer",
        "_sleep_threshold",
        "_prop_threshold",
        "_gen_threshold",
        "_max_generation",
    )

    def __init__(self, node: int, card: int, params: MultiLeaderParams):
        self.node = node
        self.card = card
        self.gen = 1
        self.state = STATE_TWO_CHOICES
        self.tick_count = 0
        self.gen_size = 0
        self.transitions: list[LeaderTransition] = []
        #: Optional trace sink; set by the owning simulation, not here,
        #: so the state machine stays constructible without an engine.
        self.tracer = None
        self._sleep_threshold = math.ceil(params.time_unit * card * params.sleep_units)
        self._prop_threshold = math.ceil(params.time_unit * card * params.propagation_units)
        self._gen_threshold = math.ceil(params.gen_size_fraction * card)
        self._max_generation = params.max_generation

    @property
    def public_state(self) -> tuple[int, int]:
        """The publicly readable ``(gen, state)`` pair."""
        return self.gen, self.state

    def _record(self, time: float, cause: str) -> None:
        self.transitions.append(
            LeaderTransition(time=time, generation=self.gen, state=self.state, cause=cause)
        )
        if self.tracer is not None:
            self.tracer.record(
                "phase", time, event="leader-state", leader=self.node,
                gen=self.gen, state=self.state, cause=cause,
            )

    def on_signal(self, i: int, s: int, has_changed: bool, time: float) -> None:
        """Handle one ``(i, s, hasChanged)`` member signal (Algorithm 5)."""
        if i > 0 and (i, s) > (self.gen, self.state):
            if i > self.gen:
                self.gen_size = 0
            self.gen, self.state = i, s
            if s == STATE_TWO_CHOICES:
                self.tick_count = 0
            elif s == STATE_SLEEPING:
                self.tick_count = self._sleep_threshold
            else:
                self.tick_count = self._prop_threshold
            self._record(time, "relay")
        if i == 0:
            self.tick_count += 1
            if self.tick_count >= self._sleep_threshold and self.state == STATE_TWO_CHOICES:
                self.state = STATE_SLEEPING
                self._record(time, "ticks")
            elif self.tick_count >= self._prop_threshold and self.state == STATE_SLEEPING:
                self.state = STATE_PROPAGATION
                self._record(time, "ticks")
            return
        if i == self.gen and has_changed:
            self.gen_size += 1
            if self.gen_size >= self._gen_threshold and self.gen < self._max_generation:
                self.gen += 1
                self.state = STATE_TWO_CHOICES
                self.tick_count = 0
                self.gen_size = 0
                self._record(time, "gen-size")

    def phase_times(self, generation: int) -> dict[int, float]:
        """Map state -> first time this leader entered it at ``generation``."""
        times: dict[int, float] = {}
        for transition in self.transitions:
            if transition.generation == generation and transition.state not in times:
                times[transition.state] = transition.time
        return times
