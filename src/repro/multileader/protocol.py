"""The full decentralized protocol: clustering, then consensus.

Chains Section 4.1's clustering phase with Algorithms 4+5 and reports a
single :class:`~repro.core.results.RunResult` whose ``elapsed`` covers
both phases (the split is available in ``info``). This is Theorem 26's
end-to-end object: plurality consensus on ``K_n`` with no designated
leader, no shared memory, and every constant polylogarithmic.
"""

from __future__ import annotations

import numpy as np

from repro.core.results import RunResult
from repro.errors import ConfigurationError
from repro.multileader.clustering import ClusteringSim
from repro.multileader.consensus import MultiLeaderConsensusSim
from repro.multileader.params import MultiLeaderParams

__all__ = ["run_multileader"]


def run_multileader(
    params: MultiLeaderParams,
    counts: np.ndarray,
    rng: np.random.Generator,
    *,
    clustering_max_time: float = 500.0,
    max_time: float = 3000.0,
    epsilon: float | None = None,
    stop_at_epsilon: bool = False,
    record_every: float | None = None,
    graph=None,
    instrument=None,
    prepare=None,
    tracer=None,
) -> RunResult:
    """Run clustering, then the consensus phase, on one population.

    Parameters mirror the phase runners; ``max_time`` bounds the
    consensus phase only (``clustering_max_time`` bounds clustering).
    The returned result's ``elapsed`` is the sum of both phases;
    ``info`` carries the clustering split:
    ``clustering_time``, ``clustered_fraction``, ``active_fraction``,
    ``switch_spread`` (Theorem 27's ``t_l − t_f``), ``clusters``.
    Both phases sample contacts from ``graph`` (default ``K_n``).
    Two fault-injection seams: ``prepare()`` is called before each phase
    simulator is constructed and may return a pre-wrapped
    :class:`~repro.engine.simulator.Simulator` (or ``None``) — see
    :func:`repro.scenarios.faults.prepare_faulty_simulator` — so even
    construction-time tick scheduling is governed; ``instrument`` is
    called with each phase simulator after construction and before
    running (bind adapters, collect telemetry handles).  A ``tracer``
    streams both phases' records into one trace (two ``run`` headers);
    it is mutually exclusive with ``prepare`` — route the tracer
    through :func:`~repro.scenarios.faults.prepare_faulty_simulator`
    instead when both are needed.
    """
    if prepare is not None and tracer is not None:
        raise ConfigurationError(
            "pass tracer through prepare() (e.g. prepare_faulty_simulator"
            "(..., tracer=...)), not both prepare and tracer"
        )
    clustering_sim = ClusteringSim(
        params, rng, graph=graph,
        simulator=None if prepare is None else prepare(),
        tracer=tracer,
    )
    if instrument is not None:
        instrument(clustering_sim)
    clustering = clustering_sim.run(max_time=clustering_max_time)
    consensus = MultiLeaderConsensusSim(
        params,
        clustering,
        counts,
        rng,
        graph=graph,
        simulator=None if prepare is None else prepare(),
        tracer=tracer,
    )
    if instrument is not None:
        instrument(consensus)
    result = consensus.run(
        max_time=max_time,
        epsilon=epsilon,
        stop_at_epsilon=stop_at_epsilon,
        record_every=record_every,
    )
    result.info.update(
        {
            "clustering_time": clustering.elapsed,
            "clustered_fraction": clustering.clustered_fraction,
            "active_fraction": clustering.active_fraction,
            "switch_spread": clustering.switch_spread,
            "clusters": float(len(clustering.active_leaders)),
        }
    )
    result.elapsed = result.elapsed + clustering.elapsed
    if result.epsilon_convergence_time is not None:
        result.epsilon_convergence_time += clustering.elapsed
    return result
