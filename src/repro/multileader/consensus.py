"""Algorithm 4 — the node procedure of the decentralized consensus phase.

At each tick a clustered node ``v``:

1. sends a ``(0, 3, ·)`` signal to its own leader (time keeping);
2. if unlocked, locks and opens channels to three uniform samples
   ``v1, v2, v3`` concurrently, then to its own leader and to ``l``,
   the leader of ``v3``, concurrently;
3. once all channels are up (messages are instant): handles the
   *finished* flag (push own final color / adopt a sampled one), then
   — if the sampled cluster is active —

   * **two-choices** (``l.state = 1``): if both ``v1`` and ``v2`` sit in
     generation ``gen(l) − 1`` with equal colors, and their stored
     leader views agree with ``l`` (``in_sync``), adopt the color and
     promote to ``gen(l)``; report ``(gen, 1, True)``;
   * **propagation** (``l.state = 3``): if a sample sits in generation
     ``gen(l)`` (in sync with ``l``) above ``v``'s own generation,
     adopt it; report ``(gen, 3, True)``;
   * otherwise relay ``(gen(l), l.state, False)`` to the own leader —
     the carrier of the lexicographic leader synchronization;

4. stores its own leader's current ``(gen, state)`` (the ``tmp`` view
   used by *other* nodes' ``in_sync`` checks) and unlocks.

Nodes whose generation reaches the budget ``G*`` set ``finished`` and
push their color to every sample — the ``O(log n)`` full-consensus tail.
Unclustered nodes and members of inactive clusters take no actions but
receive pushes, exactly as in Theorem 27's accounting.
"""

from __future__ import annotations

import numpy as np

from repro.core.results import GenerationBirth, RunResult, StepStats
from repro.engine.simulator import Simulator
from repro.errors import ConfigurationError
from repro.multileader.cluster_leader import (
    STATE_PROPAGATION,
    STATE_TWO_CHOICES,
    ClusterLeaderState,
)
from repro.multileader.clustering import Clustering
from repro.multileader.params import MultiLeaderParams
from repro.workloads.bias import (
    collision_probability,
    multiplicative_bias,
    plurality_color,
    validate_counts,
)
from repro.workloads.opinions import counts_to_assignment

__all__ = ["MultiLeaderConsensusSim", "run_multileader_consensus"]


class MultiLeaderConsensusSim:
    """Event-driven simulator of Algorithms 4+5 on a given clustering."""

    def __init__(
        self,
        params: MultiLeaderParams,
        clustering: Clustering,
        counts: np.ndarray,
        rng: np.random.Generator,
    ):
        counts = validate_counts(counts)
        if int(counts.sum()) != params.n:
            raise ConfigurationError(
                f"counts sum to {int(counts.sum())} but params.n={params.n}"
            )
        if counts.size != params.k:
            raise ConfigurationError(f"counts has {counts.size} colors, params.k={params.k}")
        if clustering.n != params.n:
            raise ConfigurationError("clustering size does not match params.n")
        self.params = params
        self.n = params.n
        self.k = params.k
        self._rng = rng
        self.sim = Simulator()
        self.leader_of = clustering.leader_of

        sizes = clustering.cluster_sizes()
        self.leaders: dict[int, ClusterLeaderState] = {
            leader: ClusterLeaderState(leader, sizes[leader], params)
            for leader in clustering.active_leaders
        }
        if not self.leaders:
            raise ConfigurationError("clustering has no active leaders")
        self._active_member = np.array(
            [int(self.leader_of[v]) in self.leaders for v in range(self.n)]
        )

        self.cols = counts_to_assignment(counts, rng)
        self.gens = np.zeros(self.n, dtype=np.int64)
        self.finished = np.zeros(self.n, dtype=bool)
        self.locked = np.zeros(self.n, dtype=bool)
        self.tmp_gen = np.zeros(self.n, dtype=np.int64)
        self.tmp_state = np.zeros(self.n, dtype=np.int64)

        rows = params.max_generation + 2
        self.matrix = np.zeros((rows, self.k), dtype=np.int64)
        self.matrix[0, :] = counts
        self.color_counts = counts.copy()
        self.plurality = plurality_color(counts)
        self.births: list[GenerationBirth] = []
        self._birth_seen = np.zeros(rows, dtype=bool)
        self._birth_seen[0] = True
        self.trajectory: list[StepStats] = []
        self.good_ticks = 0
        self.total_ticks = 0

        for node in range(self.n):
            if self._active_member[node]:
                self._schedule_tick(node)

    # ------------------------------------------------------------------
    # event handlers
    # ------------------------------------------------------------------
    def _schedule_tick(self, node: int) -> None:
        wait = self._rng.exponential(1.0 / self.params.clock_rate)
        self.sim.schedule_in(wait, lambda node=node: self._tick(node), tag="tick")

    def _latency(self) -> float:
        return float(self._rng.exponential(1.0 / self.params.latency_rate))

    def _sample_other(self, node: int) -> int:
        draw = int(self._rng.integers(self.n - 1))
        return draw + 1 if draw >= node else draw

    def _signal(self, leader: int, i: int, s: int, has_changed: bool) -> None:
        state = self.leaders.get(leader)
        if state is None:
            return
        self.sim.schedule_in(
            self._latency(),
            lambda: state.on_signal(i, s, has_changed, self.sim.now),
            tag="signal",
        )

    def _tick(self, node: int) -> None:
        self.total_ticks += 1
        self._schedule_tick(node)
        own = int(self.leader_of[node])
        self._signal(own, 0, 3, False)  # line 1: (0, 3, ·)-signal every tick
        if self.locked[node]:
            return
        self.locked[node] = True
        self.good_ticks += 1
        v1 = self._sample_other(node)
        v2 = self._sample_other(node)
        v3 = self._sample_other(node)
        # Three sample channels concurrently, then the two leader channels.
        delay = max(self._latency(), self._latency(), self._latency()) + max(
            self._latency(), self._latency()
        )
        self.sim.schedule_in(
            delay,
            lambda node=node, a=v1, b=v2, c=v3: self._exchange(node, a, b, c),
            tag="exchange",
        )

    def _exchange(self, node: int, v1: int, v2: int, v3: int) -> None:
        own_leader = self.leaders.get(int(self.leader_of[node]))
        # Lines 5-7: finished-flag push / pull.
        if self.finished[node]:
            for sample in (v1, v2, v3):
                self._set_state(sample, int(self.gens[sample]), int(self.cols[node]))
                self.finished[sample] = True
            self.locked[node] = False
            return
        for sample in (v1, v2, v3):
            if self.finished[sample]:
                self._set_state(node, int(self.gens[node]), int(self.cols[sample]))
                self.finished[node] = True
                self.locked[node] = False
                return

        sampled_leader = self.leaders.get(int(self.leader_of[v3]))
        if sampled_leader is None:
            # Line 8: non-active cluster sampled — abort the cycle.
            self.locked[node] = False
            return
        l_gen, l_state = sampled_leader.public_state
        own_gen = int(self.gens[node])
        gen_a, col_a = int(self.gens[v1]), int(self.cols[v1])
        gen_b, col_b = int(self.gens[v2]), int(self.cols[v2])
        in_sync_a = self.tmp_gen[v1] == l_gen and self.tmp_state[v1] == l_state
        in_sync_b = self.tmp_gen[v2] == l_gen and self.tmp_state[v2] == l_state
        promoted = False
        if (
            l_state == STATE_TWO_CHOICES
            and gen_a == gen_b == l_gen - 1
            and col_a == col_b
            and own_gen <= gen_a
            and in_sync_a
            and in_sync_b
        ):
            self._set_state(node, l_gen, col_a)
            self._signal(int(self.leader_of[node]), l_gen, STATE_TWO_CHOICES, True)
            promoted = True
        elif l_state == STATE_PROPAGATION:
            candidate = -1
            if gen_a == l_gen and own_gen < gen_a and in_sync_a:
                candidate = v1
            elif gen_b == l_gen and own_gen < gen_b and in_sync_b:
                candidate = v2
            if candidate >= 0:
                self._set_state(node, int(self.gens[candidate]), int(self.cols[candidate]))
                self._signal(
                    int(self.leader_of[node]), int(self.gens[node]), STATE_PROPAGATION, True
                )
                promoted = True
        if not promoted:
            # Line 18: relay the sampled leader's state to the own leader.
            self._signal(int(self.leader_of[node]), l_gen, l_state, False)
        # Line 19: refresh the stored view of the *own* leader.
        if own_leader is not None:
            self.tmp_gen[node], self.tmp_state[node] = own_leader.public_state
        # Line 20: the generation budget is the finish line.
        if int(self.gens[node]) >= self.params.max_generation:
            self.finished[node] = True
        self.locked[node] = False

    def _set_state(self, node: int, gen: int, col: int) -> None:
        old_gen, old_col = int(self.gens[node]), int(self.cols[node])
        if old_gen == gen and old_col == col:
            return
        self.matrix[old_gen, old_col] -= 1
        self.matrix[gen, col] += 1
        if col != old_col:
            self.color_counts[old_col] -= 1
            self.color_counts[col] += 1
        self.gens[node] = gen
        self.cols[node] = col
        if not self._birth_seen[gen]:
            self._birth_seen[gen] = True
            row = self.matrix[gen]
            self.births.append(
                GenerationBirth(
                    generation=gen,
                    time=self.sim.now,
                    fraction=float(row.sum()) / self.n,
                    bias=multiplicative_bias(row),
                    collision_probability=collision_probability(row),
                )
            )

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------
    def stats(self) -> StepStats:
        per_generation = self.matrix.sum(axis=1)
        occupied = np.nonzero(per_generation)[0]
        top = int(occupied[-1]) if occupied.size else 0
        return StepStats(
            time=self.sim.now,
            top_generation=top,
            top_generation_fraction=float(per_generation[top]) / self.n,
            plurality_fraction=float(self.color_counts.max()) / self.n,
            bias=multiplicative_bias(self.color_counts),
        )

    def leader_phase_table(self) -> dict[int, dict[int, dict[int, float]]]:
        """generation -> state -> {leader: first entry time} (Figure 2 data)."""
        table: dict[int, dict[int, dict[int, float]]] = {}
        for leader, state in self.leaders.items():
            for transition in state.transitions:
                per_state = table.setdefault(transition.generation, {}).setdefault(
                    transition.state, {}
                )
                # Transitions are chronological, so the first entry wins.
                per_state.setdefault(leader, transition.time)
        return table

    # ------------------------------------------------------------------
    # runner
    # ------------------------------------------------------------------
    def run(
        self,
        *,
        max_time: float = 3000.0,
        epsilon: float | None = None,
        stop_at_epsilon: bool = False,
        record_every: float | None = None,
    ) -> RunResult:
        """Run until full consensus, the ε-target, or ``max_time``."""
        if record_every is not None:

            def sample() -> None:
                self.trajectory.append(self.stats())
                self.sim.schedule_in(record_every, sample, tag="sampler")

            self.sim.schedule_in(record_every, sample, tag="sampler")
        epsilon_target = None
        if epsilon is not None:
            epsilon_target = int(np.ceil((1.0 - epsilon) * self.n))
        epsilon_time: float | None = None

        def done() -> bool:
            nonlocal epsilon_time
            leading = int(self.color_counts[self.plurality])
            if epsilon_target is not None and epsilon_time is None:
                if leading >= epsilon_target:
                    epsilon_time = self.sim.now
                    if stop_at_epsilon:
                        return True
            return int(self.color_counts.max()) == self.n

        self.sim.run(until=max_time, stop_when=done)
        converged = int(self.color_counts.max()) == self.n
        max_leader_gen = max(state.gen for state in self.leaders.values())
        return RunResult(
            converged=converged,
            winner=int(np.argmax(self.color_counts)),
            plurality_color=self.plurality,
            elapsed=self.sim.now,
            final_color_counts=self.color_counts.copy(),
            epsilon_convergence_time=epsilon_time,
            trajectory=self.trajectory,
            births=self.births,
            info={
                "events": float(self.sim.events_executed),
                "good_ticks": float(self.good_ticks),
                "total_ticks": float(self.total_ticks),
                "active_leaders": float(len(self.leaders)),
                "max_leader_generation": float(max_leader_gen),
                "active_member_fraction": float(self._active_member.mean()),
                "time_unit": self.params.time_unit,
            },
        )


def run_multileader_consensus(
    params: MultiLeaderParams,
    clustering: Clustering,
    counts: np.ndarray,
    rng: np.random.Generator,
    *,
    max_time: float = 3000.0,
    epsilon: float | None = None,
    stop_at_epsilon: bool = False,
    record_every: float | None = None,
) -> RunResult:
    """Build a :class:`MultiLeaderConsensusSim` and run it."""
    sim = MultiLeaderConsensusSim(params, clustering, counts, rng)
    return sim.run(
        max_time=max_time,
        epsilon=epsilon,
        stop_at_epsilon=stop_at_epsilon,
        record_every=record_every,
    )
