"""Algorithm 4 — the node procedure of the decentralized consensus phase.

At each tick a clustered node ``v``:

1. sends a ``(0, 3, ·)`` signal to its own leader (time keeping);
2. if unlocked, locks and opens channels to three uniform samples
   ``v1, v2, v3`` concurrently, then to its own leader and to ``l``,
   the leader of ``v3``, concurrently;
3. once all channels are up (messages are instant): handles the
   *finished* flag (push own final color / adopt a sampled one), then
   — if the sampled cluster is active —

   * **two-choices** (``l.state = 1``): if both ``v1`` and ``v2`` sit in
     generation ``gen(l) − 1`` with equal colors, and their stored
     leader views agree with ``l`` (``in_sync``), adopt the color and
     promote to ``gen(l)``; report ``(gen, 1, True)``;
   * **propagation** (``l.state = 3``): if a sample sits in generation
     ``gen(l)`` (in sync with ``l``) above ``v``'s own generation,
     adopt it; report ``(gen, 3, True)``;
   * otherwise relay ``(gen(l), l.state, False)`` to the own leader —
     the carrier of the lexicographic leader synchronization;

4. stores its own leader's current ``(gen, state)`` (the ``tmp`` view
   used by *other* nodes' ``in_sync`` checks) and unlocks.

Nodes whose generation reaches the budget ``G*`` set ``finished`` and
push their color to every sample — the ``O(log n)`` full-consensus tail.
Unclustered nodes and members of inactive clusters take no actions but
receive pushes, exactly as in Theorem 27's accounting.

Engine notes: randomness comes from block-prefetched pools, events are
``(time, seq, bound_method, payload)`` tuples, and per-node state lives
in plain Python lists with numpy snapshot properties — see
:mod:`repro.core.single_leader` for the rationale.
"""

from __future__ import annotations

import numpy as np

from repro.core.results import GenerationBirth, RunResult, StepStats
from repro.engine.network import CompleteGraph
from repro.engine.rng import ChannelDelayPool, ExponentialPool
from repro.engine.simulator import Simulator
from repro.errors import ConfigurationError
from repro.multileader.cluster_leader import (
    STATE_PROPAGATION,
    STATE_TWO_CHOICES,
    ClusterLeaderState,
)
from repro.multileader.clustering import Clustering
from repro.multileader.params import MultiLeaderParams
from repro.workloads.bias import (
    collision_probability,
    multiplicative_bias,
    plurality_color,
    validate_counts,
)
from repro.workloads.opinions import counts_to_assignment

__all__ = ["MultiLeaderConsensusSim", "run_multileader_consensus"]


class MultiLeaderConsensusSim:
    """Event-driven simulator of Algorithms 4+5 on a given clustering."""

    def __init__(
        self,
        params: MultiLeaderParams,
        clustering: Clustering,
        counts: np.ndarray,
        rng: np.random.Generator,
        *,
        graph=None,
        simulator=None,
        tracer=None,
    ):
        if simulator is not None and tracer is not None:
            raise ConfigurationError(
                "pass the tracer to the pre-built simulator, not both"
            )
        if graph is None:
            graph = CompleteGraph(params.n)
        elif len(graph) != params.n:
            raise ConfigurationError(f"graph has {len(graph)} nodes but params.n={params.n}")
        elif getattr(graph, "min_degree", 1) < 1:
            raise ConfigurationError("graph has isolated nodes; contact sampling needs degree >= 1")
        counts = validate_counts(counts)
        if int(counts.sum()) != params.n:
            raise ConfigurationError(
                f"counts sum to {int(counts.sum())} but params.n={params.n}"
            )
        if counts.size != params.k:
            raise ConfigurationError(f"counts has {counts.size} colors, params.k={params.k}")
        if clustering.n != params.n:
            raise ConfigurationError("clustering size does not match params.n")
        self.params = params
        self.n = params.n
        self.k = params.k
        self.graph = graph
        self._rng = rng
        self.sim = Simulator(tracer=tracer) if simulator is None else simulator
        self._leader_of: list[int] = clustering.leader_of.tolist()

        self._tick_wait = ExponentialPool(rng, params.clock_rate)
        self._latency = ExponentialPool(rng, params.latency_rate)
        self._sample_other = graph.neighbor_pool(rng).sample
        # Three sample channels concurrently, then the two leader
        # channels concurrently — one composite pooled draw per cycle.
        self._channel_delay = ChannelDelayPool(rng, params.latency_rate, stages=(3, 2))

        sizes = clustering.cluster_sizes()
        self.leaders: dict[int, ClusterLeaderState] = {
            leader: ClusterLeaderState(leader, sizes[leader], params)
            for leader in clustering.active_leaders
        }
        if not self.leaders:
            raise ConfigurationError("clustering has no active leaders")
        self._tracer = self.sim.tracer
        self._trace_state = self._tracer.enabled_for("state")
        if self._tracer.enabled_for("phase"):
            for state in self.leaders.values():
                state.tracer = self._tracer
        if self._tracer.enabled_for("run"):
            self._tracer.record(
                "run", self.sim.now, protocol="multileader_consensus",
                n=self.n, k=self.k, counts=[int(c) for c in counts],
                leaders=len(self.leaders),
            )
        active_member = [leader in self.leaders for leader in self._leader_of]
        self._active_member = np.array(active_member)
        # Line 1's (0, 3, ·) signal is identical every tick for a given
        # node — precompute the dispatch payload once per node.
        self._tick_signal: list[tuple | None] = [
            (self.leaders[leader], 0, 3, False) if leader in self.leaders else None
            for leader in self._leader_of
        ]

        self._cols: list[int] = counts_to_assignment(counts, rng).tolist()
        self._gens: list[int] = [0] * self.n
        self._finished: list[bool] = [False] * self.n
        self._locked: list[bool] = [False] * self.n
        self._tmp_gen: list[int] = [0] * self.n
        self._tmp_state: list[int] = [0] * self.n

        rows = params.max_generation + 2
        self._matrix: list[list[int]] = [[0] * self.k for _ in range(rows)]
        self._matrix[0] = [int(c) for c in counts]
        self._color_counts: list[int] = [int(c) for c in counts]
        self.plurality = plurality_color(counts)
        self.births: list[GenerationBirth] = []
        self._birth_seen: list[bool] = [False] * rows
        self._birth_seen[0] = True
        self.trajectory: list[StepStats] = []
        self.good_ticks = 0
        self.total_ticks = 0

        # Convergence detection lives in _set_state (see
        # repro.core.single_leader), not in a per-event stop_when poll.
        self._eps_target: int | None = None
        self._eps_stop = False
        self._eps_time: float | None = None

        # One initial tick per active member (identical to the scalar
        # engine); the first tick grows each chain to a full window.
        self._window = self.sim.tick_window
        self._credit: list[int] = [1] * self.n
        schedule_in = self.sim.schedule_in
        tick = self._tick
        wait = self._tick_wait
        for node in range(self.n):
            if active_member[node]:
                schedule_in(wait(), tick, node)

    def _refill_window(self, node: int) -> None:
        """Next tick window + (0, 3, ·)-signal fan-out, two bulk inserts."""
        window = self._window
        sim = self.sim
        payload = self._tick_signal[node]
        if window == 1:
            # Event-granular fallback: the legacy draw/push sequence.
            sim.schedule_in(self._tick_wait(), self._tick, node)
            sim.schedule_in(self._latency(), self._deliver_signal, payload)
            return
        waits = self._tick_wait.take_array(window)
        lats = self._latency.take_array(window)
        # Soonest tick + the firing tick's signal as scalars; the rest
        # in two array blocks (see core.single_leader._refill_window).
        ticks = np.cumsum(waits)
        ticks += sim.now
        sim.schedule_in(float(lats[0]), self._deliver_signal, payload)  # line 1
        sigs = ticks[:-1] + lats[1:]
        sim.schedule_in(float(waits[0]), self._tick, node)
        sim.schedule_many_at(ticks[1:], self._tick, [node] * (window - 1))
        sim.schedule_many_at(sigs, self._deliver_signal, [payload] * (window - 1))
        self._credit[node] = window

    # ------------------------------------------------------------------
    # numpy snapshot views (external consumers: tests, experiments)
    # ------------------------------------------------------------------
    @property
    def leader_of(self) -> np.ndarray:
        """Per-node leader assignment, ``-1`` when unclustered (snapshot)."""
        return np.asarray(self._leader_of, dtype=np.int64)

    @property
    def cols(self) -> np.ndarray:
        """Per-node colors (snapshot array)."""
        return np.asarray(self._cols, dtype=np.int64)

    @property
    def gens(self) -> np.ndarray:
        """Per-node generations (snapshot array)."""
        return np.asarray(self._gens, dtype=np.int64)

    @property
    def finished(self) -> np.ndarray:
        """Per-node finished flags (snapshot array)."""
        return np.asarray(self._finished, dtype=bool)

    @property
    def locked(self) -> np.ndarray:
        """Per-node locked flags (snapshot array)."""
        return np.asarray(self._locked, dtype=bool)

    @property
    def tmp_gen(self) -> np.ndarray:
        """Stored own-leader generation per node (snapshot array)."""
        return np.asarray(self._tmp_gen, dtype=np.int64)

    @property
    def tmp_state(self) -> np.ndarray:
        """Stored own-leader state per node (snapshot array)."""
        return np.asarray(self._tmp_state, dtype=np.int64)

    @property
    def matrix(self) -> np.ndarray:
        """Generation×color count matrix (snapshot array)."""
        return np.asarray(self._matrix, dtype=np.int64)

    @property
    def color_counts(self) -> np.ndarray:
        """Current per-color node counts (snapshot array)."""
        return np.asarray(self._color_counts, dtype=np.int64)

    # ------------------------------------------------------------------
    # event handlers
    # ------------------------------------------------------------------
    def _signal(self, leader: int, i: int, s: int, has_changed: bool) -> None:
        state = self.leaders.get(leader)
        if state is None:
            return
        self.sim.schedule_in(
            self._latency(), self._deliver_signal, (state, i, s, has_changed)
        )

    def _deliver_signal(
        self, payload: tuple[ClusterLeaderState, int, int, bool]
    ) -> None:
        state, i, s, has_changed = payload
        state.on_signal(i, s, has_changed, self.sim.now)

    def _tick(self, node: int) -> None:
        self.total_ticks += 1
        credit = self._credit
        c = credit[node] - 1
        if c:
            credit[node] = c
        else:
            self._refill_window(node)
        if self._locked[node]:
            return
        self._locked[node] = True
        self.good_ticks += 1
        v1 = self._sample_other(node)
        v2 = self._sample_other(node)
        v3 = self._sample_other(node)
        self.sim.schedule_in(self._channel_delay(), self._exchange, (node, v1, v2, v3))

    def _exchange(self, payload: tuple[int, int, int, int]) -> None:
        node, v1, v2, v3 = payload
        leader_of = self._leader_of
        finished = self._finished
        gens = self._gens
        cols = self._cols
        own_leader = self.leaders.get(leader_of[node])
        # Lines 5-7: finished-flag push / pull.
        if finished[node]:
            col = cols[node]
            for sample in (v1, v2, v3):
                self._set_state(sample, gens[sample], col)
                finished[sample] = True
            self._locked[node] = False
            return
        for sample in (v1, v2, v3):
            if finished[sample]:
                self._set_state(node, gens[node], cols[sample])
                finished[node] = True
                self._locked[node] = False
                return

        sampled_leader = self.leaders.get(leader_of[v3])
        if sampled_leader is None:
            # Line 8: non-active cluster sampled — abort the cycle.
            self._locked[node] = False
            return
        l_gen = sampled_leader.gen
        l_state = sampled_leader.state
        own_gen = gens[node]
        gen_a, col_a = gens[v1], cols[v1]
        gen_b, col_b = gens[v2], cols[v2]
        tmp_gen = self._tmp_gen
        tmp_state = self._tmp_state
        in_sync_a = tmp_gen[v1] == l_gen and tmp_state[v1] == l_state
        in_sync_b = tmp_gen[v2] == l_gen and tmp_state[v2] == l_state
        promoted = False
        if (
            l_state == STATE_TWO_CHOICES
            and gen_a == gen_b == l_gen - 1
            and col_a == col_b
            and own_gen <= gen_a
            and in_sync_a
            and in_sync_b
        ):
            self._set_state(node, l_gen, col_a)
            self._signal(leader_of[node], l_gen, STATE_TWO_CHOICES, True)
            promoted = True
        elif l_state == STATE_PROPAGATION:
            candidate = -1
            if gen_a == l_gen and own_gen < gen_a and in_sync_a:
                candidate = v1
            elif gen_b == l_gen and own_gen < gen_b and in_sync_b:
                candidate = v2
            if candidate >= 0:
                self._set_state(node, gens[candidate], cols[candidate])
                self._signal(leader_of[node], gens[node], STATE_PROPAGATION, True)
                promoted = True
        if not promoted:
            # Line 18: relay the sampled leader's state to the own leader.
            self._signal(leader_of[node], l_gen, l_state, False)
        # Line 19: refresh the stored view of the *own* leader.
        if own_leader is not None:
            tmp_gen[node] = own_leader.gen
            tmp_state[node] = own_leader.state
        # Line 20: the generation budget is the finish line.
        if gens[node] >= self.params.max_generation:
            finished[node] = True
        self._locked[node] = False

    def _set_state(self, node: int, gen: int, col: int) -> None:
        gens = self._gens
        cols = self._cols
        old_gen, old_col = gens[node], cols[node]
        if old_gen == gen and old_col == col:
            return
        if self._trace_state:
            self._tracer.record(
                "state", self.sim.now, node=node, gen=gen, col=col,
                old_gen=old_gen, old_col=old_col,
            )
        matrix = self._matrix
        matrix[old_gen][old_col] -= 1
        matrix[gen][col] += 1
        if col != old_col:
            counts = self._color_counts
            counts[old_col] -= 1
            new = counts[col] + 1
            counts[col] = new
            eps = self._eps_target
            if eps is not None and self._eps_time is None and col == self.plurality and new >= eps:
                self._eps_time = self.sim.now
                if self._eps_stop:
                    self.sim.stop()
            if new == self.n:
                self.sim.stop()
        gens[node] = gen
        cols[node] = col
        if not self._birth_seen[gen]:
            self._birth_seen[gen] = True
            row = np.asarray(matrix[gen], dtype=np.int64)
            self.births.append(
                GenerationBirth(
                    generation=gen,
                    time=self.sim.now,
                    fraction=float(row.sum()) / self.n,
                    bias=multiplicative_bias(row),
                    collision_probability=collision_probability(row),
                )
            )
            if self._tracer.enabled_for("phase"):
                self._tracer.record(
                    "phase", self.sim.now, event="generation", gen=gen,
                    good_ticks=self.good_ticks,
                )

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------
    def stats(self) -> StepStats:
        matrix = self.matrix
        per_generation = matrix.sum(axis=1)
        occupied = np.nonzero(per_generation)[0]
        top = int(occupied[-1]) if occupied.size else 0
        return StepStats(
            time=self.sim.now,
            top_generation=top,
            top_generation_fraction=float(per_generation[top]) / self.n,
            plurality_fraction=float(max(self._color_counts)) / self.n,
            bias=multiplicative_bias(self.color_counts),
        )

    def leader_phase_table(self) -> dict[int, dict[int, dict[int, float]]]:
        """generation -> state -> {leader: first entry time} (Figure 2 data)."""
        table: dict[int, dict[int, dict[int, float]]] = {}
        for leader, state in self.leaders.items():
            for transition in state.transitions:
                per_state = table.setdefault(transition.generation, {}).setdefault(
                    transition.state, {}
                )
                # Transitions are chronological, so the first entry wins.
                per_state.setdefault(leader, transition.time)
        return table

    # ------------------------------------------------------------------
    # runner
    # ------------------------------------------------------------------
    def run(
        self,
        *,
        max_time: float = 3000.0,
        epsilon: float | None = None,
        stop_at_epsilon: bool = False,
        record_every: float | None = None,
    ) -> RunResult:
        """Run until full consensus, the ε-target, or ``max_time``."""
        if record_every is not None:

            def sample() -> None:
                self.trajectory.append(self.stats())
                self.sim.schedule_in(record_every, sample)

            self.sim.schedule_in(record_every, sample)
        epsilon_target = None
        if epsilon is not None:
            epsilon_target = int(np.ceil((1.0 - epsilon) * self.n))
        n = self.n
        counts = self._color_counts
        plurality = self.plurality
        self._eps_target = epsilon_target
        self._eps_stop = stop_at_epsilon
        self._eps_time = None

        already_converged = max(counts) == n
        eps_pre_satisfied = (
            epsilon_target is not None and counts[plurality] >= epsilon_target
        )
        if already_converged or eps_pre_satisfied:
            # Degenerate starts cannot trigger the _set_state hooks.
            def done() -> bool:
                if (
                    epsilon_target is not None
                    and self._eps_time is None
                    and counts[plurality] >= epsilon_target
                ):
                    self._eps_time = self.sim.now
                    if stop_at_epsilon:
                        return True
                return max(counts) == n

            self.sim.run(until=max_time, stop_when=done)
        else:
            self.sim.run(until=max_time)
        epsilon_time = self._eps_time
        converged = max(counts) == n
        max_leader_gen = max(state.gen for state in self.leaders.values())
        if self._tracer.enabled_for("end"):
            self._tracer.record(
                "end", self.sim.now, converged=converged,
                counts=[int(c) for c in counts], eps_time=epsilon_time,
                good_ticks=self.good_ticks, leader_gen=max_leader_gen,
            )
        return RunResult(
            converged=converged,
            winner=int(np.argmax(counts)),
            plurality_color=self.plurality,
            elapsed=self.sim.now,
            final_color_counts=self.color_counts,
            epsilon_convergence_time=epsilon_time,
            trajectory=self.trajectory,
            births=self.births,
            info={
                "events": float(self.sim.events_executed),
                "good_ticks": float(self.good_ticks),
                "total_ticks": float(self.total_ticks),
                "active_leaders": float(len(self.leaders)),
                "max_leader_generation": float(max_leader_gen),
                "active_member_fraction": float(self._active_member.mean()),
                "time_unit": self.params.time_unit,
            },
        )


def run_multileader_consensus(
    params: MultiLeaderParams,
    clustering: Clustering,
    counts: np.ndarray,
    rng: np.random.Generator,
    *,
    max_time: float = 3000.0,
    epsilon: float | None = None,
    stop_at_epsilon: bool = False,
    record_every: float | None = None,
    graph=None,
    tracer=None,
) -> RunResult:
    """Build a :class:`MultiLeaderConsensusSim` and run it."""
    sim = MultiLeaderConsensusSim(
        params, clustering, counts, rng, graph=graph, tracer=tracer
    )
    return sim.run(
        max_time=max_time,
        epsilon=epsilon,
        stop_at_epsilon=stop_at_epsilon,
        record_every=record_every,
    )
