"""Section 4.1 — the distributed clustering algorithm.

Every node flips a coin and becomes a cluster *leader* with probability
``leader_probability`` (the paper's ``1/log^c n``). Followers join
clusters by sampling: at each tick an unclustered follower contacts
three random nodes, asks them for their leaders' addresses, then
contacts one of those leaders and joins if the cluster is below its size
cap. Members send 0-signals to their leader at every tick, which lets
leaders count time; a leader whose cluster reached the target size
counts a further fixed number of signals and then declares itself
*ready*. The first ready leader starts the switch broadcast; every
leader that learns of the switch enters consensus mode if its cluster is
large enough (``min_active_size``), otherwise the cluster sits out the
consensus phase (the paper's "faulty clusters"). Theorem 27 measures
exactly these quantities: the clustered fraction over time and the
spread ``t_l − t_f`` between the first and last switch.

Two admission policies are provided. The default accepts members until
the cap (the measured claims — growth, switch spread, exclusion of
small clusters — do not depend on admission pacing). With
``faithful_pause=True`` the simulator follows the paper's device to the
letter: a leader that reaches the target size *pauses* admissions,
counts ``pause_units`` worth of member 0-signals, then *reopens* until
the cap; the ready counter starts only after the reopen window.

The event hot path (ticks, latencies, contact sampling) draws from
block-prefetched pools and dispatches bound methods with integer/tuple
payloads — see the engine notes in :mod:`repro.core.single_leader`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.engine.network import CompleteGraph
from repro.engine.rng import ChannelDelayPool, ExponentialPool
from repro.engine.simulator import Simulator, schedule_tick_window
from repro.errors import ConfigurationError, SimulationError
from repro.multileader.params import MultiLeaderParams
from repro.util.validation import check_positive_int

__all__ = ["Clustering", "ClusteringSim", "ideal_clustering", "run_clustering"]


@dataclass
class Clustering:
    """Outcome of the clustering phase.

    Attributes
    ----------
    leader_of:
        ``leader_of[v]`` is the leader's node id, or ``-1`` if ``v`` is
        unclustered. Leaders point at themselves.
    active_leaders:
        Leaders whose clusters met ``min_active_size`` and switched to
        consensus mode.
    switch_times:
        Leader id -> simulated time it entered consensus mode.
    elapsed:
        Simulated time when the clustering run stopped.
    """

    leader_of: np.ndarray
    active_leaders: list[int]
    switch_times: dict[int, float] = field(default_factory=dict)
    elapsed: float = 0.0

    @property
    def n(self) -> int:
        return int(self.leader_of.size)

    @property
    def leaders(self) -> list[int]:
        """All cluster leaders (active or not)."""
        own = np.nonzero(self.leader_of == np.arange(self.n))[0]
        return [int(v) for v in own]

    def cluster_sizes(self) -> dict[int, int]:
        """Leader id -> cluster cardinality (leader included)."""
        sizes: dict[int, int] = {}
        for leader in self.leaders:
            sizes[leader] = int(np.count_nonzero(self.leader_of == leader))
        return sizes

    @property
    def clustered_fraction(self) -> float:
        return float(np.count_nonzero(self.leader_of >= 0)) / self.n

    @property
    def active_fraction(self) -> float:
        """Fraction of all nodes living in an active (consensus) cluster."""
        active = set(self.active_leaders)
        member_of_active = [
            1 for leader in self.leader_of.tolist() if leader in active
        ]
        return len(member_of_active) / self.n

    @property
    def switch_spread(self) -> float:
        """Theorem 27's ``t_l − t_f`` over active leaders."""
        if not self.switch_times:
            return 0.0
        times = [self.switch_times[leader] for leader in self.active_leaders]
        return max(times) - min(times) if times else 0.0


def ideal_clustering(n: int, cluster_size: int) -> Clustering:
    """A deterministic, perfectly balanced clustering (test/experiment aid).

    Nodes ``0, cluster_size, 2·cluster_size, ...`` lead consecutive
    blocks. Use when an experiment studies the consensus phase and
    clustering quality is not the subject.
    """
    n = check_positive_int("n", n, minimum=2)
    cluster_size = check_positive_int("cluster_size", cluster_size, minimum=2)
    if cluster_size > n:
        raise ConfigurationError("cluster_size cannot exceed n")
    leader_of = np.empty(n, dtype=np.int64)
    leaders = []
    for start in range(0, n, cluster_size):
        leader_of[start : start + cluster_size] = start
        leaders.append(start)
    # Fold a trailing runt cluster into the previous one.
    if n % cluster_size and len(leaders) > 1 and n - leaders[-1] < cluster_size:
        leader_of[leaders[-1] :] = leaders[-2]
        leaders.pop()
    return Clustering(
        leader_of=leader_of,
        active_leaders=leaders,
        switch_times={leader: 0.0 for leader in leaders},
        elapsed=0.0,
    )


class ClusteringSim:
    """Event-driven simulator of the clustering phase.

    Parameters
    ----------
    params:
        Multi-leader configuration (latency, cluster sizes, ...).
    rng:
        Drives coin flips, ticks, sampling, and latencies.
    ready_units:
        Time units a full cluster's leader keeps counting 0-signals
        before declaring itself ready to switch.
    faithful_pause:
        Enable the paper's pause/reopen admission pacing (Section 4.1):
        pause at the target size for ``pause_units`` time units of
        member signals, then reopen until the cap.
    pause_units:
        Length of the pause window (only with ``faithful_pause``).
    graph:
        Communication substrate (defaults to ``K_n``, bit-identical to
        the pre-scenario engine; see :mod:`repro.scenarios.topology`).
    """

    def __init__(
        self,
        params: MultiLeaderParams,
        rng: np.random.Generator,
        *,
        ready_units: float = 2.0,
        faithful_pause: bool = False,
        pause_units: float = 1.0,
        graph=None,
        simulator=None,
        tracer=None,
    ):
        if simulator is not None and tracer is not None:
            raise ConfigurationError(
                "pass the tracer to the pre-built simulator, not both"
            )
        if graph is None:
            graph = CompleteGraph(params.n)
        elif len(graph) != params.n:
            raise ConfigurationError(f"graph has {len(graph)} nodes but params.n={params.n}")
        elif getattr(graph, "min_degree", 1) < 1:
            raise ConfigurationError("graph has isolated nodes; contact sampling needs degree >= 1")
        self.params = params
        self.n = params.n
        self.graph = graph
        self._rng = rng
        self.sim = Simulator(tracer=tracer) if simulator is None else simulator
        self._tracer = self.sim.tracer
        self._trace_phase = self._tracer.enabled_for("phase")
        if self._tracer.enabled_for("run"):
            self._tracer.record(
                "run", self.sim.now, protocol="multileader_clustering",
                n=self.n, k=0, counts=[],
            )
        self._tick_wait = ExponentialPool(rng, params.clock_rate)
        self._latency = ExponentialPool(rng, params.latency_rate)
        self._sample_other = graph.neighbor_pool(rng).sample
        # Three concurrent channels to the sampled nodes per cycle.
        self._channel_delay = ChannelDelayPool(rng, params.latency_rate, stages=(3,))
        self._leader: list[int] = [-1] * self.n
        coin = rng.random(self.n) < params.leader_probability
        self.is_leader = coin
        if not coin.any():
            # Guarantee at least one leader (the paper's whp. statement).
            self.is_leader[int(rng.integers(self.n))] = True
        leaders = np.nonzero(self.is_leader)[0]
        for leader in leaders:
            self._leader[int(leader)] = int(leader)
        self.size: dict[int, int] = {int(v): 1 for v in leaders}
        self.signal_count: dict[int, int] = {int(v): 0 for v in leaders}
        self.ready: dict[int, bool] = {int(v): False for v in leaders}
        self.informed: dict[int, bool] = {int(v): False for v in leaders}
        self._informed_count = 0
        self._total_leaders = len(self.informed)
        self.switch_times: dict[int, float] = {}
        self.active_leaders: list[int] = []
        self._locked: list[bool] = [False] * self.n
        self._ready_signals = math.ceil(
            ready_units * params.time_unit * params.target_cluster_size
        )
        self._faithful_pause = faithful_pause
        self._pause_signals = math.ceil(
            pause_units * params.time_unit * params.target_cluster_size
        )
        # Pause bookkeeping: signals counted while paused, per leader.
        self._pause_count: dict[int, int] = {}
        self._reopened: dict[int, bool] = {}
        self._broadcast_started = False
        self.first_ready_time: float | None = None
        self.clustered_trajectory: list[tuple[float, float]] = []
        # One initial tick per node (identical to the scalar engine);
        # each node's first tick then grows its chain to a full window.
        self._window = self.sim.tick_window
        self._credit: list[int] = [1] * self.n
        schedule_in = self.sim.schedule_in
        tick = self._tick
        wait = self._tick_wait
        for node in range(self.n):
            schedule_in(wait(), tick, node)

    def _refill_window(self, node: int) -> None:
        """Pre-schedule the node's next tick window (one bulk insert).

        Unlike the consensus phase, the member 0-signal's *target*
        (the node's leader) changes as clusters form, so signals are
        drawn per tick in :meth:`_tick`; only the unconditional tick
        chain is batched.
        """
        window = self._window
        if window == 1:
            # Event-granular fallback: the legacy draw/push sequence.
            self.sim.schedule_in(self._tick_wait(), self._tick, node)
            return
        schedule_tick_window(self.sim, self._tick_wait, self._tick, node, window)
        self._credit[node] = window

    # ------------------------------------------------------------------
    @property
    def leader_of(self) -> np.ndarray:
        """Per-node leader assignment, ``-1`` when unclustered (snapshot)."""
        return np.asarray(self._leader, dtype=np.int64)

    @property
    def locked(self) -> np.ndarray:
        """Per-node locked flags (snapshot array)."""
        return np.asarray(self._locked, dtype=bool)

    def _tick(self, node: int) -> None:
        sim = self.sim
        credit = self._credit
        c = credit[node] - 1
        if c:
            credit[node] = c
        else:
            self._refill_window(node)
        own = self._leader[node]
        if own >= 0:
            # Member (or leader itself): 0-signal to the own leader.
            sim.schedule_in(self._latency(), self._leader_signal, own)
        if self._locked[node]:
            return
        self._locked[node] = True
        samples = (
            self._sample_other(node),
            self._sample_other(node),
            self._sample_other(node),
        )
        sim.schedule_in(self._channel_delay(), self._exchange, (node, samples))

    def _exchange(self, payload: tuple[int, tuple[int, ...]]) -> None:
        node, samples = payload
        # Relay the switch broadcast between every pair of leaders seen.
        leader = self._leader
        seen_leaders = {leader[s] for s in samples if leader[s] >= 0}
        own = leader[node]
        if own >= 0:
            seen_leaders.add(own)
        informed = self.informed
        if any(informed.get(l, False) for l in seen_leaders):
            for seen in seen_leaders:
                self._inform(seen)
        if own >= 0 or not seen_leaders:
            self._locked[node] = False
            return
        # Unclustered follower: try to join one sampled leader.
        target = min(seen_leaders)  # deterministic pick among candidates
        self.sim.schedule_in(self._latency(), self._join, (node, target))

    def _accepting(self, leader: int) -> bool:
        """Admission policy (default: open until cap; faithful: pause/reopen)."""
        size = self.size.get(leader, 0)
        if size >= self.params.max_cluster_size or leader in self.switch_times:
            return False
        if not self._faithful_pause:
            return True
        if size < self.params.target_cluster_size:
            return True
        # At/above target: closed while paused, open again after reopening.
        return self._reopened.get(leader, False)

    def _join(self, payload: tuple[int, int]) -> None:
        node, target = payload
        if self._accepting(target) and self._leader[node] < 0:
            self._leader[node] = target
            self.size[target] += 1
        self._locked[node] = False

    def _leader_signal(self, leader: int) -> None:
        if leader not in self.signal_count:
            return
        if self.size[leader] < self.params.target_cluster_size or self.ready[leader]:
            return
        if self._faithful_pause and not self._reopened.get(leader, False):
            # Paper's pause window: count c2-style signals, then reopen.
            self._pause_count[leader] = self._pause_count.get(leader, 0) + 1
            if self._pause_count[leader] >= self._pause_signals:
                self._reopened[leader] = True
            return
        self.signal_count[leader] += 1
        if self.signal_count[leader] >= self._ready_signals:
            self.ready[leader] = True
            if not self._broadcast_started:
                self._broadcast_started = True
                self.first_ready_time = self.sim.now
                self._inform(leader)

    def _inform(self, leader: int) -> None:
        if self.informed.get(leader, False):
            return
        self.informed[leader] = True
        self._informed_count += 1
        if self.size[leader] >= self.params.min_active_size:
            self.switch_times[leader] = self.sim.now
            self.active_leaders.append(leader)
            if self._trace_phase:
                self._tracer.record(
                    "phase", self.sim.now, event="switch", leader=leader,
                    size=self.size[leader],
                )
        # Termination is detected here (the only place `informed`
        # changes) instead of polling every event.
        if self._broadcast_started and self._informed_count == self._total_leaders:
            self.sim.stop()

    # ------------------------------------------------------------------
    def run(self, *, max_time: float = 500.0, sample_every: float = 1.0) -> Clustering:
        """Run until every leader learned of the switch (or ``max_time``)."""

        def sample() -> None:
            clustered = sum(1 for leader in self._leader if leader >= 0)
            self.clustered_trajectory.append((self.sim.now, clustered / self.n))
            self.sim.schedule_in(sample_every, sample)

        self.sim.schedule_in(sample_every, sample)
        self.sim.run(until=max_time)
        if not self.active_leaders:
            raise SimulationError(
                "clustering produced no active cluster; increase max_time or n"
            )
        if self._tracer.enabled_for("end"):
            clustered = sum(1 for leader in self._leader if leader >= 0)
            self._tracer.record(
                "end", self.sim.now, converged=True, counts=[],
                eps_time=None, clustered_fraction=clustered / self.n,
                active_leaders=len(self.active_leaders),
            )
        return Clustering(
            leader_of=self.leader_of,
            active_leaders=sorted(self.active_leaders),
            switch_times=dict(self.switch_times),
            elapsed=self.sim.now,
        )


def run_clustering(
    params: MultiLeaderParams,
    rng: np.random.Generator,
    *,
    max_time: float = 500.0,
    ready_units: float = 2.0,
    graph=None,
) -> Clustering:
    """Build a :class:`ClusteringSim` and run it (convenience front-end)."""
    sim = ClusteringSim(params, rng, ready_units=ready_units, graph=graph)
    return sim.run(max_time=max_time)
