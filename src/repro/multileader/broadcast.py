"""Section 4.2 — constant-time broadcast among cluster leaders.

One leader holds a message. At every tick, each clustered node contacts
its own leader and two random nodes, requests their leaders' addresses,
and contacts those leaders; if any of the (up to three) leaders involved
is informed, the other contacted leaders become informed too. Because a
cluster of polylog size performs polylog contact rounds per time unit,
each cluster relays the message within ``O(1)`` time, and the leader
overlay floods in ``O(1)`` time overall (Theorem 28) — in contrast to
``Θ(log n)`` for flat push-pull gossip over ``n`` nodes.

:class:`BroadcastSim` measures exactly this: the time until all active
leaders are informed, given a :class:`~repro.multileader.clustering.Clustering`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.network import CompleteGraph
from repro.engine.rng import ChannelDelayPool, ExponentialPool
from repro.engine.simulator import Simulator, schedule_tick_window
from repro.errors import ConfigurationError
from repro.multileader.clustering import Clustering
from repro.multileader.params import MultiLeaderParams

__all__ = ["BroadcastResult", "BroadcastSim", "run_broadcast"]


@dataclass(frozen=True)
class BroadcastResult:
    """Outcome of one leader-overlay broadcast."""

    all_informed_time: float | None
    informed_leaders: int
    total_leaders: int
    informed_trajectory: tuple[tuple[float, int], ...]

    @property
    def completed(self) -> bool:
        return self.all_informed_time is not None


class BroadcastSim:
    """Event-driven broadcast among the leaders of an existing clustering."""

    def __init__(
        self,
        params: MultiLeaderParams,
        clustering: Clustering,
        rng: np.random.Generator,
        *,
        source: int | None = None,
        graph=None,
        simulator=None,
        tracer=None,
    ):
        if simulator is not None and tracer is not None:
            raise ConfigurationError(
                "pass the tracer to the pre-built simulator, not both"
            )
        if clustering.n != params.n:
            raise ConfigurationError("clustering size does not match params.n")
        if graph is None:
            graph = CompleteGraph(params.n)
        elif len(graph) != params.n:
            raise ConfigurationError(f"graph has {len(graph)} nodes but params.n={params.n}")
        elif getattr(graph, "min_degree", 1) < 1:
            raise ConfigurationError("graph has isolated nodes; contact sampling needs degree >= 1")
        self.params = params
        self.n = params.n
        self.graph = graph
        self._rng = rng
        self.sim = Simulator(tracer=tracer) if simulator is None else simulator
        self._tracer = self.sim.tracer
        self._trace_phase = self._tracer.enabled_for("phase")
        self._tick_wait = ExponentialPool(rng, params.clock_rate)
        self._sample_other = graph.neighbor_pool(rng).sample
        # Own leader + two sampled nodes concurrently, then their leaders.
        self._channel_delay = ChannelDelayPool(rng, params.latency_rate, stages=(3, 2))
        self._leader_of: list[int] = clustering.leader_of.tolist()
        self.leaders = sorted(set(clustering.active_leaders))
        if not self.leaders:
            raise ConfigurationError("clustering has no active leaders")
        if source is None:
            source = self.leaders[0]
        if source not in self.leaders:
            raise ConfigurationError(f"source {source} is not an active leader")
        self.informed: dict[int, bool] = {leader: False for leader in self.leaders}
        self.informed[source] = True
        self.informed_count = 1
        self.trajectory: list[tuple[float, int]] = [(0.0, 1)]
        if self._tracer.enabled_for("run"):
            self._tracer.record(
                "run", self.sim.now, protocol="multileader_broadcast",
                n=self.n, k=0, counts=[], leaders=len(self.leaders),
            )
        self._locked: list[bool] = [False] * self.n
        self._active = set(self.leaders)
        # One initial tick per member (identical to the scalar engine);
        # each node's first tick then grows its chain to a full window.
        self._window = self.sim.tick_window
        self._credit: list[int] = [1] * self.n
        schedule_in = self.sim.schedule_in
        tick = self._tick
        wait = self._tick_wait
        for node in range(self.n):
            if self._leader_of[node] in self._active:
                schedule_in(wait(), tick, node)

    def _refill_window(self, node: int) -> None:
        """Pre-schedule the node's next tick window (one bulk insert)."""
        window = self._window
        if window == 1:
            # Event-granular fallback: the legacy draw/push sequence.
            self.sim.schedule_in(self._tick_wait(), self._tick, node)
            return
        schedule_tick_window(self.sim, self._tick_wait, self._tick, node, window)
        self._credit[node] = window

    @property
    def leader_of(self) -> np.ndarray:
        """Per-node leader assignment, ``-1`` when unclustered (snapshot)."""
        return np.asarray(self._leader_of, dtype=np.int64)

    @property
    def locked(self) -> np.ndarray:
        """Per-node locked flags (snapshot array)."""
        return np.asarray(self._locked, dtype=bool)

    def _tick(self, node: int) -> None:
        credit = self._credit
        c = credit[node] - 1
        if c:
            credit[node] = c
        else:
            self._refill_window(node)
        if self._locked[node]:
            return
        self._locked[node] = True
        first, second = self._sample_other(node), self._sample_other(node)
        self.sim.schedule_in(self._channel_delay(), self._exchange, (node, first, second))

    def _exchange(self, payload: tuple[int, int, int]) -> None:
        node, first, second = payload
        leader_of = self._leader_of
        active = self._active
        informed = self.informed
        contacted = {leader_of[node]}
        for sample in (first, second):
            leader = leader_of[sample]
            if leader in active:
                contacted.add(leader)
        if any(informed.get(leader, False) for leader in contacted):
            for leader in contacted:
                if leader in active and not informed[leader]:
                    informed[leader] = True
                    self.informed_count += 1
                    self.trajectory.append((self.sim.now, self.informed_count))
                    if self._trace_phase:
                        self._tracer.record(
                            "phase", self.sim.now, event="informed",
                            leader=leader, informed=self.informed_count,
                        )
            if self.informed_count == len(self.leaders):
                self.sim.stop()
        self._locked[node] = False

    def run(self, *, max_time: float = 200.0) -> BroadcastResult:
        """Run until every active leader is informed (or ``max_time``)."""
        if self.informed_count == len(self.leaders):
            # Degenerate single-leader overlay: already informed; keep
            # the seed's stop-after-first-event semantics.
            self.sim.run(until=max_time, max_events=1)
        else:
            self.sim.run(until=max_time)
        completed = self.informed_count == len(self.leaders)
        if self._tracer.enabled_for("end"):
            self._tracer.record(
                "end", self.sim.now, converged=completed, counts=[],
                eps_time=None, informed=self.informed_count,
                leaders=len(self.leaders),
            )
        return BroadcastResult(
            all_informed_time=self.sim.now if completed else None,
            informed_leaders=self.informed_count,
            total_leaders=len(self.leaders),
            informed_trajectory=tuple(self.trajectory),
        )


def run_broadcast(
    params: MultiLeaderParams,
    clustering: Clustering,
    rng: np.random.Generator,
    *,
    source: int | None = None,
    max_time: float = 200.0,
    graph=None,
) -> BroadcastResult:
    """Build a :class:`BroadcastSim` and run it (convenience front-end)."""
    return BroadcastSim(params, clustering, rng, source=source, graph=graph).run(
        max_time=max_time
    )
