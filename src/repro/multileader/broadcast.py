"""Section 4.2 — constant-time broadcast among cluster leaders.

One leader holds a message. At every tick, each clustered node contacts
its own leader and two random nodes, requests their leaders' addresses,
and contacts those leaders; if any of the (up to three) leaders involved
is informed, the other contacted leaders become informed too. Because a
cluster of polylog size performs polylog contact rounds per time unit,
each cluster relays the message within ``O(1)`` time, and the leader
overlay floods in ``O(1)`` time overall (Theorem 28) — in contrast to
``Θ(log n)`` for flat push-pull gossip over ``n`` nodes.

:class:`BroadcastSim` measures exactly this: the time until all active
leaders are informed, given a :class:`~repro.multileader.clustering.Clustering`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.simulator import Simulator
from repro.errors import ConfigurationError
from repro.multileader.clustering import Clustering
from repro.multileader.params import MultiLeaderParams

__all__ = ["BroadcastResult", "BroadcastSim", "run_broadcast"]


@dataclass(frozen=True)
class BroadcastResult:
    """Outcome of one leader-overlay broadcast."""

    all_informed_time: float | None
    informed_leaders: int
    total_leaders: int
    informed_trajectory: tuple[tuple[float, int], ...]

    @property
    def completed(self) -> bool:
        return self.all_informed_time is not None


class BroadcastSim:
    """Event-driven broadcast among the leaders of an existing clustering."""

    def __init__(
        self,
        params: MultiLeaderParams,
        clustering: Clustering,
        rng: np.random.Generator,
        *,
        source: int | None = None,
    ):
        if clustering.n != params.n:
            raise ConfigurationError("clustering size does not match params.n")
        self.params = params
        self.n = params.n
        self._rng = rng
        self.sim = Simulator()
        self.leader_of = clustering.leader_of
        self.leaders = sorted(set(clustering.active_leaders))
        if not self.leaders:
            raise ConfigurationError("clustering has no active leaders")
        if source is None:
            source = self.leaders[0]
        if source not in self.leaders:
            raise ConfigurationError(f"source {source} is not an active leader")
        self.informed: dict[int, bool] = {leader: False for leader in self.leaders}
        self.informed[source] = True
        self.informed_count = 1
        self.trajectory: list[tuple[float, int]] = [(0.0, 1)]
        self.locked = np.zeros(self.n, dtype=bool)
        self._active = set(self.leaders)
        for node in range(self.n):
            if self.leader_of[node] in self._active:
                self._schedule_tick(node)

    def _schedule_tick(self, node: int) -> None:
        wait = self._rng.exponential(1.0 / self.params.clock_rate)
        self.sim.schedule_in(wait, lambda node=node: self._tick(node), tag="tick")

    def _latency(self) -> float:
        return float(self._rng.exponential(1.0 / self.params.latency_rate))

    def _sample_other(self, node: int) -> int:
        draw = int(self._rng.integers(self.n - 1))
        return draw + 1 if draw >= node else draw

    def _tick(self, node: int) -> None:
        self._schedule_tick(node)
        if self.locked[node]:
            return
        self.locked[node] = True
        first, second = self._sample_other(node), self._sample_other(node)
        # Own leader + two sampled nodes concurrently, then their leaders.
        delay = max(self._latency(), self._latency(), self._latency()) + max(
            self._latency(), self._latency()
        )
        self.sim.schedule_in(
            delay,
            lambda node=node, a=first, b=second: self._exchange(node, a, b),
            tag="exchange",
        )

    def _exchange(self, node: int, first: int, second: int) -> None:
        contacted = {int(self.leader_of[node])}
        for sample in (first, second):
            leader = int(self.leader_of[sample])
            if leader in self._active:
                contacted.add(leader)
        if any(self.informed.get(leader, False) for leader in contacted):
            for leader in contacted:
                if leader in self._active and not self.informed[leader]:
                    self.informed[leader] = True
                    self.informed_count += 1
                    self.trajectory.append((self.sim.now, self.informed_count))
        self.locked[node] = False

    def run(self, *, max_time: float = 200.0) -> BroadcastResult:
        """Run until every active leader is informed (or ``max_time``)."""
        self.sim.run(
            until=max_time, stop_when=lambda: self.informed_count == len(self.leaders)
        )
        completed = self.informed_count == len(self.leaders)
        return BroadcastResult(
            all_informed_time=self.sim.now if completed else None,
            informed_leaders=self.informed_count,
            total_leaders=len(self.leaders),
            informed_trajectory=tuple(self.trajectory),
        )


def run_broadcast(
    params: MultiLeaderParams,
    clustering: Clustering,
    rng: np.random.Generator,
    *,
    source: int | None = None,
    max_time: float = 200.0,
) -> BroadcastResult:
    """Build a :class:`BroadcastSim` and run it (convenience front-end)."""
    return BroadcastSim(params, clustering, rng, source=source).run(max_time=max_time)
