"""Section 4 — the decentralized multi-leader system.

Clustering (4.1), constant-time leader broadcast (4.2), the cluster
leader state machine (Algorithm 5), the node procedure (Algorithm 4),
and the end-to-end protocol runner (Theorem 26).
"""

from repro.multileader.broadcast import BroadcastResult, BroadcastSim, run_broadcast
from repro.multileader.cluster_leader import (
    STATE_PROPAGATION,
    STATE_SLEEPING,
    STATE_TWO_CHOICES,
    ClusterLeaderState,
    LeaderTransition,
)
from repro.multileader.clustering import (
    Clustering,
    ClusteringSim,
    ideal_clustering,
    run_clustering,
)
from repro.multileader.consensus import MultiLeaderConsensusSim, run_multileader_consensus
from repro.multileader.params import MultiLeaderParams, default_cluster_size
from repro.multileader.protocol import run_multileader

__all__ = [
    "BroadcastResult",
    "BroadcastSim",
    "run_broadcast",
    "STATE_PROPAGATION",
    "STATE_SLEEPING",
    "STATE_TWO_CHOICES",
    "ClusterLeaderState",
    "LeaderTransition",
    "Clustering",
    "ClusteringSim",
    "ideal_clustering",
    "run_clustering",
    "MultiLeaderConsensusSim",
    "run_multileader_consensus",
    "MultiLeaderParams",
    "default_cluster_size",
    "run_multileader",
]
