"""Parameters for the decentralized multi-leader protocol (Section 4).

The paper's constants are proof-oriented (cluster sizes ``log^{c-1} n``
with a large ``c``, thresholds ``C2 = C_br + 1 + 2·ε₁`` and
``C3 = 2·C_br + 1 + 5·ε₁`` time units). At practical ``n`` those are
galactic, so this module exposes every constant with calibrated defaults
and documents the mapping:

==============================  =======================================
Paper quantity                  Field here
==============================  =======================================
leader probability 1/log^c n    ``leader_probability``
cluster cap log^{c-1} n         ``max_cluster_size``
"active" cluster size bound     ``min_active_size``
C2 (sleep threshold, units)     ``sleep_units``
C3 (propagation threshold)      ``propagation_units``
gen-size fraction 1/2+1/√log n  ``gen_size_fraction`` (+ surge term)
G* generation budget            ``max_generation``
==============================  =======================================

The *phase structure* — two-choices → sleeping → propagation, with the
sleeping window absorbing inter-leader skew (Figure 2 / Proposition 31)
— is preserved exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.theory import total_generations
from repro.engine.latency import ChannelPlan, time_unit_steps
from repro.errors import ConfigurationError
from repro.util.validation import check_fraction, check_positive, check_positive_int

__all__ = ["MultiLeaderParams", "default_cluster_size"]


def default_cluster_size(n: int) -> int:
    """Practical stand-in for the paper's ``polylog n`` cluster size.

    ``max(8, ⌈log2(n)^1.5⌉)`` — grows polylogarithmically, is large
    enough for per-cluster counters to concentrate, and keeps the number
    of clusters ``n / polylog n`` as in the paper.
    """
    n = check_positive_int("n", n, minimum=2)
    return max(8, math.ceil(math.log2(n) ** 1.5))


@dataclass
class MultiLeaderParams:
    """Configuration of clustering + the multi-leader consensus protocol.

    Parameters mirror :class:`~repro.core.params.SingleLeaderParams`
    plus the clustering and leader-phase constants described in the
    module docstring.
    """

    n: int
    k: int
    alpha0: float
    latency_rate: float = 1.0
    clock_rate: float = 1.0
    target_cluster_size: int | None = None
    leader_probability: float | None = None
    max_cluster_multiple: float = 2.0
    min_active_fraction: float = 0.5
    sleep_units: float = 3.0
    propagation_units: float = 5.0
    gen_size_fraction: float | None = None
    extra_generations: int = 2
    unit_quantile: float = 0.9
    clustering_units: float = 8.0
    plan: ChannelPlan = ChannelPlan.CONCURRENT_THEN_LEADER
    #: Derived: steps per time unit (3 random + 2 leader contacts).
    time_unit: float = field(init=False)
    max_generation: int = field(init=False)
    max_cluster_size: int = field(init=False)
    min_active_size: int = field(init=False)

    def __post_init__(self) -> None:
        check_positive_int("n", self.n, minimum=4)
        check_positive_int("k", self.k, minimum=2)
        if self.alpha0 <= 1.0:
            raise ConfigurationError(f"alpha0 must be > 1, got {self.alpha0}")
        check_positive("latency_rate", self.latency_rate)
        check_positive("clock_rate", self.clock_rate)
        check_positive("sleep_units", self.sleep_units)
        check_positive("propagation_units", self.propagation_units)
        if self.propagation_units <= self.sleep_units:
            raise ConfigurationError(
                "propagation_units must exceed sleep_units (sleep precedes propagation)"
            )
        check_fraction("unit_quantile", self.unit_quantile)
        check_fraction("min_active_fraction", self.min_active_fraction)
        if self.max_cluster_multiple < 1.0:
            raise ConfigurationError("max_cluster_multiple must be >= 1")
        if self.target_cluster_size is None:
            self.target_cluster_size = default_cluster_size(self.n)
        check_positive_int("target_cluster_size", self.target_cluster_size, minimum=2)
        if self.leader_probability is None:
            self.leader_probability = 1.0 / self.target_cluster_size
        check_fraction("leader_probability", self.leader_probability)
        if self.gen_size_fraction is None:
            self.gen_size_fraction = min(
                0.75, 0.5 + 1.0 / math.sqrt(math.log2(self.n))
            )
        check_fraction("gen_size_fraction", self.gen_size_fraction)
        if self.extra_generations < 0:
            raise ConfigurationError("extra_generations must be >= 0")
        # Algorithm 4 opens channels to three random nodes, then to the
        # own leader and the third sample's leader.
        self.time_unit = time_unit_steps(
            self.latency_rate,
            quantile=self.unit_quantile,
            clock_rate=self.clock_rate,
            random_contacts=3,
            leader_contacts=2,
            plan=self.plan,
        )
        self.max_generation = total_generations(self.n, self.alpha0) + self.extra_generations
        self.max_cluster_size = math.ceil(
            self.max_cluster_multiple * self.target_cluster_size
        )
        self.min_active_size = max(
            2, math.floor(self.min_active_fraction * self.target_cluster_size)
        )
