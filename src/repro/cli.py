"""Command-line interface.

Usage::

    repro list                          # show the experiment registry
    repro run fig1 [--full] [--seed S]  # run one experiment, print tables
    repro reproduce [--full] [--out F]  # run everything, write Markdown
    repro reproduce --list              # list experiments without running
    repro demo [--n N] [--k K] ...      # one synchronous + one async run
    repro sweep TARGET --grid n=1e3,1e4 # parameter sweep, cached+parallel
    repro sweep --list-targets          # targets + their grid-able params
    repro sweep TARGET ... --state-dir D --max-retries 3 --run-timeout 60
    repro sweep --resume D              # continue an interrupted sweep
    repro robustness [--quick]          # adversity tables (cached sweep)
    repro chaos                         # fault-injection smoke of the supervisor
    repro trace-metrics trace.jsonl     # offline metrics from a JSONL trace
    repro trace-diff a.jsonl b.jsonl    # structural diff; exit 1 on divergence
    repro trace-merge a.jsonl b.jsonl   # merge per-shard traces by (t, seq)
    repro trace-view trace.jsonl        # static-HTML replay of a trace
    repro metrics-report m.json         # render a --metrics snapshot
    repro metrics-report m.json --compare base.json   # regression tables
    repro cache stats|gc [--dry-run]    # inspect / clean the run cache

``demo``, ``sweep``, and ``robustness`` all take ``--trace`` to stream
the protocol-level JSONL trace (``demo`` writes one file; the sweeping
commands write one file per run into the given directory and bypass
the run cache, since a cache hit would leave no trace on disk). The
``trace-*`` commands then consume those files offline.

The same three commands take ``--metrics PATH`` to collect runtime
counters, gauges, and latency histograms (engines, fault seams, shard
barriers, sweep cache) into one deterministic JSON snapshot — the
sorted-key counter sections are a pure function of the run, so two
snapshots diff cleanly. ``metrics-report`` renders a snapshot (or a
regression table against a ``--compare`` baseline), and
``metrics-report --prom`` emits the Prometheus text rendering for a
future serving tier.

Every sweep target accepts the same scenario axes: the substrate
(``topology=geometric ...``; ``single_leader`` additionally takes
per-edge latency ``weights=distance/uniform``), the initial
configuration (``init=clustered`` confines the plurality to one graph
ball), and one fault vocabulary (``drop/drop_model/churn/
churn_downtime/stragglers/straggler_slowdown``) that maps to the
event-stream seam on the asynchronous targets and to the round-level
seam on the synchronous/population ones, e.g.::

    repro sweep synchronous --set topology=regular --set engine=pernode \\
        --grid drop=0.1,0.3 --reps 4
    repro sweep population --grid churn=0,1 --set drop=0.2

``reproduce`` and ``sweep`` share the orchestration layer in
:mod:`repro.sweep`: work fans out over ``--workers`` processes and
completed runs land in a content-addressed cache (``--cache-dir``), so
re-invocations only execute what is missing. The same entry point is
reachable as ``python -m repro``.

``sweep`` and ``robustness`` run *supervised* when any of
``--max-retries`` / ``--run-timeout`` / ``--state-dir`` / ``--resume``
is given: crashed, hung, or raising runs are retried with
deterministic backoff, permanent failures annotate the tables instead
of aborting, and ``--state-dir`` checkpoints per-config progress into
a ``manifest.json`` that ``--resume`` continues from. Both commands
exit ``0`` only when every run succeeded, and ``3`` (after printing a
per-config failure table) otherwise.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro import quick_async, quick_sync
from repro.experiments.registry import EXPERIMENTS
from repro.sweep.cache import DEFAULT_CACHE_DIR, RunCache
from repro.sweep.runner import run_experiments, run_sweep
from repro.sweep.spec import SweepSpec, parse_grid, parse_overrides
from repro.sweep.targets import target_names, target_params

__all__ = ["main", "build_parser"]


def _add_metrics_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--metrics", type=Path, default=None, metavar="PATH",
        help="collect runtime metrics (counters/gauges/histograms) and write "
        "a deterministic JSON snapshot here (render with metrics-report)",
    )


def _add_supervision_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--max-retries", type=int, default=None, metavar="N",
        help="retry crashed/hung/raising runs up to N times with deterministic "
        "backoff; exhausted runs become failure annotations (enables supervision)",
    )
    parser.add_argument(
        "--run-timeout", type=float, default=None, metavar="SECONDS",
        help="per-run wall-clock budget; overdue runs are killed and retried "
        "(enables supervision)",
    )
    parser.add_argument(
        "--state-dir", type=Path, default=None, metavar="DIR",
        help="checkpoint per-config progress into DIR/manifest.json so an "
        "interrupted invocation can --resume (enables supervision)",
    )


def _supervisor_from_args(args: argparse.Namespace):
    """A SupervisorPolicy when any supervision flag was given, else None."""
    if (
        args.max_retries is None
        and args.run_timeout is None
        and args.state_dir is None
        and not getattr(args, "resume", None)
    ):
        return None
    from repro.sweep.supervisor import SupervisorPolicy

    kwargs = {}
    if args.max_retries is not None:
        kwargs["max_retries"] = args.max_retries
    if args.run_timeout is not None:
        kwargs["run_timeout"] = args.run_timeout
    return SupervisorPolicy(**kwargs)


def _add_cache_arguments(parser: argparse.ArgumentParser, *, default_dir: Path | None) -> None:
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=default_dir,
        help="run-cache directory (content-addressed JSON records)",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="execute everything, touch no cache"
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Generation-based plurality consensus — paper reproduction toolkit.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list all registered experiments")

    run_parser = sub.add_parser("run", help="run one experiment and print its tables")
    run_parser.add_argument("experiment", choices=sorted(EXPERIMENTS))
    run_parser.add_argument("--full", action="store_true", help="full (slow) configuration")
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument("--no-plot", action="store_true", help="skip ASCII plots")

    repro_parser = sub.add_parser("reproduce", help="run all experiments, emit Markdown")
    repro_parser.add_argument(
        "--list", action="store_true", dest="list_experiments",
        help="list registered experiments (id, artifact, description) and exit",
    )
    repro_parser.add_argument("--full", action="store_true")
    repro_parser.add_argument("--seed", type=int, default=0)
    repro_parser.add_argument("--out", type=Path, default=None, help="write Markdown here")
    repro_parser.add_argument(
        "--only", nargs="*", default=None, help="subset of experiment ids"
    )
    repro_parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (1 = serial, 0 = one per CPU)",
    )
    _add_cache_arguments(repro_parser, default_dir=None)

    demo_parser = sub.add_parser("demo", help="run the protocol once and print the outcome")
    demo_parser.add_argument("--n", type=int, default=100_000)
    demo_parser.add_argument("--k", type=int, default=8)
    demo_parser.add_argument("--alpha", type=float, default=1.5)
    demo_parser.add_argument("--seed", type=int, default=0)
    demo_parser.add_argument(
        "--asynchronous", action="store_true", help="run the single-leader protocol instead"
    )
    demo_parser.add_argument(
        "--shards", type=int, default=1, metavar="S",
        help="run the synchronous engine across S worker processes "
        "(1 = in-process; not available with --asynchronous)",
    )
    demo_parser.add_argument(
        "--report", action="store_true", help="print a full Markdown run report"
    )
    demo_parser.add_argument(
        "--trace", type=Path, default=None, metavar="PATH",
        help="stream the run's protocol-level JSONL trace to this file",
    )
    _add_metrics_argument(demo_parser)

    sweep_parser = sub.add_parser(
        "sweep", help="run a cached, parallel parameter sweep over one target"
    )
    sweep_parser.add_argument(
        "target", nargs="?", choices=target_names(),
        help="registered simulation entry point",
    )
    sweep_parser.add_argument(
        "--list-targets", action="store_true", dest="list_targets",
        help="list registered targets with their grid-able parameters and exit",
    )
    sweep_parser.add_argument(
        "--grid", action="append", default=[], metavar="KEY=V1,V2,...",
        help="sweep this parameter over the listed values (repeatable)",
    )
    sweep_parser.add_argument(
        "--set", action="append", default=[], metavar="KEY=VALUE", dest="overrides",
        help="fix this parameter for every run (repeatable)",
    )
    sweep_parser.add_argument("--reps", type=int, default=1, help="repetitions per grid point")
    sweep_parser.add_argument("--seed", type=int, default=0, help="root seed")
    sweep_parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (1 = serial, 0 = one per CPU)",
    )
    sweep_parser.add_argument("--name", default=None, help="label used in the output table")
    sweep_parser.add_argument(
        "--trace", type=Path, default=None, metavar="DIR",
        help="write one JSONL trace per run into this directory (bypasses the cache)",
    )
    _add_metrics_argument(sweep_parser)
    _add_cache_arguments(sweep_parser, default_dir=DEFAULT_CACHE_DIR)
    _add_supervision_arguments(sweep_parser)
    sweep_parser.add_argument(
        "--resume", type=Path, default=None, metavar="DIR",
        help="continue the interrupted sweep checkpointed under DIR (the target "
        "and grid are read from its manifest; other spec flags are optional)",
    )

    robust_parser = sub.add_parser(
        "robustness", help="positive aging under adversity: cached topology/fault sweep"
    )
    robust_parser.add_argument("--full", action="store_true", help="full (slow) configuration")
    robust_parser.add_argument(
        "--quick", action="store_true",
        help="quick configuration (the default; kept for symmetry/scripts)",
    )
    robust_parser.add_argument("--seed", type=int, default=0)
    robust_parser.add_argument(
        "--profile", choices=("smoke", "quick", "full"), default=None,
        help="explicit scenario scale (overrides --quick/--full; smoke = CI-sized)",
    )
    robust_parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (1 = serial, 0 = one per CPU)",
    )
    robust_parser.add_argument("--out", type=Path, default=None, help="write Markdown here")
    robust_parser.add_argument(
        "--trace", type=Path, default=None, metavar="DIR",
        help="write per-run JSONL traces under this directory, one subdirectory "
        "per table (bypasses the cache)",
    )
    _add_metrics_argument(robust_parser)
    _add_cache_arguments(robust_parser, default_dir=DEFAULT_CACHE_DIR)
    _add_supervision_arguments(robust_parser)
    robust_parser.add_argument(
        "--resume", action="store_true",
        help="continue an interrupted robustness grid from --state-dir "
        "(tables already checkpointed execute only their remainder)",
    )

    chaos_parser = sub.add_parser(
        "chaos",
        help="fault-injection smoke test: a supervised sweep over the chaos "
        "target (kill/hang/raise) must retry, time out, isolate, and stay "
        "byte-identical to an unfaulted sweep",
    )
    chaos_parser.add_argument(
        "--run-timeout", type=float, default=2.0, metavar="SECONDS",
        help="wall-clock budget used to reap the injected hang (default 2.0)",
    )
    chaos_parser.add_argument(
        "--keep", action="store_true",
        help="keep the scratch state directory for inspection",
    )
    _add_metrics_argument(chaos_parser)

    metrics_parser = sub.add_parser(
        "trace-metrics", help="offline metrics (populations, aging phases, faults) from a trace"
    )
    metrics_parser.add_argument("trace", type=Path, help="JSONL trace file")
    metrics_parser.add_argument(
        "--out", type=Path, default=None, help="also write the report as Markdown here"
    )
    metrics_parser.add_argument(
        "--points", type=int, default=24,
        help="samples per population-curve table (default 24)",
    )

    diff_parser = sub.add_parser(
        "trace-diff",
        help="structural diff of two JSONL traces; exit 0 if identical, 1 otherwise",
    )
    diff_parser.add_argument("trace_a", type=Path, help="first JSONL trace file")
    diff_parser.add_argument("trace_b", type=Path, help="second JSONL trace file")

    report_parser = sub.add_parser(
        "metrics-report", help="render --metrics snapshots as tables (or a regression diff)"
    )
    report_parser.add_argument(
        "snapshots", type=Path, nargs="+",
        help="metrics snapshot file(s); several are merged before rendering",
    )
    report_parser.add_argument(
        "--compare", type=Path, default=None, metavar="BASELINE",
        help="render regression tables against this baseline snapshot",
    )
    report_parser.add_argument(
        "--out", type=Path, default=None, help="also write the report as Markdown here"
    )
    report_parser.add_argument(
        "--prom", action="store_true",
        help="print the Prometheus text rendering instead of tables",
    )

    merge_parser = sub.add_parser(
        "trace-merge", help="merge per-shard JSONL trace streams into one time-ordered stream"
    )
    merge_parser.add_argument(
        "traces", type=Path, nargs="+", help="JSONL trace files (one per shard/stream)"
    )
    merge_parser.add_argument(
        "--out", type=Path, default=None,
        help="write the merged stream here (default: stdout)",
    )

    view_parser = sub.add_parser(
        "trace-view", help="render a trace to a self-contained HTML replay page"
    )
    view_parser.add_argument("trace", type=Path, help="JSONL trace file")
    view_parser.add_argument(
        "--out", type=Path, default=None,
        help="output HTML path (default: trace path with .html suffix)",
    )
    view_parser.add_argument("--title", default=None, help="page title")

    cache_parser = sub.add_parser("cache", help="inspect or clean the run cache")
    cache_sub = cache_parser.add_subparsers(dest="cache_command", required=True)
    stats_parser = cache_sub.add_parser("stats", help="entry/byte/corruption counts")
    stats_parser.add_argument("--cache-dir", type=Path, default=DEFAULT_CACHE_DIR)
    gc_parser = cache_sub.add_parser(
        "gc", help="delete corrupt entries (and optionally old or all entries)"
    )
    gc_parser.add_argument("--cache-dir", type=Path, default=DEFAULT_CACHE_DIR)
    gc_parser.add_argument(
        "--dry-run", action="store_true", help="report deletions without deleting"
    )
    gc_parser.add_argument(
        "--max-age-days", type=float, default=None,
        help="also delete valid entries older than this",
    )
    gc_parser.add_argument(
        "--max-bytes", type=int, default=None, metavar="BYTES",
        help="shrink the cache to at most this many bytes, evicting "
        "least-recently-written entries first",
    )
    gc_parser.add_argument(
        "--all", action="store_true", dest="delete_all", help="delete every entry"
    )
    return parser


def _open_cache(args: argparse.Namespace) -> RunCache | None:
    if getattr(args, "no_cache", False) or args.cache_dir is None:
        return None
    return RunCache(args.cache_dir)


def _open_metrics(args: argparse.Namespace):
    """Registry for ``--metrics PATH`` (``None`` when the flag is absent)."""
    if getattr(args, "metrics", None) is None:
        return None
    from repro.engine.metrics import MetricsRegistry

    return MetricsRegistry()


def _write_metrics(args: argparse.Namespace, registry, label: str) -> None:
    if registry is None:
        return
    registry.write(args.metrics)
    print(f"[{label}] metrics snapshot written to {args.metrics}", file=sys.stderr)


def _command_list() -> int:
    width = max(len(name) for name in EXPERIMENTS)
    for name, experiment in EXPERIMENTS.items():
        print(f"{name.ljust(width)}  {experiment.artifact}  —  {experiment.description}")
    return 0


def _command_list_targets() -> int:
    for name in target_names():
        print(name)
        params = target_params(name)
        width = max(len(key) for key in params) if params else 0
        for key in sorted(params):
            print(f"  {key.ljust(width)} = {params[key]!r}")
    return 0


def _command_run(args: argparse.Namespace) -> int:
    from repro.experiments.registry import run_experiment

    result = run_experiment(args.experiment, quick=not args.full, seed=args.seed)
    print(result.render(plot=not args.no_plot))
    return 0


def _command_reproduce(args: argparse.Namespace) -> int:
    if args.list_experiments:
        return _command_list()
    names = args.only if args.only else list(EXPERIMENTS)
    outcomes = run_experiments(
        names,
        quick=not args.full,
        seed=args.seed,
        cache=_open_cache(args),
        workers=args.workers,
        echo=lambda line: print(line, file=sys.stderr),
    )
    sections = []
    for outcome in outcomes:
        if outcome.cached:
            print(f"[repro] {outcome.name}: cached", file=sys.stderr)
        print(outcome.result.render(plot=False))
        print()
        sections.append(outcome.result.render_markdown())
    if args.out is not None:
        args.out.write_text("\n\n".join(sections) + "\n")
        print(f"[repro] wrote {args.out}", file=sys.stderr)
    return 0


def _command_demo(args: argparse.Namespace) -> int:
    from contextlib import nullcontext

    if args.trace is not None:
        from repro.engine.tracing import JsonlTracer

        tracer_ctx = JsonlTracer(args.trace)
    else:
        tracer_ctx = nullcontext(None)
    if args.asynchronous and args.shards != 1:
        print(
            "error: --shards applies to the synchronous engine only; "
            "the event-driven engine stays single-process",
            file=sys.stderr,
        )
        return 2
    metrics = _open_metrics(args)
    with tracer_ctx as tracer:
        kwargs = {} if tracer is None else {"tracer": tracer}
        if metrics is not None:
            kwargs["metrics"] = metrics
        if args.asynchronous:
            result = quick_async(args.n, args.k, args.alpha, seed=args.seed, **kwargs)
        else:
            if args.shards != 1:
                kwargs["shards"] = args.shards
            result = quick_sync(args.n, args.k, args.alpha, seed=args.seed, **kwargs)
    if args.trace is not None:
        print(f"[demo] trace written to {args.trace}", file=sys.stderr)
    _write_metrics(args, metrics, "demo")
    if args.report:
        from repro.analysis.report import run_report

        kind = "single-leader asynchronous" if args.asynchronous else "synchronous"
        print(run_report(result, title=f"{kind} run (n={args.n}, k={args.k}, alpha={args.alpha})"))
        return 0 if result.plurality_won else 1
    print(result.summary())
    if args.asynchronous:
        unit = result.info.get("time_unit", 1.0)
        print(f"time: {result.elapsed:.1f} steps = {result.elapsed / unit:.2f} units")
    else:
        for birth in result.births:
            print(
                f"  generation {birth.generation}: born t={birth.time:.0f} "
                f"fraction={birth.fraction:.4f} bias={birth.bias:.3g}"
            )
    return 0 if result.plurality_won else 1


def _command_sweep(args: argparse.Namespace) -> int:
    from repro.errors import ConfigurationError
    from repro.sweep.aggregate import aggregate_table

    if args.list_targets:
        return _command_list_targets()
    resume = args.resume is not None
    state_dir = args.resume if resume else args.state_dir
    try:
        if args.target is not None:
            spec = SweepSpec(
                target=args.target,
                base=parse_overrides(args.overrides),
                grid=parse_grid(args.grid),
                repetitions=args.reps,
                seed=args.seed,
                name=args.name,
            )
        elif resume:
            # The manifest stores the full spec; --resume DIR alone is
            # enough to continue the sweep.
            from repro.sweep.supervisor import SweepManifest

            spec = SweepManifest.load(state_dir).spec
        else:
            print(
                "error: a sweep target is required (or pass --list-targets)",
                file=sys.stderr,
            )
            return 2
        metrics = _open_metrics(args)
        report = run_sweep(
            spec,
            cache=_open_cache(args),
            workers=args.workers,
            echo=lambda line: print(line, file=sys.stderr),
            trace_dir=None if args.trace is None else str(args.trace),
            metrics=metrics,
            supervisor=_supervisor_from_args(args),
            state_dir=None if state_dir is None else str(state_dir),
            resume=resume,
        )
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.trace is not None:
        print(f"[sweep] traces written under {args.trace}", file=sys.stderr)
    _write_metrics(args, metrics, "sweep")
    print(aggregate_table(spec, report.records).render())
    print()
    print(report.summary())
    return _finish_supervised(report.failures)


def _finish_supervised(failures) -> int:
    """Exit-code epilogue shared by sweep/robustness: 0 clean, 3 failed."""
    if not failures:
        return 0
    from repro.sweep.supervisor import failure_table

    print()
    print(failure_table(failures).render())
    return 3


def _command_robustness(args: argparse.Namespace) -> int:
    from repro.errors import ConfigurationError
    from repro.experiments.robustness import run_robustness

    metrics = _open_metrics(args)
    try:
        report = run_robustness(
            quick=not args.full,
            seed=args.seed,
            cache=_open_cache(args),
            workers=args.workers,
            profile=args.profile,
            echo=lambda line: print(line, file=sys.stderr),
            trace_dir=None if args.trace is None else str(args.trace),
            metrics=metrics,
            supervisor=_supervisor_from_args(args),
            state_dir=None if args.state_dir is None else str(args.state_dir),
            resume=args.resume,
        )
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.trace is not None:
        print(f"[robustness] traces written under {args.trace}", file=sys.stderr)
    _write_metrics(args, metrics, "robustness")
    print(report.result.render(plot=False))
    accounting = f"[robustness] {report.executed} runs executed, {report.cached} cached"
    if report.resumed:
        accounting += f", {report.resumed} resumed"
    print(accounting, file=sys.stderr)
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(report.result.render_markdown() + "\n")
        print(f"[robustness] wrote {args.out}", file=sys.stderr)
    return _finish_supervised(report.failures)


def _command_chaos(args: argparse.Namespace) -> int:
    """Supervised fault-injection smoke: kill, hang, raise — then verify.

    Runs one supervised sweep over the ``chaos`` target whose modes
    misbehave exactly once (marker files arm the faults), then checks
    the supervisor's books: the sweep completes with the always-raising
    config isolated, the retry/timeout/failure counters match the
    injected faults exactly, and every recovered record is
    byte-identical to an unfaulted sweep.
    """
    import shutil
    import tempfile

    from repro.engine.metrics import MetricsRegistry
    from repro.sweep.supervisor import SupervisorPolicy

    scratch = Path(tempfile.mkdtemp(prefix="repro-chaos-"))
    checks: list[tuple[str, bool, str]] = []

    def check(label: str, passed: bool, detail: str = "") -> None:
        checks.append((label, passed, detail))

    echo = lambda line: print(line, file=sys.stderr)  # noqa: E731
    try:
        modes = ["ok", "flaky_raise", "flaky_kill", "flaky_hang", "raise"]
        spec = SweepSpec(
            target="chaos",
            base={"marker_dir": str(scratch / "markers")},
            grid={"mode": modes},
            repetitions=1,
            seed=0,
            name="chaos",
        )
        policy = SupervisorPolicy(
            max_retries=2,
            run_timeout=args.run_timeout,
            backoff_base=0.05,
            backoff_max=0.25,
        )
        metrics = MetricsRegistry()
        report = run_sweep(
            spec, cache=None, workers=1, echo=echo, metrics=metrics,
            supervisor=policy, state_dir=str(scratch / "state"),
        )
        counters = metrics.snapshot()["counters"]
        check(
            "sweep completed; only the always-raising config failed",
            len(report.failures) == 1
            and report.failures[0].params.get("mode") == "raise"
            and report.failures[0].kind == "error",
            f"failures={[(f.params.get('mode'), f.kind) for f in report.failures]}",
        )
        # raise burns its full retry budget (2); each flaky mode faults
        # exactly once then its marker disarms it (1 retry each).
        expected_retries = policy.max_retries + 3
        for name, expected in (
            ("sweep.retries", expected_retries),
            ("sweep.timeouts", 1),
            ("sweep.failures", 1),
        ):
            check(
                f"{name} == {expected}",
                counters.get(name) == expected,
                f"got {counters.get(name)}",
            )
        check(
            "pool rebuilt after kill and hang",
            counters.get("sweep.pool_rebuilds", 0) >= 2,
            f"got {counters.get('sweep.pool_rebuilds')}",
        )
        # The markers persist, so a second sweep runs fault-free; retried
        # records must match it byte-for-byte (modulo wall clock). The
        # always-raising mode is dropped — unsupervised, it would abort.
        clean_spec = SweepSpec(
            target="chaos",
            base=spec.base,
            grid={"mode": [mode for mode in modes if mode != "raise"]},
            repetitions=1,
            seed=0,
            name="chaos-clean",
        )
        clean = run_sweep(clean_spec, cache=None, workers=1)
        strip = lambda r: {k: v for k, v in r.items() if k != "wall_time"}  # noqa: E731
        recovered = {
            config.params_dict["mode"]: record
            for config, record in zip(report.configs, report.records)
            if record is not None
        }
        baseline = {
            config.params_dict["mode"]: record
            for config, record in zip(clean.configs, clean.records)
            if record is not None
        }
        check(
            "recovered records byte-identical to the unfaulted sweep",
            set(recovered) == set(baseline) - {"raise"}
            and all(strip(recovered[m]) == strip(baseline[m]) for m in recovered),
        )
        if args.metrics is not None:
            metrics.write(args.metrics)
            print(f"[chaos] metrics snapshot written to {args.metrics}", file=sys.stderr)
    finally:
        if args.keep:
            print(f"[chaos] state kept under {scratch}", file=sys.stderr)
        else:
            shutil.rmtree(scratch, ignore_errors=True)
    failed = [item for item in checks if not item[1]]
    for label, passed, detail in checks:
        suffix = f"  ({detail})" if detail and not passed else ""
        print(f"[chaos] {'PASS' if passed else 'FAIL'}: {label}{suffix}")
    print(f"[chaos] {len(checks) - len(failed)}/{len(checks)} checks passed")
    return 0 if not failed else 1


def _command_trace_metrics(args: argparse.Namespace) -> int:
    from repro.analysis.trace_metrics import trace_metrics

    result = trace_metrics(args.trace, points=args.points)
    print(result.render(plot=False))
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(result.render_markdown() + "\n")
        print(f"[trace-metrics] wrote {args.out}", file=sys.stderr)
    return 0


def _command_trace_diff(args: argparse.Namespace) -> int:
    from repro.analysis.trace_diff import diff_traces, render_diff

    diff = diff_traces(args.trace_a, args.trace_b)
    print(render_diff(diff))
    return 0 if diff.equal else 1


def _command_metrics_report(args: argparse.Namespace) -> int:
    from repro.analysis.metrics_report import metrics_report

    if args.prom:
        from repro.engine.metrics import (
            load_snapshot,
            merge_snapshots,
            render_prometheus,
        )

        snapshot = merge_snapshots(load_snapshot(path) for path in args.snapshots)
        print(render_prometheus(snapshot), end="")
        return 0
    result = metrics_report(args.snapshots, compare=args.compare)
    print(result.render(plot=False))
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(result.render_markdown() + "\n")
        print(f"[metrics-report] wrote {args.out}", file=sys.stderr)
    return 0


def _command_trace_merge(args: argparse.Namespace) -> int:
    from repro.analysis.trace_merge import merge_trace_files

    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        count = merge_trace_files(args.traces, args.out)
        print(
            f"[trace-merge] {count} records from {len(args.traces)} "
            f"stream{'s' if len(args.traces) != 1 else ''} -> {args.out}",
            file=sys.stderr,
        )
    else:
        count = merge_trace_files(args.traces, sys.stdout)
    return 0


def _command_trace_view(args: argparse.Namespace) -> int:
    from repro.visualizer import write_replay_html

    out = write_replay_html(args.trace, args.out, title=args.title)
    print(f"[trace-view] wrote {out}", file=sys.stderr)
    return 0


def _command_cache(args: argparse.Namespace) -> int:
    cache = RunCache(args.cache_dir)
    if args.cache_command == "stats":
        print(cache.stats().render())
        return 0
    if args.cache_command == "gc":
        doomed = cache.gc(
            dry_run=args.dry_run,
            max_age_days=args.max_age_days,
            max_bytes=args.max_bytes,
            delete_all=args.delete_all,
        )
        verb = "would delete" if args.dry_run else "deleted"
        print(
            f"cache {cache.root}: {verb} {len(doomed)} "
            f"entr{'y' if len(doomed) == 1 else 'ies'} "
            f"({cache.gc_freed_bytes / 1024:.1f} KiB)"
        )
        for path in doomed:
            print(f"  {path.name}")
        return 0
    raise AssertionError(f"unhandled cache command {args.cache_command!r}")  # pragma: no cover


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _command_list()
    if args.command == "run":
        return _command_run(args)
    if args.command == "reproduce":
        return _command_reproduce(args)
    if args.command == "demo":
        return _command_demo(args)
    if args.command == "sweep":
        return _command_sweep(args)
    if args.command == "robustness":
        return _command_robustness(args)
    if args.command == "chaos":
        return _command_chaos(args)
    if args.command == "trace-metrics":
        return _command_trace_metrics(args)
    if args.command == "trace-diff":
        return _command_trace_diff(args)
    if args.command == "metrics-report":
        return _command_metrics_report(args)
    if args.command == "trace-merge":
        return _command_trace_merge(args)
    if args.command == "trace-view":
        return _command_trace_view(args)
    if args.command == "cache":
        return _command_cache(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
