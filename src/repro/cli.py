"""Command-line interface.

Usage::

    repro list                          # show the experiment registry
    repro run fig1 [--full] [--seed S]  # run one experiment, print tables
    repro reproduce [--full] [--out F]  # run everything, write Markdown
    repro demo [--n N] [--k K] ...      # one synchronous + one async run

The same entry point is reachable as ``python -m repro``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro import quick_async, quick_sync
from repro.experiments.registry import EXPERIMENTS, run_experiment

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Generation-based plurality consensus — paper reproduction toolkit.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list all registered experiments")

    run_parser = sub.add_parser("run", help="run one experiment and print its tables")
    run_parser.add_argument("experiment", choices=sorted(EXPERIMENTS))
    run_parser.add_argument("--full", action="store_true", help="full (slow) configuration")
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument("--no-plot", action="store_true", help="skip ASCII plots")

    repro_parser = sub.add_parser("reproduce", help="run all experiments, emit Markdown")
    repro_parser.add_argument("--full", action="store_true")
    repro_parser.add_argument("--seed", type=int, default=0)
    repro_parser.add_argument("--out", type=Path, default=None, help="write Markdown here")
    repro_parser.add_argument(
        "--only", nargs="*", default=None, help="subset of experiment ids"
    )

    demo_parser = sub.add_parser("demo", help="run the protocol once and print the outcome")
    demo_parser.add_argument("--n", type=int, default=100_000)
    demo_parser.add_argument("--k", type=int, default=8)
    demo_parser.add_argument("--alpha", type=float, default=1.5)
    demo_parser.add_argument("--seed", type=int, default=0)
    demo_parser.add_argument(
        "--asynchronous", action="store_true", help="run the single-leader protocol instead"
    )
    demo_parser.add_argument(
        "--report", action="store_true", help="print a full Markdown run report"
    )
    return parser


def _command_list() -> int:
    width = max(len(name) for name in EXPERIMENTS)
    for name, experiment in EXPERIMENTS.items():
        print(f"{name.ljust(width)}  {experiment.artifact}  —  {experiment.description}")
    return 0


def _command_run(args: argparse.Namespace) -> int:
    result = run_experiment(args.experiment, quick=not args.full, seed=args.seed)
    print(result.render(plot=not args.no_plot))
    return 0


def _command_reproduce(args: argparse.Namespace) -> int:
    names = args.only if args.only else list(EXPERIMENTS)
    sections = []
    for name in names:
        print(f"[repro] running {name} ...", file=sys.stderr)
        result = run_experiment(name, quick=not args.full, seed=args.seed)
        print(result.render(plot=False))
        print()
        sections.append(result.render_markdown())
    if args.out is not None:
        args.out.write_text("\n\n".join(sections) + "\n")
        print(f"[repro] wrote {args.out}", file=sys.stderr)
    return 0


def _command_demo(args: argparse.Namespace) -> int:
    if args.asynchronous:
        result = quick_async(args.n, args.k, args.alpha, seed=args.seed)
    else:
        result = quick_sync(args.n, args.k, args.alpha, seed=args.seed)
    if args.report:
        from repro.analysis.report import run_report

        kind = "single-leader asynchronous" if args.asynchronous else "synchronous"
        print(run_report(result, title=f"{kind} run (n={args.n}, k={args.k}, alpha={args.alpha})"))
        return 0 if result.plurality_won else 1
    print(result.summary())
    if args.asynchronous:
        unit = result.info.get("time_unit", 1.0)
        print(f"time: {result.elapsed:.1f} steps = {result.elapsed / unit:.2f} units")
    else:
        for birth in result.births:
            print(
                f"  generation {birth.generation}: born t={birth.time:.0f} "
                f"fraction={birth.fraction:.4f} bias={birth.bias:.3g}"
            )
    return 0 if result.plurality_won else 1


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _command_list()
    if args.command == "run":
        return _command_run(args)
    if args.command == "reproduce":
        return _command_reproduce(args)
    if args.command == "demo":
        return _command_demo(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
