"""Sweep execution: serial or process-pool fan-out with run caching.

:func:`run_sweep` expands a :class:`~repro.sweep.spec.SweepSpec`,
satisfies every config it can from the :class:`~repro.sweep.cache.RunCache`,
and executes only the misses — serially, or fanned out over a
:class:`~concurrent.futures.ProcessPoolExecutor`. Three invariants make
the fan-out safe:

* **Picklable work units** — a worker receives only the config *dict*
  and rebuilds everything (target function, RNG) by name inside
  :func:`execute_run`, so no simulator state, closure, or generator
  crosses the process boundary.
* **Order-independent randomness** — each run's generator is
  ``RngRegistry(seed).stream(config.stream)``; the substream name is a
  pure function of the config, so a run draws identical randomness
  whether it executes first or last, in-process or on worker 3.
* **Deterministic collection** — records are placed by config index,
  never completion order, so serial and parallel sweeps aggregate to
  byte-identical tables.

The same module hosts the experiment-level plumbing used by
``repro reproduce``: :func:`run_experiments` fans whole registry
experiments out across workers and caches their rendered
:class:`~repro.experiments.common.ExperimentResult` by
``(experiment, quick, seed, library version)``, and
:func:`map_substreams` is the in-process repetition seam that
:func:`repro.experiments.common.repeat` delegates to.

Examples
--------
>>> from repro.sweep.spec import SweepSpec
>>> spec = SweepSpec(target="synchronous", base={"k": 2, "alpha": 2.0},
...                  grid={"n": [200, 400]}, repetitions=2, seed=3)
>>> report = run_sweep(spec)           # no cache, serial
>>> (report.executed, report.cached, len(report.records))
(4, 0, 4)
>>> all(r["plurality_won"] for r in report.records)
True
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.engine.rng import RngRegistry
from repro.errors import ConfigurationError
from repro.sweep.cache import RunCache
from repro.sweep.spec import RunConfig, SweepSpec
from repro.sweep.targets import (
    get_target,
    target_metricable,
    target_traceable,
    validate_target_params,
)

__all__ = [
    "execute_run",
    "run_sweep",
    "SweepReport",
    "map_substreams",
    "run_experiments",
    "experiment_config",
]


def derive_rng(config: Mapping[str, Any]) -> np.random.Generator:
    """The generator a config's run draws from (config-content keyed)."""
    run = config if isinstance(config, RunConfig) else RunConfig.from_dict(config)
    return RngRegistry(run.seed).stream(run.stream)


def execute_run(
    config: Mapping[str, Any],
    trace_path: str | None = None,
    metrics_path: str | None = None,
) -> dict:
    """Execute one run config and return its record.

    Module-level and dict-in/dict-out, so it can be shipped to a
    process-pool worker as-is.  ``trace_path``, when given, streams the
    run's protocol-level trace to that file through a
    :class:`~repro.engine.tracing.JsonlTracer`; the target must declare
    a ``tracer`` keyword (all built-ins do — checked via
    :func:`~repro.sweep.targets.target_traceable`).  ``metrics_path``
    collects the run's engine-level metrics into a snapshot file
    (a per-worker sidecar the parent merges) for targets that declare a
    ``metrics`` keyword (:func:`~repro.sweep.targets.target_metricable`);
    non-metricable targets simply skip the sidecar.
    """
    run = config if isinstance(config, RunConfig) else RunConfig.from_dict(config)
    target = get_target(run.target)
    kwargs: dict[str, Any] = {}
    registry = None
    if metrics_path is not None and target_metricable(run.target):
        from repro.engine.metrics import MetricsRegistry

        registry = MetricsRegistry()
        kwargs["metrics"] = registry
    started = time.perf_counter()
    if trace_path is None:
        record = dict(target(run.params_dict, derive_rng(run), **kwargs))
    else:
        if not target_traceable(run.target):
            raise ConfigurationError(
                f"target {run.target!r} does not accept a tracer; "
                "it cannot be run with --trace"
            )
        from repro.engine.tracing import JsonlTracer

        with JsonlTracer(trace_path) as tracer:
            record = dict(
                target(run.params_dict, derive_rng(run), tracer=tracer, **kwargs)
            )
        record.setdefault("trace_records", tracer.records_written)
    record.setdefault("wall_time", time.perf_counter() - started)
    if registry is not None:
        registry.write(metrics_path)
    return record


def _execute_traced(item: "tuple[dict, str | None, str | None]") -> dict:
    """Pool-map helper: one ``(config, trace_path, metrics_path)`` unit."""
    config, trace_path, metrics_path = item
    return execute_run(config, trace_path, metrics_path)


@dataclass
class SweepReport:
    """Everything one :func:`run_sweep` invocation produced.

    ``records`` is aligned with ``configs`` (spec expansion order), so
    downstream aggregation is independent of execution order. Under
    supervision (see :mod:`repro.sweep.supervisor`) a permanently failed
    config leaves ``None`` at its slot and a structured entry in
    ``failures``; an unsupervised sweep never produces ``None`` records.
    """

    spec: SweepSpec
    configs: list[RunConfig]
    records: list[dict | None]
    executed: int = 0
    cached: int = 0
    wall_time: float = 0.0
    workers: int = 1
    failures: list = field(default_factory=list)
    retries: int = 0
    timeouts: int = 0
    resumed: int = 0

    @property
    def succeeded(self) -> bool:
        """True when every config produced a record."""
        return not self.failures

    def summary(self) -> str:
        """One-line accounting of the sweep."""
        line = (
            f"sweep {self.spec.name}: {len(self.configs)} runs "
            f"({self.executed} executed, {self.cached} cached) "
            f"on {self.workers} worker(s) in {self.wall_time:.2f}s"
        )
        extras = []
        if self.resumed:
            extras.append(f"{self.resumed} resumed")
        if self.retries:
            extras.append(f"{self.retries} retried")
        if self.failures:
            extras.append(f"{len(self.failures)} FAILED")
        if extras:
            line += f" [{', '.join(extras)}]"
        return line


def _resolve_workers(workers: int | None) -> int:
    import os

    if workers is None or workers == 0:
        return max(1, os.cpu_count() or 1)
    if workers < 0:
        raise ConfigurationError(f"workers must be >= 0, got {workers}")
    return workers


def run_sweep(
    spec: SweepSpec,
    *,
    cache: RunCache | None = None,
    workers: int = 1,
    echo: Callable[[str], None] | None = None,
    trace_dir: str | None = None,
    metrics=None,
    supervisor=None,
    state_dir=None,
    resume: bool = False,
) -> SweepReport:
    """Run every config of ``spec`` that the cache cannot satisfy.

    Parameters
    ----------
    spec:
        The sweep to run.
    cache:
        Optional run cache; hits skip execution entirely and fresh
        records are stored back. ``None`` disables caching.
    workers:
        ``1`` runs in-process (no pool, no pickling); ``> 1`` fans the
        cache misses out over that many worker processes; ``0`` means
        one worker per CPU.
    echo:
        Optional progress sink (the CLI passes a stderr printer).
    trace_dir:
        Directory for per-run JSONL trace files
        (``NNNN-<target>-<digest12>.jsonl``, config-expansion order).
        Traced sweeps bypass the cache entirely — a cache hit would
        leave no trace on disk, and the trace path must not perturb the
        content-addressed run digest.
    metrics:
        Optional :class:`~repro.engine.metrics.MetricsRegistry`. The
        parent publishes sweep-level accounting (cache hits/misses,
        corrupt entries, runs executed/cached, per-run wall-time
        histogram, worker gauge); for metricable targets each executed
        run additionally collects engine-level metrics into a per-run
        sidecar snapshot that is merged back here — so engine counters
        survive the process-pool boundary. Cached runs contribute no
        engine metrics (they never executed).
    supervisor:
        Optional :class:`~repro.sweep.supervisor.SupervisorPolicy`.
        When set, cache misses execute under supervision — per-run
        wall-clock timeout, bounded retries with deterministic backoff,
        and failure isolation: a config that exhausts its budget leaves
        ``None`` in ``records`` and a
        :class:`~repro.sweep.supervisor.RunFailure` in
        ``report.failures`` instead of aborting the sweep. When
        ``None`` (the default) the original fail-fast path runs
        unchanged. Supervised misses always execute on a process pool
        (even at ``workers=1``) — crash and hang isolation require a
        process boundary.
    state_dir:
        Directory for the sweep's ``manifest.json`` checkpoint (see
        :class:`~repro.sweep.supervisor.SweepManifest`). Implies a
        default supervisor policy when none is given.
    resume:
        Continue an interrupted sweep from ``state_dir``: configs the
        manifest marks ``done`` are restored from it (counted in
        ``report.resumed``, not ``executed``/``cached``) and only the
        remainder executes. Previously failed configs get a fresh
        retry budget.
    """
    workers = _resolve_workers(workers)
    started = time.perf_counter()
    configs = spec.expand()
    # Fail-fast: validate every grid point before launching any run, so
    # a bad combination (typo'd axis, multileader + init='clustered')
    # aborts upfront instead of mid-run on a worker.
    for config in configs:
        validate_target_params(config.target, config.params_dict)

    if metrics is not None and not metrics.enabled:
        metrics = None
    corrupt_before = cache.corrupt_hits if cache is not None else 0
    metrics_dir: str | None = None
    metrics_paths: list[str | None] = [None] * len(configs)
    if metrics is not None and target_metricable(spec.target):
        import tempfile

        metrics_dir = tempfile.mkdtemp(prefix="repro-sweep-metrics-")
        metrics_paths = [
            f"{metrics_dir}/run-{index:04d}.json" for index in range(len(configs))
        ]

    trace_paths: list[str | None] = [None] * len(configs)
    if trace_dir is not None:
        from pathlib import Path

        if not target_traceable(spec.target):
            raise ConfigurationError(
                f"target {spec.target!r} does not accept a tracer; "
                "it cannot be swept with --trace"
            )
        root = Path(trace_dir)
        root.mkdir(parents=True, exist_ok=True)
        trace_paths = [
            str(root / f"{index:04d}-{config.target}-{config.digest[:12]}.jsonl")
            for index, config in enumerate(configs)
        ]

    manifest = None
    if state_dir is not None or resume:
        from repro.sweep.supervisor import SupervisorPolicy, SweepManifest

        if state_dir is None:
            raise ConfigurationError("resume requires a state directory")
        manifest = SweepManifest.open(state_dir, spec, resume=resume)
        if supervisor is None:
            supervisor = SupervisorPolicy()

    records: list[dict | None] = [None] * len(configs)
    restored: set[int] = set()
    if manifest is not None and resume:
        for index in manifest.done_indices():
            record = manifest.record(index)
            if record is not None:
                records[index] = dict(record)
                restored.add(index)
        if echo is not None and restored:
            echo(f"[sweep] resumed {len(restored)} completed run(s) from manifest")

    misses: list[int] = []
    for index, config in enumerate(configs):
        if index in restored:
            continue
        hit = (
            cache.get(config.as_dict())
            if cache is not None and trace_dir is None
            else None
        )
        if hit is not None:
            records[index] = hit
        else:
            misses.append(index)
    cached = len(configs) - len(misses) - len(restored)
    if echo is not None and cache is not None:
        echo(f"[sweep] {cached} cached, {len(misses)} to run")

    outcome = None
    if misses and supervisor is not None:
        from repro.sweep.supervisor import run_supervised

        outcome = run_supervised(
            configs,
            misses,
            supervisor,
            workers=workers,
            trace_paths=trace_paths,
            metrics_paths=metrics_paths,
            echo=echo,
            manifest=manifest,
        )
        for index, record in outcome.records.items():
            records[index] = record
    elif misses and workers > 1:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            fresh = pool.map(
                _execute_traced,
                [(configs[i].as_dict(), trace_paths[i], metrics_paths[i]) for i in misses],
            )
            for index, record in zip(misses, fresh):
                records[index] = record
    else:
        for index in misses:
            records[index] = execute_run(
                configs[index], trace_paths[index], metrics_paths[index]
            )
        if manifest is not None:
            # Unsupervised path never runs with a manifest today, but
            # keep the bookkeeping correct if that changes.
            for index in misses:
                manifest.mark_done(index, records[index])

    if cache is not None and trace_dir is None:
        for index in misses:
            if records[index] is not None:
                cache.put(configs[index].as_dict(), records[index])

    if metrics is not None:
        _harvest_sweep_metrics(
            metrics,
            records=records,
            misses=misses,
            total=len(configs),
            workers=workers,
            cache=cache,
            cache_active=cache is not None and trace_dir is None,
            corrupt_before=corrupt_before,
            metrics_dir=metrics_dir,
            supervision=outcome,
            resumed=len(restored) if resume else None,
        )

    return SweepReport(
        spec=spec,
        configs=configs,
        records=[dict(r) if r is not None else None for r in records],
        executed=len(misses),
        cached=cached,
        wall_time=time.perf_counter() - started,
        workers=workers,
        failures=list(outcome.failures) if outcome is not None else [],
        retries=outcome.retries if outcome is not None else 0,
        timeouts=outcome.timeouts if outcome is not None else 0,
        resumed=len(restored),
    )


def _harvest_sweep_metrics(
    metrics,
    *,
    records: Sequence[dict | None],
    misses: Sequence[int],
    total: int,
    workers: int,
    cache: RunCache | None,
    cache_active: bool,
    corrupt_before: int,
    metrics_dir: str | None,
    supervision=None,
    resumed: int | None = None,
) -> None:
    """Publish sweep-level accounting and fold worker sidecars back in."""
    import os

    from repro.engine.metrics import TIME_BUCKETS, load_snapshot

    metrics.gauge("sweep.workers").set(workers)
    metrics.counter("sweep.runs_executed").inc(len(misses))
    metrics.counter("sweep.runs_cached").inc(total - len(misses) - (resumed or 0))
    if resumed is not None:
        metrics.counter("sweep.runs_resumed").inc(resumed)
    if supervision is not None:
        metrics.counter("sweep.retries").inc(supervision.retries)
        metrics.counter("sweep.timeouts").inc(supervision.timeouts)
        metrics.counter("sweep.failures").inc(len(supervision.failures))
        if supervision.pool_rebuilds:
            metrics.counter("sweep.pool_rebuilds").inc(supervision.pool_rebuilds)
    if cache_active and cache is not None:
        metrics.counter("sweep.cache.hits").inc(total - len(misses))
        metrics.counter("sweep.cache.misses").inc(len(misses))
        metrics.counter("sweep.cache.corrupt").inc(cache.corrupt_hits - corrupt_before)
    histogram = metrics.histogram("sweep.run_seconds", TIME_BUCKETS)
    for index in misses:
        record = records[index]
        if record is not None and record.get("wall_time") is not None:
            histogram.observe(float(record["wall_time"]))
    if metrics_dir is None:
        return
    try:
        for name in sorted(os.listdir(metrics_dir)):
            try:
                metrics.merge_snapshot(load_snapshot(os.path.join(metrics_dir, name)))
            except Exception:  # pragma: no cover - partial sidecar
                pass
    finally:
        for name in os.listdir(metrics_dir):
            try:
                os.unlink(os.path.join(metrics_dir, name))
            except OSError:  # pragma: no cover - already gone
                pass
        try:
            os.rmdir(metrics_dir)
        except OSError:  # pragma: no cover - already gone
            pass


def map_substreams(
    fn: Callable[[np.random.Generator], Any],
    rngs: RngRegistry,
    prefix: str,
    repetitions: int,
) -> list[Any]:
    """Apply ``fn`` to ``repetitions`` independent substreams, in order.

    This is the in-process repetition seam behind
    :func:`repro.experiments.common.repeat`. It stays serial by design:
    experiment closures capture simulators and parameter objects that
    must not cross a process boundary, and the substream-per-repetition
    contract already makes the results order-independent — process-level
    parallelism happens one level up, where ``repro sweep`` and
    ``repro reproduce --workers`` fan out *named* work units instead.
    """
    if repetitions < 1:
        raise ConfigurationError("repetitions must be >= 1")
    return [fn(rngs.stream(f"{prefix}/{index}")) for index in range(repetitions)]


# --------------------------------------------------------------------------
# Experiment-level orchestration (the `repro reproduce` path).


def experiment_config(name: str, *, quick: bool, seed: int) -> dict:
    """Cache config identifying one registry experiment invocation.

    The library version participates in the digest so a code upgrade
    naturally invalidates stale experiment tables.
    """
    import repro

    return {
        "kind": "experiment",
        "experiment": name,
        "quick": bool(quick),
        "seed": int(seed),
        "version": repro.__version__,
    }


def _execute_experiment(item: tuple[str, bool, int]) -> dict:
    """Worker entry: run one registry experiment, return its dict form."""
    from repro.experiments.registry import run_experiment

    name, quick, seed = item
    return run_experiment(name, quick=quick, seed=seed).to_dict()


@dataclass
class ExperimentRun:
    """One experiment's outcome within a ``reproduce`` invocation."""

    name: str
    result: Any  # ExperimentResult (deferred import keeps layers acyclic)
    cached: bool = False


def run_experiments(
    names: Sequence[str],
    *,
    quick: bool = True,
    seed: int = 0,
    cache: RunCache | None = None,
    workers: int = 1,
    echo: Callable[[str], None] | None = None,
) -> list[ExperimentRun]:
    """Run registry experiments, optionally cached and in parallel.

    Results come back in ``names`` order regardless of which worker
    finished first, and cache hits skip the experiment entirely.
    """
    from repro.experiments.common import ExperimentResult

    workers = _resolve_workers(workers)
    outcomes: list[ExperimentRun | None] = [None] * len(names)
    misses: list[int] = []
    for index, name in enumerate(names):
        hit = (
            cache.get(experiment_config(name, quick=quick, seed=seed))
            if cache is not None
            else None
        )
        if hit is not None:
            outcomes[index] = ExperimentRun(
                name=name, result=ExperimentResult.from_dict(hit), cached=True
            )
        else:
            misses.append(index)

    items = [(names[i], quick, seed) for i in misses]
    if echo is not None:
        for index in misses:
            echo(f"[repro] running {names[index]} ...")
    if items and workers > 1:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            payloads: Iterable[dict] = pool.map(_execute_experiment, items)
    else:
        payloads = map(_execute_experiment, items)
    for index, payload in zip(misses, payloads):
        if cache is not None:
            cache.put(experiment_config(names[index], quick=quick, seed=seed), payload)
        outcomes[index] = ExperimentRun(
            name=names[index], result=ExperimentResult.from_dict(payload), cached=False
        )
    return [outcome for outcome in outcomes if outcome is not None]
