"""Registry of sweep targets — picklable simulation entry points.

A *target* is a module-level function ``fn(params, rng) -> record``:
it receives one grid point's parameter dict and a dedicated
:class:`numpy.random.Generator`, runs one simulation, and returns a
flat JSON-serializable record (scalars only). Because targets are
looked up by name and live at module level, a
:class:`~concurrent.futures.ProcessPoolExecutor` worker can execute any
run from nothing but the config dict — closures never cross the process
boundary.

Every target registers its parameter defaults alongside the function,
so ``repro sweep --list-targets`` (and :func:`target_params`) can show
the grid-able axes without reading this file.

Built-in targets cover the paper's protocols:

``synchronous``
    Algorithm 1 with a fixed or adaptive two-choices schedule
    (``gamma`` is the generation-growth fraction of Section 2.2).
``single_leader``
    Algorithms 2+3 under exponential, constant, or Gamma edge
    latencies (``latency`` selects the law — Section 5 sensitivity).
``multileader``
    Section 4's decentralized clustering + consensus pipeline.
``voter`` / ``two_choices`` / ``three_majority`` / ``undecided``
    Related-work baselines (Section 1.1).
``population``
    Sequential population protocols (Section 1.1's asynchronous
    substrate): Angluin et al.'s 3-state approximate majority or the
    4-state exact-majority protocol on the pairwise scheduler.

All targets additionally take the scenario axes from
:mod:`repro.scenarios`: ``topology`` / ``degree`` / ``clusters``
(communication substrate) and ``init`` (initial configuration,
including the topology-correlated ``clustered`` placement);
``single_leader`` — the one engine that consumes per-edge latency
multipliers — also takes ``weights``. *Every* target takes the
fault axes ``drop`` / ``drop_model`` / ``churn`` / ``churn_downtime`` /
``stragglers`` / ``straggler_slowdown``: the event-driven targets
(``single_leader``, ``multileader``) route them through the
event-stream seam (:func:`repro.scenarios.faults.build_faults`), the
round-driven targets (``synchronous``, the baselines, ``population``)
through the round-level seam
(:func:`repro.scenarios.round_faults.build_round_faults`) — one knob
vocabulary, two matched fault models. The defaults —
``topology="complete"``, no faults, ``init="biased"`` — consume no
extra randomness and leave every record byte-identical to the
pre-scenario engine (regression-guarded in ``tests/scenarios/``).

``synchronous``, ``population``, and the four baselines additionally
take ``shards`` (default 1): ``shards > 1`` fans the run out over
worker processes (:mod:`repro.shard`) and is valid only with the
default scenario (complete graph, zero fault knobs, counts-level
``init``) — :func:`validate_target_params` rejects other combinations
upfront. ``shards=1`` never touches the shard machinery, keeping the
default records byte-identical.

Examples
--------
>>> sorted(target_names())[:3]
['chaos', 'multileader', 'population']
>>> from repro.engine.rng import RngRegistry
>>> rec = get_target("synchronous")({"n": 400, "k": 2, "alpha": 2.0},
...                                 RngRegistry(1).stream("doc"))
>>> rec["plurality_won"]
True
>>> "topology" in target_params("single_leader")
True
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, Mapping

import numpy as np

from repro.core.params import SingleLeaderParams
from repro.core.results import RunResult
from repro.core.schedule import AdaptiveSchedule, FixedSchedule
from repro.core.single_leader import SingleLeaderSim
from repro.core.synchronous import run_synchronous
from repro.engine.latency import ConstantLatency, GammaLatency, LatencyModel
from repro.errors import ConfigurationError
from repro.engine.network import CompleteGraph
from repro.multileader.params import MultiLeaderParams
from repro.multileader.protocol import run_multileader
from repro.scenarios.adversary import adversarial_counts, clustered_assignment
from repro.scenarios.faults import build_faults, prepare_faulty_simulator
from repro.scenarios.round_faults import build_round_faults, prepare_round_faults
from repro.scenarios.topology import build_graph

__all__ = [
    "register_target",
    "get_target",
    "target_names",
    "target_params",
    "target_traceable",
    "target_metricable",
    "validate_target_params",
]

Target = Callable[[Mapping[str, Any], np.random.Generator], dict]

_TARGETS: dict[str, Target] = {}
_TARGET_DEFAULTS: dict[str, dict[str, Any]] = {}
_TARGET_VALIDATORS: dict[str, Callable[[Mapping[str, Any]], None]] = {}
_TARGET_TRACEABLE: dict[str, bool] = {}
_TARGET_METRICABLE: dict[str, bool] = {}
_TARGET_HARNESS: dict[str, bool] = {}

#: Substrate + initial-configuration axes (all targets).  The
#: ``weights`` axis is deliberately NOT here: only targets whose
#: physics actually consumes per-edge latency multipliers declare it
#: (currently ``single_leader``) — on any other target a ``weights=``
#: grid would silently run unweighted physics under a weighted label,
#: so the standard unknown-parameter rejection is the honest behavior.
_TOPOLOGY_DEFAULTS: dict[str, Any] = {
    "topology": "complete",
    "degree": 8,
    "clusters": 8,
    "init": "biased",
}

#: Fault axes (all targets; event seam or round seam per engine family).
_FAULT_DEFAULTS: dict[str, Any] = {
    "drop": 0.0,
    "drop_model": "iid",
    "churn": 0.0,
    "churn_downtime": 1.0,
    "stragglers": 0.0,
    "straggler_slowdown": 4.0,
}


def register_target(
    name: str,
    defaults: Mapping[str, Any] | None = None,
    *,
    validate: Callable[[Mapping[str, Any]], None] | None = None,
    harness: bool = False,
) -> Callable[[Target], Target]:
    """Decorator: register ``fn(params, rng) -> record`` under ``name``.

    ``defaults`` documents the target's parameters (the grid-able axes
    shown by ``repro sweep --list-targets``).  ``validate``, when given,
    receives each fully merged parameter dict at sweep-spec validation
    time and raises :class:`~repro.errors.ConfigurationError` on
    unsupported combinations — failing the sweep upfront instead of
    mid-run on worker 17 of 32.  Targets that declare a ``tracer``
    keyword are marked traceable (``--trace`` eligible).  ``harness``
    marks targets that exercise the runner rather than a protocol
    (e.g. ``chaos``) — they are exempt from the one-vocabulary
    guarantee (topology/fault axes on every protocol target).
    """

    def decorator(fn: Target) -> Target:
        if name in _TARGETS:
            raise ConfigurationError(f"sweep target {name!r} already registered")
        _TARGETS[name] = fn
        _TARGET_DEFAULTS[name] = dict(defaults or {})
        if validate is not None:
            _TARGET_VALIDATORS[name] = validate
        _TARGET_TRACEABLE[name] = "tracer" in inspect.signature(fn).parameters
        _TARGET_METRICABLE[name] = "metrics" in inspect.signature(fn).parameters
        _TARGET_HARNESS[name] = harness
        return fn

    return decorator


def get_target(name: str) -> Target:
    """Look up a target; unknown names raise with the valid list."""
    try:
        return _TARGETS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown sweep target {name!r}; available: {', '.join(sorted(_TARGETS))}"
        ) from None


def target_names() -> list[str]:
    """All registered target names, sorted."""
    return sorted(_TARGETS)


def target_params(name: str) -> dict[str, Any]:
    """A target's parameters and their defaults (the grid-able axes)."""
    get_target(name)  # raise with the standard message on unknown names
    return dict(_TARGET_DEFAULTS[name])


def target_traceable(name: str) -> bool:
    """Whether the target accepts a ``tracer`` (``--trace`` eligible)."""
    get_target(name)
    return _TARGET_TRACEABLE[name]


def target_metricable(name: str) -> bool:
    """Whether the target accepts a ``metrics`` registry (``--metrics``)."""
    get_target(name)
    return _TARGET_METRICABLE[name]


def target_is_harness(name: str) -> bool:
    """Whether the target exercises the runner rather than a protocol."""
    get_target(name)
    return _TARGET_HARNESS[name]


def validate_target_params(name: str, params: Mapping[str, Any]) -> dict[str, Any]:
    """Fail-fast check of one config: unknown keys + target-specific rules.

    Returns the fully merged parameter dict.  The sweep runner calls
    this for every grid point before launching any run, so an invalid
    combination (a typo'd axis, ``multileader`` with
    ``init='clustered'``) aborts the sweep upfront.
    """
    get_target(name)
    merged = _take(params, _TARGET_DEFAULTS[name])
    validator = _TARGET_VALIDATORS.get(name)
    if validator is not None:
        validator(merged)
    return merged


def _take(params: Mapping[str, Any], defaults: dict[str, Any]) -> dict[str, Any]:
    """Merge ``params`` over ``defaults``; unknown keys are errors.

    Typos in a grid (``latencyrate=2``) would otherwise silently run the
    default configuration 32 times.
    """
    unknown = sorted(set(params) - set(defaults))
    if unknown:
        raise ConfigurationError(
            f"unknown sweep parameter(s) {unknown}; valid: {sorted(defaults)}"
        )
    merged = dict(defaults)
    merged.update(params)
    return merged


def _record(result: RunResult, *, time_unit: float | None = None) -> dict:
    """Flatten a :class:`RunResult` into a JSON-scalar record."""
    record: dict[str, Any] = {
        "converged": bool(result.converged),
        "plurality_won": bool(result.plurality_won),
        "winner": int(result.winner),
        "elapsed": float(result.elapsed),
        "epsilon_time": (
            float(result.epsilon_convergence_time)
            if result.epsilon_convergence_time is not None
            else None
        ),
        "generations": len(result.births),
    }
    if time_unit is not None:
        record["elapsed_units"] = record["elapsed"] / time_unit
        if record["epsilon_time"] is not None:
            record["epsilon_units"] = record["epsilon_time"] / time_unit
    return record


def _latency_model(name: str, rate: float, shape: float) -> LatencyModel | None:
    """Resolve a latency-law name; ``None`` keeps the pooled exponential."""
    if name in ("exponential", "exp"):
        return None
    if name in ("constant", "const"):
        return ConstantLatency(1.0 / rate)
    if name == "gamma":
        return GammaLatency(shape=shape, rate=shape * rate)
    raise ConfigurationError(
        f"unknown latency law {name!r}; use exponential, constant, or gamma"
    )


def _scenario_graph(p: Mapping[str, Any], rng: np.random.Generator):
    """Build the run's substrate; ``None`` keeps the bit-identical K_n path."""
    if p["topology"] == "complete":
        if p.get("weights", "none") != "none":
            raise ConfigurationError(
                "weights require a sparse topology (the complete graph is homogeneous)"
            )
        return None
    return build_graph(
        p["topology"],
        p["n"],
        rng,
        degree=p["degree"],
        clusters=int(p["clusters"]),
        weights=p.get("weights", "none"),
    )


def _scenario_counts(p: Mapping[str, Any]) -> np.ndarray:
    """Initial configuration for the run (``init`` axis).

    Callers must size protocol parameters from ``counts.size``, not
    ``p["k"]`` — ``init="ramp"`` reinterprets ``k`` as an exponent and
    returns a different number of colors.
    """
    return adversarial_counts(p["init"], p["n"], p["k"], p["alpha"])


def _scenario_faults(p: Mapping[str, Any]) -> list:
    """Fault-model list from the flat fault axes (fresh per simulator)."""
    return build_faults(
        drop=p["drop"],
        drop_model=p["drop_model"],
        churn=p["churn"],
        churn_downtime=p["churn_downtime"],
        stragglers=p["stragglers"],
        straggler_slowdown=p["straggler_slowdown"],
    )


def _scenario_round_faults(p: Mapping[str, Any], rng: np.random.Generator):
    """Round-fault wiring from the same flat knobs (round-driven targets).

    ``None`` at all-zero knobs — the wiring then consumes no randomness
    and the engines take their pre-fault code path untouched.
    """
    return prepare_round_faults(
        p["n"],
        build_round_faults(
            drop=p["drop"],
            drop_model=p["drop_model"],
            churn=p["churn"],
            churn_downtime=p["churn_downtime"],
            stragglers=p["stragglers"],
            straggler_slowdown=p["straggler_slowdown"],
        ),
        rng,
    )


def _scenario_placement(
    p: Mapping[str, Any], graph, counts: np.ndarray, rng: np.random.Generator
):
    """Per-node placement for ``init="clustered"`` (``None`` otherwise).

    Built against the run's actual substrate; on the complete graph —
    where placement cannot matter — it degenerates to a uniform
    shuffle.
    """
    if p["init"] != "clustered":
        return None
    return clustered_assignment(
        graph if graph is not None else CompleteGraph(p["n"]), counts, rng
    )


def _validate_shardable(p: Mapping[str, Any]) -> None:
    """Fail fast on ``shards > 1`` with axes the sharded engines lack.

    The sharded engines (:mod:`repro.shard`) run the default scenario
    only: complete graph, zero fault knobs, counts-level initial
    configurations. Rejecting the combinations here — at sweep-spec
    validation time — follows the same honesty rule as the ``weights``
    axis: silently running different physics under a sharded label is
    worse than an upfront error.
    """
    shards = int(p["shards"])
    if shards < 1:
        raise ConfigurationError(f"shards must be >= 1, got {p['shards']!r}")
    if shards == 1:
        return
    problems = []
    if p["topology"] != "complete":
        problems.append(f"topology={p['topology']!r} (sharded engines run on K_n only)")
    if p["init"] == "clustered":
        problems.append(
            "init='clustered' (the sharded engines take no per-node placement)"
        )
    for knob in ("drop", "churn", "stragglers"):
        if p[knob]:
            problems.append(f"{knob}={p[knob]!r} (no fault seam in the sharded engines)")
    if int(p["n"]) < 2 * shards:
        problems.append(f"n={p['n']} (need >= 2 nodes per shard)")
    if problems:
        raise ConfigurationError(
            f"shards={shards} is incompatible with: " + "; ".join(problems)
        )


_SYNCHRONOUS_DEFAULTS: dict[str, Any] = {
    "n": 1000,
    "k": 4,
    "alpha": 2.0,
    "gamma": 0.5,
    "schedule": "fixed",
    "engine": "aggregate",
    "max_steps": 10_000,
    "epsilon": None,
    "shards": 1,
    **_TOPOLOGY_DEFAULTS,
    **_FAULT_DEFAULTS,
}


@register_target("synchronous", _SYNCHRONOUS_DEFAULTS, validate=_validate_shardable)
def synchronous_target(
    params: Mapping[str, Any], rng: np.random.Generator, *, tracer=None, metrics=None
) -> dict:
    """Algorithm 1 (synchronous two-choices + propagation rounds)."""
    p = _take(params, _SYNCHRONOUS_DEFAULTS)
    _validate_shardable(p)
    graph = _scenario_graph(p, rng)
    counts = _scenario_counts(p)
    assignment = _scenario_placement(p, graph, counts, rng)
    if p["schedule"] == "fixed":
        schedule = FixedSchedule(
            n=p["n"], k=int(counts.size), alpha0=p["alpha"], gamma=p["gamma"]
        )
    elif p["schedule"] == "adaptive":
        schedule = AdaptiveSchedule(n=p["n"], alpha0=p["alpha"], gamma=p["gamma"])
    else:
        raise ConfigurationError(
            f"unknown schedule {p['schedule']!r}; use 'fixed' or 'adaptive'"
        )
    # The mean-field multinomial engine is exact only on K_n; sparse
    # substrates require the literal per-node engine.  On the complete
    # graph placement is exchangeable — clustered degenerates to the
    # uniform shuffle — so the assignment is dropped there instead of
    # forcing the (unscalable at aggregate-n) per-node engine, the
    # same validate-then-ignore rule ``run_dynamics`` applies.
    engine = p["engine"]
    if graph is None:
        assignment = None
    elif engine == "aggregate":
        engine = "pernode"
    wiring = _scenario_round_faults(p, rng)
    result = run_synchronous(
        counts,
        schedule,
        rng,
        engine=engine,
        max_steps=p["max_steps"],
        epsilon=p["epsilon"],
        graph=graph,
        round_faults=wiring,
        assignment=assignment,
        tracer=tracer,
        metrics=metrics,
        shards=int(p["shards"]),
    )
    record = _record(result)
    if engine != p["engine"]:
        # Boolean, not a string: aggregation only keeps numeric fields,
        # so a string marker would vanish from sweep tables and the
        # substitution would stay invisible exactly where it matters.
        record["engine_substituted"] = True
        record["engine_effective"] = engine
    if wiring is not None:
        record.update(wiring.info())
    return record


_SINGLE_LEADER_DEFAULTS: dict[str, Any] = {
    "n": 1000,
    "k": 4,
    "alpha": 2.0,
    "gamma": 0.5,
    "latency_rate": 1.0,
    "latency": "exponential",
    "latency_shape": 2.0,
    "max_time": 4000.0,
    "epsilon": None,
    # The only target whose engine consumes per-edge latency
    # multipliers (scaled channel-establishment delays).
    "weights": "none",
    **_TOPOLOGY_DEFAULTS,
    **_FAULT_DEFAULTS,
}


@register_target("single_leader", _SINGLE_LEADER_DEFAULTS)
def single_leader_target(
    params: Mapping[str, Any], rng: np.random.Generator, *, tracer=None, metrics=None
) -> dict:
    """Algorithms 2+3 (asynchronous single-leader protocol)."""
    p = _take(params, _SINGLE_LEADER_DEFAULTS)
    graph = _scenario_graph(p, rng)
    counts = _scenario_counts(p)
    assignment = _scenario_placement(p, graph, counts, rng)
    sim_params = SingleLeaderParams(
        n=p["n"],
        k=int(counts.size),  # init="ramp" reinterprets k (see _scenario_counts)
        alpha0=p["alpha"],
        latency_rate=p["latency_rate"],
        gen_size_fraction=p["gamma"],
    )
    model = _latency_model(p["latency"], p["latency_rate"], p["latency_shape"])
    # Pre-wrapped simulator: even the construction-time initial ticks
    # flow through the fault transforms (no churn-guard escape).
    simulator, wiring = prepare_faulty_simulator(
        p["n"], _scenario_faults(p), rng, tracer=tracer
    )
    sim = SingleLeaderSim(
        sim_params, counts, rng, latency_model=model, graph=graph, simulator=simulator,
        assignment=assignment,
    )
    if wiring is not None:
        wiring.bind(sim)
    result = sim.run(max_time=p["max_time"], epsilon=p["epsilon"])
    record = _record(result, time_unit=sim_params.time_unit)
    record["events"] = int(sim.sim.events_executed)
    if wiring is not None:
        record.update(wiring.info())
    if metrics is not None and metrics.enabled:
        sim.publish_metrics(metrics)
        if wiring is not None:
            wiring.publish_metrics(metrics)
    return record


_MULTILEADER_DEFAULTS: dict[str, Any] = {
    "n": 1000,
    "k": 4,
    "alpha": 2.0,
    "latency_rate": 1.0,
    "clustering_max_time": 500.0,
    "max_time": 3000.0,
    "epsilon": None,
    **_TOPOLOGY_DEFAULTS,
    **_FAULT_DEFAULTS,
}


def _reject_multileader_clustered(p: Mapping[str, Any]) -> None:
    """Documented won't-fix: no per-node placement through the pipeline.

    The multileader pipeline rebuilds its population from counts
    between the clustering and consensus phases (the consensus phase
    re-draws node colors), so a per-node ``init='clustered'`` placement
    cannot survive the phase boundary.  Rather than silently running a
    different start, the combination is rejected — and rejected at
    sweep-spec validation time, before any run launches.
    """
    if p["init"] == "clustered":
        raise ConfigurationError(
            "the multileader pipeline rebuilds its population between phases "
            "and does not support per-node placement; use init='biased' or "
            "the single_leader/synchronous targets for clustered starts"
        )


@register_target(
    "multileader", _MULTILEADER_DEFAULTS, validate=_reject_multileader_clustered
)
def multileader_target(
    params: Mapping[str, Any], rng: np.random.Generator, *, tracer=None, metrics=None
) -> dict:
    """Section 4's decentralized pipeline: clustering then consensus."""
    p = _take(params, _MULTILEADER_DEFAULTS)
    _reject_multileader_clustered(p)
    graph = _scenario_graph(p, rng)
    counts = _scenario_counts(p)
    sim_params = MultiLeaderParams(
        n=p["n"], k=int(counts.size), alpha0=p["alpha"], latency_rate=p["latency_rate"]
    )
    wirings = []
    pending = []

    def prepare():
        # Fresh fault-model instances per phase simulator (they are
        # stateful); no-op when every fault axis sits at its default.
        # Note each phase draws its own straggler subset — the phases
        # are separate simulators over separate event streams.
        simulator, wiring = prepare_faulty_simulator(
            sim_params.n, _scenario_faults(p), rng, tracer=tracer
        )
        pending.append(wiring)
        return simulator

    def instrument(sim_obj) -> None:
        wiring = pending.pop()
        if wiring is not None:
            wiring.bind(sim_obj)
            wirings.append(wiring)

    result = run_multileader(
        sim_params,
        counts,
        rng,
        clustering_max_time=p["clustering_max_time"],
        max_time=p["max_time"],
        epsilon=p["epsilon"],
        graph=graph,
        instrument=instrument,
        prepare=prepare,
    )
    record = _record(result, time_unit=sim_params.time_unit)
    record["clusters"] = int(result.info.get("clusters", 0))
    for wiring in wirings:
        for key, value in wiring.info().items():
            record[key] = record.get(key, 0.0) + value
    if metrics is not None and metrics.enabled:
        # The pipeline's phase simulators are internal to run_multileader;
        # the run-level counter and the fault seams are the stable surface.
        metrics.counter("protocol.runs.multileader").inc()
        for wiring in wirings:
            wiring.publish_metrics(metrics)
    return record


_BASELINE_DEFAULTS: dict[str, Any] = {
    "n": 1000,
    "k": 4,
    "alpha": 2.0,
    "max_rounds": 100_000,
    "epsilon": None,
    "shards": 1,
    **_TOPOLOGY_DEFAULTS,
    **_FAULT_DEFAULTS,
}


def _baseline_target(dynamics_factory: Callable[[int], Any]) -> Target:
    def run_target(
        params: Mapping[str, Any], rng: np.random.Generator, *, tracer=None,
        metrics=None,
    ) -> dict:
        from repro.baselines.base import run_dynamics

        p = _take(params, _BASELINE_DEFAULTS)
        _validate_shardable(p)
        graph = _scenario_graph(p, rng)
        counts = _scenario_counts(p)
        assignment = _scenario_placement(p, graph, counts, rng)
        wiring = _scenario_round_faults(p, rng)
        result = run_dynamics(
            dynamics_factory(p["k"]),
            counts,
            rng,
            max_rounds=p["max_rounds"],
            epsilon=p["epsilon"],
            graph=graph,
            round_faults=wiring,
            assignment=assignment,
            tracer=tracer,
            metrics=metrics,
            shards=int(p["shards"]),
        )
        record = _record(result)
        if wiring is not None:
            record.update(wiring.info())
        return record

    return run_target


def _register_baselines() -> None:
    from repro.baselines.three_majority import ThreeMajority
    from repro.baselines.two_choices import TwoChoices
    from repro.baselines.undecided import UndecidedStateDynamics
    from repro.baselines.voter import PullVoting

    for name, factory in [
        ("voter", lambda k: PullVoting()),
        ("two_choices", lambda k: TwoChoices()),
        ("three_majority", lambda k: ThreeMajority()),
        ("undecided", lambda k: UndecidedStateDynamics()),
    ]:
        register_target(name, _BASELINE_DEFAULTS, validate=_validate_shardable)(
            _baseline_target(factory)
        )


_register_baselines()


_POPULATION_DEFAULTS: dict[str, Any] = {
    "n": 1000,
    "k": 2,
    "alpha": 2.0,
    "protocol": "three_state",
    "max_interactions": None,
    "check_every": 64,
    "shards": 1,
    **_TOPOLOGY_DEFAULTS,
    **_FAULT_DEFAULTS,
}


@register_target("population", _POPULATION_DEFAULTS, validate=_validate_shardable)
def population_target(
    params: Mapping[str, Any], rng: np.random.Generator, *, tracer=None, metrics=None
) -> dict:
    """Sequential population protocols on the pairwise scheduler.

    ``protocol`` selects Angluin et al.'s 3-state approximate majority
    (``"three_state"``) or the 4-state exact-majority protocol
    (``"four_state"``); both are two-opinion protocols, so ``k`` must
    stay 2.  The fault knobs flow through the round-level seam at
    interaction-block granularity; ``elapsed`` reports *parallel time*
    (interactions / n), the standard normalization.
    """
    from repro.baselines.population import (
        FourStateExactMajority,
        PairwiseScheduler,
        ThreeStateMajority,
    )

    p = _take(params, _POPULATION_DEFAULTS)
    _validate_shardable(p)
    if p["protocol"] == "three_state":
        protocol = ThreeStateMajority()
    elif p["protocol"] == "four_state":
        protocol = FourStateExactMajority()
    else:
        raise ConfigurationError(
            f"unknown population protocol {p['protocol']!r}; "
            "use 'three_state' or 'four_state'"
        )
    graph = _scenario_graph(p, rng)
    counts = _scenario_counts(p)
    assignment = _scenario_placement(p, graph, counts, rng)
    wiring = _scenario_round_faults(p, rng)
    result = PairwiseScheduler(protocol).run(
        counts,
        rng,
        max_interactions=p["max_interactions"],
        check_every=int(p["check_every"]),
        graph=graph,
        round_faults=wiring,
        assignment=assignment,
        tracer=tracer,
        metrics=metrics,
        shards=int(p["shards"]),
    )
    plurality = int(np.argmax(counts))
    record: dict[str, Any] = {
        "converged": bool(result.converged),
        "plurality_won": bool(result.winner == plurality),
        "winner": -1 if result.winner is None else int(result.winner),
        "interactions": int(result.interactions),
        "elapsed": float(result.parallel_time),
        "epsilon_time": None,
    }
    if wiring is not None:
        record.update(wiring.info())
    return record


_CHAOS_MODES = ("ok", "raise", "flaky_raise", "flaky_kill", "flaky_hang")

_CHAOS_DEFAULTS: dict[str, Any] = {
    "mode": "ok",
    "marker_dir": "",
    "hang_seconds": 30.0,
    "work": 0,
}


def _validate_chaos(p: Mapping[str, Any]) -> None:
    if p["mode"] not in _CHAOS_MODES:
        raise ConfigurationError(
            f"unknown chaos mode {p['mode']!r}; valid: {', '.join(_CHAOS_MODES)}"
        )
    if p["mode"].startswith("flaky_") and not p["marker_dir"]:
        raise ConfigurationError(
            f"chaos mode {p['mode']!r} needs marker_dir= (the fault fires only "
            "on attempts made before the marker file exists)"
        )


@register_target("chaos", _CHAOS_DEFAULTS, validate=_validate_chaos, harness=True)
def chaos_target(params: Mapping[str, Any], rng: np.random.Generator) -> dict:
    """Fault-injection target for the supervision layer's own tests.

    This target exercises the *runner*, not a protocol: ``mode``
    selects how the run misbehaves. ``"ok"`` returns a record drawn
    from the run's RNG substream; ``"raise"`` raises on every attempt
    (a deterministic simulation bug — the supervisor must record it as
    permanently failed). The ``flaky_*`` modes misbehave only while
    their marker file ``<marker_dir>/<mode>-<work>.marker`` is absent
    — they *create the marker first*, so a retry of the same config
    succeeds: ``flaky_raise`` raises once, ``flaky_kill`` SIGKILLs its
    own worker process once, ``flaky_hang`` sleeps ``hang_seconds``
    once (past any sane ``--run-timeout``). ``work`` is an inert label
    that distinguishes grid points (separate marker files, separate
    RNG substreams).

    The record's ``value`` is the first draw from the run's substream
    and nothing else consumes randomness, so a retried run is
    byte-identical to an unfaulted first attempt — the chaos tests pin
    exactly that.
    """
    import os
    import signal
    import time as _time
    from pathlib import Path

    p = _take(params, _CHAOS_DEFAULTS)
    _validate_chaos(p)
    mode = p["mode"]
    if mode == "raise":
        raise RuntimeError("chaos: configured to fail every attempt")
    if mode.startswith("flaky_"):
        marker = Path(p["marker_dir"]) / f"{mode}-{p['work']}.marker"
        if not marker.exists():
            # Marker before mayhem: the *next* attempt must find it even
            # when this one dies un-cleanly a line later.
            marker.parent.mkdir(parents=True, exist_ok=True)
            marker.touch()
            if mode == "flaky_raise":
                raise RuntimeError("chaos: first-attempt failure")
            if mode == "flaky_kill":
                os.kill(os.getpid(), signal.SIGKILL)
            if mode == "flaky_hang":
                _time.sleep(float(p["hang_seconds"]))
    return {"value": float(rng.random()), "work": int(p["work"]), "converged": True}
