"""Registry of sweep targets — picklable simulation entry points.

A *target* is a module-level function ``fn(params, rng) -> record``:
it receives one grid point's parameter dict and a dedicated
:class:`numpy.random.Generator`, runs one simulation, and returns a
flat JSON-serializable record (scalars only). Because targets are
looked up by name and live at module level, a
:class:`~concurrent.futures.ProcessPoolExecutor` worker can execute any
run from nothing but the config dict — closures never cross the process
boundary.

Built-in targets cover the paper's protocols:

``synchronous``
    Algorithm 1 with a fixed or adaptive two-choices schedule
    (``gamma`` is the generation-growth fraction of Section 2.2).
``single_leader``
    Algorithms 2+3 under exponential, constant, or Gamma edge
    latencies (``latency`` selects the law — Section 5 sensitivity).
``multileader``
    Section 4's decentralized clustering + consensus pipeline.
``voter`` / ``two_choices`` / ``three_majority`` / ``undecided``
    Related-work baselines (Section 1.1).

Examples
--------
>>> sorted(target_names())[:3]
['multileader', 'single_leader', 'synchronous']
>>> from repro.engine.rng import RngRegistry
>>> rec = get_target("synchronous")({"n": 400, "k": 2, "alpha": 2.0},
...                                 RngRegistry(1).stream("doc"))
>>> rec["plurality_won"]
True
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

import numpy as np

from repro.core.params import SingleLeaderParams
from repro.core.results import RunResult
from repro.core.schedule import AdaptiveSchedule, FixedSchedule
from repro.core.single_leader import SingleLeaderSim
from repro.core.synchronous import run_synchronous
from repro.engine.latency import ConstantLatency, GammaLatency, LatencyModel
from repro.errors import ConfigurationError
from repro.multileader.params import MultiLeaderParams
from repro.multileader.protocol import run_multileader
from repro.workloads.opinions import biased_counts

__all__ = ["register_target", "get_target", "target_names"]

Target = Callable[[Mapping[str, Any], np.random.Generator], dict]

_TARGETS: dict[str, Target] = {}


def register_target(name: str) -> Callable[[Target], Target]:
    """Decorator: register ``fn(params, rng) -> record`` under ``name``."""

    def decorator(fn: Target) -> Target:
        if name in _TARGETS:
            raise ConfigurationError(f"sweep target {name!r} already registered")
        _TARGETS[name] = fn
        return fn

    return decorator


def get_target(name: str) -> Target:
    """Look up a target; unknown names raise with the valid list."""
    try:
        return _TARGETS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown sweep target {name!r}; available: {', '.join(sorted(_TARGETS))}"
        ) from None


def target_names() -> list[str]:
    """All registered target names, sorted."""
    return sorted(_TARGETS)


def _take(params: Mapping[str, Any], defaults: dict[str, Any]) -> dict[str, Any]:
    """Merge ``params`` over ``defaults``; unknown keys are errors.

    Typos in a grid (``latencyrate=2``) would otherwise silently run the
    default configuration 32 times.
    """
    unknown = sorted(set(params) - set(defaults))
    if unknown:
        raise ConfigurationError(
            f"unknown sweep parameter(s) {unknown}; valid: {sorted(defaults)}"
        )
    merged = dict(defaults)
    merged.update(params)
    return merged


def _record(result: RunResult, *, time_unit: float | None = None) -> dict:
    """Flatten a :class:`RunResult` into a JSON-scalar record."""
    record: dict[str, Any] = {
        "converged": bool(result.converged),
        "plurality_won": bool(result.plurality_won),
        "winner": int(result.winner),
        "elapsed": float(result.elapsed),
        "epsilon_time": (
            float(result.epsilon_convergence_time)
            if result.epsilon_convergence_time is not None
            else None
        ),
        "generations": len(result.births),
    }
    if time_unit is not None:
        record["elapsed_units"] = record["elapsed"] / time_unit
        if record["epsilon_time"] is not None:
            record["epsilon_units"] = record["epsilon_time"] / time_unit
    return record


def _latency_model(name: str, rate: float, shape: float) -> LatencyModel | None:
    """Resolve a latency-law name; ``None`` keeps the pooled exponential."""
    if name in ("exponential", "exp"):
        return None
    if name in ("constant", "const"):
        return ConstantLatency(1.0 / rate)
    if name == "gamma":
        return GammaLatency(shape=shape, rate=shape * rate)
    raise ConfigurationError(
        f"unknown latency law {name!r}; use exponential, constant, or gamma"
    )


@register_target("synchronous")
def synchronous_target(params: Mapping[str, Any], rng: np.random.Generator) -> dict:
    """Algorithm 1 (synchronous two-choices + propagation rounds)."""
    p = _take(
        params,
        {
            "n": 1000,
            "k": 4,
            "alpha": 2.0,
            "gamma": 0.5,
            "schedule": "fixed",
            "engine": "aggregate",
            "max_steps": 10_000,
            "epsilon": None,
        },
    )
    if p["schedule"] == "fixed":
        schedule = FixedSchedule(n=p["n"], k=p["k"], alpha0=p["alpha"], gamma=p["gamma"])
    elif p["schedule"] == "adaptive":
        schedule = AdaptiveSchedule(n=p["n"], alpha0=p["alpha"], gamma=p["gamma"])
    else:
        raise ConfigurationError(
            f"unknown schedule {p['schedule']!r}; use 'fixed' or 'adaptive'"
        )
    counts = biased_counts(p["n"], p["k"], p["alpha"])
    result = run_synchronous(
        counts,
        schedule,
        rng,
        engine=p["engine"],
        max_steps=p["max_steps"],
        epsilon=p["epsilon"],
    )
    return _record(result)


@register_target("single_leader")
def single_leader_target(params: Mapping[str, Any], rng: np.random.Generator) -> dict:
    """Algorithms 2+3 (asynchronous single-leader protocol)."""
    p = _take(
        params,
        {
            "n": 1000,
            "k": 4,
            "alpha": 2.0,
            "gamma": 0.5,
            "latency_rate": 1.0,
            "latency": "exponential",
            "latency_shape": 2.0,
            "max_time": 4000.0,
            "epsilon": None,
        },
    )
    sim_params = SingleLeaderParams(
        n=p["n"],
        k=p["k"],
        alpha0=p["alpha"],
        latency_rate=p["latency_rate"],
        gen_size_fraction=p["gamma"],
    )
    counts = biased_counts(p["n"], p["k"], p["alpha"])
    model = _latency_model(p["latency"], p["latency_rate"], p["latency_shape"])
    sim = SingleLeaderSim(sim_params, counts, rng, latency_model=model)
    result = sim.run(max_time=p["max_time"], epsilon=p["epsilon"])
    record = _record(result, time_unit=sim_params.time_unit)
    record["events"] = int(sim.sim.events_executed)
    return record


@register_target("multileader")
def multileader_target(params: Mapping[str, Any], rng: np.random.Generator) -> dict:
    """Section 4's decentralized pipeline: clustering then consensus."""
    p = _take(
        params,
        {
            "n": 1000,
            "k": 4,
            "alpha": 2.0,
            "latency_rate": 1.0,
            "clustering_max_time": 500.0,
            "max_time": 3000.0,
            "epsilon": None,
        },
    )
    sim_params = MultiLeaderParams(
        n=p["n"], k=p["k"], alpha0=p["alpha"], latency_rate=p["latency_rate"]
    )
    counts = biased_counts(p["n"], p["k"], p["alpha"])
    result = run_multileader(
        sim_params,
        counts,
        rng,
        clustering_max_time=p["clustering_max_time"],
        max_time=p["max_time"],
        epsilon=p["epsilon"],
    )
    record = _record(result, time_unit=sim_params.time_unit)
    record["clusters"] = int(result.info.get("clusters", 0))
    return record


def _baseline_target(dynamics_factory: Callable[[int], Any]) -> Target:
    def run_target(params: Mapping[str, Any], rng: np.random.Generator) -> dict:
        from repro.baselines.base import run_dynamics

        p = _take(
            params,
            {"n": 1000, "k": 4, "alpha": 2.0, "max_rounds": 100_000, "epsilon": None},
        )
        counts = biased_counts(p["n"], p["k"], p["alpha"])
        result = run_dynamics(
            dynamics_factory(p["k"]),
            counts,
            rng,
            max_rounds=p["max_rounds"],
            epsilon=p["epsilon"],
        )
        return _record(result)

    return run_target


def _register_baselines() -> None:
    from repro.baselines.three_majority import ThreeMajority
    from repro.baselines.two_choices import TwoChoices
    from repro.baselines.undecided import UndecidedStateDynamics
    from repro.baselines.voter import PullVoting

    for name, factory in [
        ("voter", lambda k: PullVoting()),
        ("two_choices", lambda k: TwoChoices()),
        ("three_majority", lambda k: ThreeMajority()),
        ("undecided", lambda k: UndecidedStateDynamics()),
    ]:
        register_target(name)(_baseline_target(factory))


_register_baselines()
