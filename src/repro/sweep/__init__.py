"""Sweep orchestration: parameter grids, run cache, parallel fan-out.

The paper's claims are distributional statements over many independent
runs, which makes seed/config sweeps the outermost — and embarrassingly
parallel — loop of the whole reproduction. This package is that loop as
a subsystem:

* :mod:`repro.sweep.spec` — :class:`SweepSpec` grids expanding into
  content-addressed :class:`RunConfig` work units;
* :mod:`repro.sweep.targets` — named, picklable simulation entry
  points (protocols and baselines);
* :mod:`repro.sweep.cache` — the on-disk ``runs/<sha256>.json`` record
  cache (atomic writes, corruption recovery, gc);
* :mod:`repro.sweep.runner` — serial or process-pool execution with
  per-run :class:`~repro.engine.rng.RngRegistry` substream seeding;
* :mod:`repro.sweep.aggregate` — records → deterministic tables.

See ``docs/architecture.md`` for how the layers fit together and
``repro sweep --help`` for the CLI front-end.
"""

from repro.sweep.aggregate import aggregate_table, group_records
from repro.sweep.cache import CacheStats, RunCache
from repro.sweep.runner import (
    SweepReport,
    execute_run,
    map_substreams,
    run_experiments,
    run_sweep,
)
from repro.sweep.spec import (
    RunConfig,
    SweepSpec,
    canonical_json,
    config_digest,
    parse_grid,
    parse_overrides,
)
from repro.sweep.targets import get_target, register_target, target_names

__all__ = [
    "SweepSpec",
    "RunConfig",
    "canonical_json",
    "config_digest",
    "parse_grid",
    "parse_overrides",
    "RunCache",
    "CacheStats",
    "run_sweep",
    "execute_run",
    "map_substreams",
    "run_experiments",
    "SweepReport",
    "aggregate_table",
    "group_records",
    "register_target",
    "get_target",
    "target_names",
]
