"""Turn sweep records into the tables experiments report.

Aggregation is a pure function of ``(spec, records)`` with records in
spec-expansion order, so a table built from a serial run, a 4-worker
run, or a fully cached re-run is byte-identical — the determinism test
in ``tests/sweep/test_runner.py`` pins exactly that.

Fields that vary between executions of the *same* config (wall-clock
time) and label-like fields (the winning color id) are excluded from
aggregation; boolean fields become rates, numeric fields means.

Examples
--------
>>> from repro.sweep.spec import SweepSpec
>>> spec = SweepSpec(target="demo", grid={"n": [10, 20]}, repetitions=2)
>>> records = [{"elapsed": 1.0, "plurality_won": True},
...            {"elapsed": 3.0, "plurality_won": True},
...            {"elapsed": 5.0, "plurality_won": False},
...            {"elapsed": 7.0, "plurality_won": True}]
>>> table = aggregate_table(spec, records)
>>> table.headers
['n', 'runs', 'elapsed', 'plurality_won rate']
>>> table.rows
[[10, 2, 2.0, 1.0], [20, 2, 6.0, 0.5]]
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.records import numeric_fields, rate, summarize_field
from repro.errors import ConfigurationError
from repro.sweep.spec import SweepSpec

__all__ = ["aggregate_table", "group_records", "NON_AGGREGATED_FIELDS"]

#: Record fields never aggregated into tables: ``wall_time`` varies run
#: to run on the same config; ``winner`` is a color label, not a metric.
NON_AGGREGATED_FIELDS = ("wall_time", "winner")

#: Boolean fields render as `<name> rate` columns.
_BOOLEAN_HINTS = ("converged", "plurality_won")


def group_records(spec: SweepSpec, records: Sequence[dict]) -> list[tuple[dict, list[dict]]]:
    """Pair each grid point with its repetition records.

    ``records`` must be in :meth:`SweepSpec.expand` order (grid-point
    major, repetition minor) — which is what
    :class:`~repro.sweep.runner.SweepReport` guarantees.
    """
    if len(records) != spec.size:
        raise ConfigurationError(
            f"expected {spec.size} records for sweep {spec.name!r}, got {len(records)}"
        )
    groups = []
    reps = spec.repetitions
    for index, point in enumerate(spec.points()):
        groups.append((point, list(records[index * reps : (index + 1) * reps])))
    return groups


def aggregate_table(spec: SweepSpec, records: Sequence[dict]):
    """One row per grid point: grid values, run count, aggregated metrics.

    Returns an :class:`~repro.experiments.common.ExperimentTable` so
    sweep output renders through the same text/Markdown machinery as
    the registry experiments.
    """
    from repro.experiments.common import ExperimentTable

    groups = group_records(spec, records)
    # Supervised sweeps leave ``None`` at permanently failed slots;
    # aggregate over the survivors and annotate the failure count. A
    # sweep without failures renders byte-identically to before the
    # fault-tolerance layer existed.
    successes = [record for record in records if record is not None]
    annotate_failures = len(successes) != len(records)
    # Sorted, not first-seen: cached records round-trip through
    # key-sorted JSON, and column order must not depend on whether a
    # record came from memory or from disk.
    fields = sorted(numeric_fields(successes, exclude=NON_AGGREGATED_FIELDS))
    boolean = [f for f in fields if f in _BOOLEAN_HINTS]
    numeric = [f for f in fields if f not in _BOOLEAN_HINTS]
    headers = (
        spec.grid_keys
        + ["runs"]
        + (["failed"] if annotate_failures else [])
        + numeric
        + [f"{name} rate" for name in boolean]
    )
    rows = []
    for point, batch in groups:
        survivors = [record for record in batch if record is not None]
        row: list = [point[key] for key in spec.grid_keys]
        row.append(len(batch))
        if annotate_failures:
            row.append(len(batch) - len(survivors))
        for name in numeric:
            summary = summarize_field(survivors, name)
            row.append(summary.mean if summary is not None else float("nan"))
        for name in boolean:
            row.append(rate(survivors, name) if survivors else float("nan"))
        rows.append(row)
    title = f"sweep: {spec.name} (target={spec.target}, seed={spec.seed}, reps={spec.repetitions})"
    return ExperimentTable(title=title, headers=headers, rows=rows)
