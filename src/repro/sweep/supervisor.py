"""Fault-tolerant sweep execution: supervision, retries, checkpoints.

The plain sweep runner (:mod:`repro.sweep.runner`) is fast but brittle:
one run raising — or one worker process taken out by the OOM killer —
aborts the entire :class:`~concurrent.futures.ProcessPoolExecutor` fan
out with :class:`~concurrent.futures.process.BrokenProcessPool`, and an
interrupted sweep forgets which configs had already failed and how
often. This module adds the supervised execution core:

* :class:`SupervisorPolicy` — per-run wall-clock timeout plus bounded
  retries with exponential backoff and *deterministic* jitter (a pure
  function of the config digest and attempt number, so two identical
  sweeps back off identically).
* :func:`run_supervised` — submits cache misses to a process pool,
  watches deadlines, survives ``BrokenProcessPool`` by rebuilding the
  pool and resubmitting only the un-finished configs, and converts
  every exhausted config into a structured :class:`RunFailure` instead
  of an exception — the rest of the sweep completes and aggregates
  render with failure annotations.
* :class:`SweepManifest` — a ``manifest.json`` checkpoint (atomic
  tmp+rename, like the run cache) tracking per-config state
  (``pending`` / ``running`` / ``done`` / ``failed`` /
  ``permanently-failed``), attempt counts, and — for ``done`` configs —
  the record itself, so ``repro sweep --resume DIR`` continues an
  interrupted sweep executing only the remainder even without a run
  cache.

Determinism under retry: a run's randomness is
``RngRegistry(seed).stream(config.stream)`` — a pure function of the
config, derived from scratch inside :func:`~repro.sweep.runner.execute_run`
on every attempt — so a retried run draws byte-identical randomness to
a first attempt. Retries repair *infrastructure* faults (killed or hung
workers); a deterministic simulation bug fails every attempt the same
way and surfaces as ``permanently-failed``.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Mapping, Sequence

from repro.errors import ConfigurationError
from repro.sweep.spec import RunConfig, SweepSpec, config_digest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sweep.spec import SweepSpec as _SweepSpec

__all__ = [
    "SupervisorPolicy",
    "RunFailure",
    "SweepManifest",
    "backoff_delay",
    "run_supervised",
    "MANIFEST_NAME",
    "MANIFEST_VERSION",
]

MANIFEST_NAME = "manifest.json"
MANIFEST_VERSION = 1

#: Per-config lifecycle states the manifest records. ``failed`` is the
#: transient between attempts; ``permanently-failed`` means the retry
#: budget is exhausted.
STATES = ("pending", "running", "done", "failed", "permanently-failed")

#: Supervisor poll cadence while waiting on futures (seconds).
_POLL_SECONDS = 0.05


@dataclass(frozen=True)
class SupervisorPolicy:
    """How hard the supervised runner fights for each run.

    ``max_retries`` counts *re*-attempts: a run gets ``max_retries + 1``
    attempts total before it is recorded as permanently failed.
    ``run_timeout`` is wall-clock seconds measured from the moment the
    run starts executing on a worker (queue time excluded); ``None``
    disables timeout supervision. Backoff before attempt ``a >= 2`` is
    ``backoff_base * backoff_factor ** (a - 2)`` capped at
    ``backoff_max``, spread by ``±jitter`` (a deterministic fraction —
    see :func:`backoff_delay`).
    """

    max_retries: int = 2
    run_timeout: float | None = None
    backoff_base: float = 0.25
    backoff_factor: float = 2.0
    backoff_max: float = 10.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.run_timeout is not None and self.run_timeout <= 0:
            raise ConfigurationError(
                f"run_timeout must be positive, got {self.run_timeout}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError(f"jitter must be in [0, 1], got {self.jitter}")

    @property
    def attempts(self) -> int:
        """Total attempts each config is granted."""
        return self.max_retries + 1


@dataclass
class RunFailure:
    """One config's permanent failure, as recorded in sweep reports.

    ``kind`` distinguishes the failure surface: ``"error"`` (the target
    raised), ``"crash"`` (the worker process died — SIGKILL, OOM,
    hard exit), or ``"timeout"`` (the run exceeded the policy's
    wall-clock budget). ``error`` carries the last attempt's message or
    traceback summary.
    """

    index: int
    digest: str
    target: str
    params: dict
    kind: str
    error: str
    attempts: int

    def summary_row(self) -> list:
        """Row for the CLI failure table."""
        message = self.error.strip().splitlines()
        return [
            self.index,
            self.target,
            self.kind,
            self.attempts,
            message[-1][:72] if message else "",
        ]

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "digest": self.digest,
            "target": self.target,
            "params": dict(self.params),
            "kind": self.kind,
            "error": self.error,
            "attempts": self.attempts,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunFailure":
        return cls(
            index=int(data["index"]),
            digest=str(data["digest"]),
            target=str(data["target"]),
            params=dict(data["params"]),
            kind=str(data["kind"]),
            error=str(data["error"]),
            attempts=int(data["attempts"]),
        )


def backoff_delay(policy: SupervisorPolicy, digest: str, attempt: int) -> float:
    """Seconds to wait before launching attempt ``attempt`` (2-based).

    Exponential in the attempt number, capped, with jitter derived from
    ``sha256(digest:attempt)`` — deterministic, so a re-run of the same
    sweep produces the same schedule, yet different configs (different
    digests) de-synchronize instead of thundering back together.

    >>> p = SupervisorPolicy(backoff_base=1.0, backoff_factor=2.0, jitter=0.0)
    >>> [backoff_delay(p, "d", a) for a in (2, 3, 4)]
    [1.0, 2.0, 4.0]
    """
    if attempt <= 1:
        return 0.0
    base = min(
        policy.backoff_max,
        policy.backoff_base * policy.backoff_factor ** (attempt - 2),
    )
    if policy.jitter == 0.0:
        return base
    word = hashlib.sha256(f"{digest}:{attempt}".encode()).digest()[:8]
    fraction = int.from_bytes(word, "big") / float(2**64)  # uniform-ish [0, 1)
    return base * (1.0 + policy.jitter * (2.0 * fraction - 1.0))


# --------------------------------------------------------------------------
# Manifest: the sweep's on-disk checkpoint.


class SweepManifest:
    """Per-config sweep state under ``<directory>/manifest.json``.

    The manifest is the resume unit: it stores the expanded spec (so
    ``repro sweep --resume DIR`` needs no other arguments), one entry
    per config in expansion order — state, attempt count, last error,
    and the completed record for ``done`` entries — and is rewritten
    atomically (tmp + ``os.replace``) on every state transition, so a
    ``kill -9`` at any moment leaves a loadable checkpoint.
    """

    def __init__(self, directory: str | Path, spec: SweepSpec, entries: list[dict]):
        self.directory = Path(directory)
        self.path = self.directory / MANIFEST_NAME
        self.spec = spec
        self.entries = entries

    # -- construction ------------------------------------------------------

    @classmethod
    def create(cls, directory: str | Path, spec: SweepSpec) -> "SweepManifest":
        """Fresh manifest: every config ``pending``, zero attempts."""
        configs = spec.expand()
        entries = [
            {
                "digest": config.digest,
                "state": "pending",
                "attempts": 0,
                "error": None,
                "kind": None,
                "record": None,
            }
            for config in configs
        ]
        manifest = cls(directory, spec, entries)
        manifest.directory.mkdir(parents=True, exist_ok=True)
        manifest.write()
        return manifest

    @classmethod
    def load(cls, directory: str | Path) -> "SweepManifest":
        """Load an existing manifest; corrupt or alien files fail loudly.

        Unlike cache entries — where corruption is recoverable by
        re-running one config — a corrupt manifest means the resume
        state is gone, and silently starting over would mask it.
        """
        path = Path(directory) / MANIFEST_NAME
        try:
            payload = json.loads(path.read_text())
        except OSError as exc:
            raise ConfigurationError(
                f"cannot resume: no readable sweep manifest at {path} ({exc})"
            ) from None
        except ValueError as exc:
            raise ConfigurationError(
                f"cannot resume: sweep manifest {path} is corrupt ({exc}); "
                "delete the state directory to start the sweep over"
            ) from None
        if not isinstance(payload, dict) or payload.get("version") != MANIFEST_VERSION:
            raise ConfigurationError(
                f"cannot resume: sweep manifest {path} has an unsupported "
                f"layout (expected version {MANIFEST_VERSION})"
            )
        try:
            spec = SweepSpec.from_dict(payload["spec"])
            entries = list(payload["configs"])
            digests = [entry["digest"] for entry in entries]
            states = [entry["state"] for entry in entries]
        except (KeyError, TypeError) as exc:
            raise ConfigurationError(
                f"cannot resume: sweep manifest {path} is corrupt ({exc!r}); "
                "delete the state directory to start the sweep over"
            ) from None
        if any(state not in STATES for state in states):
            raise ConfigurationError(
                f"cannot resume: sweep manifest {path} contains unknown "
                "config states"
            )
        expected = [config.digest for config in spec.expand()]
        if digests != expected:
            raise ConfigurationError(
                f"cannot resume: sweep manifest {path} does not match its own "
                "spec expansion (corrupt entry list, or the library version "
                "changed since the manifest was written)"
            )
        return cls(directory, spec, entries)

    @classmethod
    def open(
        cls, directory: str | Path, spec: SweepSpec | None, *, resume: bool
    ) -> "SweepManifest":
        """The CLI entry: create fresh, or load-and-verify for resume.

        On resume with a ``spec`` given, the stored spec must expand to
        the same config digests — resuming a *different* sweep from a
        stale directory is an error, not a silent restart.
        """
        if resume:
            manifest = cls.load(directory)
            if spec is not None and [c.digest for c in spec.expand()] != [
                entry["digest"] for entry in manifest.entries
            ]:
                raise ConfigurationError(
                    f"cannot resume: the manifest under {directory} was written "
                    "by a different sweep (target/grid/seed mismatch)"
                )
            return manifest
        if spec is None:
            raise ConfigurationError("a sweep spec is required to start a new manifest")
        return cls.create(directory, spec)

    # -- persistence -------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "version": MANIFEST_VERSION,
            "spec": self.spec.to_dict(),
            "configs": self.entries,
        }

    def write(self) -> None:
        """Atomic rewrite — same tmp+rename discipline as the run cache."""
        payload = json.dumps(self.to_dict(), separators=(",", ":"), allow_nan=True)
        fd, tmp_name = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp_name, self.path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    # -- transitions -------------------------------------------------------

    def state(self, index: int) -> str:
        return self.entries[index]["state"]

    def attempts(self, index: int) -> int:
        return int(self.entries[index]["attempts"])

    def record(self, index: int) -> dict | None:
        """The stored record for a ``done`` entry (else ``None``)."""
        entry = self.entries[index]
        return entry["record"] if entry["state"] == "done" else None

    def done_indices(self) -> list[int]:
        return [i for i, entry in enumerate(self.entries) if entry["state"] == "done"]

    def mark_running(self, indices: Sequence[int]) -> None:
        for index in indices:
            entry = self.entries[index]
            entry["state"] = "running"
            entry["attempts"] = int(entry["attempts"]) + 1
        if indices:
            self.write()

    def mark_done(self, index: int, record: Mapping[str, Any]) -> None:
        entry = self.entries[index]
        entry.update(state="done", record=dict(record), error=None, kind=None)
        self.write()

    def mark_failed(
        self, index: int, *, kind: str, error: str, permanent: bool
    ) -> None:
        entry = self.entries[index]
        entry.update(
            state="permanently-failed" if permanent else "failed",
            kind=kind,
            error=error,
        )
        self.write()


# --------------------------------------------------------------------------
# Supervised pool execution.


def _execute_supervised(item: tuple) -> dict:
    """Pool entry for supervised attempts: touch the start marker, run.

    The marker is the ground truth for "this attempt actually began
    executing on a worker" — the supervisor uses it for crash
    attribution and timeout deadlines (see :func:`run_supervised`).
    """
    marker, inner = item
    from repro.sweep.runner import _execute_traced

    with open(marker, "w"):
        pass
    return _execute_traced(inner)


@dataclass
class SupervisionOutcome:
    """What :func:`run_supervised` hands back to the sweep runner."""

    records: dict[int, dict]
    failures: list[RunFailure] = field(default_factory=list)
    retries: int = 0
    timeouts: int = 0
    crashes: int = 0
    pool_rebuilds: int = 0


@dataclass
class _Attempt:
    """Book-keeping for one config inside the supervision loop."""

    index: int
    config: RunConfig
    attempt: int = 0
    eligible_at: float = 0.0
    last_kind: str = "error"
    last_error: str = ""


def run_supervised(
    configs: Sequence[RunConfig],
    indices: Sequence[int],
    policy: SupervisorPolicy,
    *,
    workers: int,
    trace_paths: Sequence[str | None],
    metrics_paths: Sequence[str | None],
    echo: Callable[[str], None] | None = None,
    manifest: SweepManifest | None = None,
) -> SupervisionOutcome:
    """Execute ``indices`` of ``configs`` under supervision.

    Every config gets ``policy.attempts`` attempts; between attempts the
    config waits out its deterministic backoff (the supervisor keeps
    other work flowing meanwhile — backoff never blocks the pool). A
    worker crash breaks the whole :class:`ProcessPoolExecutor`; the
    supervisor charges the attempt to the config(s) that were actually
    executing, rebuilds the pool, and resubmits everything un-finished
    (queued-but-not-started attempts are *not* charged). Timeouts kill
    the pool outright — a hung worker cannot be cancelled any other way
    — and take the same rebuild path.

    Returns records for the configs that eventually succeeded and a
    :class:`RunFailure` per config that exhausted its budget; never
    raises for run-level faults.
    """
    import shutil
    from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
    from concurrent.futures.process import BrokenProcessPool

    outcome = SupervisionOutcome(records={})
    pending: dict[int, _Attempt] = {
        index: _Attempt(index=index, config=configs[index]) for index in indices
    }
    if not pending:
        return outcome

    def _say(line: str) -> None:
        if echo is not None:
            echo(line)

    # Worker-side start markers. ``future.running()`` lies about actual
    # execution — the executor flips futures to RUNNING as they enter
    # the call queue (capacity ``workers + 1``), before any worker picks
    # them up — so crash/timeout attribution keys off a sentinel file
    # the worker touches at attempt entry instead.
    marker_dir = tempfile.mkdtemp(prefix="repro-supervise-")
    marker_of: dict[Any, str] = {}

    def _submit(pool, attempt: _Attempt):
        attempt.attempt += 1
        if manifest is not None:
            manifest.mark_running([attempt.index])
        marker = os.path.join(
            marker_dir, f"{attempt.index}-{attempt.attempt}.start"
        )
        item = (
            attempt.config.as_dict(),
            trace_paths[attempt.index],
            metrics_paths[attempt.index],
        )
        future = pool.submit(_execute_supervised, (marker, item))
        marker_of[future] = marker
        return future

    def _started(future) -> bool:
        return os.path.exists(marker_of[future])

    def _record_failure(attempt: _Attempt, *, kind: str, error: str) -> None:
        """Charge a failed attempt; retry or fail permanently."""
        attempt.last_kind = kind
        attempt.last_error = error
        if kind == "timeout":
            outcome.timeouts += 1
        elif kind == "crash":
            outcome.crashes += 1
        if attempt.attempt < policy.attempts:
            outcome.retries += 1
            attempt.eligible_at = time.monotonic() + backoff_delay(
                policy, attempt.config.digest, attempt.attempt + 1
            )
            if manifest is not None:
                manifest.mark_failed(
                    attempt.index, kind=kind, error=error, permanent=False
                )
            _say(
                f"[sweep] run {attempt.index} {kind} "
                f"(attempt {attempt.attempt}/{policy.attempts}); retrying"
            )
            return
        config = attempt.config
        outcome.failures.append(
            RunFailure(
                index=attempt.index,
                digest=config.digest,
                target=config.target,
                params=config.params_dict,
                kind=kind,
                error=error,
                attempts=attempt.attempt,
            )
        )
        if manifest is not None:
            manifest.mark_failed(attempt.index, kind=kind, error=error, permanent=True)
        del pending[attempt.index]
        _say(
            f"[sweep] run {attempt.index} permanently failed after "
            f"{attempt.attempt} attempt(s): {kind}"
        )

    def _record_success(attempt: _Attempt, record: dict) -> None:
        outcome.records[attempt.index] = record
        if manifest is not None:
            manifest.mark_done(attempt.index, record)
        del pending[attempt.index]

    def _refund(attempt: _Attempt) -> None:
        """Undo a submission that never actually executed.

        Queued bystanders of a pool break must not lose retry budget —
        only the config(s) that were on a worker when it died pay.
        """
        attempt.attempt -= 1
        attempt.eligible_at = 0.0

    pool = ProcessPoolExecutor(max_workers=workers)
    futures: dict[Any, _Attempt] = {}
    started_at: dict[Any, float] = {}
    submit_order: dict[Any, int] = {}
    submit_counter = 0
    try:
        while pending or futures:
            now = time.monotonic()
            # Launch every attempt whose backoff has elapsed and that is
            # not already in flight.
            in_flight = {attempt.index for attempt in futures.values()}
            for index in sorted(pending):
                attempt = pending[index]
                if index in in_flight or attempt.eligible_at > now:
                    continue
                future = _submit(pool, attempt)
                futures[future] = attempt
                submit_order[future] = submit_counter
                submit_counter += 1
                in_flight.add(index)

            if not futures:
                # Everything left is backing off; sleep to the earliest.
                wake = min(a.eligible_at for a in pending.values())
                time.sleep(max(0.0, min(wake - time.monotonic(), _POLL_SECONDS * 4)))
                continue

            done, not_done = wait(
                list(futures), timeout=_POLL_SECONDS, return_when=FIRST_COMPLETED
            )
            # Observe which futures are actually executing — crash
            # attribution and timeout deadlines both key off the
            # worker-touched start marker, sampled at poll cadence.
            now = time.monotonic()
            for future in not_done:
                if future not in started_at and _started(future):
                    started_at[future] = now

            broken_futures: list[tuple[int, Any, _Attempt]] = []
            for future in done:
                attempt = futures.pop(future)
                try:
                    record = future.result()
                except BrokenProcessPool:
                    # A pool break poisons *every* in-flight future, so
                    # defer attribution until all are collected.
                    broken_futures.append((submit_order[future], future, attempt))
                except Exception as exc:  # noqa: BLE001 - isolation boundary
                    started_at.pop(future, None)
                    _record_failure(
                        attempt, kind="error", error=f"{type(exc).__name__}: {exc}"
                    )
                else:
                    started_at.pop(future, None)
                    _record_success(attempt, record)

            broken = bool(broken_futures)
            if broken:
                # Charge the crash to the future(s) whose attempt had
                # actually started on a worker (start marker on disk);
                # queued bystanders — poisoned by the same pool break —
                # get refunded. If no marker landed (the worker died in
                # the handful of instructions before touching it), fall
                # back to the earliest-submitted broken futures: the
                # pool executes submissions FIFO, so at most ``workers``
                # of them had started.
                broken_futures.sort(key=lambda item: item[0])
                observed = [item for item in broken_futures if _started(item[1])]
                victims = {id(item[1]) for item in (observed or broken_futures[:workers])}
                for _, future, attempt in broken_futures:
                    started_at.pop(future, None)
                    if id(future) in victims:
                        _record_failure(
                            attempt,
                            kind="crash",
                            error="worker process died (BrokenProcessPool)",
                        )
                    else:
                        _refund(attempt)

            if not broken and policy.run_timeout is not None:
                # Deadline scan: charge a timeout to every attempt that
                # has been *executing* (not queued) past the budget.
                now = time.monotonic()
                overdue = [
                    (future, attempt)
                    for future, attempt in futures.items()
                    if future in started_at
                    and now - started_at[future] > policy.run_timeout
                ]
                if overdue:
                    for future, attempt in overdue:
                        futures.pop(future)
                        started_at.pop(future, None)
                        _record_failure(
                            attempt,
                            kind="timeout",
                            error=(
                                f"run exceeded --run-timeout "
                                f"{policy.run_timeout:g}s wall clock"
                            ),
                        )
                    # A hung worker cannot be cancelled; killing the pool
                    # is the only off switch, and costs a rebuild.
                    broken = True
                    _kill_pool_processes(pool)

            if broken:
                # Rebuild the pool; un-finished futures die with it. The
                # overdue/victim attempts were already charged above —
                # whatever is still in ``futures`` is collateral.
                outcome.pool_rebuilds += 1
                for future, attempt in list(futures.items()):
                    futures.pop(future)
                    started_at.pop(future, None)
                    if future.done():
                        # Completed in the race window; harvest it.
                        try:
                            record = future.result()
                        except BrokenProcessPool:
                            _refund(attempt)
                        except Exception as exc:  # noqa: BLE001
                            _record_failure(
                                attempt,
                                kind="error",
                                error=f"{type(exc).__name__}: {exc}",
                            )
                        else:
                            _record_success(attempt, record)
                    else:
                        _refund(attempt)
                pool.shutdown(wait=False, cancel_futures=True)
                _kill_pool_processes(pool)
                pool = ProcessPoolExecutor(max_workers=workers)
                started_at.clear()
                submit_order.clear()
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
        _kill_pool_processes(pool)
        shutil.rmtree(marker_dir, ignore_errors=True)
    return outcome


def _kill_pool_processes(pool) -> None:
    """Force-kill a pool's worker processes (hung workers ignore shutdown).

    ``ProcessPoolExecutor`` exposes no supported kill switch — a worker
    stuck in ``time.sleep`` or a native call would otherwise pin the
    process tree forever — so this reaches for the executor's internal
    process table. Guarded: if the attribute moves in a future CPython,
    supervision degrades to waiting out the child at interpreter exit
    rather than crashing.
    """
    processes = getattr(pool, "_processes", None)
    if not processes:
        return
    for process in list(processes.values()):
        try:
            process.kill()
        except Exception:  # pragma: no cover - already dead
            pass


def failure_table(failures: Sequence[RunFailure]):
    """Render permanent failures as an ExperimentTable (CLI summary)."""
    from repro.experiments.common import ExperimentTable

    return ExperimentTable(
        title=f"failed runs ({len(failures)})",
        headers=["run", "target", "kind", "attempts", "last error"],
        rows=[failure.summary_row() for failure in failures],
    )
