"""Content-addressed on-disk cache of completed runs.

Each completed run is stored as ``<root>/<sha256(config)>.json`` — the
digest of the run's canonical config (see
:func:`repro.sweep.spec.config_digest`) is the filename, so a cache
lookup is a single ``open`` and re-running a sweep only executes the
configs whose files are missing. Interrupted sweeps therefore resume
for free, and unrelated sweeps share hits whenever their grids overlap.

Robustness guarantees:

* **Atomic writes** — entries are written to a temp file in the cache
  directory and ``os.replace``\\ d into place, so a killed process never
  leaves a half-written entry under a valid name.
* **Corruption recovery** — :meth:`RunCache.get` treats unparsable
  JSON, schema mismatches, wrong cache versions, and entries whose
  embedded config does not hash to their filename as misses; the run
  re-executes and the atomic `put` replaces the bad file.
  :meth:`RunCache.gc` deletes such entries.

Examples
--------
>>> import tempfile
>>> cache = RunCache(tempfile.mkdtemp())
>>> config = {"target": "demo", "params": {"n": 10}, "seed": 0, "rep": 0}
>>> cache.get(config) is None
True
>>> _ = cache.put(config, {"elapsed": 1.5})
>>> cache.get(config)
{'elapsed': 1.5}
>>> cache.stats().entries
1
"""

from __future__ import annotations

import atexit
import json
import os
import re
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Mapping

from repro.sweep.spec import config_digest

__all__ = ["RunCache", "CacheStats", "CACHE_VERSION", "DEFAULT_CACHE_DIR"]

#: ``.tmp`` paths this process has created but not yet renamed or
#: unlinked. A ``KeyboardInterrupt`` (or any exception that unwinds
#: past ``put``) must not strand them: ``put`` reaps its own tmp in a
#: ``finally``, and the atexit hook below sweeps anything that somehow
#: survived to interpreter shutdown — only *our own* files, never a
#: concurrent writer's.
_PENDING_TMP: set[str] = set()


def _reap_pending_tmp() -> None:
    """Unlink every tmp file this process still owns (atexit hook)."""
    for tmp_name in list(_PENDING_TMP):
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        _PENDING_TMP.discard(tmp_name)


atexit.register(_reap_pending_tmp)

#: Bump when the envelope schema changes; older entries become misses.
CACHE_VERSION = 1

#: Where the CLI caches runs unless told otherwise.
DEFAULT_CACHE_DIR = Path("runs")

#: Entry filenames are SHA-256 hex digests; anything else in the cache
#: directory is foreign and must never be read, counted, or deleted.
_DIGEST_NAME = re.compile(r"^[0-9a-f]{64}$")

#: ``gc`` only removes ``.tmp`` leftovers older than this — a younger
#: one may be a concurrent ``put`` mid-write.
STALE_TMP_SECONDS = 3600.0


@dataclass(frozen=True)
class CacheStats:
    """Aggregate view of a cache directory."""

    root: Path
    entries: int
    corrupt: int
    bytes: int

    def render(self) -> str:
        return (
            f"cache {self.root}: {self.entries} entries"
            f" ({self.bytes / 1024:.1f} KiB), {self.corrupt} corrupt"
        )


class RunCache:
    """A directory of ``<digest>.json`` run records."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        # Telemetry: lookups that found a file but had to discard it
        # (unparsable, stale version, digest mismatch). Plain int on a
        # rare path; the sweep runner harvests it into `sweep.cache.corrupt`.
        self.corrupt_hits = 0
        # Bytes the most recent gc() deleted (or would have, dry-run).
        self.gc_freed_bytes = 0

    def path_for(self, config: Mapping[str, Any]) -> Path:
        """Cache file that does or would hold this config's record."""
        return self.root / f"{config_digest(config)}.json"

    def _load(self, path: Path) -> dict | None:
        """Parse and validate one entry; ``None`` if corrupt or stale."""
        try:
            envelope = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(envelope, dict):
            return None
        if envelope.get("version") != CACHE_VERSION:
            return None
        config = envelope.get("config")
        if not isinstance(config, dict) or "record" not in envelope:
            return None
        if config_digest(config) != path.stem:
            return None
        return envelope

    def get(self, config: Mapping[str, Any]) -> dict | None:
        """The cached record for ``config``, or ``None`` on miss/corruption."""
        path = self.path_for(config)
        if not path.exists():
            return None
        envelope = self._load(path)
        if envelope is None:
            self.corrupt_hits += 1
            return None
        return envelope["record"]

    def put(self, config: Mapping[str, Any], record: Mapping[str, Any]) -> Path:
        """Atomically store ``record`` under ``config``'s digest."""
        path = self.path_for(config)
        envelope = {
            "version": CACHE_VERSION,
            "config": dict(config),
            "record": dict(record),
        }
        # Not canonical_json: the filename digest already comes from the
        # config alone, and records may legitimately contain NaN/Inf
        # (e.g. an experiment table with no epsilon target), which
        # Python's json round-trips but strict JSON rejects.
        payload = json.dumps(envelope, separators=(",", ":"), allow_nan=True)
        fd, tmp_name = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        _PENDING_TMP.add(tmp_name)
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp_name, path)
        finally:
            # Whether the rename happened or an exception (including
            # KeyboardInterrupt) is unwinding, this process's tmp file
            # must not outlive the call.
            if os.path.exists(tmp_name):
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
            _PENDING_TMP.discard(tmp_name)
        return path

    def entry_paths(self) -> Iterator[Path]:
        """All entry files (digest-named), sorted for determinism.

        Files whose stem is not a SHA-256 digest are not cache entries —
        a user pointing ``--cache-dir`` at a directory holding their own
        JSON must never have those files read or garbage-collected.
        """
        return iter(
            sorted(
                path
                for path in self.root.glob("*.json")
                if _DIGEST_NAME.fullmatch(path.stem)
            )
        )

    def stats(self) -> CacheStats:
        """Count entries, corrupt entries, and total bytes."""
        entries = corrupt = total = 0
        for path in self.entry_paths():
            total += path.stat().st_size
            if self._load(path) is None:
                corrupt += 1
            else:
                entries += 1
        return CacheStats(root=self.root, entries=entries, corrupt=corrupt, bytes=total)

    def gc(
        self,
        *,
        dry_run: bool = False,
        max_age_days: float | None = None,
        max_bytes: int | None = None,
        delete_all: bool = False,
    ) -> list[Path]:
        """Delete corrupt entries (always), old entries, or everything.

        Parameters
        ----------
        dry_run:
            Report what would be deleted without touching anything.
        max_age_days:
            Also delete valid entries whose mtime is older than this.
        max_bytes:
            Shrink the cache to at most this many bytes of valid
            entries, evicting least-recently-written first (mtime
            order) after the corrupt/age passes have run.
        delete_all:
            Wipe every entry (including stray ``.tmp`` leftovers).

        Returns the paths deleted (or that would be, under ``dry_run``);
        ``gc_freed_bytes`` holds their combined size afterwards.
        """
        doomed: list[Path] = []
        survivors: list[tuple[float, int, Path]] = []  # (mtime, size, path)
        cutoff = None
        if max_age_days is not None:
            cutoff = time.time() - max_age_days * 86400.0
        for path in self.entry_paths():
            stat = path.stat()
            if delete_all or self._load(path) is None:
                doomed.append(path)
            elif cutoff is not None and stat.st_mtime < cutoff:
                doomed.append(path)
            else:
                survivors.append((stat.st_mtime, stat.st_size, path))
        if max_bytes is not None and not delete_all:
            # LRU by mtime: keep the newest entries that fit the byte
            # budget, evict the rest oldest-first.
            survivors.sort(key=lambda item: item[0], reverse=True)
            kept = 0
            for mtime, size, path in survivors:
                if kept + size > max_bytes:
                    doomed.append(path)
                else:
                    kept += size
        now = time.time()
        for stray in sorted(self.root.glob("*.tmp")):
            # A fresh .tmp may be a concurrent put() mid-write; only
            # reap ones old enough to be crash leftovers.
            if delete_all or now - stray.stat().st_mtime > STALE_TMP_SECONDS:
                doomed.append(stray)
        freed = 0
        for path in doomed:
            try:
                freed += path.stat().st_size
            except OSError:
                pass
        self.gc_freed_bytes = freed
        if not dry_run:
            for path in doomed:
                try:
                    path.unlink()
                except OSError:
                    pass
        return doomed
